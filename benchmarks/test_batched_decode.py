"""Batched multi-tile decode vs the per-tile Python loop.

The batched ``decode_tiles`` / ``decode_range`` fast path pays the NumPy
dispatch cost once per distinct bitwidth for the whole batch instead of
once per tile, which is the simulator's analogue of launching one fused
kernel over many thread blocks instead of one launch per tile.  At 16M
values the full-column decode must be at least 5x faster than looping
``decode_tile`` — and bit-identical to it.

Environment knobs:
    REPRO_BATCH_N — element count for the speedup test (default 16_000_000)
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.formats.gpufor import GpuFor

BATCH_N = int(os.environ.get("REPRO_BATCH_N", "16000000"))
MIN_SPEEDUP = 5.0


def _best_of(fn, rounds: int):
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_batched_full_column_speedup(benchmark):
    rng = np.random.default_rng(7)
    values = rng.integers(0, 2**12, BATCH_N, dtype=np.int64)
    codec = GpuFor(d_blocks=4)
    enc = codec.encode(values)
    n_tiles = codec.num_tiles(enc)

    def loop_decode():
        return np.concatenate(
            [codec.decode_tile(enc, t) for t in range(n_tiles)]
        )

    def batched_decode():
        return codec.decode_range(enc, 0, n_tiles)

    # Warm both paths once, then take best-of to shave scheduler noise.
    batched_decode()
    t_batched, batched = _best_of(batched_decode, rounds=3)
    t_loop, looped = _best_of(loop_decode, rounds=2)

    assert np.array_equal(batched, looped)
    assert np.array_equal(batched, values)

    speedup = t_loop / t_batched
    print(
        f"\nfull-column decode, {BATCH_N} values, {n_tiles} tiles: "
        f"loop {t_loop:.3f}s  batched {t_batched:.3f}s  ({speedup:.1f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched decode only {speedup:.1f}x faster than the per-tile loop "
        f"(need >= {MIN_SPEEDUP}x)"
    )

    # Record the batched path under pytest-benchmark for trend tracking.
    benchmark.pedantic(batched_decode, iterations=1, rounds=1)
