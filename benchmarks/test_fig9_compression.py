"""E9 bench — Figure 9: the SSB compression waterfall."""

from conftest import run_once

from repro.experiments import fig9_ssb_compression
from repro.experiments.common import print_experiment


def test_fig9_compression_waterfall(benchmark, bench_db):
    rows = run_once(benchmark, fig9_ssb_compression.run, db=bench_db)
    print_experiment("E9: Figure 9 — SSB column sizes (MB at SF=20)", rows)
    s = fig9_ssb_compression.summary(rows)
    print_experiment(
        "Figure 9 footprint ratios vs GPU-* (paper: 2.8 / ~1.5 / ~1.4 / ~1.02)",
        [{"baseline": k, "ratio": v} for k, v in s.items()],
    )
    assert 2.4 < s["none_over_gpu_star"] < 3.6
    assert 1.2 < s["gpu_bp_over_gpu_star"] < 1.8
    assert 1.1 < s["planner_over_gpu_star"] < 1.6
    assert 0.98 < s["nvcomp_over_gpu_star"] < 1.15
