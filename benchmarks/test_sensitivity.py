"""Extension bench — does the paper transfer to a newer GPU (A100)?"""

from conftest import BENCH_N, run_once

from repro.experiments import sensitivity_gpu
from repro.experiments.common import print_experiment


def test_sensitivity_d_sweep(benchmark):
    rows = run_once(benchmark, sensitivity_gpu.run_d_sweep, n=BENCH_N)
    print_experiment("Figure 5 D-sweep on V100 vs A100 (ms)", rows)
    by_d = {r["D"]: r for r in rows}
    # The V100 collapses at D=32; the A100's bigger shared memory doesn't.
    assert by_d[32]["V100"] > 2 * by_d[16]["V100"]
    assert by_d[32]["A100"] < 1.5 * by_d[16]["A100"]


def test_sensitivity_tile_advantage(benchmark):
    rows = run_once(benchmark, sensitivity_gpu.run_tile_vs_cascade, n=BENCH_N)
    print_experiment("tile vs cascade advantage across devices", rows)
    for r in rows:
        assert r["V100 ratio"] > 1.5
        assert r["A100 ratio"] > 1.5  # structural, not device-specific


def test_sensitivity_tuner(benchmark):
    rows = run_once(benchmark, sensitivity_gpu.run_tuner)
    print_experiment("Section 8 D auto-tuner", rows)
    by_key = {(r["device"], r["output_columns"]): r["best_D"] for r in rows}
    assert by_key[("V100", 4)] == 4  # the paper's choice
    assert by_key[("A100", 4)] >= by_key[("V100", 4)]  # the §8 prediction
