"""E15 bench — Section 8: encode speed (genuine wall-clock measurement)."""

from conftest import BENCH_N

from repro.experiments import compression_speed
from repro.experiments.common import print_experiment
from repro.formats.registry import get_codec
from repro.workloads.synthetic import uniform_bitwidth


def test_compression_speed_table(benchmark):
    rows = benchmark.pedantic(
        compression_speed.run,
        kwargs={"n": min(BENCH_N, 500_000)},
        iterations=1,
        rounds=1,
    )
    print_experiment(
        "E15: Section 8 — compression speed (paper: 1.2 / 1.3 / 2.2 s per 250M)",
        rows,
    )
    times = {r["scheme"]: r["encode_s"] for r in rows}
    assert times["gpu-rfor"] > times["gpu-for"]  # RFOR slowest on random data


def test_encode_gpu_for(benchmark):
    data = uniform_bitwidth(16, min(BENCH_N, 500_000))
    codec = get_codec("gpu-for")
    benchmark(codec.encode, data)


def test_encode_gpu_dfor(benchmark):
    data = uniform_bitwidth(16, min(BENCH_N, 500_000))
    codec = get_codec("gpu-dfor")
    benchmark(codec.encode, data)


def test_encode_gpu_rfor(benchmark):
    data = uniform_bitwidth(16, min(BENCH_N, 500_000))
    codec = get_codec("gpu-rfor")
    benchmark(codec.encode, data)


def test_decode_gpu_for(benchmark):
    data = uniform_bitwidth(16, min(BENCH_N, 500_000))
    codec = get_codec("gpu-for")
    enc = codec.encode(data)
    benchmark(codec.decode, enc)


def test_decode_gpu_dfor(benchmark):
    data = uniform_bitwidth(16, min(BENCH_N, 500_000))
    codec = get_codec("gpu-dfor")
    enc = codec.encode(data)
    benchmark(codec.decode, enc)


def test_decode_gpu_rfor(benchmark):
    data = uniform_bitwidth(16, min(BENCH_N, 500_000))
    codec = get_codec("gpu-rfor")
    enc = codec.encode(data)
    benchmark(codec.decode, enc)
