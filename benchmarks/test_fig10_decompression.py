"""E10/E11 bench — Figure 10: decompression speed on SSB columns."""

from conftest import run_once

from repro.experiments import fig10_decompression
from repro.experiments.common import print_experiment


def test_fig10_decompression(benchmark, bench_db):
    rows = run_once(benchmark, fig10_decompression.run, db=bench_db)
    print_experiment(
        "E10: Figure 10a — per-column decompression (ms at SF=20)",
        rows,
        columns=["column", "gpu-star", "nvcomp", "planner", "gpu-bp",
                 "gpu-star scheme", "nvcomp scheme"],
    )
    ratios = fig10_decompression.cascade_ratios(rows)
    print_experiment("Figure 10a cascade ratios (paper: 2.4 / 3.5 / 2.0)", ratios)
    for r in ratios:
        assert 1.4 < r["nvcomp_over_gpu_star"] < 4.5, r

    g = fig10_decompression.geomeans(rows)
    print_experiment(
        "E11: Figure 10b geomeans (paper ratios: planner 5.5, gpu-bp 2, nvcomp 2.2)",
        [{"system": k, "ms": v, "vs gpu-star": v / g["gpu-star"]} for k, v in g.items()],
    )
    assert g["gpu-star"] < g["gpu-bp"] < g["nvcomp"]
    assert g["planner"] > 2 * g["gpu-star"]
