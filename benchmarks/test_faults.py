"""Fault-injection smoke + checksum overhead guardrail.

Two assertions the CI fuzz-smoke job pins:

* the seeded corruption matrix (every registry codec × every fault mode ×
  ``REPRO_FAULT_SEEDS`` seeds) produces **zero silent-wrong-answer
  cells** — every fault is either detected as
  :class:`~repro.formats.validate.CorruptTileError` or provably harmless
  (bit-identical decode);
* lazy per-tile CRC verification costs **under 5% wall clock** on the
  flight-1 SSB scan versus checksums off — integrity is cheap enough to
  leave on.  Measured the way serving actually pays it: decoded images
  are evicted between scans (each rep re-decodes) but the per-payload
  verification marks persist, so the first scan verifies every tile and
  steady-state scans verify nothing.  The bar applies to the
  steady-state overhead (best-of-``REPRO_FAULT_REPS`` per mode — robust
  to scheduler noise); the cold first-scan cost rides in the JSON.

Emits ``BENCH_faults.json`` with the matrix tallies and the overhead
measurement as the baseline future PRs compare against.

Environment knobs:
    REPRO_FAULT_SEEDS   — comma-separated matrix seeds (default 0,1,2)
    REPRO_FAULT_SF      — SSB scale factor for the overhead run (default 0.05)
    REPRO_FAULT_REPS    — timing repetitions per mode (default 5)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import run_once
from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.experiments.fault_injection import corruption_matrix
from repro.formats import set_checksums, set_verify_mode
from repro.ssb.dbgen import generate
from repro.ssb.loader import load_lineorder

SEEDS = tuple(
    int(s) for s in os.environ.get("REPRO_FAULT_SEEDS", "0,1,2").split(",")
)
FAULT_SF = float(os.environ.get("REPRO_FAULT_SF", "0.05"))
REPS = int(os.environ.get("REPRO_FAULT_REPS", "5"))
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

OVERHEAD_QUERY = "q1.1"
#: Acceptance bar: lazy verification under this fractional overhead.
MAX_OVERHEAD = 0.05


def _scan_walls_ms(db, store, verify: bool) -> list[float]:
    """Per-rep flight-1 wall clock: cold decode, persistent marks.

    Every rep evicts the decoded images (the serving pool's behaviour
    under pressure) so decode cost is paid each time; the verification
    marks start cold and then persist, so rep 0 is the cold verify pass
    and the rest are lazy steady state.
    """
    prev_mode = set_verify_mode("lazy" if verify else "off")
    try:
        engine = CrystalEngine(db, store)
        query = QUERIES[OVERHEAD_QUERY]
        for col in query.columns:
            enc = store[col].payload
            if enc is not None and hasattr(enc, "meta"):
                enc.meta.pop("_crc_seen", None)
                enc.meta.pop("_validated", None)
        walls = []
        for _ in range(REPS):
            engine.evict_decoded()
            t0 = time.perf_counter()
            engine.run(query)
            walls.append((time.perf_counter() - t0) * 1e3)
        return walls
    finally:
        set_verify_mode(prev_mode)


def test_fault_matrix_and_checksum_overhead(benchmark):
    # Only the matrix runs under pytest-benchmark; the overhead timing
    # happens outside the benchmarked callable (pytest-benchmark's GC
    # handling inside the timed call skews phase-ordered comparisons)
    # and interleaves the two modes so drift hits both equally.
    matrix = run_once(benchmark, corruption_matrix, seeds=SEEDS)
    prev_checks = set_checksums(True)
    try:
        db = generate(scale_factor=FAULT_SF, seed=7)
        store = load_lineorder(db, "gpu-star")
    finally:
        set_checksums(prev_checks)
    off_walls, lazy_walls = [], []
    for _ in range(2):
        off_walls += _scan_walls_ms(db, store, verify=False)
        lazy_walls += _scan_walls_ms(db, store, verify=True)

    # Steady state: the cold verify pass is rep 0 of the lazy series, so
    # min() over the reps isolates the recurring per-scan cost in both
    # modes and is robust to scheduler noise spikes.
    off_best = min(off_walls)
    lazy_best = min(lazy_walls)
    overhead = (lazy_best - off_best) / off_best if off_best else 0.0
    cold_overhead = (
        (lazy_walls[0] - off_best) / off_best if off_best else 0.0
    )
    summary = {
        "seeds": list(SEEDS),
        "matrix_cells": matrix["cells"],
        "detected": matrix["detected"],
        "clean": matrix["clean"],
        "silent": matrix["silent"],
        "per_codec": matrix["per_codec"],
        "overhead_query": OVERHEAD_QUERY,
        "reps": len(off_walls),
        "wall_ms_verify_off": off_walls,
        "wall_ms_verify_lazy": lazy_walls,
        "wall_ms_verify_off_best": off_best,
        "wall_ms_verify_lazy_best": lazy_best,
        "checksum_overhead_fraction": overhead,
        "cold_scan_overhead_fraction": cold_overhead,
    }
    OUTPUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"\nfaults: {matrix['cells']} cells, {matrix['detected']} detected, "
        f"{matrix['clean']} clean, {matrix['silent']} silent; "
        f"{OVERHEAD_QUERY} x{REPS} verify off {off_best:.1f} ms -> lazy "
        f"{lazy_best:.1f} ms ({overhead * 100:+.1f}% steady, "
        f"{cold_overhead * 100:+.1f}% cold) -> {OUTPUT_PATH.name}"
    )

    # Zero tolerance for silent corruption.
    assert matrix["silent"] == 0, matrix["silent_cells"]
    # Fault detection is the norm, not the exception.
    assert matrix["detected"] >= matrix["cells"] * 0.9
    # Integrity is cheap: lazy verification under the 5% bar.
    assert overhead < MAX_OVERHEAD, (
        f"lazy checksum verification costs {overhead * 100:.1f}% "
        f"(bar {MAX_OVERHEAD * 100:.0f}%)"
    )
