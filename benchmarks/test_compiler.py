"""Query-compiler baseline: compiled declarative flights vs hand plans.

Drives all 13 SSB flights through one streaming engine both ways —
hand-written plan and compiled declarative spec — via the
``compiler_workload`` driver (which raises on any non-bit-identical
answer), pins the acceptance contract that compiled wall clock stays
within 1.05x of hand-written, and emits ``BENCH_compiler.json`` as the
perf baseline future PRs compare against.

Environment knobs:
    REPRO_BENCH_SF — SSB scale factor (default 0.02, see conftest)
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import run_once
from repro.experiments import compiler_workload

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_compiler.json"

#: Acceptance ceiling: compiled plans may cost at most 5% more wall
#: clock than the hand-written oracle plans over the full flight mix.
MAX_OVERHEAD = 1.05


def test_compiled_flights_match_hand_within_overhead(benchmark, bench_db):
    # run() itself raises if any compiled flight's groups deviate from
    # the hand-written plan's.
    summary = run_once(benchmark, compiler_workload.run, db=bench_db)

    assert summary["mismatches"] == 0
    assert summary["overhead"] <= MAX_OVERHEAD, summary["overhead"]
    assert summary["joins_dropped_total"] > 0, "no join was ever eliminated"
    assert summary["pushdown_conjuncts_total"] > 0, "nothing was pushed down"

    OUTPUT_PATH.write_text(json.dumps(
        {k: v for k, v in summary.items() if k != "rows"}, indent=2
    ) + "\n")
    print(
        f"\ncompiler: {summary['num_queries']} flights bit-identical, "
        f"compiled/hand wall = {summary['overhead']:.3f}x "
        f"({summary['hand_ms_total']:.1f} ms -> "
        f"{summary['compiled_ms_total']:.1f} ms), "
        f"{summary['joins_dropped_total']} joins dropped, "
        f"{summary['pushdown_conjuncts_total']} pushdown conjuncts, "
        f"compile {summary['compile_ms_total']:.1f} ms "
        f"-> {OUTPUT_PATH.name}"
    )
