"""E1 bench — Section 4.2 optimization ladder (paper: 18 / 7 / 2.39 / 2.1 ms)."""

from conftest import BENCH_N, run_once

from repro.experiments import opt_ladder
from repro.experiments.common import print_experiment


def test_opt_ladder(benchmark):
    rows = run_once(benchmark, opt_ladder.run, n=BENCH_N)
    print_experiment("E1: Section 4.2 optimization ladder (500M-projected)", rows)
    times = [r["simulated_ms"] for r in rows[:4]]
    assert times[0] > times[1] > times[2] > times[3]
    assert times[3] < rows[4]["simulated_ms"] * 1.05  # beats reading None
