"""E4/E5 bench — Figure 7: decompression time & compression rate vs bitwidth."""

from conftest import BENCH_N, run_once

from repro.experiments import fig7_bitwidths
from repro.experiments.common import print_experiment


def test_fig7_time_and_rate(benchmark):
    rows = run_once(benchmark, fig7_bitwidths.run, n=min(BENCH_N, 1_000_000))
    print_experiment(
        "E4: Figure 7a — decompression time (ms, 250M-projected)",
        fig7_bitwidths.time_rows(rows),
    )
    print_experiment(
        "E5: Figure 7b — compression rate (bits/int)", fig7_bitwidths.rate_rows(rows)
    )
    for r in rows:
        # Rate: bit-packed schemes are linear in bitwidth with small overhead.
        assert abs(r["rate GPU-FOR"] - (r["bitwidth"] + 0.75)) < 0.4
        # Time: tile-based beats its own cascading counterpart.
        assert r["time FOR+BitPack"] > 1.9 * r["time GPU-FOR"]
        assert r["time Delta+FOR+BitPack"] > 3.0 * r["time GPU-DFOR"]
        assert r["time RLE+FOR+BitPack"] > 6.0 * r["time GPU-RFOR"]
