"""Adaptive codec tiering benchmark: warm-wall win over the static plan.

Drives the Zipf-skewed scan+lookup mix from
``repro.experiments.tiering_workload`` through two identically budgeted
``QueryServer`` configurations — the planner's static per-column codec
choice and the ``CodecTieringManager`` re-encoding columns between
hot/warm/cold tiers from decayed access heat — and compares the
*measured-suffix* serving wall after both modes' warmup (catalog
staging, tier convergence) has settled.  Asserts the adaptive mode wins
the warm wall by >=1.5x while staying within 10 % of the static
compressed footprint, answers bit-identical throughout.  Emits
``BENCH_tiering.json`` — walls, speedup, footprints, swap/reclaim
counters, final tier placement — as the baseline future PRs compare
against.

Environment knobs:
    REPRO_TIERING_SF    — SSB scale factor (default 0.2; deliberately
                          independent of REPRO_BENCH_SF — tiering's
                          decode/transfer trade is launch-noise below
                          ~0.1)
    REPRO_TIERING_REQS  — total requests in the stream (default 120)
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import run_once
from repro.experiments import tiering_workload

TIERING_SF = float(
    os.environ.get("REPRO_TIERING_SF", str(tiering_workload.TIERING_SF))
)
NUM_REQUESTS = int(os.environ.get("REPRO_TIERING_REQS", "120"))
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_tiering.json"


def test_adaptive_tiering_warm_wall(benchmark):
    result = run_once(
        benchmark,
        tiering_workload.run,
        scale_factor=TIERING_SF,
        num_requests=NUM_REQUESTS,
    )

    rows = {row["mode"]: row for row in result["rows"]}
    # The tentpole claim: once tiers converge, the adaptive server beats
    # the static plan's warm wall handily...
    assert result["speedup"] >= 1.5, rows
    # ...without trading away the compression the planner bought.
    assert result["bytes_vs_static"] <= 1.10, rows
    # The background loop actually did the work the win is credited to.
    assert rows["adaptive"]["swaps"] > 0
    assert rows["adaptive"]["bytes_reclaimed_MB"] > 0
    tiers = set(result["tiers"].values())
    assert tiers == {"hot", "warm", "cold"}, result["tiers"]

    summary = {
        "scale_factor": result["scale_factor"],
        "num_requests": result["num_requests"],
        "num_warmup": result["num_warmup"],
        "budget_bytes": result["budget_bytes"],
        "speedup": result["speedup"],
        "bytes_vs_static": result["bytes_vs_static"],
        "modes": rows,
        "tiers": result["tiers"],
    }
    OUTPUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"\ntiering: {result['speedup']:.2f}x adaptive warm-wall win "
        f"(SF={result['scale_factor']:g}, "
        f"bytes {result['bytes_vs_static']:.3f}x static, "
        f"{rows['adaptive']['swaps']} swaps) -> {OUTPUT_PATH.name}"
    )
