"""Predicate-pushdown baseline: tile skipping on a low-selectivity scan.

Runs SSB flight-1 queries over an orderdate-sorted fact table (the
layout a date-partitioned warehouse ingests naturally) with pushdown on
and off, asserting bit-identical answers, reduced simulated read
traffic, and a wall-clock win from late materialization — the decode
work the pruned plan never does.  Emits ``BENCH_pushdown.json`` as the
perf baseline future PRs compare against.

The headline is q1.3 (one week of dates, ~0.01% row selectivity); q1.2
(one month, ~0.03%) rides along as a second low-selectivity point and
q1.1 (one year, ~1.9%) shows the win shrinking as selectivity grows.

Environment knobs:
    REPRO_PUSHDOWN_SF   — SSB scale factor (default 0.1; needs to be
                          large enough that decode dominates fixed costs)
    REPRO_PUSHDOWN_REPS — timing repetitions per mode (default 5)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import run_once
from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.experiments import pushdown_sweep
from repro.ssb.dbgen import generate, sort_lineorder_by
from repro.ssb.loader import load_lineorder

PUSHDOWN_SF = float(os.environ.get("REPRO_PUSHDOWN_SF", "0.1"))
REPS = int(os.environ.get("REPRO_PUSHDOWN_REPS", "5"))
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pushdown.json"

#: Flight-1 scans benched, most selective first; the first is the headline.
BENCH_QUERIES = ("q1.3", "q1.2", "q1.1")


def _run_query(db, store, name, pushdown):
    """Best-of-``REPS`` run: cold decoded data, warm metadata.

    One engine per mode keeps zone-map bounds and per-tile traffic
    metadata warm (a serving system derives those once at ingest), while
    ``evict_decoded()`` before every rep makes each query re-decode from
    the compressed payload — the cost pushdown is meant to skip.
    """
    engine = CrystalEngine(db, store, pushdown=pushdown)
    best = None
    for _ in range(REPS):
        engine.evict_decoded()
        launches_before = len(engine.device.launches)
        t0 = time.perf_counter()
        result = engine.run(QUERIES[name])
        wall_ms = (time.perf_counter() - t0) * 1e3
        read = int(sum(
            l.traffic.read_bytes
            for l in engine.device.launches[launches_before:]
        ))
        if best is None or wall_ms < best["wall_ms"]:
            best = {
                "wall_ms": wall_ms,
                "sim_ms": result.simulated_ms,
                "read_bytes": read,
                "groups": result.groups,
            }
    return best


def _bench_pushdown():
    db = sort_lineorder_by(generate(scale_factor=PUSHDOWN_SF, seed=7))
    store = load_lineorder(db, "gpu-star")
    per_query = {}
    for name in BENCH_QUERIES:
        on = _run_query(db, store, name, pushdown=True)
        off = _run_query(db, store, name, pushdown=False)
        per_query[name] = {"on": on, "off": off}
    sweep = pushdown_sweep.run(db=db, reps=2)
    return db, per_query, sweep


def test_pushdown_low_selectivity_scan(benchmark):
    db, per_query, sweep = run_once(benchmark, _bench_pushdown)

    summary = {"scale_factor_rows": int(db.num_lineorder_rows), "queries": {}}
    for name, modes in per_query.items():
        on, off = modes["on"], modes["off"]
        # Bit-identical answers with pruning on vs. off.
        assert on["groups"] == off["groups"], name
        # Pruning must reduce simulated read traffic on every flight-1
        # query (they all carry a date window).
        assert on["read_bytes"] < off["read_bytes"], name
        summary["queries"][name] = {
            "wall_ms_on": on["wall_ms"],
            "wall_ms_off": off["wall_ms"],
            "wall_speedup": off["wall_ms"] / on["wall_ms"],
            "sim_ms_on": on["sim_ms"],
            "sim_ms_off": off["sim_ms"],
            "read_bytes_on": on["read_bytes"],
            "read_bytes_off": off["read_bytes"],
            "identical_results": True,
        }

    headline = summary["queries"][BENCH_QUERIES[0]]
    summary["headline_query"] = BENCH_QUERIES[0]
    summary["headline_speedup"] = headline["wall_speedup"]
    summary["selectivity_sweep"] = sweep

    OUTPUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    lines = [
        f"{name}: {q['wall_speedup']:.2f}x wall, "
        f"read {q['read_bytes_on'] / 1e6:.2f} / {q['read_bytes_off'] / 1e6:.2f} MB"
        for name, q in summary["queries"].items()
    ]
    print("\npushdown: " + "; ".join(lines) + f" -> {OUTPUT_PATH.name}")

    # The acceptance bar: >=2x wall clock on the headline low-selectivity
    # scan (q1.3 touches one week of dates, far under 5% selectivity).
    assert headline["wall_speedup"] >= 2.0, headline
    # The monotone story: the sweep's narrowest window skips the most.
    assert sweep[0]["tiles_active"] < sweep[-1]["tiles_active"]
    assert sweep[0]["read_MB_on"] < sweep[0]["read_MB_off"]
