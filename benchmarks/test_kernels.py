"""Kernel backend speedups: shift-table decode vs the pre-backend path.

The kernel backend layer contributes two things to single-column decode:
the precompiled shift-table backend (phase plans and dtype-view fast
paths built once at import, replacing the per-call gcd/phase-loop in
``bitio.unpack_bits``), and the regular-geometry strided fast path in
``gpu-for`` / ``gpu-bp`` (one contiguous unpack for a uniform-bitwidth
column instead of a per-block/per-miniblock word gather).

This bench pins the combined win against a faithful inline reproduction
of the pre-backend decode loop — per-unique-bitwidth fancy-index gather
plus the reference NumPy phase-loop unpack, exactly what
``_decode_block_indices`` / ``unpack_block_indices`` did before the
backend layer existed — and re-runs the streaming headline with fused
decode+filter engaged, emitting ``BENCH_kernels.json``.

Environment knobs:
    REPRO_KERNEL_N      — single-column element count (default 4_000_000)
    REPRO_KERNEL_REPS   — timing repetitions per cell (default 5)
    REPRO_KERNEL_SF     — SSB scale factor for the headline (default 0.1)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import run_once
from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.formats import kernels
from repro.formats.gpufor import block_metadata
from repro.formats.kernels.numpy_ref import NumpyBackend
from repro.formats.registry import get_codec
from repro.serving.metrics import MetricsRegistry
from repro.ssb.dbgen import generate, sort_lineorder_by
from repro.ssb.loader import load_lineorder

KERNEL_N = int(os.environ.get("REPRO_KERNEL_N", "4000000"))
REPS = int(os.environ.get("REPRO_KERNEL_REPS", "9"))
KERNEL_SF = float(os.environ.get("REPRO_KERNEL_SF", "0.1"))
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

MIN_SPEEDUP = 5.0

DECODE_CELLS = (
    ("gpu-bp", 4),
    ("gpu-bp", 8),
    ("gpu-bp", 16),
    ("gpu-for", 8),
    ("gpu-for", 16),
)

_ORACLE = NumpyBackend()


def _column(rng, bits: int) -> np.ndarray:
    # Pin both extremes into every 32-value window so each block and
    # miniblock is exactly ``bits`` wide regardless of block granularity
    # — the geometry the regular-geometry strided path targets.
    vals = rng.integers(0, 2**bits, KERNEL_N, dtype=np.int64)
    vals[::32] = 2**bits - 1
    vals[1::32] = 0
    return vals


def _best_of(*fns):
    """Best-of-``REPS`` for each fn, interleaved round-robin.

    Interleaving means transient load (1-CPU CI runners) degrades every
    contender in the same round instead of biasing whichever happened to
    run during the spike; taking the per-fn minimum then compares the
    unloaded floors.
    """
    best = [float("inf")] * len(fns)
    results = [None] * len(fns)
    for _ in range(REPS):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            results[i] = fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best, results


def _pre_backend_decoder(codec_name: str, enc):
    """The decode loop as it stood before the kernel backend layer.

    Per-unique-bitwidth fancy-index word gather + one reference NumPy
    phase-loop unpack per width — ``gpu-bp`` gathered 128-value block
    payloads, ``gpu-for`` gathered 32-value miniblock payloads and then
    added the per-block FOR reference.
    """
    data = enc.arrays["data"]
    bstarts = enc.arrays["block_starts"].astype(np.int64)
    starts = bstarts[:-1]
    nb = starts.size

    if codec_name == "gpu-bp":
        block = 128
        hdr_bits = data[starts].astype(np.int64)

        def decode():
            decoded = np.empty((nb, block), dtype=np.int64)
            for b in np.unique(hdr_bits):
                sel = np.flatnonzero(hdr_bits == b)
                if b == 0:
                    decoded[sel] = 0
                    continue
                src = (starts[sel] + 1)[:, None] + np.arange(int(b) * block // 32)
                words = data[src.reshape(-1)]
                vals = _ORACLE.unpack(words, sel.size * block, int(b))
                decoded[sel] = vals.reshape(sel.size, block).astype(np.int64)
            return decoded.reshape(-1)[: enc.count]

        return decode

    references, bits = block_metadata(data, bstarts)
    mini = 32
    minis_per_block = bits.shape[1]
    block = mini * minis_per_block
    mini_words = np.concatenate(
        [np.zeros((nb, 1), dtype=np.int64), np.cumsum(bits[:, :-1], axis=1)],
        axis=1,
    )
    flat_offsets = (starts[:, None] + 2 + mini_words).reshape(-1)
    flat_bits = bits.reshape(-1)

    def decode():
        minis = np.empty((nb * minis_per_block, mini), dtype=np.int64)
        for b in np.unique(flat_bits):
            sel = np.flatnonzero(flat_bits == b)
            if b == 0:
                minis[sel] = 0
                continue
            src = flat_offsets[sel][:, None] + np.arange(int(b))
            words = data[src.reshape(-1)]
            vals = _ORACLE.unpack(words, sel.size * mini, int(b))
            minis[sel] = vals.reshape(sel.size, mini)
        decoded = minis.reshape(nb, block) + references[:, None]
        return decoded.reshape(-1)[: enc.count]

    return decode


def _decode_cell(codec_name: str, bits: int, rng) -> dict:
    codec = get_codec(codec_name)
    values = _column(rng, bits)
    enc = codec.encode(values)
    nt = codec.num_tiles(enc)

    def full_decode():
        return np.asarray(codec.decode_range(enc, 0, nt), dtype=np.int64)

    pre = _pre_backend_decoder(codec_name, enc)

    def numpy_decode():
        kernels.set_backend("numpy")
        return full_decode()

    def fast_decode():
        kernels.set_backend("shift-table")
        return full_decode()

    previous = kernels.backend_name()
    try:
        (pre_s, ref_s, fast_s), (pre_out, ref_out, fast_out) = _best_of(
            pre, numpy_decode, fast_decode
        )
    finally:
        kernels.set_backend(previous)

    assert np.array_equal(pre_out, values), (codec_name, bits, "pre-backend")
    assert np.array_equal(ref_out, values), (codec_name, bits, "numpy")
    assert np.array_equal(fast_out, values), (codec_name, bits, "shift-table")
    return {
        "codec": codec_name,
        "bits": bits,
        "elements": int(values.size),
        "pre_backend_ms": pre_s * 1e3,
        "numpy_ms": ref_s * 1e3,
        "shift_table_ms": fast_s * 1e3,
        "speedup": pre_s / fast_s,
        "backend_only_speedup": ref_s / fast_s,
        "shift_table_gops": values.size / fast_s / 1e9,
    }


def _headline_run(db, store, streaming: bool) -> dict:
    engine = CrystalEngine(
        db, store, streaming=streaming, stream_workers=4 if streaming else 1
    )
    engine.metrics = MetricsRegistry()
    query = QUERIES["q1.3"]
    best = None
    for _ in range(REPS):
        engine.evict_decoded()
        t0 = time.perf_counter()
        result = engine.run(query)
        wall_ms = (time.perf_counter() - t0) * 1e3
        if best is None or wall_ms < best["wall_ms"]:
            best = {"wall_ms": wall_ms, "groups": result.groups}
    best["fused_kernels"] = engine.metrics.counter("fused_decode_filter_kernels")
    best["fused_rows"] = engine.metrics.counter("fused_decode_filter_rows")
    return best


def _bench_kernels():
    rng = np.random.default_rng(7)
    cells = [_decode_cell(name, bits, rng) for name, bits in DECODE_CELLS]

    db = sort_lineorder_by(generate(scale_factor=KERNEL_SF, seed=7))
    store = load_lineorder(db, "gpu-star")
    headline = {
        "query": "q1.3",
        "materialized": _headline_run(db, store, streaming=False),
        "streaming_4w": _headline_run(db, store, streaming=True),
    }
    return cells, headline


def test_kernel_backend_speedup(benchmark):
    cells, headline = run_once(benchmark, _bench_kernels)

    mat, stream = headline["materialized"], headline["streaming_4w"]
    assert stream["groups"] == mat["groups"]

    summary = {
        "kernel_backends": kernels.capability_report(),
        "elements": KERNEL_N,
        "decode_cells": cells,
        "best_speedup": max(c["speedup"] for c in cells),
        "streaming_headline": {
            "query": headline["query"],
            "wall_ms_materialized": mat["wall_ms"],
            "wall_ms_streaming_4w": stream["wall_ms"],
            "wall_speedup": mat["wall_ms"] / stream["wall_ms"],
            "fused_kernels_materialized": mat["fused_kernels"],
            "fused_kernels_streaming_4w": stream["fused_kernels"],
            "fused_rows_streaming_4w": stream["fused_rows"],
            "identical_results": True,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    lines = [
        f"{c['codec']}/b{c['bits']}: {c['speedup']:.2f}x "
        f"({c['pre_backend_ms']:.1f} -> {c['shift_table_ms']:.1f} ms)"
        for c in cells
    ]
    print("\nkernels: " + "; ".join(lines) + f" -> {OUTPUT_PATH.name}")

    # Acceptance: >=5x single-column decode on at least one codec x
    # bitwidth vs the pre-backend NumPy loop, every cell bit-identical,
    # and fused kernels engaged in the streaming headline re-run.
    assert summary["best_speedup"] >= MIN_SPEEDUP, summary["decode_cells"]
    assert stream["fused_kernels"] > 0, stream
