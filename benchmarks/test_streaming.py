"""Morsel streaming vs materialized execution: wall clock and peak bytes.

Runs SSB queries over an orderdate-sorted ``gpu-star`` fact table through
the default (column-at-a-time materializing) path and the morsel-parallel
streaming executor at several worker counts, asserting bit-identical
answers everywhere, a wall-clock win on the selective flight-1 scans, and
a much smaller peak decoded-intermediate footprint.  Emits
``BENCH_streaming.json`` as the perf baseline future PRs compare against.

The headline is q1.3 (one week of dates: pushdown leaves a handful of
morsels, and the materialized path's column-length decode buffers are
pure overhead); q2.1 rides along as an unselective counterpoint where
per-morsel plan-replay overhead shows.

Environment knobs:
    REPRO_STREAMING_SF      — SSB scale factor (default 0.1)
    REPRO_STREAMING_REPS    — timing repetitions per mode (default 5)
    REPRO_STREAMING_WORKERS — comma-separated worker counts (default 1,2,8)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import run_once
from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.ssb.dbgen import generate, sort_lineorder_by
from repro.ssb.loader import load_lineorder

STREAMING_SF = float(os.environ.get("REPRO_STREAMING_SF", "0.1"))
REPS = int(os.environ.get("REPRO_STREAMING_REPS", "5"))
WORKERS = tuple(
    int(w) for w in os.environ.get("REPRO_STREAMING_WORKERS", "1,2,8").split(",")
)
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"

#: Flight-1 scans are the headline candidates; q2.1 is the unselective
#: counterpoint (reported, not asserted on).
BENCH_QUERIES = ("q1.3", "q1.2", "q1.1", "q2.1")
HEADLINE_CANDIDATES = ("q1.3", "q1.2", "q1.1")


def _materialized_run(db, store, name):
    """Best-of-``REPS``: cold decoded data, warm metadata."""
    engine = CrystalEngine(db, store)
    query = QUERIES[name]
    best = None
    for _ in range(REPS):
        engine.evict_decoded()
        t0 = time.perf_counter()
        result = engine.run(query)
        wall_ms = (time.perf_counter() - t0) * 1e3
        if best is None or wall_ms < best["wall_ms"]:
            best = {"wall_ms": wall_ms, "groups": result.groups}
    # Peak decoded intermediates: every inline column's full int64 image
    # is live at once (late materialization still allocates column-length
    # zero-filled buffers for partially-decoded columns).
    best["peak_bytes"] = sum(
        store[c].payload.count * 8
        for c in query.columns
        if engine.column_inline(c)
    )
    return best


def _streaming_run(db, store, name, workers):
    engine = CrystalEngine(db, store, streaming=True, stream_workers=workers)
    query = QUERIES[name]
    best = None
    for _ in range(REPS):
        engine.evict_decoded()
        t0 = time.perf_counter()
        result = engine.run(query)
        wall_ms = (time.perf_counter() - t0) * 1e3
        if best is None or wall_ms < best["wall_ms"]:
            best = {"wall_ms": wall_ms, "groups": result.groups}
    # Arenas only grow, so the last run's gauge is the true peak across
    # every rep of this engine.
    best["peak_bytes"] = int(engine.last_stream_stats["peak_decoded_bytes"])
    best["morsels"] = int(engine.last_stream_stats["morsels"])
    return best


def _bench_streaming():
    db = sort_lineorder_by(generate(scale_factor=STREAMING_SF, seed=7))
    store = load_lineorder(db, "gpu-star")
    per_query = {}
    for name in BENCH_QUERIES:
        per_query[name] = {
            "materialized": _materialized_run(db, store, name),
            "streaming": {w: _streaming_run(db, store, name, w) for w in WORKERS},
        }
    return db, per_query


def test_streaming_vs_materialized(benchmark):
    db, per_query = run_once(benchmark, _bench_streaming)

    summary = {
        "scale_factor_rows": int(db.num_lineorder_rows),
        "workers": list(WORKERS),
        "queries": {},
    }
    for name, modes in per_query.items():
        mat = modes["materialized"]
        streams = modes["streaming"]
        # Bit-identical answers at every worker count.
        for w, s in streams.items():
            assert s["groups"] == mat["groups"], (name, w)
        best_wall = min(s["wall_ms"] for s in streams.values())
        min_peak = min(s["peak_bytes"] for s in streams.values())
        summary["queries"][name] = {
            "wall_ms_materialized": mat["wall_ms"],
            "wall_ms_streaming": {str(w): s["wall_ms"] for w, s in streams.items()},
            "wall_speedup": mat["wall_ms"] / best_wall,
            "peak_bytes_materialized": mat["peak_bytes"],
            "peak_bytes_streaming": {
                str(w): s["peak_bytes"] for w, s in streams.items()
            },
            "peak_ratio": mat["peak_bytes"] / min_peak if min_peak else None,
            "morsels": {str(w): s["morsels"] for w, s in streams.items()},
            "identical_results": True,
        }

    headline_name = max(
        HEADLINE_CANDIDATES, key=lambda n: summary["queries"][n]["wall_speedup"]
    )
    headline = summary["queries"][headline_name]
    summary["headline_query"] = headline_name
    summary["headline_speedup"] = headline["wall_speedup"]
    summary["headline_peak_ratio"] = headline["peak_ratio"]

    OUTPUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    lines = [
        f"{name}: {q['wall_speedup']:.2f}x wall, "
        f"peak {q['peak_bytes_materialized'] / 1e6:.1f} -> "
        f"{min(int(v) for v in q['peak_bytes_streaming'].values()) / 1e6:.1f} MB"
        for name, q in summary["queries"].items()
    ]
    print("\nstreaming: " + "; ".join(lines) + f" -> {OUTPUT_PATH.name}")

    # Acceptance: >=1.5x wall clock on at least one flight-1 scan, and
    # >=4x lower peak decoded intermediates on that same query.
    assert headline["wall_speedup"] >= 1.5, headline
    assert headline["peak_ratio"] >= 4.0, headline
