"""E6/E7/E8 bench — Figure 8: robustness across data distributions."""

from conftest import BENCH_N, run_once

from repro.experiments import fig8_distributions
from repro.experiments.common import print_experiment

_N = min(BENCH_N, 1_000_000)


def test_fig8_d1_sorted(benchmark):
    # The unique-count sweep is meaningful up to ~n distinct values, so at
    # reduced scale the top of the paper's 4..2^28 range is clamped to n
    # (at 250M elements the dense end of the paper's sweep is 2^28).
    unique_counts = (2**2, 2**5, 2**10, 2**15, _N // 4, _N)
    rows = run_once(benchmark, fig8_distributions.run_d1, n=_N, unique_counts=unique_counts)
    print_experiment("E6: Figure 8(a,b) — D1 sorted, swept cardinality", rows)
    low, high = rows[0], rows[-1]
    assert low["rate GPU-RFOR"] < low["rate GPU-FOR"]  # runs win at low NDV
    assert high["rate GPU-DFOR"] < high["rate GPU-FOR"] / 2  # deltas at high NDV
    assert low["time RLE"] > 1.8 * low["time GPU-RFOR"]  # tile RLE decode wins


def test_fig8_d2_normal(benchmark):
    rows = run_once(benchmark, fig8_distributions.run_d2, n=_N)
    print_experiment("E7: Figure 8(c,d) — D2 normal, swept mean", rows)
    for r in rows:
        if r["mean"] >= 2**16:
            # FOR absorbs the mean: ~3x reduction vs byte-aligned schemes.
            assert r["rate GPU-FOR"] < r["rate NSF"] / 2.4


def test_fig8_d3_zipf(benchmark):
    rows = run_once(benchmark, fig8_distributions.run_d3, n=_N)
    print_experiment("E8: Figure 8(e,f) — D3 Zipf, swept alpha", rows)
    for r in rows:
        assert r["rate GPU-FOR"] <= r["rate NSF"] + 1e-9
        assert r["time NSV"] > r["time GPU-FOR"]  # NSV decodes slowest


def test_sorted_keys_headline(benchmark):
    bits = run_once(benchmark, fig8_distributions.run_sorted_keys, n=_N)
    print_experiment(
        "E16: sorted unique keys (paper: DFOR 1.8 / FOR 7.8 / RFOR 8 bits/int)",
        [{"scheme": k, "bits_per_int": v} for k, v in bits.items()],
    )
    assert bits["GPU-DFOR"] < 2.0
    assert bits["GPU-FOR"] > 3 * bits["GPU-DFOR"]
