"""Codec throughput matrix: encode/decode wall-clock for every format.

Unlike the simulated-time benches, these measure the *Python library's*
real throughput (pytest-benchmark), which is what a user of the encoders
experiences.  Simple-8b runs at a reduced size — its reference implementation keeps
the greedy per-word Python loop for clarity.
"""

import pytest
from conftest import BENCH_N

from repro.formats.registry import get_codec
from repro.workloads.synthetic import runs, uniform_bitwidth

_N = min(BENCH_N, 300_000)
_SLOW_N = 30_000

#: codec -> (dataset maker, element count)
MATRIX = {
    "gpu-for": (lambda: uniform_bitwidth(16, _N), _N),
    "gpu-dfor": (lambda: uniform_bitwidth(16, _N), _N),
    "gpu-rfor": (lambda: runs(8, _N, distinct=1000), _N),
    "gpu-bp": (lambda: uniform_bitwidth(16, _N), _N),
    "gpu-simdbp128": (lambda: uniform_bitwidth(16, _N), _N),
    "gpu-vbyte": (lambda: uniform_bitwidth(16, _N), _N),
    "nsf": (lambda: uniform_bitwidth(16, _N), _N),
    "nsv": (lambda: uniform_bitwidth(16, _N), _N),
    "rle": (lambda: runs(8, _N, distinct=1000), _N),
    "delta": (lambda: uniform_bitwidth(16, _N), _N),
    "dict": (lambda: uniform_bitwidth(10, _N), _N),
    "pfor": (lambda: uniform_bitwidth(16, _N), _N),
    "simple8b": (lambda: uniform_bitwidth(16, _SLOW_N), _SLOW_N),
}


@pytest.mark.parametrize("name", list(MATRIX))
def test_encode_throughput(benchmark, name):
    maker, n = MATRIX[name]
    data = maker()
    codec = get_codec(name)
    benchmark.extra_info["elements"] = n
    enc = benchmark(codec.encode, data)
    assert enc.count == n


@pytest.mark.parametrize("name", list(MATRIX))
def test_decode_throughput(benchmark, name):
    maker, n = MATRIX[name]
    data = maker()
    codec = get_codec(name)
    enc = codec.encode(data)
    benchmark.extra_info["elements"] = n
    out = benchmark(codec.decode, enc)
    assert out.size == n
