"""Benchmark fixtures.

Every benchmark regenerates one paper artifact (table/figure series) via
its ``repro.experiments`` driver, prints the series next to the paper's
reference numbers, and asserts the qualitative shape.  pytest-benchmark
measures the harness wall time; the *simulated* milliseconds inside the
printed tables are the reproduction's actual results.

Environment knobs:
    REPRO_BENCH_N   — synthetic element count (default 1_000_000)
    REPRO_BENCH_SF  — SSB scale factor (default 0.02)
"""

from __future__ import annotations

import os

import pytest

from repro.ssb.dbgen import generate

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "1000000"))
BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.02"))


@pytest.fixture(scope="session")
def bench_db():
    """One shared SSB database for all SSB-based benches."""
    return generate(scale_factor=BENCH_SF, seed=7)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
