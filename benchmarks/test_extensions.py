"""Extension benches: multi-GPU scaling and the interconnect sweep."""

from conftest import BENCH_N, run_once

from repro.experiments import interconnect_sweep, multigpu_scaling
from repro.experiments.common import print_experiment


def test_multigpu_scaling(benchmark):
    rows = run_once(benchmark, multigpu_scaling.run, n=BENCH_N)
    print_experiment(
        "Extension — multi-GPU sharded decompression (500M-projected)", rows
    )
    by_devices = {r["devices"]: r for r in rows}
    assert by_devices[4]["speedup"] > 3.0
    assert by_devices[8]["speedup"] > 5.5


def test_interconnect_sweep(benchmark, bench_db):
    rows = run_once(benchmark, interconnect_sweep.run, db=bench_db)
    print_experiment(
        "Extension — coprocessor speedup vs link generation", rows
    )
    speedups = [r["speedup"] for r in rows]
    assert speedups == sorted(speedups, reverse=True)
    assert 1.8 < speedups[0] < 3.2  # PCIe3 row == Figure 12
