"""Claims benches — the Section 2.2 related-work comparisons."""

from conftest import run_once

from repro.experiments import related_work
from repro.experiments.common import print_experiment


def test_related_work(benchmark):
    rows = run_once(benchmark, related_work.run, n=150_000)
    print_experiment("Related work — compression rate", related_work.rate_rows(rows))
    print_experiment("Related work — decode time", related_work.time_rows(rows))
    uniform = next(r for r in rows if r["dataset"] == "uniform-16bit")
    # The paper's reason for benchmarking GPU-BP instead of GPU-VByte.
    assert uniform["rate gpu-bp"] < uniform["rate gpu-vbyte"]
    assert uniform["time gpu-bp"] < uniform["time gpu-vbyte"]
    # GPU-FOR decodes fastest across the board.
    for r in rows:
        for codec in ("gpu-bp", "gpu-vbyte", "pfor", "simple8b"):
            assert r["time gpu-for"] <= r[f"time {codec}"] + 1e-9
