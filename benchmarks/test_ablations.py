"""E3 + miniblock benches — the Section 4.3 design-choice ablations."""

from conftest import BENCH_N, BENCH_SF, run_once

from repro.experiments import ablation_miniblocks, ablation_vertical
from repro.experiments.common import print_experiment


def test_vertical_layout_decode(benchmark):
    rows = run_once(benchmark, ablation_vertical.run_decode, n=BENCH_N)
    print_experiment(
        "E3a: vertical vs horizontal decode (paper: 1.55 vs 4.3 ms, 2.7x)", rows
    )
    assert 1.8 < rows[-1]["simulated_ms"] < 4.0


def test_vertical_layout_query(benchmark):
    rows = run_once(benchmark, ablation_vertical.run_query, sf=BENCH_SF)
    print_experiment("E3b: SSB q1.1 vertical vs horizontal (paper: 14x)", rows)
    assert rows[-1]["q1.1_ms"] > 8  # order-of-magnitude collapse


def test_miniblock_ablation(benchmark):
    rows = run_once(benchmark, ablation_miniblocks.run, n=BENCH_N)
    print_experiment(
        "Miniblocks vs single bitwidth (paper: 2.1 -> 2.0 ms, equal size)", rows
    )
    four, single = rows
    assert abs(four["bits_per_int"] - single["bits_per_int"]) < 0.01
    assert single["decode_ms"] < four["decode_ms"]

    skewed = ablation_miniblocks.run(n=BENCH_N, skewed=True)
    print_experiment("Same with one skewed value per 256", skewed)
    assert skewed[1]["bits_per_int"] > skewed[0]["bits_per_int"] + 2
