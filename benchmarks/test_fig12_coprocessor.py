"""E13 bench — Figure 12: GPU-as-coprocessor (paper speedup: 2.3x)."""

from conftest import run_once

from repro.experiments import fig12_coprocessor
from repro.experiments.common import print_experiment


def test_fig12_coprocessor(benchmark, bench_db):
    rows = run_once(benchmark, fig12_coprocessor.run, db=bench_db)
    print_experiment(
        "E13: Figure 12 — coprocessor model (ms at SF=20)",
        rows,
        columns=["query", "none", "gpu-star", "speedup"],
    )
    geo = next(r for r in rows if r["query"] == "geomean")
    assert 1.8 < geo["speedup"] < 3.2
