"""Semantic result cache baseline: drill-down reuse under the dashboard mix.

Drives the repeated/overlapping-filter workload (SSB flight-1 plus
year→half→quarter drill-down scans) through a semcache-backed streaming
engine, asserts the acceptance contract — warm queries at least 2×
faster wall-clock than cold with bit-identical answers and zero stale
reads after a flush — and emits ``BENCH_semcache.json`` as the perf
baseline future PRs compare against.

Environment knobs:
    REPRO_BENCH_SF — SSB scale factor (default 0.02, see conftest)
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import run_once
from repro.experiments import semcache_workload

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_semcache.json"


def test_semcache_drilldown_workload(benchmark, bench_db):
    # run() itself raises if any cached answer deviates from the cold
    # reference or if the post-flush replay serves a stale partial.
    summary = run_once(benchmark, semcache_workload.run, db=bench_db)

    assert summary["stale_reads_after_flush"] == 0
    assert summary["warm_speedup"] >= 2.0, summary["warm_speedup"]
    assert summary["hits"] > 0, "repeat queries never hit the cache"
    assert summary["donated_partials"] > 0, "drill-downs never reused donors"
    assert summary["invalidations"] > 0, "flush did not invalidate entries"
    assert summary["resident_bytes"] <= summary["budget_bytes"]

    OUTPUT_PATH.write_text(json.dumps(
        {k: v for k, v in summary.items() if k != "rows"}, indent=2
    ) + "\n")
    print(
        f"\nsemcache: warm {summary['warm_speedup']:.1f}x faster than cold "
        f"({summary['cold_ms_total']:.1f} ms -> {summary['warm_ms_total']:.1f} ms "
        f"over {summary['num_queries']} queries), "
        f"{summary['hits']} hits / {summary['partial_hits']} partial / "
        f"{summary['donated_partials']} donated, "
        f"0 stale reads after flush -> {OUTPUT_PATH.name}"
    )
