"""Serving-layer baseline: a mixed workload through QueryServer.

Drives a 100-request SSB + point-lookup mix through the serving layer
with a device budget deliberately smaller than the decoded working set,
asserts the capacity contract (pool peak residency never exceeds the
budget) and bit-identical results versus uncached execution, and emits
``BENCH_serving.json`` — throughput, p50/p99 latency, hit rate — as the
perf baseline future PRs compare against.

Environment knobs:
    REPRO_SERVE_REQUESTS — workload size (default 100)
    REPRO_BENCH_SF       — SSB scale factor (default 0.02, see conftest)
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from conftest import run_once
from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.experiments import serving_workload
from repro.gpusim import GPUDevice
from repro.serving import QueryServer
from repro.ssb.loader import load_lineorder

NUM_REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", "100"))
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _serve_mixed(db):
    store = load_lineorder(db, "gpu-star")
    decoded_ws = serving_workload.decoded_working_set_bytes(db)
    budget = store.total_bytes + int(0.4 * decoded_ws)
    server = QueryServer(
        db, store, budget_bytes=budget, max_queue=32, batch_window=8
    )
    requests = serving_workload.build_workload(
        NUM_REQUESTS, db.num_lineorder_rows, seed=11
    )
    results = server.serve(requests)
    return store, server, requests, results, budget, decoded_ws


def test_serving_mixed_workload(benchmark, bench_db):
    store, server, requests, results, budget, decoded_ws = run_once(
        benchmark, _serve_mixed, bench_db
    )
    assert budget < store.total_bytes + decoded_ws, "budget must constrain"
    assert len(results) == NUM_REQUESTS
    assert all(r.ok for r in results)

    # Capacity contract: the pool's own metrics prove residency stayed
    # within budget for the whole workload.
    snap = server.metrics_snapshot()
    assert snap["pool_peak_resident_bytes"] <= budget
    assert snap["pool_evictions"] > 0, "workload did not pressure the pool"

    # Bit-identical to uncached execution.
    reference_engines: dict[str, dict] = {}
    for request, result in zip(requests, results):
        if request.kind == "query":
            if request.name not in reference_engines:
                engine = CrystalEngine(bench_db, store, GPUDevice())
                reference_engines[request.name] = engine.run(
                    QUERIES[request.name]
                ).groups
            assert result.groups == reference_engines[request.name]
        else:
            assert np.array_equal(
                result.values, store[request.name].values[request.indices]
            )

    hits, misses = snap.get("pool_hits", 0), snap.get("pool_misses", 0)
    clock_ms = server.clock_ms
    summary = {
        "num_requests": NUM_REQUESTS,
        "scale_factor_rows": int(bench_db.num_lineorder_rows),
        "budget_bytes": int(budget),
        "decoded_working_set_bytes": int(decoded_ws),
        "compressed_bytes": int(store.total_bytes),
        "simulated_ms": clock_ms,
        "throughput_qps": len(results) / (clock_ms / 1000.0) if clock_ms else 0.0,
        "latency_p50_ms": snap.get("latency_ms_p50", 0.0),
        "latency_p99_ms": snap.get("latency_ms_p99", 0.0),
        "latency_mean_ms": snap.get("latency_ms_mean", 0.0),
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "evictions": int(snap.get("pool_evictions", 0)),
        "peak_resident_bytes": int(snap.get("pool_peak_resident_bytes", 0)),
        "batches": int(snap.get("server_batches", 0)),
        "batched_requests": int(snap.get("server_batched_requests", 0)),
    }
    OUTPUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"\nserving: {summary['throughput_qps']:.0f} q/s simulated, "
        f"p50 {summary['latency_p50_ms']:.3f} ms, "
        f"p99 {summary['latency_p99_ms']:.3f} ms, "
        f"hit rate {summary['hit_rate']:.0%}, "
        f"{summary['evictions']} evictions "
        f"(budget {budget / 1e6:.1f} MB < working set "
        f"{(store.total_bytes + decoded_ws) / 1e6:.1f} MB) "
        f"-> {OUTPUT_PATH.name}"
    )
    assert summary["hit_rate"] > 0.0
    assert summary["latency_p99_ms"] >= summary["latency_p50_ms"]
