"""E2 bench — Figure 5: decompression time vs D (the U-shape)."""

from conftest import BENCH_N, run_once

from repro.experiments import fig5_blocks_per_tb
from repro.experiments.common import print_experiment


def test_fig5_d_sweep(benchmark):
    rows = run_once(benchmark, fig5_blocks_per_tb.run, n=BENCH_N)
    print_experiment("E2: Figure 5 — decompression vs D (500M-projected)", rows)
    by_d = {r["D"]: r["simulated_ms"] for r in rows}
    assert by_d[1] > by_d[2] > by_d[4]  # the big early win
    assert by_d[16] <= by_d[8]  # marginal improvement continues
    assert by_d[32] > 2 * by_d[16]  # occupancy/spill collapse
