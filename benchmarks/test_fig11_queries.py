"""E12 bench — Figure 11: all 13 SSB queries across the six systems."""

from conftest import run_once

from repro.experiments import fig11_ssb_queries
from repro.experiments.common import print_experiment


def test_fig11_ssb_queries(benchmark, bench_db):
    rows = run_once(benchmark, fig11_ssb_queries.run, db=bench_db)
    print_experiment("E12: Figure 11 — SSB query times (ms at SF=20)", rows)
    ratios = fig11_ssb_queries.ratios(rows)
    print_experiment(
        "Figure 11 geomean ratios vs GPU-* "
        "(paper: omnisci 12, planner 4, gpu-bp 2.4, nvcomp 2.6, none 0.74)",
        ratios,
    )
    by_system = {r["system"]: r["vs_gpu_star"] for r in ratios}
    assert 0.6 < by_system["none"] < 0.95
    assert 2.0 < by_system["nvcomp"] < 5.0
    assert 3.0 < by_system["planner"] < 8.0
    assert 2.0 < by_system["gpu-bp"] < 4.5
    assert 8.0 < by_system["omnisci"] < 16.0
