"""Sharded serving benchmark: the SF=20 paper-scale scaling claim.

Drives a scan-heavy flight-1 mix through the serving layer's
``ShardRouter`` at 1/2/4 tile-range shards on a large SSB instance
(default SF=0.5 — big enough that the fixed per-query fused-kernel
launch overhead stops masking the data-proportional work), asserts
bit-identical answers at every shard count and a >=3x wall-clock
speedup at 4 shards both as measured and projected to the paper's
SF=20, then runs hot key-range scans over the sorted ``lo_orderkey``
prefix to capture routing-skew metrics.  Emits ``BENCH_sharding.json``
— walls, speedups, SF=20 projections, routing skew, per-shard
occupancy — as the scaling baseline future PRs compare against.

Environment knobs:
    REPRO_SHARDING_SF   — SSB scale factor for this bench (default 0.5;
                          deliberately independent of REPRO_BENCH_SF)
    REPRO_SHARDING_REPS — repetitions of the broad scan set (default 2)
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import run_once
from repro.engine.ssb_queries import make_flight1
from repro.experiments.common import PAPER_SF
from repro.experiments.sharding_workload import _project_sf20, make_key_scan
from repro.serving.metrics import MetricsRegistry
from repro.serving.sharding import ShardRouter
from repro.ssb.dbgen import generate
from repro.ssb.loader import load_lineorder

SHARDING_SF = float(os.environ.get("REPRO_SHARDING_SF", "0.5"))
REPS = int(os.environ.get("REPRO_SHARDING_REPS", "2"))
SHARD_COUNTS = (1, 2, 4)
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharding.json"


def _broad_scans() -> list:
    """Flight-1 revenue scans with no key predicate — every shard's zone
    maps survive, so the router fans each query out to all shards."""
    return [
        make_flight1("bench-scan-93", 19930101, 19931231, 1, 3, 0, 24),
        make_flight1("bench-scan-94", 19940101, 19941231, 4, 6, 26, 35),
        make_flight1("bench-scan-95", 19950101, 19951231, 5, 7, 26, 35),
        make_flight1("bench-scan-all", 19930101, 19971231, 1, 7, 0, 50),
    ]


def _run_sharded():
    db = generate(scale_factor=SHARDING_SF, seed=7)
    store = load_lineorder(db, "gpu-star")
    broad = _broad_scans() * REPS
    keys = db.lineorder["lo_orderkey"]
    hot = [
        make_key_scan("bench-key-hot", int(keys[0]), int(keys[keys.size // 8])),
        make_key_scan(
            "bench-key-mid",
            int(keys[keys.size // 8]),
            int(keys[keys.size // 5]),
        ),
    ]

    rows = []
    answers_by_count = {}
    last_router_stats = None
    single_ms = None
    launch_ms = None
    for num_shards in SHARD_COUNTS:
        metrics = MetricsRegistry()
        router = ShardRouter(db, store, num_shards, metrics=metrics)
        if launch_ms is None:
            launch_ms = router.sharded.spec.kernel_launch_us / 1000.0
        wall = 0.0
        answers = []
        for query in broad:
            with router.pinned(query.columns) as place_ms:
                groups, execute_ms = router.execute(query)
            wall += place_ms + execute_ms
            answers.append(groups)
        # Untimed: hot key scans exercise zone-map routing so the skew
        # gauges and per-shard routed counts reflect a skewed stream.
        for query in hot:
            with router.pinned(query.columns):
                groups, _ = router.execute(query)
            answers.append(groups)
        answers_by_count[num_shards] = answers
        if single_ms is None:
            single_ms = wall
        wall_sf20 = _project_sf20(wall, len(broad), SHARDING_SF, launch_ms)
        rows.append(
            {
                "shards": num_shards,
                "wall_ms": wall,
                "speedup": single_ms / wall,
                "wall_ms_sf20": wall_sf20,
            }
        )
        if num_shards == SHARD_COUNTS[-1]:
            snap = metrics.snapshot()
            last_router_stats = {
                "routing_skew": snap.get("router_routing_skew", 1.0),
                "queries_routed": int(snap.get("router_queries", 0)),
                "shards": router.shard_summary(),
            }
        router.close()

    base_sf20 = rows[0]["wall_ms_sf20"]
    for row in rows:
        row["speedup_sf20"] = base_sf20 / row["wall_ms_sf20"]
    return db, store, rows, answers_by_count, last_router_stats


def test_sharded_scan_scaling(benchmark):
    db, store, rows, answers_by_count, router_stats = run_once(
        benchmark, _run_sharded
    )

    # Bit-identity: every shard count produced the single-device answers.
    reference = answers_by_count[SHARD_COUNTS[0]]
    for num_shards, answers in answers_by_count.items():
        assert answers == reference, f"answers drifted at {num_shards} shards"

    by_shards = {r["shards"]: r for r in rows}
    assert by_shards[1]["speedup"] == 1.0
    assert by_shards[4]["speedup"] >= 3.0, by_shards[4]
    assert by_shards[4]["speedup_sf20"] >= 3.0, by_shards[4]
    assert router_stats["routing_skew"] > 1.0, "hot key scans did not skew"

    summary = {
        "scale_factor": SHARDING_SF,
        "paper_sf": PAPER_SF,
        "num_rows": int(db.num_lineorder_rows),
        "compressed_bytes": int(store.total_bytes),
        "num_broad_queries": len(_broad_scans()) * REPS,
        "num_key_queries": 2,
        "scaling": rows,
        "routing_skew": router_stats["routing_skew"],
        "queries_routed": router_stats["queries_routed"],
        "shards": router_stats["shards"],
    }
    OUTPUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"\nsharding: {by_shards[4]['speedup']:.2f}x measured at 4 shards "
        f"(SF={SHARDING_SF:g}), {by_shards[4]['speedup_sf20']:.2f}x "
        f"projected at SF={PAPER_SF:g}, routing skew "
        f"{router_stats['routing_skew']:.2f} -> {OUTPUT_PATH.name}"
    )
