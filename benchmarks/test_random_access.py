"""E14 bench — Section 8: random access under a selectivity sweep."""

from conftest import BENCH_N, run_once

from repro.experiments import random_access
from repro.experiments.common import print_experiment


def test_random_access_sweep(benchmark):
    rows = run_once(benchmark, random_access.run, n=min(BENCH_N, 1_000_000))
    print_experiment(
        "E14: Section 8 — random access vs selectivity "
        "(paper plateaus: compressed 2.1 ms < uncompressed 2.5 ms)",
        rows,
    )
    comp = [r["compressed_ms"] for r in rows]
    unc = [r["uncompressed_ms"] for r in rows]
    assert comp[-1] < unc[-1]  # compressed plateau below uncompressed
    assert comp[-1] / comp[0] > 3  # compressed has a real knee
    assert abs(comp[-1] - comp[-3]) / comp[-1] < 0.02  # and a flat plateau
