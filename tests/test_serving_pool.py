"""ColumnPool: admission, cost-aware eviction, pins, capacity enforcement."""

import numpy as np
import pytest

from repro.formats.registry import get_codec
from repro.gpusim import GPUDevice
from repro.serving import (
    ColumnPool,
    MetricsRegistry,
    PoolAdmissionError,
    estimate_decode_cost_ms,
)
from repro.ssb.dbgen import generate
from repro.ssb.loader import load_lineorder


class TestAdmission:
    def test_admit_and_get(self):
        pool = ColumnPool(1000)
        pool.admit("a", 400, kind="decoded", payload="payload-a")
        resident = pool.get("a")
        assert resident is not None and resident.payload == "payload-a"
        assert pool.resident_bytes == 400

    def test_miss_counts(self):
        pool = ColumnPool(1000)
        assert pool.get("nope") is None
        assert pool.metrics.counter("pool_misses") == 1

    def test_oversized_payload_rejected(self):
        pool = ColumnPool(100)
        with pytest.raises(PoolAdmissionError):
            pool.admit("huge", 101, kind="compressed")
        assert pool.metrics.counter("pool_rejections") == 1

    def test_readmission_refreshes_in_place(self):
        pool = ColumnPool(1000)
        pool.admit("a", 400, kind="decoded", payload="old")
        pool.admit("a", 400, kind="decoded", payload="new")
        assert pool.get("a").payload == "new"
        assert pool.resident_bytes == 400

    def test_readmission_with_new_size_reaccounts(self):
        pool = ColumnPool(1000)
        pool.admit("a", 400, kind="decoded")
        pool.admit("a", 600, kind="decoded")
        assert pool.resident_bytes == 600


class TestEviction:
    def test_decoded_evicted_before_compressed(self):
        pool = ColumnPool(1000)
        pool.admit("compressed/a", 400, kind="compressed", reconstruct_cost_ms=0.01)
        pool.admit("decoded/a", 400, kind="decoded", reconstruct_cost_ms=100.0)
        pool.admit("compressed/b", 400, kind="compressed", reconstruct_cost_ms=0.01)
        # The decoded image goes first even though it is far costlier to
        # rebuild and more recent than compressed/a: it is reconstructible.
        assert "decoded/a" not in pool
        assert "compressed/a" in pool and "compressed/b" in pool

    def test_cheap_stale_decoded_evicted_first(self):
        pool = ColumnPool(1000)
        pool.admit("cheap", 300, kind="decoded", reconstruct_cost_ms=0.001)
        pool.admit("costly", 300, kind="decoded", reconstruct_cost_ms=10.0)
        pool.get("costly")  # costly is also the more recently used
        pool.admit("new", 500, kind="decoded", reconstruct_cost_ms=1.0)
        assert "cheap" not in pool and "costly" in pool

    def test_recency_discounts_cost(self):
        pool = ColumnPool(1000)
        pool.admit("old-costly", 400, kind="decoded", reconstruct_cost_ms=1.0)
        pool.admit("hot-cheap", 400, kind="decoded", reconstruct_cost_ms=0.9)
        for _ in range(50):  # age old-costly far beyond its cost edge
            pool.get("hot-cheap")
        pool.admit("new", 400, kind="decoded", reconstruct_cost_ms=1.0)
        assert "old-costly" not in pool and "hot-cheap" in pool

    def test_pinned_residents_never_evicted(self):
        pool = ColumnPool(1000)
        pool.admit("pinned", 600, kind="decoded", pin=True)
        with pytest.raises(PoolAdmissionError):
            pool.admit("other", 600, kind="decoded")
        assert "pinned" in pool
        pool.unpin("pinned")
        pool.admit("other", 600, kind="decoded")
        assert "pinned" not in pool

    def test_pinned_context_manager(self):
        pool = ColumnPool(1000)
        pool.admit("a", 600, kind="decoded")
        with pool.pinned("a", "not-resident"):
            with pytest.raises(PoolAdmissionError):
                pool.admit("b", 600, kind="decoded")
        pool.admit("b", 600, kind="decoded")  # unpinned on exit
        assert "a" not in pool

    def test_budget_never_exceeded(self):
        pool = ColumnPool(1000)
        rng = np.random.default_rng(0)
        for i in range(200):
            pool.admit(f"r{i}", int(rng.integers(50, 400)), kind="decoded",
                       reconstruct_cost_ms=float(rng.random()))
            assert pool.resident_bytes <= 1000
        snap = pool.metrics_snapshot()
        assert snap["pool_peak_resident_bytes"] <= 1000
        assert snap["pool_evictions"] > 0


class TestInvalidation:
    def test_invalidate_drops_even_pinned(self):
        pool = ColumnPool(1000)
        pool.admit("a", 400, kind="decoded", pin=True)
        assert pool.invalidate("a")
        assert "a" not in pool
        pool.unpin("a")  # balanced release after invalidation is a no-op

    def test_invalidate_prefix(self):
        pool = ColumnPool(1000)
        pool.admit("decoded/x", 100, kind="decoded")
        pool.admit("tilemeta/x", 100, kind="meta")
        pool.admit("decoded/y", 100, kind="decoded")
        assert pool.invalidate_prefix("decoded/") == 2
        assert pool.resident_keys == ["tilemeta/x"]


class TestDecodeCostEstimate:
    def test_tile_codec_cost_positive_and_scales(self):
        device = GPUDevice()
        values = np.arange(200_000, dtype=np.int64)
        small = get_codec("gpu-for").encode(values[:20_000])
        large = get_codec("gpu-for").encode(values)
        assert estimate_decode_cost_ms(small, device) > 0
        assert estimate_decode_cost_ms(large, device) > estimate_decode_cost_ms(
            small, device
        )

    def test_non_encoded_payload_is_free(self):
        assert estimate_decode_cost_ms(None, GPUDevice()) == 0.0


class TestStorePlacement:
    """Satellite: loading past ``capacity_bytes`` must raise, not succeed."""

    @pytest.fixture(scope="class")
    def db(self):
        return generate(scale_factor=0.002, seed=7)

    def test_placement_charges_transfer_once(self, db):
        store = load_lineorder(db, "gpu-star")
        pool = ColumnPool(store.total_bytes + 1)
        device = GPUDevice()
        first = store.place_on_device(pool, device)
        again = store.place_on_device(pool, device)
        assert first > 0.0 and again == 0.0
        assert pool.resident_bytes == store.total_bytes

    def test_column_over_budget_raises(self, db):
        store = load_lineorder(db, "gpu-star")
        largest = max(c.nbytes for c in store.columns.values())
        pool = ColumnPool(largest - 1)
        with pytest.raises(PoolAdmissionError):
            store.place_on_device(pool, GPUDevice())

    def test_tiny_budget_evicts_to_fit(self, db):
        store = load_lineorder(db, "gpu-star")
        sizes = sorted(c.nbytes for c in store.columns.values())
        budget = sizes[-1] + sizes[-2]  # room for the two largest only
        pool = ColumnPool(budget, metrics=MetricsRegistry())
        store.place_on_device(pool, GPUDevice())
        snap = pool.metrics_snapshot()
        assert snap["pool_peak_resident_bytes"] <= budget
        assert snap["pool_evictions"] > 0
