"""ColumnPool: admission, cost-aware eviction, pins, capacity enforcement."""

import numpy as np
import pytest

from repro.formats.registry import get_codec
from repro.gpusim import GPUDevice
from repro.serving import (
    ColumnPool,
    MetricsRegistry,
    PoolAdmissionError,
    estimate_decode_cost_ms,
)
from repro.ssb.dbgen import generate
from repro.ssb.loader import load_lineorder


class TestAdmission:
    def test_admit_and_get(self):
        pool = ColumnPool(1000)
        pool.admit("a", 400, kind="decoded", payload="payload-a")
        resident = pool.get("a")
        assert resident is not None and resident.payload == "payload-a"
        assert pool.resident_bytes == 400

    def test_miss_counts(self):
        pool = ColumnPool(1000)
        assert pool.get("nope") is None
        assert pool.metrics.counter("pool_misses") == 1

    def test_oversized_payload_rejected(self):
        pool = ColumnPool(100)
        with pytest.raises(PoolAdmissionError):
            pool.admit("huge", 101, kind="compressed")
        assert pool.metrics.counter("pool_rejections") == 1

    def test_readmission_refreshes_in_place(self):
        pool = ColumnPool(1000)
        pool.admit("a", 400, kind="decoded", payload="old")
        pool.admit("a", 400, kind="decoded", payload="new")
        assert pool.get("a").payload == "new"
        assert pool.resident_bytes == 400

    def test_readmission_with_new_size_reaccounts(self):
        pool = ColumnPool(1000)
        pool.admit("a", 400, kind="decoded")
        pool.admit("a", 600, kind="decoded")
        assert pool.resident_bytes == 600


class TestEviction:
    def test_decoded_evicted_before_compressed(self):
        pool = ColumnPool(1000)
        pool.admit("compressed/a", 400, kind="compressed", reconstruct_cost_ms=0.01)
        pool.admit("decoded/a", 400, kind="decoded", reconstruct_cost_ms=100.0)
        pool.admit("compressed/b", 400, kind="compressed", reconstruct_cost_ms=0.01)
        # The decoded image goes first even though it is far costlier to
        # rebuild and more recent than compressed/a: it is reconstructible.
        assert "decoded/a" not in pool
        assert "compressed/a" in pool and "compressed/b" in pool

    def test_cheap_stale_decoded_evicted_first(self):
        pool = ColumnPool(1000)
        pool.admit("cheap", 300, kind="decoded", reconstruct_cost_ms=0.001)
        pool.admit("costly", 300, kind="decoded", reconstruct_cost_ms=10.0)
        pool.get("costly")  # costly is also the more recently used
        pool.admit("new", 500, kind="decoded", reconstruct_cost_ms=1.0)
        assert "cheap" not in pool and "costly" in pool

    def test_recency_discounts_cost(self):
        pool = ColumnPool(1000)
        pool.admit("old-costly", 400, kind="decoded", reconstruct_cost_ms=1.0)
        pool.admit("hot-cheap", 400, kind="decoded", reconstruct_cost_ms=0.9)
        for _ in range(50):  # age old-costly far beyond its cost edge
            pool.get("hot-cheap")
        pool.admit("new", 400, kind="decoded", reconstruct_cost_ms=1.0)
        assert "old-costly" not in pool and "hot-cheap" in pool

    def test_pinned_residents_never_evicted(self):
        pool = ColumnPool(1000)
        pool.admit("pinned", 600, kind="decoded", pin=True)
        with pytest.raises(PoolAdmissionError):
            pool.admit("other", 600, kind="decoded")
        assert "pinned" in pool
        pool.unpin("pinned")
        pool.admit("other", 600, kind="decoded")
        assert "pinned" not in pool

    def test_pinned_context_manager(self):
        pool = ColumnPool(1000)
        pool.admit("a", 600, kind="decoded")
        with pool.pinned("a", "not-resident"):
            with pytest.raises(PoolAdmissionError):
                pool.admit("b", 600, kind="decoded")
        pool.admit("b", 600, kind="decoded")  # unpinned on exit
        assert "a" not in pool

    def test_budget_never_exceeded(self):
        pool = ColumnPool(1000)
        rng = np.random.default_rng(0)
        for i in range(200):
            pool.admit(f"r{i}", int(rng.integers(50, 400)), kind="decoded",
                       reconstruct_cost_ms=float(rng.random()))
            assert pool.resident_bytes <= 1000
        snap = pool.metrics_snapshot()
        assert snap["pool_peak_resident_bytes"] <= 1000
        assert snap["pool_evictions"] > 0


class TestInvalidation:
    def test_invalidate_drops_even_pinned(self):
        pool = ColumnPool(1000)
        pool.admit("a", 400, kind="decoded", pin=True)
        assert pool.invalidate("a")
        assert "a" not in pool
        pool.unpin("a")  # balanced release after invalidation is a no-op

    def test_invalidate_prefix(self):
        pool = ColumnPool(1000)
        pool.admit("decoded/x", 100, kind="decoded")
        pool.admit("tilemeta/x", 100, kind="meta")
        pool.admit("decoded/y", 100, kind="decoded")
        assert pool.invalidate_prefix("decoded/") == 2
        assert pool.resident_keys == ["tilemeta/x"]


class TestDecodeCostEstimate:
    def test_tile_codec_cost_positive_and_scales(self):
        device = GPUDevice()
        values = np.arange(200_000, dtype=np.int64)
        small = get_codec("gpu-for").encode(values[:20_000])
        large = get_codec("gpu-for").encode(values)
        assert estimate_decode_cost_ms(small, device) > 0
        assert estimate_decode_cost_ms(large, device) > estimate_decode_cost_ms(
            small, device
        )

    def test_non_encoded_payload_is_free(self):
        assert estimate_decode_cost_ms(None, GPUDevice()) == 0.0


class TestStorePlacement:
    """Satellite: loading past ``capacity_bytes`` must raise, not succeed."""

    @pytest.fixture(scope="class")
    def db(self):
        return generate(scale_factor=0.002, seed=7)

    def test_placement_charges_transfer_once(self, db):
        store = load_lineorder(db, "gpu-star")
        pool = ColumnPool(store.total_bytes + 1)
        device = GPUDevice()
        first = store.place_on_device(pool, device)
        again = store.place_on_device(pool, device)
        assert first > 0.0 and again == 0.0
        assert pool.resident_bytes == store.total_bytes

    def test_column_over_budget_raises(self, db):
        store = load_lineorder(db, "gpu-star")
        largest = max(c.nbytes for c in store.columns.values())
        pool = ColumnPool(largest - 1)
        with pytest.raises(PoolAdmissionError):
            store.place_on_device(pool, GPUDevice())

    def test_tiny_budget_evicts_to_fit(self, db):
        store = load_lineorder(db, "gpu-star")
        sizes = sorted(c.nbytes for c in store.columns.values())
        budget = sizes[-1] + sizes[-2]  # room for the two largest only
        pool = ColumnPool(budget, metrics=MetricsRegistry())
        store.place_on_device(pool, GPUDevice())
        snap = pool.metrics_snapshot()
        assert snap["pool_peak_resident_bytes"] <= budget
        assert snap["pool_evictions"] > 0


class TestDecodeArenaTrim:
    def test_trim_releases_largest_first(self):
        from repro.formats.base import DecodeArena

        arena = DecodeArena()
        arena.scratch("small", 100)           # 800 B
        arena.scratch("large", 10_000)        # 80 kB
        arena.scratch("mask", 10_000, dtype=np.bool_)  # 10 kB
        total = arena.resident_bytes
        assert total == 800 + 80_000 + 10_000
        released = arena.trim(12_000)
        # Largest-first: the 80 kB buffer goes, the rest fits.
        assert released == 80_000
        assert arena.resident_bytes == 10_800
        assert arena.trim(0) == 10_800
        assert arena.resident_bytes == 0

    def test_trim_zero_clears_everything(self):
        from repro.formats.base import DecodeArena

        arena = DecodeArena()
        buf = arena.scratch("col", 500)
        buf[:] = 7  # borrowed buffer stays valid after trim
        assert arena.trim(0) == 4000
        assert buf[0] == 7
        # The arena reallocates on next use instead of serving stale refs.
        fresh = arena.scratch("col", 500)
        assert fresh is not buf

    def test_dtype_mismatch_reallocates(self):
        from repro.formats.base import DecodeArena

        arena = DecodeArena()
        a = arena.scratch("k", 64)
        b = arena.scratch("k", 64, dtype=np.bool_)
        assert a.dtype == np.int64 and b.dtype == np.bool_


class TestReleaseHook:
    def test_eviction_fires_release(self):
        released = []
        pool = ColumnPool(1000)
        pool.admit(
            "scratch/arenas", 600, kind="scratch", payload=None,
            release=lambda: released.append(True),
        )
        pool.admit("decoded/a", 600, kind="decoded")
        assert "scratch/arenas" not in pool
        assert released == [True]

    def test_invalidate_does_not_fire_release(self):
        released = []
        pool = ColumnPool(1000)
        pool.admit("scratch/arenas", 600, kind="scratch",
                   release=lambda: released.append(True))
        pool.invalidate("scratch/arenas")
        assert released == []

    def test_release_errors_counted_not_raised(self):
        def boom():
            raise RuntimeError("release failed")

        pool = ColumnPool(1000, metrics=MetricsRegistry())
        pool.admit("scratch/arenas", 600, kind="scratch", release=boom)
        pool.admit("decoded/a", 600, kind="decoded")
        assert pool.metrics.counter("pool_release_errors") == 1
        assert "decoded/a" in pool


class TestStreamArenaAccounting:
    @pytest.fixture(scope="class")
    def db(self):
        return generate(scale_factor=0.002, seed=7)

    def test_streaming_scratch_accounted_and_evictable(self, db):
        from repro.engine.crystal import CrystalEngine
        from repro.engine.ssb_queries import QUERIES

        store = load_lineorder(db, "gpu-star")
        pool = ColumnPool(64 * 1024 * 1024)
        engine = CrystalEngine(db, store, pool=pool, streaming=True,
                               stream_workers=2)
        engine.run(QUERIES["q1.1"])
        resident = pool.lookup("scratch/stream-arenas")
        assert resident is not None
        assert resident.kind == "scratch" and resident.payload is None
        assert resident.nbytes == engine._stream_executor.peak_decoded_bytes > 0
        # Trimming through the engine releases the memory and drops the
        # accounting entry.
        released = engine.trim_stream_arenas(0)
        assert released > 0
        assert engine._stream_executor.peak_decoded_bytes == 0
        assert pool.lookup("scratch/stream-arenas") is None
        # The next streaming query re-grows and re-accounts.
        engine.run(QUERIES["q1.1"])
        assert pool.lookup("scratch/stream-arenas") is not None


class TestServerIdleTrim:
    @pytest.fixture(scope="class")
    def db(self):
        return generate(scale_factor=0.002, seed=7)

    def test_trim_idle_releases_after_burst(self, db):
        from repro.serving import QueryServer

        store = load_lineorder(db, "gpu-star")
        server = QueryServer(db, store, streaming=True, stream_workers=2)
        results = server.serve([__import__("repro.serving.scheduler",
                                           fromlist=["ServeRequest"])
                                .ServeRequest("query", "q1.1")])
        assert results[0].ok
        held = server.engine._stream_executor.peak_decoded_bytes
        assert held > 0
        released = server.trim_idle()
        assert released == held
        assert server.metrics.counter("arena_trim_releases") == 1
        assert server.metrics.counter("arena_trimmed_bytes") == held

    def test_scheduler_thread_trims_when_idle(self, db):
        import time as _time

        from repro.serving import QueryServer

        store = load_lineorder(db, "gpu-star")
        server = QueryServer(db, store, streaming=True, stream_workers=2)
        server.start()
        try:
            from repro.serving.scheduler import ServeRequest

            fut = server.submit(ServeRequest("query", "q1.1"))
            assert fut.result(timeout=60).ok
            deadline = _time.monotonic() + 5.0
            while _time.monotonic() < deadline:
                if server.metrics.counter("arena_trim_releases") >= 1:
                    break
                _time.sleep(0.02)
            assert server.metrics.counter("arena_trim_releases") >= 1
            assert server.engine._stream_executor.peak_decoded_bytes == 0
        finally:
            server.stop()

    def test_idle_trim_can_be_disabled(self, db):
        import time as _time

        from repro.serving import QueryServer
        from repro.serving.scheduler import ServeRequest

        store = load_lineorder(db, "gpu-star")
        server = QueryServer(db, store, streaming=True, stream_workers=2,
                             trim_arenas_when_idle=False)
        server.start()
        try:
            fut = server.submit(ServeRequest("query", "q1.1"))
            assert fut.result(timeout=60).ok
            _time.sleep(0.3)
            assert server.metrics.counter("arena_trim_releases") == 0
            assert server.engine._stream_executor.peak_decoded_bytes > 0
        finally:
            server.stop()


class TestMetricsRing:
    def test_series_bounded_in_order(self):
        reg = MetricsRegistry(max_series_len=100)
        for i in range(250):
            reg.observe("lat", float(i))
        got = reg.series("lat")
        assert got == [float(i) for i in range(150, 250)]
        snap = reg.snapshot()
        assert snap["lat_count"] == 100
        assert snap["lat_max"] == 249.0

    def test_partial_ring_in_order(self):
        reg = MetricsRegistry(max_series_len=100)
        for i in range(7):
            reg.observe("lat", float(i))
        assert reg.series("lat") == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert reg.series_percentile("lat", 50.0) == 3.0

    def test_info_labels_in_snapshot(self):
        reg = MetricsRegistry()
        reg.set_info("kernel_backend", "shift-table")
        assert reg.info_value("kernel_backend") == "shift-table"
        snap = reg.snapshot()
        assert snap["kernel_backend"] == "shift-table"
        from repro.serving import metrics_rows

        rows = metrics_rows(snap)
        assert {"metric": "kernel_backend", "value": "shift-table"} in rows

    def test_scrapes_do_not_stall_observers(self):
        # Regression: series() used to box the full bounded series
        # (100k floats) into a Python list under the registry lock,
        # stalling every concurrent observe().  Now the lock covers only
        # an array copy.  This is a functional smoke with a generous
        # bound, not a microbenchmark: many full-series scrapes must not
        # starve a writer thread.
        import threading
        import time as _time

        reg = MetricsRegistry(max_series_len=100_000)
        for i in range(100_000):
            reg.observe("lat", float(i % 97))
        observed = []
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                t0 = _time.perf_counter()
                reg.observe("lat", 1.0)
                observed.append(_time.perf_counter() - t0)

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(50):
                assert len(reg.series("lat")) == 100_000
        finally:
            stop.set()
            t.join()
        assert observed, "writer made no progress during scrapes"
        # Generous bound: no single observe may stall for the time a
        # full-series Python-list copy under the lock used to take.
        assert max(observed) < 0.25
