"""QueryServer: batching, backpressure, timeouts, concurrency + eviction
correctness, and the update-flush invalidation regression."""

import threading

import numpy as np
import pytest

from repro.core.updates import UpdatableColumn
from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.formats.registry import get_codec
from repro.gpusim import GPUDevice
from repro.serving import (
    ColumnPool,
    QueryServer,
    ServeRequest,
    ServerSaturated,
)
from repro.ssb.dbgen import generate
from repro.ssb.loader import load_lineorder

#: Every GPU-* tile codec, pinned to one lineorder query column each so
#: the eviction-correctness suite exercises them all end to end.
CODEC_COLUMNS = {
    "lo_orderdate": "gpu-dfor",
    "lo_quantity": "gpu-for",
    "lo_discount": "gpu-rfor",
    "lo_extendedprice": "gpu-bp",
    "lo_revenue": "gpu-simdbp128",
}
#: Queries that together touch all five codec-pinned columns.
QUERY_MIX = ("q1.1", "q1.2", "q2.1", "q3.1", "q4.1")


@pytest.fixture(scope="module")
def db():
    return generate(scale_factor=0.002, seed=7)


@pytest.fixture(scope="module")
def codec_store(db):
    """A gpu-star store with one column per GPU-* codec."""
    store = load_lineorder(db, "gpu-star")
    for name, codec_name in CODEC_COLUMNS.items():
        col = store[name]
        enc = get_codec(codec_name).encode(col.values)
        col.payload = enc
        col.codec_name = codec_name
        col.nbytes = enc.nbytes
    return store


@pytest.fixture(scope="module")
def expected(db, codec_store):
    """Uncached single-query reference results (fresh engine per query)."""
    out = {}
    for name in QUERY_MIX:
        engine = CrystalEngine(db, codec_store, GPUDevice())
        out[name] = engine.run(QUERIES[name]).groups
    return out


def tight_budget(db, store):
    """Room for the compressed store plus ~1.5 decoded images: queries
    need up to 6 decoded columns live, so eviction is guaranteed."""
    return store.total_bytes + int(1.5 * db.num_lineorder_rows * 8)


class TestEvictionCorrectness:
    def test_interleaved_queries_bit_identical_under_eviction(
        self, db, codec_store, expected
    ):
        budget = tight_budget(db, codec_store)
        server = QueryServer(db, codec_store, budget_bytes=budget,
                             max_queue=128, batch_window=3)
        names = [QUERY_MIX[i % len(QUERY_MIX)] for i in range(30)]
        results = server.serve([ServeRequest("query", n) for n in names])

        assert all(r.ok for r in results)
        for name, result in zip(names, results):
            assert result.groups == expected[name], name

        snap = server.metrics_snapshot()
        assert snap["pool_evictions"] > 0, "budget did not force eviction"
        assert snap["pool_peak_resident_bytes"] <= budget

    def test_lookups_bit_identical_under_eviction(self, db, codec_store):
        budget = tight_budget(db, codec_store)
        server = QueryServer(db, codec_store, budget_bytes=budget)
        rng = np.random.default_rng(3)
        requests, want = [], []
        for column in CODEC_COLUMNS:
            idx = rng.integers(0, db.num_lineorder_rows, size=200)
            requests.append(ServeRequest("lookup", column, indices=idx))
            want.append(codec_store[column].values[idx])
        requests, want = requests * 3, want * 3  # interleave with reuse
        results = server.serve(requests)
        for result, reference in zip(results, want):
            assert result.ok
            assert np.array_equal(result.values, reference)

    def test_threaded_clients(self, db, codec_store, expected):
        budget = tight_budget(db, codec_store)
        server = QueryServer(db, codec_store, budget_bytes=budget,
                             max_queue=16, batch_window=4)
        server.start()
        errors = []

        def client(seed):
            rng = np.random.default_rng(seed)
            for _ in range(6):
                name = QUERY_MIX[int(rng.integers(len(QUERY_MIX)))]
                future = server.query(name, block_s=10.0)
                result = future.result(timeout=60)
                if not result.ok or result.groups != expected[name]:
                    errors.append((name, result.status))

        threads = [threading.Thread(target=client, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.stop()
        assert not errors
        snap = server.metrics_snapshot()
        assert snap["server_served"] == 36
        assert snap["pool_peak_resident_bytes"] <= budget


class TestBatching:
    def test_identical_queries_share_one_execution(self, db, codec_store):
        server = QueryServer(db, codec_store, batch_window=8)
        results = server.serve([ServeRequest("query", "q1.1")] * 5)
        assert all(r.ok and r.batch_size == 5 for r in results)
        assert all(r.execute_ms == results[0].execute_ms for r in results)
        snap = server.metrics_snapshot()
        assert snap["server_batches"] == 1
        assert snap["server_batched_requests"] == 4

    def test_lookup_indices_coalesce(self, db, codec_store):
        server = QueryServer(db, codec_store, batch_window=4)
        idx = [np.array([0, 5, 9]), np.array([2, 2]), np.array([7])]
        results = server.serve(
            [ServeRequest("lookup", "lo_quantity", indices=i) for i in idx]
        )
        values = codec_store["lo_quantity"].values
        for request_idx, result in zip(idx, results):
            assert result.batch_size == 3
            assert np.array_equal(result.values, values[request_idx])

    def test_same_named_adhoc_queries_never_coalesce(self, db, codec_store):
        """Regression: two ad-hoc SSBQuery objects sharing a name but
        running different plans used to collide on ``semantic_key()``
        (name + empty predicate), so one request was answered with the
        other's result.  Undeclared-semantics queries now key on object
        identity."""
        from repro.engine.crystal import SSBQuery

        def sum_between(lo, hi):
            def fn(engine):
                p = engine.pipeline("adhoc")
                quantity = p.load("lo_quantity")
                p.filter((quantity >= lo) & (quantity <= hi))
                revenue = p.load("lo_revenue")
                result = p.total_sum(revenue)
                p.finish()
                return result
            return SSBQuery("adhoc", ("lo_quantity", "lo_revenue"), fn)

        narrow, wide = sum_between(1, 5), sum_between(1, 50)
        assert narrow.semantic_key() != wide.semantic_key()

        server = QueryServer(db, codec_store, batch_window=8)
        results = server.serve([
            ServeRequest("query", "adhoc", query=narrow),
            ServeRequest("query", "adhoc", query=wide),
        ])
        assert all(r.ok for r in results)
        assert all(r.batch_size == 1 for r in results)
        assert results[0].groups[0] < results[1].groups[0]

        # Resubmitting the *same object* still batches: identity is per
        # plan, not per call.
        repeats = server.serve([
            ServeRequest("query", "adhoc", query=narrow),
            ServeRequest("query", "adhoc", query=narrow),
        ])
        assert all(r.batch_size == 2 for r in repeats)
        assert all(r.groups == results[0].groups for r in repeats)

    def test_compiled_specs_batch_on_canonical_plan_key(self, db, codec_store):
        """Declarative specs batch on the compiled plan's canonical key:
        same structure coalesces across distinct spec objects, different
        predicates never do — even under one shared name."""
        from repro.engine.predicates import Equals, Range
        from repro.query.compiler import QueryCompiler
        from repro.query.model import Query
        from repro.query.ssb import ssb_model

        compiler = QueryCompiler(ssb_model(), db, store=codec_store)
        server = QueryServer(db, codec_store, batch_window=8,
                             compiler=compiler)
        same_a = Query("adhoc", measures=("revenue",),
                       filters=(Equals("s_region", 2),), group_by=("d_year",))
        same_b = Query("adhoc", measures=("revenue",),
                       filters=(Range("s_region", 2, 2),), group_by=("d_year",))
        other = Query("adhoc", measures=("revenue",),
                      filters=(Equals("s_region", 3),), group_by=("d_year",))
        futures = [server.query(q) for q in (same_a, same_b, other)]
        server.drain()
        results = [f.result() for f in futures]
        assert [r.batch_size for r in results] == [2, 2, 1]
        assert results[0].groups == results[1].groups
        assert results[2].groups != results[0].groups


class TestBackpressure:
    def test_full_queue_rejects(self, db, codec_store):
        server = QueryServer(db, codec_store, max_queue=2)
        server.submit(ServeRequest("query", "q1.1"))
        server.submit(ServeRequest("query", "q1.1"))
        with pytest.raises(ServerSaturated):
            server.submit(ServeRequest("query", "q1.1"))
        assert server.metrics_snapshot()["server_rejected"] == 1
        server.drain()
        server.submit(ServeRequest("query", "q1.1"))  # space again

    def test_simulated_timeout_rejects_stale_requests(self, db, codec_store):
        # batch_window=1: each query is its own batch, so every later
        # request waits on the serving clock and overruns a ~0 timeout.
        server = QueryServer(db, codec_store, batch_window=1,
                             default_timeout_ms=1e-12)
        results = server.serve([ServeRequest("query", "q1.1")] * 4)
        statuses = [r.status for r in results]
        assert statuses[0] == "ok"
        assert statuses[1:] == ["timeout"] * 3
        assert server.metrics_snapshot()["server_timeouts"] == 3

    def test_latency_includes_queue_wait(self, db, codec_store):
        server = QueryServer(db, codec_store, batch_window=1)
        results = server.serve(
            [ServeRequest("query", q) for q in ("q1.1", "q2.1", "q3.1")]
        )
        assert results[0].queue_wait_ms == 0.0
        assert results[1].queue_wait_ms > 0.0
        assert results[2].queue_wait_ms > results[1].queue_wait_ms
        assert results[2].latency_ms == pytest.approx(
            results[2].queue_wait_ms + results[2].execute_ms
        )


class TestFlushInvalidation:
    """Satellite regression: flush must not leave engines serving stale
    bytes out of their decoded caches."""

    def _roundtrip(self, db, store, engine):
        column = "lo_quantity"
        updatable = UpdatableColumn(store[column].values)
        engine.bind_updatable(column, updatable)
        before = engine.run(QUERIES["q1.1"]).groups

        # Push every quantity out of q1.1's `quantity < 25` predicate.
        device = GPUDevice()
        updatable.update_many(
            np.arange(len(updatable)), np.full(len(updatable), 30)
        )
        updatable.flush(device)

        after = engine.run(QUERIES["q1.1"]).groups
        fresh = CrystalEngine(db, store, GPUDevice()).run(QUERIES["q1.1"]).groups
        assert after == fresh, "engine served stale post-flush bytes"
        assert after != before
        assert sum(after.values()) == 0  # predicate now matches nothing
        np.testing.assert_array_equal(
            engine.column_values(column), updatable.values
        )

    def test_dict_cached_engine_sees_flush(self, db):
        store = load_lineorder(db, "gpu-star")
        self._roundtrip(db, store, CrystalEngine(db, store, GPUDevice()))

    def test_pool_backed_engine_sees_flush(self, db):
        store = load_lineorder(db, "gpu-star")
        pool = ColumnPool(1 << 30)
        engine = CrystalEngine(db, store, GPUDevice(), pool=pool)
        self._roundtrip(db, store, engine)

    def test_flush_hook_fires_without_pending_updates(self, db):
        store = load_lineorder(db, "gpu-star")
        updatable = UpdatableColumn(store["lo_discount"].values)
        fired = []
        updatable.add_invalidation_hook(lambda u: fired.append(u.codec_name))
        updatable.flush(GPUDevice())
        assert fired == [updatable.codec_name]
