"""Baseline codecs: NSF, NSV, RLE, Delta, Dict, GPU-BP, GPU-SIMDBP128."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    Delta,
    Dict,
    GpuBp,
    GpuSimdBp128,
    Nsf,
    Nsv,
    Rle,
)
from repro.formats.nsf import nsf_width


class TestNsf:
    @pytest.mark.parametrize(
        "hi,width", [(255, 1), (256, 2), (65_535, 2), (65_536, 4), (2**31 - 1, 4)]
    )
    def test_width_staircase(self, hi, width):
        assert nsf_width(np.array([0, hi])) == width

    def test_negative_forces_four_bytes(self):
        assert nsf_width(np.array([-1, 5])) == 4

    def test_roundtrip_signed(self, rng):
        values = rng.integers(-(2**31), 2**31, 1000)
        codec = Nsf()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_roundtrip_each_width(self, rng):
        for hi in (200, 60_000, 10**9):
            values = rng.integers(0, hi, 500)
            codec = Nsf()
            enc = codec.encode(values)
            assert np.array_equal(codec.decode(enc), values)

    def test_footprint(self, rng):
        enc = Nsf().encode(rng.integers(0, 200, 1024))
        assert enc.nbytes == 1024  # one byte each

    def test_single_cascade_pass(self, rng):
        enc = Nsf().encode(rng.integers(0, 200, 100))
        assert len(Nsf().cascade_passes(enc)) == 1

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            Nsf().encode(np.array([2**33]))


class TestNsv:
    def test_roundtrip_mixed_widths(self, rng):
        values = np.concatenate(
            [rng.integers(0, 2**b, 500) for b in (6, 14, 22, 31)]
        )
        rng.shuffle(values)
        codec = Nsv()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_adapts_to_skew(self, rng):
        # 99% small values: NSV ~1 byte avg, NSF forced to 4.
        values = rng.integers(0, 200, 10_000)
        values[0] = 2**30
        nsv_bits = Nsv().encode(values).bits_per_int
        nsf_bits = Nsf().encode(values).bits_per_int
        assert nsv_bits < 11
        assert nsf_bits == 32

    def test_length_stream_is_2_bits(self, rng):
        enc = Nsv().encode(rng.integers(0, 100, 4000))
        assert enc.arrays["lengths"].nbytes == 1000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Nsv().encode(np.array([-1]))

    def test_empty(self):
        codec = Nsv()
        assert codec.decode(codec.encode(np.array([], dtype=np.int64))).size == 0

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        codec = Nsv()
        assert np.array_equal(codec.decode(codec.encode(arr)), arr)


class TestRle:
    def test_roundtrip(self, rng):
        values = np.repeat(rng.integers(0, 50, 100), rng.integers(1, 100, 100))
        codec = Rle()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_run_structure(self):
        enc = Rle().encode(np.array([3, 3, 3, 7, 7, 3]))
        assert list(enc.arrays["values"]) == [3, 7, 3]
        assert list(enc.arrays["lengths"]) == [3, 2, 1]

    def test_four_cascade_passes(self):
        enc = Rle().encode(np.array([1, 1, 2]))
        assert len(Rle().cascade_passes(enc)) == 4

    def test_empty(self):
        codec = Rle()
        assert codec.decode(codec.encode(np.array([], dtype=np.int64))).size == 0

    def test_footprint_shrinks_with_run_length(self, rng):
        short = Rle().encode(np.repeat(rng.integers(0, 99, 1000), 2)).bits_per_int
        long = Rle().encode(np.repeat(rng.integers(0, 99, 1000), 50)).bits_per_int
        assert long < short / 10


class TestDelta:
    def test_roundtrip_sorted(self, rng):
        values = np.sort(rng.integers(-(2**30), 2**30, 5000))
        codec = Delta()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_stores_first_value_as_first_delta(self):
        enc = Delta().encode(np.array([10, 12, 11]))
        assert list(enc.arrays["deltas"]) == [10, 2, -1]

    def test_wide_delta_rejected(self):
        with pytest.raises(ValueError, match="int32"):
            Delta().encode(np.array([0, 2**33]))

    def test_empty(self):
        codec = Delta()
        assert codec.decode(codec.encode(np.array([], dtype=np.int64))).size == 0


class TestDict:
    def test_roundtrip(self, rng):
        values = rng.integers(0, 30, 10_000) * 1000 - 7
        codec = Dict()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_code_width_tracks_cardinality(self, rng):
        few = Dict().encode(rng.integers(0, 100, 1000))
        many = Dict().encode(rng.integers(0, 100_000, 50_000))
        assert few.meta["width"] == 1
        assert many.meta["width"] >= 2

    def test_effective_on_low_cardinality(self, rng):
        values = rng.integers(0, 10, 10_000) * 10**8
        assert Dict().encode(values).bits_per_int < 10


class TestGpuBp:
    def test_roundtrip(self, rng):
        values = rng.integers(0, 2**20, 10_000)
        codec = GpuBp()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_no_frame_of_reference(self, rng):
        # Dates around 19,920,101 need ~25 bits raw — GPU-BP pays them all.
        dates = rng.integers(19_920_101, 19_981_231, 50_000)
        from repro.formats import GpuFor

        bp_bits = GpuBp().encode(dates).bits_per_int
        for_bits = GpuFor().encode(dates).bits_per_int
        assert bp_bits > 24
        assert for_bits < 22

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GpuBp().encode(np.array([-1]))

    def test_tiles(self, rng):
        values = rng.integers(0, 1000, 1000)
        codec = GpuBp()
        enc = codec.encode(values)
        tiles = [codec.decode_tile(enc, t) for t in range(codec.num_tiles(enc))]
        assert np.array_equal(np.concatenate(tiles), values)


class TestGpuSimdBp128:
    def test_roundtrip(self, rng):
        values = rng.integers(-500, 10**6, 9000)
        codec = GpuSimdBp128()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_one_skewed_value_inflates_whole_4096_block(self, rng):
        from repro.formats import GpuFor

        values = rng.integers(0, 16, 8192)
        values[0] = 2**28
        vertical = GpuSimdBp128().encode(values).bits_per_int
        horizontal = GpuFor().encode(values).bits_per_int
        assert vertical > 14  # half the data at 29 bits
        assert horizontal < 7  # only one miniblock inflated

    def test_register_pressure_resources(self):
        codec = GpuSimdBp128()
        enc = codec.encode(np.arange(4096))
        res = codec.kernel_resources(enc)
        assert res.registers_per_thread > 64  # must spill

    def test_d_blocks_fixed(self):
        with pytest.raises(ValueError):
            GpuSimdBp128(d_blocks=2)

    def test_empty_and_single(self):
        codec = GpuSimdBp128()
        assert codec.decode(codec.encode(np.array([], dtype=np.int64))).size == 0
        assert np.array_equal(codec.decode(codec.encode(np.array([5]))), [5])
