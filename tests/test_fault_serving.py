"""Fault-injected serving: retries, quarantine, streaming propagation.

Exercises the :class:`~repro.serving.QueryServer` degradation contract:
transient decode failures are retried with simulated backoff, corrupt
cached images are re-decoded from the compressed source, persistently
corrupt columns are quarantined with structured errors and metrics —
and the engine, pool, and scheduler all stay consistent throughout.

Every test builds its own store (``load_lineorder`` is cheap at the test
scale) so injected corruption never leaks into the session-scoped
fixtures other test files share.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.formats import CorruptTileError, set_checksums, set_verify_mode
from repro.serving import FaultInjector, QueryServer
from repro.serving.scheduler import ServeRequest
from repro.ssb.loader import load_lineorder


@pytest.fixture(autouse=True)
def _hardened():
    prev_checks = set_checksums(True)
    prev_mode = set_verify_mode("lazy")
    yield
    set_checksums(prev_checks)
    set_verify_mode(prev_mode)


@pytest.fixture
def store(ssb_db):
    """A fresh gpu-star store this test may corrupt freely."""
    return load_lineorder(ssb_db, "gpu-star")


def test_transient_fault_retried_to_success(ssb_db, store):
    server = QueryServer(ssb_db, store, max_retries=2)
    injector = FaultInjector(seed=3)
    server.engine.fault_hook = injector.transient_faults(
        columns=["lo_discount"], times=1
    )
    result = server.serve([ServeRequest("query", "q1.1")])[0]
    assert result.ok
    snap = server.metrics_snapshot()
    assert snap.get("server_transient_retries", 0) >= 1
    assert snap.get("server_quarantines", 0) == 0
    # Backoff shows up in the group's simulated execution time.
    assert result.execute_ms > 0


def test_transient_fault_exhausts_retries(ssb_db, store):
    server = QueryServer(ssb_db, store, max_retries=1)
    injector = FaultInjector(seed=3)
    server.engine.fault_hook = injector.transient_faults(
        columns=["lo_discount"], times=10
    )
    result = server.serve([ServeRequest("query", "q1.1")])[0]
    assert result.status == "error"
    assert "transient" in result.error
    snap = server.metrics_snapshot()
    assert snap.get("server_transient_failures", 0) >= 1
    # Other queries on healthy columns still serve.
    ok = server.serve([ServeRequest("query", "q2.1")])[0]
    assert ok.ok


def test_persistent_corruption_quarantined(ssb_db, store):
    injector = FaultInjector(seed=5)
    injector.corrupt(store["lo_discount"].payload, "payload-bit")
    server = QueryServer(ssb_db, store)

    first = server.serve([ServeRequest("query", "q1.1")])[0]
    assert first.status == "error"
    assert "lo_discount" in first.error
    snap = server.metrics_snapshot()
    assert snap.get("server_checksum_failures", 0) >= 2  # decode + re-decode
    assert snap.get("server_corruption_redecodes", 0) == 1
    assert snap.get("server_quarantines", 0) == 1
    assert server.quarantined_columns() == {
        "lo_discount": first.error.split(": ", 1)[1]
    } or "lo_discount" in server.quarantined_columns()

    # Second request: rejected at admission to the engine, not re-run.
    second = server.serve([ServeRequest("query", "q1.1")])[0]
    assert second.status == "error"
    assert "quarantined" in second.error
    assert server.metrics_snapshot().get("server_quarantine_rejections", 0) >= 1

    # Queries not touching the quarantined column are unaffected.
    healthy = server.serve([ServeRequest("query", "q2.1")])[0]
    assert healthy.ok

    # Releasing the quarantine re-opens the column (still corrupt, so it
    # re-quarantines — but the gate itself lifted).
    assert server.release_quarantine("lo_discount")
    assert not server.release_quarantine("lo_discount")


def test_quarantine_blocks_lookups_too(ssb_db, store):
    injector = FaultInjector(seed=5)
    injector.corrupt(store["lo_discount"].payload, "payload-bit")
    server = QueryServer(ssb_db, store)
    server.serve([ServeRequest("query", "q1.1")])
    res = server.serve(
        [ServeRequest("lookup", "lo_discount", indices=np.arange(8))]
    )[0]
    assert res.status == "error"
    assert "quarantined" in res.error


def test_verify_cached_redecodes_corrupt_image(ssb_db, store):
    server = QueryServer(ssb_db, store, verify_cached=True)
    injector = FaultInjector(seed=11)
    clean = server.serve([ServeRequest("query", "q1.1")])[0]
    assert clean.ok
    # Flip a bit in a pool-resident decoded image.
    target = next(
        c for c in QUERIES["q1.1"].columns
        if server.pool.get(f"decoded/{c}") is not None
    )
    injector.flip_decoded_bit(server.pool.get(f"decoded/{target}").payload)
    again = server.serve([ServeRequest("query", "q1.1")])[0]
    assert again.ok
    assert server.metrics_snapshot().get("decoded_image_refreshes", 0) >= 1
    assert again.groups == clean.groups


def test_streaming_corruption_surfaces_morsel_span(ssb_db, store):
    injector = FaultInjector(seed=7)
    injector.corrupt(store["lo_discount"].payload, "payload-bit")
    engine = CrystalEngine(ssb_db, store, streaming=True, stream_workers=4)
    with pytest.raises(CorruptTileError, match="morsel") as excinfo:
        engine.run(QUERIES["q1.1"])
    assert excinfo.value.column == "lo_discount"
    assert excinfo.value.tile_id >= 0 or "metadata" in str(excinfo.value)
    if engine._stream_executor is not None:
        engine._stream_executor.close()


def test_streaming_server_records_morsel_failures(ssb_db, store):
    injector = FaultInjector(seed=7)
    injector.corrupt(store["lo_discount"].payload, "payload-bit")
    server = QueryServer(ssb_db, store, streaming=True, stream_workers=4)
    result = server.serve([ServeRequest("query", "q1.1")])[0]
    assert result.status == "error"
    snap = server.metrics_snapshot()
    assert snap.get("streaming_morsel_failures", 0) >= 1
    assert snap.get("server_quarantines", 0) == 1


def test_concurrent_corruption_storm_pool_consistent(ssb_db, store):
    """Many threads, several corrupt columns: every future resolves, pin
    counts return to zero, and the pool budget holds."""
    injector = FaultInjector(seed=13)
    for column in ("lo_discount", "lo_supplycost"):
        injector.corrupt(store[column].payload, "payload-bit")
    budget = store.total_bytes + 64 * ssb_db.num_lineorder_rows
    server = QueryServer(ssb_db, store, budget_bytes=budget, max_queue=128)
    server.start()
    names = ["q1.1", "q2.1", "q3.1", "q4.1"] * 6  # q4.1 hits lo_supplycost
    futures, lock = [], threading.Lock()

    def submit(name):
        fut = server.submit(ServeRequest("query", name), block_s=5.0)
        with lock:
            futures.append(fut)

    threads = [threading.Thread(target=submit, args=(n,)) for n in names]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    results = [f.result(timeout=30) for f in futures]
    server.stop()

    assert len(results) == len(names)
    assert all(r.status in ("ok", "error", "timeout") for r in results)
    assert any(r.ok for r in results)  # healthy queries still served
    errors = [r for r in results if r.status == "error"]
    assert errors and all(
        "quarantined" in r.error or "corrupt" in r.error for r in errors
    )
    # Pool consistency: nothing left pinned, budget respected.
    for key in server.pool.resident_keys:
        resident = server.pool.lookup(key)
        assert resident.pin_count == 0, f"{key} left pinned"
    assert server.pool.resident_bytes <= budget
    quarantined = server.quarantined_columns()
    assert set(quarantined) <= {"lo_discount", "lo_supplycost"}
    assert quarantined


def test_invalid_constructor_args(ssb_db, store):
    with pytest.raises(ValueError):
        QueryServer(ssb_db, store, max_retries=-1)
