"""Out-of-core execution: the device cache and coprocessor executor."""

import pytest

from repro.engine.coprocessor import CoprocessorExecutor, DeviceCache
from repro.engine.ssb_queries import QUERIES
from repro.gpusim import GPUDevice


class TestDeviceCache:
    def test_miss_then_hit(self):
        cache = DeviceCache(1000)
        device = GPUDevice()
        first = cache.request("a", 400, device)
        second = cache.request("a", 400, device)
        assert first > 0 and second == 0.0
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = DeviceCache(1000)
        device = GPUDevice()
        cache.request("a", 400, device)
        cache.request("b", 400, device)
        cache.request("c", 400, device)  # evicts a
        assert cache.stats.evictions == 1
        assert "a" not in cache.resident_columns
        assert cache.request("b", 400, device) == 0.0  # b survived

    def test_touch_refreshes_recency(self):
        cache = DeviceCache(1000)
        device = GPUDevice()
        cache.request("a", 400, device)
        cache.request("b", 400, device)
        cache.request("a", 400, device)  # a becomes most recent
        cache.request("c", 400, device)  # evicts b, not a
        assert "a" in cache.resident_columns
        assert "b" not in cache.resident_columns

    def test_oversized_column_streams(self):
        cache = DeviceCache(100)
        device = GPUDevice()
        ms = cache.request("big", 1000, device)
        assert ms > 0
        assert cache.used_bytes == 0  # streamed, never cached
        assert cache.request("big", 1000, device) > 0  # still a miss

    def test_invalidate(self):
        cache = DeviceCache(1000)
        device = GPUDevice()
        cache.request("a", 100, device)
        cache.invalidate("a")
        assert cache.request("a", 100, device) > 0  # miss again
        cache.invalidate("never-seen")  # no-op

    def test_budget_accounting(self):
        cache = DeviceCache(1000)
        device = GPUDevice()
        cache.request("a", 300, device)
        cache.request("b", 300, device)
        assert cache.used_bytes == 600
        assert cache.stats.bytes_transferred == 600

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceCache(0)
        cache = DeviceCache(10)
        with pytest.raises(ValueError):
            cache.request("a", -1, GPUDevice())

    def test_hit_rate(self):
        cache = DeviceCache(1000)
        device = GPUDevice()
        assert cache.stats.hit_rate == 0.0
        cache.request("a", 10, device)
        cache.request("a", 10, device)
        assert cache.stats.hit_rate == 0.5


class TestCoprocessorExecutor:
    def test_first_run_transfers_then_caches(self, ssb_db, gpu_star_store):
        budget = gpu_star_store.total_bytes * 2
        exe = CoprocessorExecutor(ssb_db, gpu_star_store, budget)
        q = QUERIES["q1.1"]
        cold = exe.run(q)
        warm = exe.run(q)
        assert cold.cache_misses == len(q.columns)
        assert warm.cache_hits == len(q.columns)
        assert warm.transfer_ms == 0.0
        assert cold.total_ms > warm.total_ms

    def test_results_identical_across_runs(self, ssb_db, gpu_star_store):
        exe = CoprocessorExecutor(ssb_db, gpu_star_store, 10**9)
        a = exe.run(QUERIES["q2.1"])
        b = exe.run(QUERIES["q2.1"])
        assert a.query.groups == b.query.groups

    def test_tight_budget_keeps_missing(self, ssb_db, gpu_star_store):
        # A budget smaller than one query's columns forces re-transfers.
        q = QUERIES["q4.1"]
        needed = sum(gpu_star_store[c].nbytes for c in q.columns)
        exe = CoprocessorExecutor(ssb_db, gpu_star_store, max(1, needed // 4))
        exe.run(q)
        second = exe.run(q)
        assert second.cache_misses > 0

    def test_compression_reduces_transfer(self, ssb_db, gpu_star_store, none_store):
        q = QUERIES["q3.1"]
        star = CoprocessorExecutor(ssb_db, gpu_star_store, 10**12).run(q)
        raw = CoprocessorExecutor(ssb_db, none_store, 10**12).run(q)
        assert star.transfer_ms < raw.transfer_ms / 1.5
        assert star.query.groups == raw.query.groups

    def test_working_set_rotation_evicts(self, ssb_db, gpu_star_store):
        q1, q4 = QUERIES["q1.1"], QUERIES["q4.1"]
        budget = max(
            sum(gpu_star_store[c].nbytes for c in q1.columns),
            sum(gpu_star_store[c].nbytes for c in q4.columns),
        ) + 1024
        exe = CoprocessorExecutor(ssb_db, gpu_star_store, budget)
        exe.run(q1)
        exe.run(q4)  # shares lo_orderdate/lo_revenue region only partly
        assert exe.cache.stats.evictions >= 0  # bounded budget respected
        assert exe.cache.used_bytes <= budget


class TestOverlappedStaging:
    def test_overlap_bounded_by_components(self, ssb_db, gpu_star_store):
        exe = CoprocessorExecutor(ssb_db, gpu_star_store, 10**12)
        r = exe.run(QUERIES["q4.1"])
        assert r.overlapped_ms <= r.total_ms + 1e-12
        assert r.overlapped_ms >= max(r.transfer_ms, r.query.simulated_ms)

    def test_overlap_helps_when_transfer_dominates(self, ssb_db, none_store):
        # Raw columns: transfer >> execute, so overlap approaches the
        # transfer time alone instead of the serial sum.  (q3.1 rather
        # than q1.1: the flight-1 scans are now a single fused kernel
        # whose execute time is below the first-chunk latency, leaving
        # nothing for overlap to hide.)
        exe = CoprocessorExecutor(ssb_db, none_store, 10**12)
        r = exe.run(QUERIES["q3.1"])
        assert r.transfer_ms > r.query.simulated_ms
        saved = r.total_ms - r.overlapped_ms
        assert saved > 0.25 * r.query.simulated_ms

    def test_warm_cache_no_overlap_benefit(self, ssb_db, gpu_star_store):
        exe = CoprocessorExecutor(ssb_db, gpu_star_store, 10**12)
        exe.run(QUERIES["q1.1"])
        warm = exe.run(QUERIES["q1.1"])
        assert warm.transfer_ms == 0.0
        assert warm.overlapped_ms == pytest.approx(warm.query.simulated_ms)
