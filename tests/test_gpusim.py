"""GPU simulator: memory accounting, occupancy, cost model, device ledger."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    A100,
    V100,
    GPUDevice,
    GPUSpec,
    KernelSpec,
    PCIeSpec,
    Stopwatch,
    bandwidth_efficiency,
    compute_occupancy,
    gather_bytes,
    linear_bytes,
    segment_bytes,
)
from repro.gpusim.memory import SECTOR_BYTES, TrafficCounter


class TestSpecs:
    def test_v100_matches_paper(self):
        assert V100.global_bandwidth_gbps == 880.0
        assert V100.pcie.bandwidth_gbps == 12.8
        assert V100.transaction_bytes == 128

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(global_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            GPUSpec(transaction_bytes=100)
        with pytest.raises(ValueError):
            GPUSpec(latency_hiding_knee=0.0)

    def test_pcie_transfer_time(self):
        pcie = PCIeSpec(bandwidth_gbps=12.8, latency_us=0.0)
        # 1.28 GB at 12.8 GB/s = 100 ms.
        assert pcie.transfer_ms(1_280_000_000) == pytest.approx(100.0)

    def test_pcie_negative_rejected(self):
        with pytest.raises(ValueError):
            V100.pcie.transfer_ms(-1)


class TestMemoryMath:
    def test_linear_rounds_to_transactions(self):
        assert linear_bytes(1, 128) == 128
        assert linear_bytes(128, 128) == 128
        assert linear_bytes(129, 128) == 256
        assert linear_bytes(0, 128) == 0

    def test_segment_bytes_alignment(self):
        # A 2-byte segment straddling a 128-byte boundary costs 2 windows.
        assert segment_bytes(np.array([127]), np.array([2]), 128) == 256
        assert segment_bytes(np.array([0]), np.array([128]), 128) == 128
        assert segment_bytes(np.array([64]), np.array([128]), 128) == 256

    def test_segments_do_not_share_transactions(self):
        # Two tiny segments in the same window still cost one window each.
        assert (
            segment_bytes(np.array([0, 4]), np.array([4, 4]), 128) == 256
        )

    def test_zero_length_segments_free(self):
        assert segment_bytes(np.array([5]), np.array([0]), 128) == 0

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            segment_bytes(np.array([0]), np.array([-1]), 128)
        with pytest.raises(ValueError):
            segment_bytes(np.array([0, 1]), np.array([1]), 128)

    def test_gather_uses_sectors(self):
        assert gather_bytes(10, 4) == 10 * SECTOR_BYTES
        assert gather_bytes(10, 33) == 10 * 2 * SECTOR_BYTES
        assert gather_bytes(0, 4) == 0

    @given(st.integers(0, 10**6), st.integers(1, 256))
    @settings(max_examples=50, deadline=None)
    def test_linear_bounds(self, nbytes, tx_pow):
        tx = 128
        out = linear_bytes(nbytes, tx)
        assert nbytes <= out < nbytes + tx


class TestTrafficCounter:
    def test_counts_accumulate(self):
        t = TrafficCounter(V100)
        t.read_linear(1000)
        t.write_linear(500)
        t.compute(42)
        t.shared(10)
        assert t.read_bytes == 1024
        assert t.write_bytes == 512
        assert t.compute_ops == 42
        assert t.shared_bytes == 10
        assert t.global_bytes == 1536

    def test_region_bound_caps_dense_scatter(self):
        t = TrafficCounter(V100)
        t.write_scatter(1_000_000, 4, region_bytes=4096)
        assert t.write_bytes == 4096

    def test_sparse_gather_not_capped(self):
        t = TrafficCounter(V100)
        t.read_gather(10, 4, region_bytes=10**9)
        assert t.read_bytes == 10 * SECTOR_BYTES

    def test_spill_is_store_plus_load(self):
        t = TrafficCounter(V100)
        t.spill(128)
        assert t.spill_bytes == 256

    def test_merge(self):
        a, b = TrafficCounter(V100), TrafficCounter(V100)
        a.read_linear(128)
        b.write_linear(128)
        b.compute(5)
        a.merge(b)
        assert a.read_bytes == 128 and a.write_bytes == 128 and a.compute_ops == 5

    def test_negative_rejected(self):
        t = TrafficCounter(V100)
        with pytest.raises(ValueError):
            t.shared(-1)
        with pytest.raises(ValueError):
            t.compute(-1)


class TestOccupancy:
    def test_light_kernel_full_occupancy(self):
        r = compute_occupancy(V100, 128, 32, 0)
        assert r.occupancy == 1.0
        assert r.spilled_registers == 0

    def test_register_limited(self):
        r = compute_occupancy(V100, 128, 64, 0)
        # 64 regs * 128 threads = 8192 regs/block; 65536/8192 = 8 blocks.
        assert r.blocks_per_sm == 8
        assert r.limiter == "registers"

    def test_shared_mem_limited(self):
        r = compute_occupancy(V100, 128, 32, 16 * 1024)
        assert r.blocks_per_sm == 6
        assert r.limiter == "shared_mem"
        assert r.occupancy == pytest.approx(6 * 128 / 2048)

    def test_spilling_beyond_cap(self):
        r = compute_occupancy(V100, 128, 80, 0)
        assert r.allocated_registers == 64
        assert r.spilled_registers == 16

    def test_huge_smem_still_runs_one_block(self):
        r = compute_occupancy(V100, 128, 32, 200 * 1024)
        assert r.blocks_per_sm == 1

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            compute_occupancy(V100, 16, 32, 0)
        with pytest.raises(ValueError):
            compute_occupancy(V100, 2048, 32, 0)

    def test_bandwidth_efficiency_knee(self):
        assert bandwidth_efficiency(V100, 1.0) == 1.0
        assert bandwidth_efficiency(V100, 0.5) == 1.0
        assert bandwidth_efficiency(V100, 0.25) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            bandwidth_efficiency(V100, 1.5)


class TestDevice:
    def test_launch_prices_memory_time(self):
        device = GPUDevice()
        with device.launch("sweep", grid_blocks=1000) as k:
            k.read_linear(880_000_000)  # exactly 1 ms at 880 GB/s
        assert device.kernel_ms == pytest.approx(1.0 + 0.005, rel=1e-3)

    def test_roofline_takes_max(self):
        device = GPUDevice()
        with device.launch("compute-bound", grid_blocks=10) as k:
            k.read_linear(128)
            k.compute(4_000_000_000)  # 1 ms at 4000 Gops
        assert device.kernel_ms == pytest.approx(1.0 + 0.005, rel=1e-2)

    def test_low_occupancy_slows_memory(self):
        fast, slow = GPUDevice(), GPUDevice()
        with fast.launch("a", grid_blocks=10) as k:
            k.read_linear(10**8)
        with slow.launch("b", grid_blocks=10, shared_mem_per_block=90_000) as k:
            k.read_linear(10**8)
        assert slow.kernel_ms > 5 * fast.kernel_ms

    def test_spill_traffic_charged(self):
        clean, spilled = GPUDevice(), GPUDevice()
        with clean.launch("a", grid_blocks=1000, registers_per_thread=64):
            pass
        with spilled.launch("b", grid_blocks=1000, registers_per_thread=100):
            pass
        assert spilled.global_bytes_moved > clean.global_bytes_moved

    def test_ledger_and_reset(self):
        device = GPUDevice()
        with device.launch("a", grid_blocks=1):
            pass
        device.transfer_to_device(1000)
        assert device.kernel_count == 1
        assert len(device.transfers) == 1
        assert device.elapsed_ms > 0
        device.reset()
        assert device.kernel_count == 0 and device.elapsed_ms == 0

    def test_transfer_directions(self):
        device = GPUDevice()
        device.transfer_to_device(10**6)
        device.transfer_to_host(10**6)
        assert [t.direction for t in device.transfers] == ["h2d", "d2h"]

    def test_stopwatch_laps(self):
        device = GPUDevice()
        watch = Stopwatch(device)
        with device.launch("a", grid_blocks=1) as k:
            k.read_linear(880_000_000)
        first = watch.lap_ms()
        assert first == pytest.approx(device.elapsed_ms)
        assert watch.lap_ms() == 0.0

    def test_invalid_grid(self):
        device = GPUDevice()
        with pytest.raises(ValueError):
            with device.launch("bad", grid_blocks=0):
                pass

    def test_kernel_spec_validation(self):
        with pytest.raises(ValueError):
            KernelSpec("x", block_threads=8)
        with pytest.raises(ValueError):
            KernelSpec("x", registers_per_thread=0)

    def test_a100_faster_than_v100(self):
        v, a = GPUDevice(), GPUDevice(spec=A100)
        for device in (v, a):
            with device.launch("sweep", grid_blocks=100) as k:
                k.read_linear(10**9)
        assert a.kernel_ms < v.kernel_ms
