"""Crystal-style block primitives: Blelloch scan, max-scan, RLE expand."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.primitives import (
    block_max_scan,
    block_prefix_sum,
    block_rle_expand,
)


class TestBlellochScan:
    def test_inclusive_matches_cumsum(self, rng):
        values = rng.integers(-100, 100, 512)
        out, _ = block_prefix_sum(values, inclusive=True)
        assert np.array_equal(out, np.cumsum(values))

    def test_exclusive_matches_shifted_cumsum(self, rng):
        values = rng.integers(0, 100, 512)
        out, _ = block_prefix_sum(values, inclusive=False)
        expected = np.concatenate([[0], np.cumsum(values)[:-1]])
        assert np.array_equal(out, expected)

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 100, 511, 512, 513])
    def test_non_power_of_two_sizes(self, rng, n):
        values = rng.integers(-50, 50, n)
        out, _ = block_prefix_sum(values)
        assert np.array_equal(out, np.cumsum(values))

    def test_empty(self):
        out, stats = block_prefix_sum(np.zeros(0, dtype=np.int64))
        assert out.size == 0 and stats.steps == 0

    def test_work_efficiency(self):
        # Blelloch: 2*log2(n) steps, < 2n additions (Theta(n) work).
        n = 512
        _, stats = block_prefix_sum(np.ones(n, dtype=np.int64))
        assert stats.steps == 2 * 9
        assert stats.adds < 2 * n

    def test_log_steps_for_tile(self):
        # The paper quotes Theta(log n) steps for an n-element scan [13].
        for n, expected_levels in ((128, 7), (512, 9)):
            _, stats = block_prefix_sum(np.ones(n, dtype=np.int64))
            assert stats.steps == 2 * expected_levels

    @given(st.lists(st.integers(-(2**30), 2**30), min_size=0, max_size=700))
    @settings(max_examples=60, deadline=None)
    def test_scan_property(self, values):
        arr = np.array(values, dtype=np.int64)
        out, _ = block_prefix_sum(arr)
        assert np.array_equal(out, np.cumsum(arr))


class TestMaxScan:
    def test_matches_accumulate(self, rng):
        values = rng.integers(0, 1000, 300)
        assert np.array_equal(block_max_scan(values), np.maximum.accumulate(values))

    def test_single_and_empty(self):
        assert block_max_scan(np.array([5]))[0] == 5
        assert block_max_scan(np.zeros(0, dtype=np.int64)).size == 0

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_max_scan_property(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(block_max_scan(arr), np.maximum.accumulate(arr))


class TestRleExpand:
    def test_matches_repeat(self, rng):
        run_values = rng.integers(0, 100, 50)
        run_lengths = rng.integers(1, 20, 50)
        out = block_rle_expand(run_values, run_lengths)
        assert np.array_equal(out, np.repeat(run_values, run_lengths))

    def test_single_run(self):
        out = block_rle_expand(np.array([7]), np.array([512]))
        assert np.array_equal(out, np.full(512, 7))

    def test_adjacent_equal_values(self):
        # Equal values in different runs must still expand correctly.
        out = block_rle_expand(np.array([3, 3, 5]), np.array([2, 2, 1]))
        assert list(out) == [3, 3, 3, 3, 5]

    def test_empty(self):
        out = block_rle_expand(np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert out.size == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="align"):
            block_rle_expand(np.array([1]), np.array([1, 2]))
        with pytest.raises(ValueError, match="positive"):
            block_rle_expand(np.array([1]), np.array([0]))
        with pytest.raises(ValueError, match="expected"):
            block_rle_expand(np.array([1]), np.array([3]), tile_size=5)

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=40),
        st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_expand_property(self, values, seed):
        rng = np.random.default_rng(seed)
        run_values = np.array(values, dtype=np.int64)
        run_lengths = rng.integers(1, 12, run_values.size)
        out = block_rle_expand(run_values, run_lengths)
        assert np.array_equal(out, np.repeat(run_values, run_lengths))
