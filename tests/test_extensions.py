"""Extension features: strings, decimals, serialization, updates, tuning."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuning import choose_d
from repro.core.updates import UpdatableColumn
from repro.formats import (
    decode_decimals,
    decode_strings,
    encode_decimals,
    encode_strings,
    get_codec,
    load_encoded,
    save_encoded,
)
from repro.gpusim import A100, V100, GPUDevice


class TestStrings:
    CITIES = np.array(["paris", "tokyo", "lima", "tokyo", "paris", "oslo"] * 100)

    def test_roundtrip(self):
        col = encode_strings(self.CITIES)
        assert np.array_equal(decode_strings(col), self.CITIES)

    def test_dictionary_sorted_and_deduped(self):
        col = encode_strings(self.CITIES)
        assert list(col.dictionary) == ["lima", "oslo", "paris", "tokyo"]
        assert col.cardinality == 4

    def test_code_lookup(self):
        col = encode_strings(self.CITIES)
        assert col.code_of("oslo") == 1
        with pytest.raises(KeyError):
            col.code_of("berlin")

    def test_code_range_matches_string_range(self):
        col = encode_strings(self.CITIES)
        lo, hi = col.code_range("m", "p")  # oslo only
        assert (lo, hi) == (1, 2)

    def test_explicit_codec(self):
        col = encode_strings(self.CITIES, codec_name="gpu-rfor")
        assert col.codec_name == "gpu-rfor"
        assert np.array_equal(decode_strings(col), self.CITIES)

    def test_compresses_low_cardinality(self):
        col = encode_strings(self.CITIES)
        raw_bytes = self.CITIES.size * 4  # already-dict-encoded baseline
        assert col.codes.nbytes < raw_bytes

    def test_rejects_non_strings(self):
        with pytest.raises(ValueError):
            encode_strings(np.arange(5))

    @given(st.lists(st.text(max_size=8), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values)
        col = encode_strings(arr)
        assert np.array_equal(decode_strings(col), arr)


class TestDecimals:
    def test_roundtrip(self, rng):
        prices = rng.integers(100, 100_000, 5000) / 100.0
        col = encode_decimals(prices, scale=2)
        assert np.array_equal(decode_decimals(col), prices)

    def test_scale_validation(self, rng):
        thirds = np.array([1 / 3])
        with pytest.raises(ValueError, match="multiples"):
            encode_decimals(thirds, scale=2)
        with pytest.raises(ValueError, match="scale"):
            encode_decimals(np.array([1.0]), scale=10)

    def test_negative_decimals(self):
        values = np.array([-12.34, 0.0, 99.99])
        col = encode_decimals(values, scale=2)
        assert np.array_equal(decode_decimals(col), values)

    def test_compression_tracks_integer_scheme(self, rng):
        # Sorted timestamps with 1 decimal place compress like sorted ints.
        times = np.sort(rng.integers(0, 10**7, 50_000)) / 10.0
        col = encode_decimals(times, scale=1)
        assert col.codec_name == "gpu-dfor"
        assert col.bits_per_value < 12


class TestSerialization:
    @pytest.mark.parametrize("codec", ["gpu-for", "gpu-dfor", "gpu-rfor", "nsf", "nsv"])
    def test_roundtrip_through_file(self, rng, tmp_path, codec):
        values = np.repeat(rng.integers(0, 500, 1000), rng.integers(1, 5, 1000))
        enc = get_codec(codec).encode(values)
        path = tmp_path / f"{codec}.npz"
        save_encoded(enc, path)
        loaded = load_encoded(path)
        assert loaded.codec == enc.codec
        assert loaded.count == enc.count
        assert loaded.meta == enc.meta
        assert np.array_equal(get_codec(codec).decode(loaded), values)

    def test_roundtrip_through_buffer(self, rng):
        enc = get_codec("gpu-for").encode(rng.integers(0, 100, 1000))
        buf = io.BytesIO()
        save_encoded(enc, buf)
        buf.seek(0)
        loaded = load_encoded(buf)
        assert np.array_equal(
            get_codec("gpu-for").decode(loaded), get_codec("gpu-for").decode(enc)
        )

    def test_footprint_close_to_memory(self, rng, tmp_path):
        enc = get_codec("gpu-for").encode(rng.integers(0, 2**16, 100_000))
        path = tmp_path / "col.npz"
        save_encoded(enc, path)
        on_disk = path.stat().st_size
        assert on_disk < enc.nbytes * 1.05 + 2048  # O(1) metadata only

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(ValueError, match="metadata"):
            load_encoded(path)


class TestUpdatableColumn:
    def test_reads_see_buffered_updates(self, rng):
        col = UpdatableColumn(rng.integers(0, 100, 5000))
        col.update(42, 999_999)
        assert col.read(42) == 999_999
        assert col.pending_updates == 1

    def test_snapshot_merges_overlay(self, rng):
        base = rng.integers(0, 100, 5000)
        col = UpdatableColumn(base)
        col.update_many(np.array([0, 10]), np.array([7, 8]))
        snap = col.snapshot()
        expected = base.copy()
        expected[[0, 10]] = [7, 8]
        assert np.array_equal(snap, expected)

    def test_flush_reencodes_and_ships(self, rng):
        col = UpdatableColumn(np.arange(10_000))
        col.update(5, 123)
        device = GPUDevice()
        report = col.flush(device)
        assert report.updates_applied == 1
        assert report.transfer_ms > 0
        assert col.pending_updates == 0
        assert col.read(5) == 123
        assert device.transfers[0].nbytes == col.encoded.nbytes

    def test_flush_may_switch_scheme(self, rng):
        # Sorted keys start as DFOR; randomizing them should flip to FOR.
        col = UpdatableColumn(np.arange(50_000))
        assert col.codec_name == "gpu-dfor"
        idx = np.arange(50_000)
        col.update_many(idx, rng.integers(0, 2**16, 50_000))
        col.flush(GPUDevice())
        assert col.codec_name == "gpu-for"

    def test_bounds_checked(self, rng):
        col = UpdatableColumn(np.arange(10))
        with pytest.raises(IndexError):
            col.update(10, 0)
        with pytest.raises(IndexError):
            col.read(-1)
        with pytest.raises(ValueError):
            col.update_many(np.array([1]), np.array([1, 2]))


class TestDTuner:
    def test_v100_queries_pick_4(self):
        assert choose_d(V100, output_columns=4).d_blocks == 4

    def test_v100_decode_picks_16(self):
        assert choose_d(V100, output_columns=1).d_blocks == 16

    def test_a100_allows_higher_d(self):
        # The Section 8 prediction: newer GPUs sustain larger D.
        for columns in (1, 4):
            assert (
                choose_d(A100, output_columns=columns).d_blocks
                >= choose_d(V100, output_columns=columns).d_blocks
            )

    def test_scores_normalized(self):
        choice = choose_d(V100, output_columns=4)
        assert choice.scores[choice.d_blocks] == pytest.approx(1.0)
        assert all(s >= 1.0 for s in choice.scores.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_d(V100, output_columns=0)
