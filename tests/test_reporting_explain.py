"""Observability: device timelines, query EXPLAIN, report generation."""

import pytest

from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.gpusim import GPUDevice
from repro.reporting import generate_report, markdown_table
from repro.ssb.loader import load_lineorder


class TestTimeline:
    def test_one_row_per_launch(self):
        device = GPUDevice()
        with device.launch("a", grid_blocks=10) as k:
            k.read_linear(1_000_000)
        with device.launch("b", grid_blocks=10) as k:
            k.write_linear(2_000_000)
        rows = device.timeline()
        assert [r["kernel"] for r in rows] == ["a", "b"]
        assert rows[0]["read_MB"] == pytest.approx(1.0, rel=0.01)
        assert rows[1]["write_MB"] == pytest.approx(2.0, rel=0.01)
        assert all(r["ms"] > 0 for r in rows)

    def test_timeline_survives_reset(self):
        device = GPUDevice()
        with device.launch("a", grid_blocks=1):
            pass
        device.reset()
        assert device.timeline() == []


class TestExplain:
    def test_fused_query_timeline(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        # q1.1 is a pure predicate scan (no dimension build); q3.1 shows
        # the build kernels ahead of the fused fact kernel.
        rows = engine.explain(QUERIES["q1.1"])
        assert [r["kernel"] for r in rows] == ["fact-q1.1"]
        rows = engine.explain(QUERIES["q3.1"])
        kernels = [r["kernel"] for r in rows]
        assert kernels[0].startswith("build-")
        assert kernels[-1] == "fact-q3.1"
        # The fact kernel dominates the build kernels.
        assert rows[-1]["read_MB"] > rows[0]["read_MB"]

    def test_decompress_first_visible_in_plan(self, ssb_db):
        store = load_lineorder(ssb_db, "nvcomp")
        engine = CrystalEngine(ssb_db, store, GPUDevice())
        rows = engine.explain(QUERIES["q1.1"])
        kernels = [r["kernel"] for r in rows]
        assert any(k.startswith("nvcomp-") for k in kernels)
        assert kernels[-1] == "fact-q1.1"
        # Strictly more kernels than the inline plan.
        assert len(kernels) > 2

    def test_inline_plan_shows_smem_pressure(self, ssb_db, gpu_star_store):
        engine = CrystalEngine(ssb_db, gpu_star_store, GPUDevice())
        rows = engine.explain(QUERIES["q3.1"])
        fact = rows[-1]
        assert fact["kernel"] == "fact-q3.1"
        assert fact["smem_KB"] > 0  # staging buffers for compressed loads
        assert fact["Gops"] > 0  # decode compute


class TestMarkdownTable:
    def test_renders_header_and_rows(self):
        out = markdown_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 400.0}])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "2.500" in lines[2]
        assert "400.0" in lines[3]

    def test_column_selection(self):
        out = markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_empty(self):
        assert "no rows" in markdown_table([])


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(quick=True)

    def test_contains_every_section(self, report):
        for marker in (
            "E1 —", "E2 —", "E3a —", "E4 —", "E5 —", "E6 —", "E7 —",
            "E8 —", "E9 —", "E10 —", "E11 —", "E12 —", "E13 —", "E14 —",
            "E15 —", "E16 —", "X2 —", "X3 —", "X7 —",
        ):
            assert marker in report, marker

    def test_ladder_numbers_present(self, report):
        assert "base algorithm" in report
        assert "paper_ms" in report

    def test_write_report(self, tmp_path, report):
        # Reuse the class-scoped generation indirectly: writing again is
        # cheap relative to asserting the file round-trips.
        path = tmp_path / "results.md"
        path.write_text(report, encoding="utf-8")
        assert path.read_text(encoding="utf-8").startswith("# Reproduction report")
