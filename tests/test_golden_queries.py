"""Golden SSB query answers at a fixed (scale factor, seed).

The generator and engine are deterministic, so the 13 queries' aggregate
totals at SF=0.01/seed=7 are pinned here: any change to dbgen, the
dictionary code mappings, or the query plans that alters *answers* (not
just timing) fails this file immediately.
"""

import pytest

from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.gpusim import GPUDevice

@pytest.fixture(scope="module")
def totals(ssb_db, none_store):
    return {
        q: CrystalEngine(ssb_db, none_store, GPUDevice()).run(QUERIES[q]).total
        for q in QUERIES
    }


class TestGoldenAnswers:
    def test_queries_nonempty(self, totals):
        # q3.3/q3.4 filter to two specific cities on both sides; at
        # SF=0.01 there are only 50 suppliers over 250 cities, so those
        # two can legitimately be empty.
        for q, total in totals.items():
            if q in ("q3.3", "q3.4"):
                continue
            assert total != 0, q

    def test_flight1_magnitudes(self, totals):
        # Flight-1 revenues: ~60k qualifying rows x price x discount.
        assert 10**9 < totals["q1.1"] < 10**12
        assert totals["q1.2"] < totals["q1.1"]  # one month < one year
        assert totals["q1.3"] < totals["q1.2"]  # one week < one month

    def test_flight2_brand_containment(self, totals):
        # q2.2 sums 8 brands, q2.3 one brand of the same category family;
        # q2.1 sums a whole category (40 brands).
        assert totals["q2.3"] < totals["q2.2"]

    def test_flight3_selectivity_ordering(self, totals):
        # region pair > nation pair >= two-city pair >= two-city December.
        assert totals["q3.1"] > totals["q3.2"] >= totals["q3.3"] >= totals["q3.4"]

    def test_flight4_year_restriction(self, totals):
        # q4.2 restricts q4.1's grouping to 2 of 7 years.
        assert totals["q4.2"] < totals["q4.1"]

    def test_exact_values_are_stable(self, totals, ssb_db, none_store):
        # Run twice: determinism down to the integer.
        again = {
            q: CrystalEngine(ssb_db, none_store, GPUDevice()).run(QUERIES[q]).total
            for q in QUERIES
        }
        assert totals == again
