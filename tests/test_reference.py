"""The Algorithm 1 oracle and the Figure 4 worked example."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import GpuFor, bitio
from repro.formats.gpufor import pack_blocks
from repro.formats.reference import (
    algorithm1_decode,
    algorithm1_decode_block,
    algorithm1_decode_element,
)


class TestAlgorithm1:
    def test_matches_vectorized_decoder(self, rng):
        values = rng.integers(0, 2**16, 512)
        enc = GpuFor().encode(values)
        assert np.array_equal(algorithm1_decode(enc), values)

    def test_matches_on_negative_references(self, rng):
        values = rng.integers(-(2**20), 0, 256)
        enc = GpuFor().encode(values)
        assert np.array_equal(algorithm1_decode(enc), values)

    def test_per_thread_indexing(self, rng):
        # Thread t of block b decodes element b*128 + t, per the paper.
        values = np.arange(384, dtype=np.int64) * 3
        enc = GpuFor().encode(values)
        item = algorithm1_decode_element(
            enc.arrays["block_starts"], enc.arrays["data"], 2, 77
        )
        assert item == values[2 * 128 + 77]

    def test_block_decode(self, rng):
        values = rng.integers(0, 1000, 128)
        enc = GpuFor().encode(values)
        assert np.array_equal(algorithm1_decode_block(enc, 0), values)

    def test_thread_id_validated(self, rng):
        enc = GpuFor().encode(np.zeros(128, dtype=np.int64))
        with pytest.raises(ValueError):
            algorithm1_decode_element(
                enc.arrays["block_starts"], enc.arrays["data"], 0, 128
            )

    def test_wrong_codec_rejected(self, rng):
        from repro.formats import GpuBp

        enc = GpuBp().encode(np.zeros(128, dtype=np.int64))
        with pytest.raises(ValueError, match="GPU-FOR"):
            algorithm1_decode_block(enc, 0)

    @given(st.integers(0, 2**31), st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_oracle_property(self, seed, bits):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**bits, 256)
        enc = GpuFor().encode(values)
        assert np.array_equal(algorithm1_decode(enc), values)


class TestFigure4Example:
    """The paper's worked example (Figure 4), adapted to our 32-value
    miniblocks: same values, same FOR semantics, same per-value bits."""

    VALUES = np.array(
        [100, 101, 101, 102, 101, 101, 102, 101, 99, 100, 105, 107, 114, 112, 110, 105],
        dtype=np.int64,
    )
    # Figure 4's diffs against the reference 99.
    DIFFS = np.array([1, 2, 2, 3, 2, 2, 3, 2, 0, 1, 6, 8, 15, 13, 11, 6])

    def test_reference_is_block_minimum(self):
        # "The minimum value in the block (i.e., 99) is used as the reference."
        padded = np.concatenate([self.VALUES, np.full(112, self.VALUES[-1])])
        data, starts, _ = pack_blocks(padded)
        assert int(np.int32(data[starts[0]])) == 99

    def test_diffs_match_figure(self):
        assert np.array_equal(self.VALUES - 99, self.DIFFS)

    def test_first_half_needs_2_bits_second_needs_4(self):
        # Figure 4: maxbits = 2 for the first miniblock, 4 for the second.
        assert int(self.DIFFS[:8].max()).bit_length() == 2
        assert int(self.DIFFS[8:].max()).bit_length() == 4

    def test_packed_bits_decode_to_figure_values(self):
        # Pack the two miniblocks at the figure's bitwidths and confirm
        # each value occupies exactly its b-bit slot.
        for chunk, bits in ((self.DIFFS[:8], 2), (self.DIFFS[8:], 4)):
            words = bitio.pack_bits(chunk.astype(np.uint64), bits)
            out = bitio.unpack_bits(words, 8, bits)
            assert np.array_equal(out, chunk)
            # 8 values at b bits span exactly b bytes of the stream.
            assert words.size == bitio.words_needed(8, bits)

    def test_roundtrip_through_real_format(self):
        enc = GpuFor().encode(self.VALUES)
        assert np.array_equal(GpuFor().decode(enc), self.VALUES)
        assert np.array_equal(algorithm1_decode(enc), self.VALUES)
