"""Related-work codecs: GPU-VByte, PFOR, Simple-8b (Section 2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import GpuBp, GpuFor, get_codec
from repro.formats.pfor import PFOR_BLOCK, Pfor, _best_bitwidth
from repro.formats.simple8b import SELECTOR_TABLE, Simple8b
from repro.formats.vbyte import GpuVByte


class TestGpuVByte:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda rng: rng.integers(0, 128, 5000),           # 1 byte each
            lambda rng: rng.integers(0, 2**28, 5000),         # 4 bytes each
            lambda rng: rng.integers(0, 2**32, 5000),         # 5 bytes each
            lambda rng: np.array([0]),
            lambda rng: np.array([], dtype=np.int64),
            lambda rng: np.array([127, 128, 16383, 16384]),   # width edges
        ],
    )
    def test_roundtrip(self, rng, maker):
        values = np.asarray(maker(rng), dtype=np.int64)
        codec = GpuVByte()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_one_byte_for_small_values(self, rng):
        enc = GpuVByte().encode(rng.integers(0, 128, 1000))
        assert enc.arrays["data"].nbytes == 1000

    def test_continuation_bits(self):
        enc = GpuVByte().encode(np.array([300]))  # 2 bytes
        data = enc.arrays["data"]
        assert data[0] & 0x80  # continuation set on first byte
        assert not (data[1] & 0x80)  # clear on last

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GpuVByte().encode(np.array([-1]))

    def test_gpu_bp_dominates_on_uniform(self, rng):
        # The paper's rationale for comparing only against GPU-BP.
        values = rng.integers(0, 2**16, 50_000)
        vbyte_bits = GpuVByte().encode(values).bits_per_int
        bp_bits = GpuBp().encode(values).bits_per_int
        assert bp_bits < vbyte_bits

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        codec = GpuVByte()
        assert np.array_equal(codec.decode(codec.encode(arr)), arr)


class TestPfor:
    def test_roundtrip_uniform(self, rng):
        values = rng.integers(0, 2**14, 10_000)
        codec = Pfor()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_roundtrip_with_outliers(self, rng):
        values = rng.integers(0, 16, 10_000)
        values[::97] = 2**30
        codec = Pfor()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_exceptions_beat_wide_packing(self, rng):
        # One outlier per block: PFOR patches it; plain per-block packing
        # pays 30 bits for everyone.
        values = rng.integers(0, 16, 12_800)
        values[::PFOR_BLOCK] = 2**29
        pfor_bits = Pfor().encode(values).bits_per_int
        bp_bits = GpuBp().encode(values).bits_per_int
        assert pfor_bits < bp_bits / 3

    def test_best_bitwidth_tradeoff(self):
        # 127 tiny values + 1 huge: b should stay small with 1 exception.
        diffs = np.zeros(PFOR_BLOCK, dtype=np.int64)
        diffs[:127] = 3
        diffs[127] = 2**20
        bits, exc = _best_bitwidth(diffs)
        assert bits <= 2 and exc == 1

    def test_no_exceptions_when_uniform(self):
        bits, exc = _best_bitwidth(np.full(PFOR_BLOCK, 6, dtype=np.int64))
        assert exc == 0 and bits == 3

    def test_negative_values_via_reference(self):
        values = np.full(PFOR_BLOCK, -100, dtype=np.int64)
        values[3] = -90
        codec = Pfor()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_two_cascade_passes(self, rng):
        enc = Pfor().encode(rng.integers(0, 100, 1000))
        assert len(Pfor().cascade_passes(enc)) == 2

    def test_empty_and_single(self):
        codec = Pfor()
        assert codec.decode(codec.encode(np.array([], dtype=np.int64))).size == 0
        assert codec.decode(codec.encode(np.array([42])))[0] == 42

    @given(st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        codec = Pfor()
        assert np.array_equal(codec.decode(codec.encode(arr)), arr)


class TestSimple8b:
    def test_selector_table_is_canonical(self):
        # Every selector's payload fits 60 bits and is maximal for its width.
        for count, bits in SELECTOR_TABLE:
            assert count * bits <= 60
            assert (count + 1) * bits > 60 or count == 60

    def test_roundtrip_small_values(self, rng):
        values = rng.integers(0, 2, 5000)  # 1-bit: 60 per word
        codec = Simple8b()
        enc = codec.encode(values)
        assert np.array_equal(codec.decode(enc), values)
        assert enc.arrays["data"].size <= -(-5000 // 60) + 2

    def test_zero_runs_use_special_selectors(self):
        values = np.zeros(480, dtype=np.int64)
        enc = Simple8b().encode(values)
        assert enc.arrays["data"].size == 2  # two 240-zero words
        assert np.array_equal(Simple8b().decode(enc), values)

    def test_mixed_widths(self, rng):
        values = np.concatenate(
            [rng.integers(0, 2**b, 200) for b in (1, 4, 12, 30, 59)]
        )
        rng.shuffle(values)
        codec = Simple8b()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            Simple8b().encode(np.array([-1]))
        with pytest.raises(ValueError):
            Simple8b().encode(np.array([2**60]))

    def test_beats_byte_aligned_on_small_ints(self, rng):
        values = rng.integers(0, 8, 6000)  # 3-bit values
        s8b = Simple8b().encode(values).bits_per_int
        nsf = get_codec("nsf").encode(values).bits_per_int
        assert s8b < nsf / 2

    def test_loses_to_bit_aligned_on_awkward_widths(self, rng):
        # 9-bit values: Simple-8b must use the 10-bit selector.
        values = rng.integers(256, 512, 6000)
        s8b = Simple8b().encode(values).bits_per_int
        gfor = GpuFor().encode(values).bits_per_int
        assert gfor < s8b

    def test_empty_and_single(self):
        codec = Simple8b()
        assert codec.decode(codec.encode(np.array([], dtype=np.int64))).size == 0
        assert codec.decode(codec.encode(np.array([59])))[0] == 59

    @given(st.lists(st.integers(0, 2**40), min_size=0, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        codec = Simple8b()
        assert np.array_equal(codec.decode(codec.encode(arr)), arr)


class TestRelatedWorkExperiment:
    def test_shapes(self):
        from repro.experiments import related_work

        rows = related_work.run(n=50_000)
        by_dataset = {r["dataset"]: r for r in rows}
        uniform = by_dataset["uniform-16bit"]
        # GPU-BP dominates GPU-VByte (the paper's editorial choice) ...
        assert uniform["rate gpu-bp"] < uniform["rate gpu-vbyte"]
        assert uniform["time gpu-bp"] < uniform["time gpu-vbyte"]
        # ... and GPU-FOR decodes fastest everywhere.
        for r in rows:
            for codec in ("gpu-bp", "gpu-vbyte", "pfor", "simple8b"):
                assert r["time gpu-for"] <= r[f"time {codec}"] + 1e-9, (
                    r["dataset"], codec,
                )
