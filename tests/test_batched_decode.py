"""Batched tile decode: ``decode_tiles`` / ``decode_range``.

The batched API must be bit-identical to a per-tile ``decode_tile`` loop
for every tile codec, honour the empty-column contract, and reject
out-of-range tiles the same way the per-tile path does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.random_access import coalesce_tile_runs
from repro.formats.base import ragged_arange, trim_tile_chunks
from repro.formats.registry import get_codec, is_tile_codec

TILE_CODECS = ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128")


def _workload(codec_name: str, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if codec_name == "gpu-rfor":
        # Run-heavy data so RLE has real runs to compress.
        return np.repeat(
            rng.integers(0, 100, max(1, n // 8)), 8
        )[:n].astype(np.int64)
    lo = 0 if codec_name == "gpu-bp" else -500
    return rng.integers(lo, 5000, n).astype(np.int64)


@pytest.mark.parametrize("codec_name", TILE_CODECS)
@pytest.mark.parametrize("n", [1, 100, 512, 4096, 10_000, 20_001])
class TestBatchedMatchesPerTile:
    def test_full_column_bit_identical(self, codec_name, n):
        codec = get_codec(codec_name)
        values = _workload(codec_name, n)
        enc = codec.encode(values)
        n_tiles = codec.num_tiles(enc)
        loop = np.concatenate(
            [codec.decode_tile(enc, t) for t in range(n_tiles)]
        )
        batched = codec.decode_tiles(enc, np.arange(n_tiles))
        ranged = codec.decode_range(enc, 0, n_tiles)
        assert batched.dtype == loop.dtype
        assert np.array_equal(loop, batched)
        assert np.array_equal(loop, ranged)
        assert np.array_equal(batched.astype(np.int64), values)

    def test_arbitrary_subset_order_and_duplicates(self, codec_name, n):
        codec = get_codec(codec_name)
        values = _workload(codec_name, n)
        enc = codec.encode(values)
        n_tiles = codec.num_tiles(enc)
        rng = np.random.default_rng(7)
        subset = rng.integers(0, n_tiles, size=min(2 * n_tiles, 16))
        expected = np.concatenate(
            [codec.decode_tile(enc, int(t)) for t in subset]
        )
        assert np.array_equal(expected, codec.decode_tiles(enc, subset))


@pytest.mark.parametrize("codec_name", TILE_CODECS)
class TestTileContract:
    def test_empty_column_round_trip(self, codec_name):
        """Empty columns encode to zero tiles and round-trip cleanly."""
        codec = get_codec(codec_name)
        empty = np.zeros(0, dtype=np.int32)
        enc = codec.encode(empty)
        assert enc.count == 0
        assert codec.num_tiles(enc) == 0
        decoded = codec.decode(enc)
        assert decoded.shape == (0,) and decoded.dtype == empty.dtype
        # Tile iteration covers the (empty) grid without error.
        tiles = [codec.decode_tile(enc, t) for t in range(codec.num_tiles(enc))]
        assert tiles == []
        assert codec.decode_tiles(enc, []).shape == (0,)
        assert codec.decode_range(enc, 0, 0).shape == (0,)
        starts, lengths = codec.tile_segments(enc)
        assert starts.size == lengths.size == 0

    def test_empty_column_rejects_every_tile(self, codec_name):
        codec = get_codec(codec_name)
        enc = codec.encode(np.zeros(0, dtype=np.int32))
        for bad in (0, 1, -1):
            with pytest.raises(IndexError):
                codec.decode_tile(enc, bad)
            with pytest.raises(IndexError):
                codec.decode_tiles(enc, [bad])
        with pytest.raises(IndexError):
            codec.decode_range(enc, 0, 1)

    def test_out_of_range_tiles_raise(self, codec_name):
        codec = get_codec(codec_name)
        enc = codec.encode(_workload(codec_name, 5000))
        n_tiles = codec.num_tiles(enc)
        for bad in (-1, n_tiles, n_tiles + 5):
            with pytest.raises(IndexError):
                codec.decode_tile(enc, bad)
            with pytest.raises(IndexError):
                codec.decode_tiles(enc, [0, bad])
        with pytest.raises(IndexError):
            codec.decode_range(enc, 0, n_tiles + 1)
        with pytest.raises(IndexError):
            codec.decode_range(enc, -1, n_tiles)

    def test_decode_range_partial(self, codec_name):
        codec = get_codec(codec_name)
        values = _workload(codec_name, 30_000)
        enc = codec.encode(values)
        n_tiles = codec.num_tiles(enc)
        first, last = 1, max(2, n_tiles - 1)
        expected = np.concatenate(
            [codec.decode_tile(enc, t) for t in range(first, last)]
        )
        assert np.array_equal(expected, codec.decode_range(enc, first, last))


def test_default_fallback_loops_per_tile():
    """Codecs without an override still get a correct batched decode."""
    from repro.formats.base import TileCodec
    from repro.formats.gpufor import GpuFor

    class NoOverride(GpuFor):
        name = "gpu-for-no-override"
        decode_tiles = TileCodec.decode_tiles
        decode_range = TileCodec.decode_range

    codec = NoOverride()
    values = np.arange(5000, dtype=np.int64)
    enc = codec.encode(values)
    n_tiles = codec.num_tiles(enc)
    out = codec.decode_tiles(enc, np.arange(n_tiles))
    assert np.array_equal(out.astype(np.int64), values)
    assert codec.decode_tiles(enc, []).shape == (0,)


def test_registry_tile_codecs_covered():
    """Every registered tile codec is in the equivalence matrix above."""
    from repro.formats.registry import codec_names

    registered = {n for n in codec_names() if is_tile_codec(n)}
    assert registered == set(TILE_CODECS)


class TestHelpers:
    def test_ragged_arange(self):
        assert np.array_equal(
            ragged_arange(np.array([3, 1, 2])), [0, 1, 2, 0, 0, 1]
        )
        assert ragged_arange(np.zeros(0, dtype=np.int64)).size == 0

    def test_trim_tile_chunks(self):
        vals = np.arange(10)
        out = trim_tile_chunks(vals, np.array([4, 6]), np.array([2, 5]))
        assert np.array_equal(out, [0, 1, 4, 5, 6, 7, 8])
        with pytest.raises(ValueError):
            trim_tile_chunks(vals, np.array([4]), np.array([2]))

    def test_coalesce_tile_runs(self):
        assert coalesce_tile_runs(np.array([0, 1, 2, 5, 6, 9])) == [
            (0, 3),
            (5, 7),
            (9, 10),
        ]
        assert coalesce_tile_runs(np.zeros(0, dtype=np.int64)) == []
        assert coalesce_tile_runs(np.array([4])) == [(4, 5)]
