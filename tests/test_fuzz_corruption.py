"""Seeded corruption fuzzing: no codec may return silently wrong values.

The contract under fault injection is binary: a corrupted encoded column
either decodes to *bit-identical* values (the fault landed in padding or
another dead byte) or raises :class:`~repro.formats.validate.CorruptTileError`.
Raw ``IndexError`` / ``ValueError`` escapes and — worst of all — wrong
values without any error are both failures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import (
    CorruptTileError,
    checked_decode,
    set_checksums,
    set_verify_mode,
)
from repro.formats.container import encode_with_checksums
from repro.formats.registry import codec_names, get_codec
from repro.serving.faults import FAULT_MODES, FaultInjector, copy_encoded

SEEDS = (0, 1, 2)


@pytest.fixture(autouse=True)
def _hardened():
    """Checksums on, eager verification, restored afterwards."""
    prev_checks = set_checksums(True)
    prev_mode = set_verify_mode("always")
    yield
    set_checksums(prev_checks)
    set_verify_mode(prev_mode)


def _sample(seed: int, n: int = 4096) -> np.ndarray:
    rng = np.random.default_rng(seed)
    values = rng.integers(1000, 5000, size=n).astype(np.int64)
    outliers = rng.integers(0, n, size=max(1, n // 256))
    values[outliers] = rng.integers(0, 1 << 30, size=outliers.size)
    return values


@pytest.mark.parametrize("codec_name", codec_names())
@pytest.mark.parametrize("mode", FAULT_MODES)
@pytest.mark.parametrize("seed", SEEDS)
def test_no_silent_corruption(codec_name, mode, seed):
    values = _sample(seed)
    enc = encode_with_checksums(codec_name, values, column=f"col-{codec_name}")
    injector = FaultInjector(seed=seed * 1009 + FAULT_MODES.index(mode))
    bad = injector.corrupt_copy(enc, mode)
    try:
        got = checked_decode(bad, column=f"col-{codec_name}")
    except CorruptTileError:
        return  # detected: the acceptable failure shape
    # Not detected: the decode must then be bit-identical — the fault
    # landed somewhere the format genuinely does not read.
    got = np.asarray(got, dtype=np.int64)
    assert got.shape == values.shape, (
        f"{codec_name}/{mode}/seed={seed}: silent shape change "
        f"{values.shape} -> {got.shape} ({injector.log[-1]})"
    )
    assert np.array_equal(got, values), (
        f"{codec_name}/{mode}/seed={seed}: silent wrong values "
        f"({injector.log[-1]})"
    )


@pytest.mark.parametrize("codec_name", codec_names())
def test_corruption_never_escapes_raw(codec_name):
    """Whatever the decode raises, it is CorruptTileError — never a raw
    numpy/IndexError leaking internal state."""
    values = _sample(3)
    enc = encode_with_checksums(codec_name, values, column="c")
    injector = FaultInjector(seed=99)
    for mode in FAULT_MODES:
        bad = injector.corrupt_copy(enc, mode)
        try:
            checked_decode(bad, column="c")
        except CorruptTileError:
            pass
        # Any other exception type propagates and fails the test.


def test_fault_injector_deterministic():
    values = _sample(0)
    enc = encode_with_checksums("gpu-for", values, column="c")
    a = FaultInjector(seed=42).corrupt_copy(enc, "payload-bit")
    b = FaultInjector(seed=42).corrupt_copy(enc, "payload-bit")
    for name in a.arrays:
        assert np.array_equal(a.arrays[name], b.arrays[name])
    assert a.count == b.count


def test_corrupt_copy_leaves_original_intact():
    values = _sample(1)
    enc = encode_with_checksums("gpu-dfor", values, column="c")
    before = {k: v.copy() for k, v in enc.arrays.items()}
    FaultInjector(seed=5).corrupt_copy(enc, "payload-bit")
    for name, arr in before.items():
        assert np.array_equal(enc.arrays[name], arr)
    # Original still decodes clean.
    got = checked_decode(enc, column="c")
    assert np.array_equal(np.asarray(got, dtype=np.int64), values)


# -- latent-bug regressions (satellite: bitwidth-0 and runaway starts) ------


def test_gpufor_zero_bitwidth_with_nonzero_blocks_rejected():
    """A zeroed bitwidth word with non-empty miniblocks previously slid
    through as an all-reference tile; now it must error cleanly."""
    values = _sample(7)
    codec = get_codec("gpu-for")
    enc = codec.encode(values)
    starts = enc.arrays["block_starts"]
    data = enc.arrays["data"]
    # Find a block whose payload is non-empty and zero its bitwidth word.
    widths = None
    for b in range(starts.size - 1):
        lo, hi = int(starts[b]), int(starts[b + 1])
        if hi - lo > 2:  # reference word + bitwidth word + payload
            data[lo + 1] = 0  # bitwidth word -> 0, but payload words remain
            widths = (lo, hi)
            break
    assert widths is not None, "sample produced no packed blocks"
    enc.meta.pop("_validated", None)
    with pytest.raises(CorruptTileError):
        checked_decode(enc, column="c")


def test_gpufor_block_starts_past_payload_rejected():
    """block_starts pointing past the physical payload must raise
    CorruptTileError on every decode path, not IndexError."""
    values = _sample(8)
    codec = get_codec("gpu-for")
    for path in ("decode", "decode_tiles", "decode_tiles_into"):
        enc = codec.encode(values)
        enc.arrays["block_starts"] = enc.arrays["block_starts"].copy()
        enc.arrays["block_starts"][-1] = enc.arrays["data"].size + 1000
        enc.meta.pop("_validated", None)
        with pytest.raises(CorruptTileError):
            if path == "decode":
                codec.decode(enc)
            elif path == "decode_tiles":
                codec.decode_tiles(enc, np.arange(codec.num_tiles(enc)))
            else:
                out = np.empty(values.size, dtype=np.int64)
                codec.decode_tiles_into(
                    enc, np.arange(codec.num_tiles(enc)), out
                )


def test_length_mutation_detected_even_without_checksums():
    """Structural validation alone (checksums off) still catches a
    mutated logical count for the tile codecs."""
    prev = set_checksums(False)
    try:
        values = _sample(9)
        for name in ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp"):
            enc = get_codec(name).encode(values)
            injector = FaultInjector(seed=13)
            bad = injector.corrupt_copy(enc, "length")
            try:
                got = checked_decode(bad, column="c")
            except CorruptTileError:
                continue
            got = np.asarray(got, dtype=np.int64)
            assert got.shape == values.shape and np.array_equal(got, values), (
                f"{name}: silent wrong answer on length mutation"
            )
    finally:
        set_checksums(prev)


def test_out_of_range_tile_index_still_indexerror():
    """The pre-existing contract: *index* errors (caller bugs) stay
    IndexError; corruption (data bugs) becomes CorruptTileError."""
    values = _sample(10)
    codec = get_codec("gpu-for")
    enc = codec.encode(values)
    with pytest.raises(IndexError):
        codec.decode_tile(enc, codec.num_tiles(enc) + 3)


def test_runtime_marks_never_survive_copy():
    values = _sample(11)
    enc = encode_with_checksums("gpu-for", values, column="c")
    checked_decode(enc, column="c")  # plants _validated / _crc_seen
    clone = copy_encoded(enc)
    assert "_validated" not in clone.meta
    assert "_crc_seen" not in clone.meta
