"""Differential tests: compiled SSB specs vs the hand-written plans.

The hand-written plans in ``engine/ssb_queries.py`` are the oracle:
every flight compiled from its declarative spec must return
**bit-identical** groups across all five GPU codecs x {1, 4} stream
workers x {1, 2} shards, and must decode equal-or-fewer tiles than the
hand plan (the compiler may push more conjuncts down, never fewer).
The TPC-DS-subset model runs against the independent numpy oracle to
prove the compiler is not SSB-shaped.
"""

from __future__ import annotations

import numpy as np
import pytest

from query_oracle import evaluate
from repro.engine.crystal import CrystalEngine
from repro.engine.predicates import Equals, Range
from repro.engine.ssb_queries import QUERIES
from repro.formats.registry import get_codec
from repro.query.compiler import CompiledQuery, QueryCompiler
from repro.query.model import Query
from repro.query.ssb import SSB_SPECS, ssb_model
from repro.query.tpcds import TPCDS_SPECS, tpcds_model
from repro.serving.scheduler import QueryServer
from repro.ssb.dbgen import generate, generate_tpcds_subset
from repro.ssb.loader import ColumnStore, StoredColumn, load_lineorder, load_star

GPU_CODECS = ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128")
FLIGHTS = tuple(QUERIES)


@pytest.fixture(scope="module")
def db():
    return generate(scale_factor=0.002, seed=7)


@pytest.fixture(scope="module")
def model():
    return ssb_model()


@pytest.fixture(scope="module")
def star_store(db):
    return load_lineorder(db, "gpu-star")


@pytest.fixture(scope="module")
def compiled(db, model, star_store):
    """All 13 flights compiled once (store-aware: costed filter order)."""
    compiler = QueryCompiler(model, db, store=star_store)
    return {name: compiler.compile(SSB_SPECS[name]) for name in FLIGHTS}


@pytest.fixture(scope="module")
def hand_results(db, star_store):
    engine = CrystalEngine(db, star_store)
    return {name: engine.run(QUERIES[name]).groups for name in FLIGHTS}


def _touched_columns(compiled) -> tuple[str, ...]:
    names: list[str] = []
    for q in QUERIES.values():
        names.extend(c for c in q.columns if c not in names)
    for q in compiled.values():
        names.extend(c for c in q.columns if c not in names)
    return tuple(names)


def _encoded_store(db, codec_name: str, columns) -> ColumnStore:
    stored = {}
    for name in columns:
        values = db.lineorder[name]
        enc = get_codec(codec_name).encode(values)
        stored[name] = StoredColumn(
            name, "gpu-star", values, enc, enc.nbytes, codec_name=codec_name
        )
    return ColumnStore(system="gpu-star", columns=stored)


@pytest.fixture(scope="module", params=GPU_CODECS)
def codec_store(request, db, compiled):
    return request.param, _encoded_store(
        db, request.param, _touched_columns(compiled)
    )


class TestCompiledDifferential:
    @pytest.mark.parametrize("flight", FLIGHTS)
    def test_bit_identical_materialized(
        self, flight, db, star_store, compiled, hand_results
    ):
        got = CrystalEngine(db, star_store).run(compiled[flight]).groups
        assert got == hand_results[flight]

    @pytest.mark.parametrize("workers", (1, 4))
    def test_bit_identical_per_codec_and_workers(
        self, codec_store, db, compiled, hand_results, workers
    ):
        codec_name, store = codec_store
        engine = CrystalEngine(
            db, store, streaming=True, stream_workers=workers
        )
        for flight in FLIGHTS:
            got = engine.run(compiled[flight]).groups
            assert got == hand_results[flight], (codec_name, flight, workers)

    @pytest.mark.parametrize("num_shards", (1, 2))
    @pytest.mark.parametrize("workers", (1, 4))
    def test_bit_identical_served_on_shards(
        self, db, star_store, compiled, hand_results, workers, num_shards
    ):
        server = QueryServer(
            db,
            star_store,
            streaming=True,
            stream_workers=workers,
            num_shards=num_shards,
        )
        try:
            futures = {f: server.query(compiled[f]) for f in FLIGHTS}
            server.drain()
            for flight, future in futures.items():
                result = future.result()
                assert result.ok, (flight, result.status, result.error)
                assert result.groups == hand_results[flight], (
                    flight, workers, num_shards,
                )
        finally:
            server.stop()

    @pytest.mark.parametrize("flight", FLIGHTS)
    def test_pushdown_parity_or_better(self, flight, db, star_store, compiled):
        """Compiled plans never decode more tiles than the hand plans."""
        engine = CrystalEngine(db, star_store, streaming=True, stream_workers=1)
        engine.run(compiled[flight])
        compiled_tiles = engine.last_stream_stats["tiles_active"]
        engine.run(QUERIES[flight])
        hand_tiles = engine.last_stream_stats["tiles_active"]
        assert compiled_tiles <= hand_tiles


class TestCompiledOnClusteredData:
    def test_compiled_pushdown_prunes_on_sorted_dates(self, db):
        """On date-clustered data the compiled datekey range skips tiles."""
        from repro.ssb.dbgen import sort_lineorder_by

        sdb = sort_lineorder_by(db, "lo_orderdate")
        store = load_lineorder(sdb, "gpu-star")
        compiler = QueryCompiler(ssb_model(), sdb, store=store)
        engine = CrystalEngine(sdb, store, streaming=True, stream_workers=2)
        compiled = compiler.compile(SSB_SPECS["q1.2"])
        groups = engine.run(compiled).groups
        stats = engine.last_stream_stats
        assert stats["tiles_active"] < engine.num_tiles
        hand = CrystalEngine(sdb, store).run(QUERIES["q1.2"]).groups
        assert groups == hand
        assert compiled.trace["late_materialization"] is True


class TestCompilerSemantics:
    def test_decode_groups_roundtrip(self, db, star_store, compiled, hand_results):
        decoded = compiled["q4.1"].decode_groups(hand_results["q4.1"])
        # d_year strides c_nation in the hand plan's packing.
        for (year, nation), value in decoded.items():
            assert 1992 <= year <= 1998
            assert 0 <= nation < 25
            assert hand_results["q4.1"][(year - 1992) * 25 + nation] == value

    def test_structurally_equal_specs_share_semantic_key(self, db, model, star_store):
        compiler = QueryCompiler(model, db, store=star_store)
        a = compiler.compile(Query(
            "first", measures=("revenue",),
            filters=(Equals("s_region", 2),), group_by=("d_year",),
        ))
        b = compiler.compile(Query(
            "second", measures=("revenue",),
            # Range collapsing to a point canonicalizes to the Equals.
            filters=(Range("s_region", 2, 2),), group_by=("d_year",),
        ))
        assert a.semantic_key() == b.semantic_key()

    def test_compiled_carries_spec_and_trace(self, compiled):
        q = compiled["q3.1"]
        assert isinstance(q, CompiledQuery)
        assert q.spec is SSB_SPECS["q3.1"]
        assert q.model_name == "ssb"
        assert q.trace["pushdown"], "q3.1 must push the datekey range down"
        assert [j["table"] for j in q.trace["joins"]] == [
            "customer", "supplier", "date"
        ]

    def test_rejects_unknown_names(self, db, model):
        compiler = QueryCompiler(model, db)
        with pytest.raises(KeyError):
            compiler.compile(Query("bad", measures=("no_such_measure",)))
        with pytest.raises(KeyError):
            compiler.compile(Query(
                "bad", measures=("revenue",),
                filters=(Equals("no_such_attr", 1),),
            ))
        with pytest.raises(KeyError):
            compiler.compile(Query(
                "bad", measures=("revenue",), group_by=("no_such_attr",),
            ))
        with pytest.raises(ValueError):
            # d_yearmonthnum declares no code domain: filter-only.
            compiler.compile(Query(
                "bad", measures=("revenue",), group_by=("d_yearmonthnum",),
            ))

    def test_rejects_mixed_merge_families(self, db, model):
        compiler = QueryCompiler(model, db)
        with pytest.raises(ValueError):
            compiler.compile(Query(
                "bad", measures=("revenue", "max_revenue"),
                group_by=("d_year",),
            ))

    def test_additive_measures_share_one_plan(self, db, model, star_store):
        compiler = QueryCompiler(model, db, store=star_store)
        spec = Query(
            "mix", measures=("revenue", "count_lines"),
            filters=(Equals("s_region", 1),), group_by=("d_year",),
        )
        compiled = compiler.compile(spec)
        got = CrystalEngine(db, star_store).run(compiled).groups
        assert got == evaluate(model, db, spec)
        decoded = compiled.decode_groups(got)
        assert any(k[-1] == "revenue" for k in decoded)
        assert any(k[-1] == "count_lines" for k in decoded)


class TestTpcdsModel:
    """The second star proves the compiler generalizes beyond SSB."""

    @pytest.fixture(scope="class")
    def star(self):
        sdb = generate_tpcds_subset(scale_factor=0.01, seed=7)
        return sdb, load_star(sdb, "gpu-star")

    @pytest.mark.parametrize("name", tuple(TPCDS_SPECS))
    def test_matches_numpy_oracle(self, star, name):
        sdb, store = star
        model = tpcds_model()
        compiler = QueryCompiler(model, sdb, store=store)
        compiled = compiler.compile(TPCDS_SPECS[name])
        engine = CrystalEngine(sdb, store, streaming=True, stream_workers=2)
        assert engine.run(compiled).groups == evaluate(model, sdb, TPCDS_SPECS[name])

    def test_streaming_matches_materialized(self, star):
        sdb, store = star
        compiler = QueryCompiler(tpcds_model(), sdb, store=store)
        compiled = compiler.compile(TPCDS_SPECS["tq3"])
        ref = CrystalEngine(sdb, store).run(compiled).groups
        for workers in (1, 4):
            engine = CrystalEngine(
                sdb, store, streaming=True, stream_workers=workers
            )
            assert engine.run(compiled).groups == ref
