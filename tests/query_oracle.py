"""Naive uncompressed-numpy oracle for declarative star queries.

Evaluates a :class:`repro.query.model.Query` directly over the raw
dimension/fact arrays — plain masks, key gathers and ``np.bincount`` —
with none of the engine machinery (no predicates pushdown, no lookups,
no pipelines, no codecs).  The fuzz and compiler suites compare compiled
execution against this.

Result conventions deliberately mirror ``FactPipeline``'s contract so
dictionaries compare with ``==``:

* ungrouped ``sum`` answers ``{0: total}`` even over zero rows;
* grouped sums/counts omit zero-sum groups (``np.flatnonzero``);
* ``min``/``max`` return only touched groups (``{}`` over zero rows).
"""

from __future__ import annotations

import numpy as np

from repro.query.model import Query, SemanticModel


def _dim_gather(db, model, table: str, column: str, fact_key: str) -> np.ndarray:
    """``column`` of each fact row's joined dimension row."""
    join = model.join_for(table)
    dim = db.table(table)
    keys = np.asarray(dim[join.key], dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    fk = np.asarray(db.table(model.fact)[fact_key], dtype=np.int64)
    pos = order[np.searchsorted(keys[order], fk)]
    return np.asarray(dim[column], dtype=np.int64)[pos]


def _measure_values(fact, measure) -> np.ndarray | None:
    if measure.how == "count":
        return None
    values = np.asarray(fact[measure.column], dtype=np.int64)
    if measure.op == "mul":
        return values * np.asarray(fact[measure.other], dtype=np.int64)
    if measure.op == "sub":
        return values - np.asarray(fact[measure.other], dtype=np.int64)
    return values


def evaluate(model: SemanticModel, db, spec: Query) -> dict[int, int]:
    """Evaluate ``spec`` naively; returns engine-convention group dicts."""
    fact = db.table(model.fact)
    n = int(next(iter(fact.values())).size)
    mask = np.ones(n, dtype=bool)

    for pred in spec.filters:
        attr = model.attribute(pred.column)
        if attr is not None and attr.table != model.fact:
            join = model.join_for(attr.table)
            dim = db.table(attr.table)
            dim_mask = pred.row_mask(np.asarray(dim[attr.column]))
            qualifying = np.asarray(dim[join.key], dtype=np.int64)[dim_mask]
            mask &= np.isin(
                np.asarray(fact[join.fact_key], dtype=np.int64), qualifying
            )
        else:
            column = attr.column if attr is not None else pred.column
            mask &= pred.row_mask(np.asarray(fact[column]))

    codes = np.zeros(n, dtype=np.int64)
    num_groups = 1
    for name in spec.group_by:
        attr = model.attribute(name)
        if attr.table == model.fact:
            vals = np.asarray(fact[attr.column], dtype=np.int64) - attr.base
        else:
            join = model.join_for(attr.table)
            vals = _dim_gather(db, model, attr.table, attr.column,
                               join.fact_key) - attr.base
        codes = codes * attr.domain + vals
        num_groups *= attr.domain

    measures = [model.measures[m] for m in spec.measures]

    if not spec.group_by and len(measures) == 1:
        m = measures[0]
        if m.how == "sum":
            values = _measure_values(fact, m)
            return {0: int(values[mask].sum())}
        if not mask.any():
            return {}
        if m.how == "count":
            return {0: int(np.count_nonzero(mask))}
        values = _measure_values(fact, m)[mask]
        return {0: int(values.min() if m.how == "min" else values.max())}

    result: dict[int, int] = {}
    n_measures = len(measures)
    live_codes = codes[mask]
    for i, m in enumerate(measures):
        keyed = live_codes * n_measures + i if n_measures > 1 else live_codes
        if m.how in ("sum", "count"):
            if not mask.any():
                continue
            weights = (
                np.ones(int(np.count_nonzero(mask)), dtype=np.float64)
                if m.how == "count"
                else _measure_values(fact, m)[mask].astype(np.float64)
            )
            sums = np.bincount(keyed, weights=weights,
                               minlength=num_groups * n_measures)
            result.update({int(c): int(sums[c]) for c in np.flatnonzero(sums)})
        else:
            values = _measure_values(fact, m)[mask]
            for code in np.unique(keyed):
                sel = values[keyed == code]
                result[int(code)] = int(
                    sel.min() if m.how == "min" else sel.max()
                )
    return result
