"""Predicate pushdown: bounds soundness, pruned decode, bit-identical plans.

Three layers of coverage:

* codec bounds contract — every codec exposing ``tile_bounds`` must
  bound all stored values per tile, across random, sorted, run-heavy,
  skewed, constant, tiny and empty inputs (including a partial last
  tile);
* engine pruning — for every GPU-* codec and selectivities spanning
  0% / ~1% / 50% / 100% / exact bounds-boundary values, the pruned and
  unpruned pipelines must agree bit for bit on filters and aggregates;
* caching — bounds live in the serving pool under ``bounds/``, survive
  eviction of decoded images, and die with ``invalidate_column``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.crystal import TILE, CrystalEngine
from repro.engine.predicates import And, Equals, InSet, Range
from repro.formats.registry import get_codec
from repro.serving.pool import ColumnPool
from repro.ssb.dbgen import SSBDatabase
from repro.ssb.loader import ColumnStore, StoredColumn

BOUNDED_CODECS = ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128", "pfor")
GPU_CODECS = ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128")


def _datasets(rng):
    return {
        "random": rng.integers(0, 10_000, 5000),
        "sorted": np.sort(rng.integers(0, 100_000, 4321)),
        "runs": np.repeat(rng.integers(0, 50, 40), rng.integers(1, 200, 40))[:5000],
        "skewed": np.where(
            rng.random(5000) < 0.01,
            rng.integers(0, 2**20, 5000),
            rng.integers(0, 16, 5000),
        ),
        "constant": np.full(3000, 7),
        "partial_tail": rng.integers(0, 1000, 2 * TILE + 17),
        "tiny": np.array([5, 3, 9]),
        "empty": np.zeros(0, dtype=np.int64),
    }


class TestBoundsContract:
    @pytest.mark.parametrize("codec_name", BOUNDED_CODECS)
    def test_bounds_cover_every_tile(self, codec_name, rng):
        codec = get_codec(codec_name)
        for label, data in _datasets(rng).items():
            data = np.asarray(data, dtype=np.int64)
            enc = codec.encode(data)
            mins, maxs = codec.tile_bounds(enc)
            elems = codec.bounds_elements(enc)
            n_tiles = -(-data.size // elems) if data.size else 0
            assert mins.size == n_tiles == maxs.size, label
            if n_tiles:
                assert (mins <= maxs).all(), label
            for t in range(n_tiles):
                chunk = data[t * elems : (t + 1) * elems]
                assert mins[t] <= chunk.min(), (label, t)
                assert maxs[t] >= chunk.max(), (label, t)

    @pytest.mark.parametrize("codec_name", ("gpu-for", "gpu-rfor", "pfor"))
    def test_for_family_min_is_exact(self, codec_name, rng):
        """FOR references are per-block minima, so mins are tight."""
        codec = get_codec(codec_name)
        data = rng.integers(0, 100_000, 4096).astype(np.int64)
        enc = codec.encode(data)
        mins, _ = codec.tile_bounds(enc)
        elems = codec.bounds_elements(enc)
        exact = data.reshape(-1, elems).min(axis=1)
        assert np.array_equal(mins, exact)

    def test_unbounded_codec_raises(self):
        codec = get_codec("gpu-vbyte")
        enc = codec.encode(np.arange(100, dtype=np.int64))
        with pytest.raises(NotImplementedError):
            codec.tile_bounds(enc)


def _make_engine(columns, codec_by_col, pushdown=True, pool=None):
    """A gpu-star engine over hand-built lineorder columns."""
    n = next(iter(columns.values())).size
    db = SSBDatabase(scale_factor=0.0)
    lineorder = {name: np.asarray(v, dtype=np.int64) for name, v in columns.items()}
    lineorder.setdefault("lo_orderkey", np.arange(n, dtype=np.int64))
    db.lineorder = lineorder
    stored = {}
    for name, values in lineorder.items():
        codec_name = codec_by_col.get(name, "gpu-for")
        enc = get_codec(codec_name).encode(values)
        stored[name] = StoredColumn(
            name, "gpu-star", values, enc, enc.nbytes, codec_name=codec_name
        )
    store = ColumnStore(system="gpu-star", columns=stored)
    return CrystalEngine(db, store, pool=pool, pushdown=pushdown)


def _scan(engine, predicate, exact_preds):
    """A minimal pushdown-filter-aggregate plan; returns all observables."""
    p = engine.pipeline("t")
    pruned = p.filter_pushdown(predicate)
    for pred in exact_preds:
        p.filter_predicate(pred, p.load(pred.column))
    weights = p.load("lo_weight")
    codes = p.load("lo_code")
    total = p.total_sum(weights)
    by_code = p.group_sum(codes, weights, 8)
    live = int(np.flatnonzero(p.mask).size)
    p.finish()
    return pruned, total, by_code, live, p.mask.tobytes()


@pytest.mark.parametrize("codec_name", GPU_CODECS)
class TestPrunedVsUnprunedIdentical:
    def _columns(self, rng, codec_name):
        # Sorted key => clustered tiles => real pruning; partial last tile.
        n = 5 * TILE + 123
        key = np.sort(rng.integers(0, 20_000, n))
        return {
            "lo_key": key,
            "lo_weight": rng.integers(1, 100, n),
            "lo_code": rng.integers(0, 8, n),
        }, {"lo_key": codec_name, "lo_weight": "gpu-for", "lo_code": "gpu-for"}

    def _selectivity_ranges(self, key):
        lo, hi = int(key.min()), int(key.max())
        mid = int(np.median(key))
        return {
            "0pct": Range("lo_key", hi + 1000, hi + 2000),
            "1pct": Range("lo_key", lo, int(np.quantile(key, 0.01))),
            "50pct": Range("lo_key", lo, mid),
            "100pct": Range("lo_key", lo, hi),
            # Exactly the stored extremes: inclusive bounds must keep both.
            "boundary": Range("lo_key", lo, lo),
        }

    def test_bit_identical_all_selectivities(self, codec_name, rng):
        columns, codecs = self._columns(rng, codec_name)
        key = columns["lo_key"]
        for label, pred in self._selectivity_ranges(key).items():
            on = _make_engine(columns, codecs, pushdown=True)
            off = _make_engine(columns, codecs, pushdown=False)
            r_on = _scan(on, pred, [pred])
            r_off = _scan(off, pred, [pred])
            # pruned counts differ by design; everything else must match.
            assert r_on[1:] == r_off[1:], (codec_name, label)
            assert r_off[0] == 0, label
            # Cross-check the aggregate against plain NumPy.
            mask = (key >= pred.lo) & (key <= pred.hi)
            assert r_on[1] == {0: int(columns["lo_weight"][mask].sum())} or (
                not mask.any() and r_on[1] == {0: 0}
            ), (codec_name, label)

    def test_zero_selectivity_prunes_everything(self, codec_name, rng):
        columns, codecs = self._columns(rng, codec_name)
        engine = _make_engine(columns, codecs, pushdown=True)
        # Conservative maxs may overshoot the true column max (bitwidth
        # headroom), so probe strictly above the loosest bound.
        _, maxs = engine.column_tile_bounds("lo_key")
        p = engine.pipeline("t")
        pruned = p.filter_pushdown(Range("lo_key", int(maxs.max()) + 1, None))
        assert pruned == engine.num_tiles
        assert not p.tile_active.any()
        assert not p.mask.any()
        assert p.total_sum(p.load("lo_weight")) == {0: 0}
        p.finish()


class TestPushdownMechanics:
    def test_conjunction_and_other_predicates(self, rng):
        n = 3 * TILE
        columns = {
            "lo_key": np.sort(rng.integers(0, 3000, n)),
            "lo_flag": np.repeat(np.arange(3), TILE),
            "lo_weight": rng.integers(1, 10, n),
            "lo_code": rng.integers(0, 8, n),
        }
        codecs = dict.fromkeys(columns, "gpu-for")
        pred = And((Equals("lo_flag", 1), InSet("lo_key", (0, 1, 2, 3))))
        on = _make_engine(columns, codecs, pushdown=True)
        off = _make_engine(columns, codecs, pushdown=False)
        exact = [Equals("lo_flag", 1), InSet("lo_key", (0, 1, 2, 3))]
        assert _scan(on, pred, exact)[1:] == _scan(off, pred, exact)[1:]

    def test_pushdown_disabled_is_noop(self, rng):
        columns = {"lo_key": np.sort(rng.integers(0, 100, TILE * 2))}
        engine = _make_engine(columns, {"lo_key": "gpu-for"}, pushdown=False)
        p = engine.pipeline("t")
        assert p.filter_pushdown(Range("lo_key", 10_000, None)) == 0
        assert p.tile_active.all()

    def test_pruned_tiles_skip_decode_and_read_bytes(self, rng):
        columns = {
            "lo_key": np.arange(8 * TILE, dtype=np.int64),
            "lo_weight": rng.integers(1, 10, 8 * TILE),
        }
        codecs = {"lo_key": "gpu-dfor", "lo_weight": "gpu-for"}
        pred = Range("lo_key", 0, TILE - 1)  # first tile only

        on = _make_engine(columns, codecs, pushdown=True)
        p = on.pipeline("t")
        p.filter_pushdown(pred)
        assert int(p.tile_active.sum()) == 1
        key = p.load("lo_key")
        # Late materialization: surviving tile decoded, pruned tiles zero.
        assert np.array_equal(key[:TILE], columns["lo_key"][:TILE])
        assert not key[TILE:].any()
        read_on = p._read_bytes
        p.finish()

        off = _make_engine(columns, codecs, pushdown=False)
        q = off.pipeline("t")
        q.load("lo_key")
        assert read_on < q._read_bytes
        q.finish()

    def test_filter_scratch_buffer_reused(self, rng):
        columns = {"lo_key": rng.integers(0, 50, 2 * TILE + 7)}
        engine = _make_engine(columns, {"lo_key": "gpu-for"})
        p = engine.pipeline("t")
        scratch = p._pad_scratch
        for _ in range(3):
            p.filter(rng.random(p.n) < 0.5)
            assert p._pad_scratch is scratch
        # Padding rows past n never go live.
        assert not scratch[p.n:].any()

    def test_load_pricing_excludes_padding_rows(self):
        n = TILE + 100  # partial last tile
        columns = {"lo_key": np.arange(n, dtype=np.int64)}
        engine = _make_engine(columns, {"lo_key": "gpu-for"})
        p = engine.pipeline("t")
        before = p._compute
        p.load("lo_key")
        codec = get_codec("gpu-for")
        res = codec.kernel_resources(engine.store["lo_key"].payload)
        expected = int(
            res.compute_ops_per_element * n + res.tile_prologue_ops * 2
        )
        assert p._compute - before == expected
        p.finish()


class TestBoundsCaching:
    def test_engine_cache_and_invalidation(self, rng):
        columns = {"lo_key": np.sort(rng.integers(0, 1000, 2 * TILE))}
        engine = _make_engine(columns, {"lo_key": "gpu-for"})
        b1 = engine.column_tile_bounds("lo_key")
        assert engine.column_tile_bounds("lo_key") is b1
        engine.invalidate_column("lo_key")
        b2 = engine.column_tile_bounds("lo_key")
        assert b2 is not b1
        assert np.array_equal(b1[0], b2[0]) and np.array_equal(b1[1], b2[1])

    def test_pool_bounds_survive_decoded_eviction(self, rng):
        columns = {"lo_key": np.sort(rng.integers(0, 1000, 4 * TILE))}
        pool = ColumnPool(budget_bytes=64 * 1024 * 1024)
        engine = _make_engine(columns, {"lo_key": "gpu-for"}, pool=pool)
        engine.column_tile_bounds("lo_key")
        resident = pool.lookup("bounds/lo_key")
        assert resident is not None and resident.kind == "meta"
        engine.column_values("lo_key")
        assert pool.lookup("decoded/lo_key") is not None
        engine.evict_decoded()
        assert pool.lookup("decoded/lo_key") is None
        assert pool.lookup("bounds/lo_key") is not None
        engine.invalidate_column("lo_key")
        assert pool.lookup("bounds/lo_key") is None

    def test_uncompressed_columns_get_exact_bounds(self, rng):
        values = rng.integers(-500, 500, 3 * TILE + 11)
        n = values.size
        db = SSBDatabase(scale_factor=0.0)
        db.lineorder = {
            "lo_orderkey": np.arange(n, dtype=np.int64),
            "lo_key": values.astype(np.int64),
        }
        store = ColumnStore(
            system="none",
            columns={
                name: StoredColumn(name, "none", vals, None, vals.size * 4)
                for name, vals in db.lineorder.items()
            },
        )
        engine = CrystalEngine(db, store)
        mins, maxs = engine.column_tile_bounds("lo_key")
        assert mins.size == engine.num_tiles
        for t in range(engine.num_tiles):
            chunk = values[t * TILE : (t + 1) * TILE]
            assert mins[t] == chunk.min() and maxs[t] == chunk.max()
