"""Core execution models: tile decompression, cascading, reports."""

import numpy as np
import pytest

from repro.core import (
    ColumnStats,
    decompress,
    decompress_cascaded,
    read_uncompressed,
)
from repro.formats import get_codec
from repro.gpusim import GPUDevice


@pytest.fixture
def uniform16(rng):
    return rng.integers(0, 2**16, 200_000)


class TestTileDecompress:
    def test_values_bit_exact(self, uniform16):
        enc = get_codec("gpu-for").encode(uniform16)
        report = decompress(enc, GPUDevice())
        assert np.array_equal(report.values, uniform16)

    def test_single_kernel(self, uniform16):
        device = GPUDevice()
        enc = get_codec("gpu-for").encode(uniform16)
        report = decompress(enc, device)
        assert report.kernel_count == 1
        assert device.kernel_count == 1

    def test_write_back_costs_output_sweep(self, uniform16):
        enc = get_codec("gpu-for").encode(uniform16)
        with_wb = decompress(enc, GPUDevice(), write_back=True).simulated_ms
        without = decompress(enc, GPUDevice(), write_back=False).simulated_ms
        assert with_wb > without

    def test_opt_levels_monotone(self, uniform16):
        times = []
        for opt in range(4):
            enc = get_codec("gpu-for").encode(uniform16)
            times.append(
                decompress(enc, GPUDevice(), opt_level=opt, write_back=False).simulated_ms
            )
        assert times[0] > times[1] > times[2] > times[3]

    def test_opt01_rejected_for_format_level_d(self, rng):
        enc = get_codec("gpu-dfor").encode(np.sort(rng.integers(0, 100, 2000)))
        with pytest.raises(ValueError, match="opt levels"):
            decompress(enc, GPUDevice(), opt_level=1)

    def test_invalid_opt_level(self, uniform16):
        enc = get_codec("gpu-for").encode(uniform16)
        with pytest.raises(ValueError):
            decompress(enc, GPUDevice(), opt_level=4)

    def test_non_tile_codec_rejected(self, uniform16):
        enc = get_codec("nsf").encode(uniform16)
        with pytest.raises(TypeError, match="tile"):
            decompress(enc, GPUDevice())

    def test_report_fields(self, uniform16):
        enc = get_codec("gpu-for").encode(uniform16)
        report = decompress(enc, GPUDevice())
        assert report.compressed_bytes == enc.nbytes
        assert report.output_bytes == uniform16.size * 4
        assert report.effective_bandwidth_gbps > 0
        assert 0 < report.launch_overhead_ms < report.simulated_ms

    def test_scaled_ms_excludes_overhead(self, uniform16):
        enc = get_codec("gpu-for").encode(uniform16)
        report = decompress(enc, GPUDevice())
        assert report.scaled_ms(1.0) == pytest.approx(report.simulated_ms)
        doubled = report.scaled_ms(2.0)
        assert doubled < 2 * report.simulated_ms
        assert doubled > report.simulated_ms
        with pytest.raises(ValueError):
            report.scaled_ms(0)

    def test_compressed_decode_beats_uncompressed_read_plus_margin(self, rng):
        # The paper's headline: decoding 16-bit packed data is cheaper
        # than reading the uncompressed column.
        n = 500_000
        data = rng.integers(0, 2**16, n)
        enc = get_codec("gpu-for").encode(data)
        device = GPUDevice()
        decode_ms = decompress(enc, device, write_back=False).simulated_ms
        none_ms = read_uncompressed(n, GPUDevice())
        assert decode_ms < none_ms


class TestCascade:
    @pytest.mark.parametrize(
        "codec,expected_passes", [("gpu-for", 2), ("gpu-dfor", 3), ("gpu-rfor", 8)]
    )
    def test_pass_counts(self, rng, codec, expected_passes):
        values = rng.integers(0, 2**10, 50_000)
        enc = get_codec(codec).encode(values)
        report = decompress_cascaded(enc, GPUDevice())
        assert report.kernel_count == expected_passes
        assert np.array_equal(report.values, values)

    @pytest.mark.parametrize("codec", ["gpu-for", "gpu-dfor", "gpu-rfor"])
    def test_cascade_slower_than_tile(self, rng, codec):
        values = rng.integers(0, 2**10, 200_000)
        enc = get_codec(codec).encode(values)
        tile_ms = decompress(enc, GPUDevice()).simulated_ms
        cascade_ms = decompress_cascaded(enc, GPUDevice()).simulated_ms
        assert cascade_ms > 1.5 * tile_ms

    def test_unpack_efficiency_slows_unpack(self, uniform16):
        enc = get_codec("gpu-for").encode(uniform16)
        fast = decompress_cascaded(enc, GPUDevice(), unpack_efficiency=1.0)
        slow = decompress_cascaded(enc, GPUDevice(), unpack_efficiency=0.5)
        assert slow.simulated_ms > fast.simulated_ms

    def test_bad_efficiency(self, uniform16):
        enc = get_codec("gpu-for").encode(uniform16)
        with pytest.raises(ValueError):
            decompress_cascaded(enc, GPUDevice(), unpack_efficiency=0)


class TestReadUncompressed:
    def test_read_time_matches_bandwidth(self):
        device = GPUDevice()
        n = 220_000_000  # 880 MB = 1 ms at 880 GB/s
        ms = read_uncompressed(n, device)
        assert ms == pytest.approx(1.0 + 0.005, rel=1e-2)

    def test_write_back_doubles_traffic(self):
        read_only = read_uncompressed(10**7, GPUDevice())
        copy = read_uncompressed(10**7, GPUDevice(), write_back=True)
        assert copy > 1.5 * read_only

    def test_negative_count(self):
        with pytest.raises(ValueError):
            read_uncompressed(-1, GPUDevice())


class TestColumnStats:
    def test_sorted_detection(self):
        assert ColumnStats.from_values(np.array([1, 2, 2, 3])).is_sorted
        assert not ColumnStats.from_values(np.array([2, 1])).is_sorted

    def test_run_length(self):
        stats = ColumnStats.from_values(np.array([5, 5, 5, 5, 9, 9]))
        assert stats.avg_run_length == 3.0
        assert stats.distinct_count == 2

    def test_bits(self):
        stats = ColumnStats.from_values(np.array([100, 130]))
        assert stats.raw_bits == 8
        assert stats.for_bits == 5

    def test_empty(self):
        stats = ColumnStats.from_values(np.array([], dtype=np.int64))
        assert stats.count == 0 and stats.is_sorted

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            ColumnStats.from_values(np.zeros((2, 2)))
