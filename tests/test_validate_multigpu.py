"""Format validation and multi-GPU sharding."""

import numpy as np
import pytest

from repro.formats import get_codec
from repro.formats.validate import CorruptColumnError, validate_encoded
from repro.gpusim import V100
from repro.gpusim.multigpu import ShardedDevice


class TestValidate:
    @pytest.mark.parametrize(
        "codec", ["gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "nsf", "nsv", "rle"]
    )
    def test_fresh_encodings_validate(self, rng, codec):
        values = np.repeat(rng.integers(0, 500, 800), rng.integers(1, 5, 800))
        enc = get_codec(codec).encode(values)
        validate_encoded(enc)  # must not raise

    def test_detects_truncated_data(self, rng):
        enc = get_codec("gpu-for").encode(rng.integers(0, 2**16, 5000))
        enc.arrays["data"] = enc.arrays["data"][:-10]
        with pytest.raises(CorruptColumnError, match="past the data"):
            validate_encoded(enc)

    def test_detects_non_monotone_starts(self, rng):
        enc = get_codec("gpu-for").encode(rng.integers(0, 2**16, 5000))
        starts = enc.arrays["block_starts"].copy()
        starts[2], starts[3] = starts[3], starts[2]
        enc.arrays["block_starts"] = starts
        with pytest.raises(CorruptColumnError, match="monotone"):
            validate_encoded(enc)

    def test_detects_corrupted_bitwidth_word(self, rng):
        enc = get_codec("gpu-for").encode(rng.integers(0, 2**16, 5000))
        data = enc.arrays["data"].copy()
        start = int(enc.arrays["block_starts"][0])
        data[start + 1] ^= 0x07  # nudge the first miniblock's bitwidth
        enc.arrays["data"] = data
        with pytest.raises(CorruptColumnError, match="disagree"):
            validate_encoded(enc)

    def test_detects_oversized_bitwidth(self, rng):
        enc = get_codec("gpu-for").encode(rng.integers(0, 2**16, 5000))
        data = enc.arrays["data"].copy()
        start = int(enc.arrays["block_starts"][0])
        data[start + 1] = 0xFF  # 255-bit miniblock
        enc.arrays["data"] = data
        with pytest.raises(CorruptColumnError, match="exceeds 32"):
            validate_encoded(enc)

    def test_detects_bad_run_counts(self, rng):
        enc = get_codec("gpu-rfor").encode(rng.integers(0, 10, 2048))
        counts = enc.arrays["run_counts"].copy()
        counts[0] = 0
        enc.arrays["run_counts"] = counts
        with pytest.raises(CorruptColumnError, match="zero runs"):
            validate_encoded(enc)

    def test_detects_rle_sum_mismatch(self, rng):
        enc = get_codec("rle").encode(np.repeat(rng.integers(0, 9, 100), 3))
        lengths = enc.arrays["lengths"].copy()
        lengths[0] += 1
        enc.arrays["lengths"] = lengths
        with pytest.raises(CorruptColumnError, match="sum"):
            validate_encoded(enc)

    def test_detects_dfor_first_values_mismatch(self, rng):
        enc = get_codec("gpu-dfor").encode(np.sort(rng.integers(0, 1000, 3000)))
        enc.arrays["first_values"] = enc.arrays["first_values"][:-1]
        with pytest.raises(CorruptColumnError, match="first_values"):
            validate_encoded(enc)

    def test_detects_nsf_length_mismatch(self, rng):
        enc = get_codec("nsf").encode(rng.integers(0, 200, 100))
        enc.arrays["data"] = enc.arrays["data"][:-1]
        with pytest.raises(CorruptColumnError, match="length"):
            validate_encoded(enc)


class TestShardedDevice:
    def test_shard_sizes_cover_total(self):
        sharded = ShardedDevice(num_devices=3)
        assert sum(sharded.shard_sizes(1_000_001)) == 1_000_001
        assert max(sharded.shard_sizes(10)) - min(sharded.shard_sizes(10)) <= 1

    @pytest.mark.parametrize("tile", [512, 4096])
    @pytest.mark.parametrize(
        "total", [0, 1, 511, 512, 4096, 4097, 59_980, 1_000_001]
    )
    def test_tile_aligned_shard_sizes(self, tile, total):
        """Every boundary lands on a tile multiple; only the last shard
        may end mid-tile (the column's own ragged tail)."""
        for devices in (1, 2, 4, 7):
            sharded = ShardedDevice(num_devices=devices)
            sizes = sharded.shard_sizes(total, tile=tile)
            assert len(sizes) == devices
            assert sum(sizes) == total
            cumulative = 0
            for i, size in enumerate(sizes):
                cumulative += size
                if cumulative < total:
                    assert cumulative % tile == 0, (devices, i, cumulative)
            # Non-empty shards are balanced to within one tile of work
            # (plus the ragged tail the last shard may be short by).
            busy = [s for s in sizes if s]
            if busy:
                assert max(busy) - min(busy) < 2 * tile

    def test_shard_bounds_match_sizes(self):
        sharded = ShardedDevice(num_devices=4)
        bounds = sharded.shard_bounds(59_980, tile=4096)
        sizes = sharded.shard_sizes(59_980, tile=4096)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 59_980
        for (lo, hi), size in zip(bounds, sizes):
            assert hi - lo == size
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_unaligned_total_tail_shards_empty(self):
        """More devices than tiles: trailing shards get nothing, sizes
        still sum exactly to the unaligned total."""
        sharded = ShardedDevice(num_devices=7)
        sizes = sharded.shard_sizes(2 * 4096 + 17, tile=4096)
        assert sum(sizes) == 2 * 4096 + 17
        assert sizes[3:] == [0, 0, 0, 0]
        assert sizes[0] == 4096

    def test_shard_sizes_tile_validation(self):
        sharded = ShardedDevice(num_devices=2)
        with pytest.raises(ValueError):
            sharded.shard_sizes(100, tile=0)
        with pytest.raises(ValueError):
            sharded.shard_sizes(-1)

    def test_run_sharded_executes_per_device(self):
        sharded = ShardedDevice(num_devices=4)

        def work(device, items):
            with device.launch("scan", grid_blocks=max(1, items // 512)) as k:
                k.read_linear(items * 4)
            return items

        results = sharded.run_sharded(work, 1_000_000)
        assert sum(results) == 1_000_000
        assert all(d.kernel_count == 1 for d in sharded.devices)

    def test_wall_clock_is_max_not_sum(self):
        sharded = ShardedDevice(num_devices=4)

        def work(device, items):
            with device.launch("scan", grid_blocks=max(1, items // 512)) as k:
                k.read_linear(items * 4)

        sharded.run_sharded(work, 4_000_000)
        assert sharded.elapsed_ms < sharded.total_device_ms / 2

    def test_scaling_shrinks_wall_clock(self):
        def work(device, items):
            with device.launch("scan", grid_blocks=max(1, items // 512)) as k:
                k.read_linear(items * 4)

        times = {}
        for k in (1, 4):
            sharded = ShardedDevice(num_devices=k)
            sharded.run_sharded(work, 100_000_000)
            times[k] = sharded.elapsed_ms
        assert times[4] < times[1] / 3

    def test_merge_charged_to_wall_clock(self):
        sharded = ShardedDevice(num_devices=2)
        before = sharded.elapsed_ms
        ms = sharded.merge_results(50_000_000)
        assert ms > 0
        assert sharded.elapsed_ms == pytest.approx(before + ms)

    def test_capacity_scales(self):
        assert (
            ShardedDevice(num_devices=3).capacity_bytes
            == 3 * V100.global_capacity_bytes
        )

    def test_reset(self):
        sharded = ShardedDevice(num_devices=2)
        sharded.merge_results(1000)
        sharded.reset()
        assert sharded.elapsed_ms == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedDevice(num_devices=0)
        with pytest.raises(ValueError):
            ShardedDevice(num_devices=2).merge_results(-1)


class TestDecodeCostEstimate:
    """The per-codec cost hook that replaced the planner-obsolescence
    experiment: tiering and pool eviction share one decode-cost model."""

    def test_orders_codecs_and_prices_all_payloads(self):
        import numpy as np

        from repro.core.nvcomp import encode_nvcomp
        from repro.core.planner import decode_cost_estimate, plan_column
        from repro.formats.registry import get_codec
        from repro.gpusim.executor import GPUDevice

        rng = np.random.default_rng(3)
        values = rng.integers(0, 1 << 12, size=120_000)
        device = GPUDevice()
        costs = {}
        for name in ("gpu-for", "gpu-dfor", "gpu-bp"):
            enc = get_codec(name).encode(values)
            costs[name] = decode_cost_estimate(enc, GPUDevice(spec=device.spec))
            assert costs[name] > 0.0
        # nvCOMP's layer-per-kernel cascade is priced above the fused
        # tile decode of the same data — the cold tier's speed cost.
        nv_cost = decode_cost_estimate(
            encode_nvcomp(values), GPUDevice(spec=device.spec)
        )
        assert nv_cost > min(costs.values())
        planned_cost = decode_cost_estimate(
            plan_column(values), GPUDevice(spec=device.spec)
        )
        assert planned_cost > 0.0
        # Probing must not advance the caller's device clock.
        assert device.elapsed_ms == 0.0
        # Raw (non-encoded) payloads decode for free.
        assert decode_cost_estimate(None, device) == 0.0
