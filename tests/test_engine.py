"""Engine mechanics: lookups, pipeline semantics, traffic accounting."""

import numpy as np
import pytest

from repro.engine.crystal import CrystalEngine
from repro.engine.lookup import MISS, make_lookup
from repro.engine.ssb_queries import QUERIES
from repro.gpusim import GPUDevice
from repro.ssb.loader import load_lineorder


class TestLookup:
    def test_basic_probe(self):
        lu = make_lookup("t", np.array([10, 11, 12]), np.array([5, 6, 7]))
        assert list(lu.probe(np.array([12, 10]))) == [7, 5]

    def test_mask_marks_miss(self):
        lu = make_lookup(
            "t", np.array([1, 2, 3]), np.array([9, 9, 9]),
            mask=np.array([True, False, True]),
        )
        assert list(lu.probe(np.array([1, 2, 3]))) == [9, MISS, 9]

    def test_sparse_keys_leave_holes(self):
        lu = make_lookup("t", np.array([1, 5]))
        assert lu.probe(np.array([3]))[0] == MISS

    def test_default_payload_is_existence(self):
        lu = make_lookup("t", np.array([4]))
        assert lu.probe(np.array([4]))[0] == 0

    def test_out_of_range_probe(self):
        lu = make_lookup("t", np.array([1, 2]))
        with pytest.raises(IndexError):
            lu.probe(np.array([99]))

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError):
            make_lookup("t", np.array([], dtype=np.int64))

    def test_payload_shape_mismatch(self):
        with pytest.raises(ValueError):
            make_lookup("t", np.array([1, 2]), np.array([1]))


class TestPipeline:
    def test_load_returns_values(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        p = engine.pipeline("t")
        out = p.load("lo_quantity")
        assert np.array_equal(out, ssb_db.lineorder["lo_quantity"])

    def test_filter_narrows_live_count(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        p = engine.pipeline("t")
        q = p.load("lo_quantity")
        before = p.live_count
        p.filter(q < 10)
        assert p.live_count < before

    def test_filter_requires_full_mask(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        p = engine.pipeline("t")
        with pytest.raises(ValueError, match="every fact row"):
            p.filter(np.array([True]))

    def test_tile_skipping_reduces_traffic(self, ssb_db, none_store):
        keys = ssb_db.lineorder["lo_orderkey"]
        prefix = keys < np.quantile(keys, 0.01)

        def run(with_filter):
            engine = CrystalEngine(ssb_db, none_store, GPUDevice())
            p = engine.pipeline("t")
            p.load("lo_orderkey")
            if with_filter:
                # lo_orderkey is sorted: the filter deactivates most tiles.
                p.filter(prefix)
                assert p.tile_active.sum() < engine.num_tiles // 10
            p.load("lo_quantity")
            p.finish()
            return engine.device.global_bytes_moved

        assert run(True) < run(False) * 0.7

    def test_unclustered_filter_keeps_tiles_active(self, ssb_db, none_store):
        # The paper's point: selective filters on unclustered columns do
        # not reduce tile reads (bit-packed data lacks random access).
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        p = engine.pipeline("t")
        q = p.load("lo_quantity")
        p.filter(q == 7)  # ~2% selectivity, spread uniformly
        assert p.tile_active.all()

    def test_group_sum_respects_mask(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        p = engine.pipeline("t")
        q = p.load("lo_quantity")
        p.filter(q == 1)
        codes = np.zeros(engine.num_rows, dtype=np.int64)
        result = p.group_sum(codes, q, 1)
        assert result[0] == int(q[q == 1].sum())

    def test_group_sum_code_range_checked(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        p = engine.pipeline("t")
        codes = np.full(engine.num_rows, 5, dtype=np.int64)
        with pytest.raises(ValueError, match="range"):
            p.group_sum(codes, codes, 3)

    def test_finish_only_once(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        p = engine.pipeline("t")
        p.finish()
        with pytest.raises(RuntimeError):
            p.finish()
        with pytest.raises(RuntimeError):
            p.load("lo_quantity")

    def test_fused_pipeline_is_one_kernel(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        p = engine.pipeline("t")
        p.load("lo_quantity")
        p.load("lo_discount")
        p.finish()
        assert engine.device.kernel_count == 1

    def test_staged_pipeline_is_kernel_per_op(self, ssb_db):
        store = load_lineorder(ssb_db, "omnisci")
        engine = CrystalEngine(ssb_db, store, GPUDevice())
        p = engine.pipeline("t")
        q = p.load("lo_quantity")
        p.filter(q < 10)
        p.load("lo_discount")
        p.finish()
        assert engine.device.kernel_count == 3


class TestEngineAccounting:
    def test_compressed_scan_reads_fewer_bytes(self, ssb_db, none_store, gpu_star_store):
        def scan_bytes(store):
            engine = CrystalEngine(ssb_db, store, GPUDevice())
            p = engine.pipeline("t")
            p.load("lo_discount")  # 4.75 bits/int under GPU-*
            p.finish()
            return engine.device.global_bytes_moved

        assert scan_bytes(gpu_star_store) < scan_bytes(none_store) / 3

    def test_inline_decode_charges_compute(self, ssb_db, gpu_star_store):
        engine = CrystalEngine(ssb_db, gpu_star_store, GPUDevice())
        p = engine.pipeline("t")
        p.load("lo_orderdate")  # GPU-RFOR: heavy decode
        p.finish()
        assert engine.device.launches[-1].traffic.compute_ops > engine.num_rows * 10

    def test_query_result_bookkeeping(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        result = engine.run(QUERIES["q1.1"])
        assert result.name == "q1.1"
        assert result.system == "none"
        # One fused fact kernel: the flight-1 date join is expressed as
        # an exact datekey range, so no dimension build kernel runs.
        assert result.kernel_count == 1
        assert result.simulated_ms > 0
        assert result.scaled_ms(1.0) == pytest.approx(result.simulated_ms)

    def test_decompress_first_adds_kernels(self, ssb_db):
        store = load_lineorder(ssb_db, "nvcomp")
        engine = CrystalEngine(ssb_db, store, GPUDevice())
        result = engine.run(QUERIES["q1.1"])
        assert result.kernel_count > 5  # per-column cascades + build + fact

    def test_total_property(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        result = engine.run(QUERIES["q2.1"])
        assert result.total == sum(result.groups.values())

    def test_tile_read_bytes_cached(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        a = engine.tile_read_bytes("lo_quantity")
        b = engine.tile_read_bytes("lo_quantity")
        assert a is b

    def test_tile_read_bytes_cover_column(self, ssb_db, gpu_star_store):
        engine = CrystalEngine(ssb_db, gpu_star_store, GPUDevice())
        per_tile = engine.tile_read_bytes("lo_quantity")
        assert per_tile.size == engine.num_tiles
        enc = gpu_star_store["lo_quantity"].payload
        assert int(per_tile.sum()) >= enc.arrays["data"].nbytes
