"""Semantic result cache: exact/donor reuse, invalidation, serving.

The contract under test is *bit-identity*: a semcache-backed engine must
return exactly the answer a cold engine computes, whatever mix of cached
and fresh partials produced it — across codecs, worker counts, budget
pressure, and concurrent flushes.  Reuse is an optimization the stats
expose; staleness is a correctness bug these tests hunt directly.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.updates import UpdatableColumn
from repro.engine.crystal import CrystalEngine
from repro.engine.predicates import And, Equals, Range
from repro.engine.ssb_queries import QUERIES, make_flight1, make_scan
from repro.formats.registry import get_codec
from repro.gpusim import GPUDevice
from repro.serving.scheduler import QueryServer
from repro.serving.semcache import SemanticResultCache
from repro.ssb.dbgen import generate, sort_lineorder_by
from repro.ssb.loader import ColumnStore, StoredColumn, load_lineorder

GPU_CODECS = ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128")

# The dashboard drill-down mix: a year, its repeat, a month inside it, a
# week inside that, plus a cross-dimension widening that must NOT reuse.
YEAR = And((
    Range("lo_orderdate", 19930101, 19931231),
    Range("lo_discount", 1, 3),
    Range("lo_quantity", 0, 24),
))
MONTH = And((
    Range("lo_orderdate", 19930601, 19930630),
    Range("lo_discount", 1, 3),
    Range("lo_quantity", 0, 24),
))
# Wide enough that, date-sorted at SF 0.01 (~23 rows/day, 512-row
# tiles), whole tiles sit provably inside the window for donor transfer.
QUARTER = And((
    Range("lo_orderdate", 19930401, 19930630),
    Range("lo_discount", 1, 3),
    Range("lo_quantity", 0, 24),
))
WEEK = And((
    Range("lo_orderdate", 19930607, 19930613),
    Range("lo_discount", 1, 3),
    Range("lo_quantity", 0, 24),
))
WIDE_QTY = And((
    Range("lo_orderdate", 19930101, 19931231),
    Range("lo_discount", 1, 3),
))
DRILLDOWN = ("year", YEAR), ("year", YEAR), ("month", MONTH), ("week", WEEK), ("wide", WIDE_QTY)


@pytest.fixture(scope="module")
def sorted_db():
    """Date-clustered lineorder: zone maps can prove drill-down reuse."""
    return sort_lineorder_by(generate(scale_factor=0.01, seed=7), "lo_orderdate")


@pytest.fixture(scope="module")
def sorted_store(sorted_db):
    return load_lineorder(sorted_db, "gpu-star")


def _encoded_store(db, codec_name: str) -> ColumnStore:
    stored = {}
    for name in ("lo_orderdate", "lo_discount", "lo_quantity", "lo_extendedprice"):
        values = db.lineorder[name]
        enc = get_codec(codec_name).encode(values)
        stored[name] = StoredColumn(
            name, "gpu-star", values, enc, enc.nbytes, codec_name=codec_name
        )
    return ColumnStore(system="gpu-star", columns=stored)


def _cached_engine(db, store, workers=2, morsel_tiles=None, budget=None):
    engine = CrystalEngine(
        db, store, streaming=True, stream_workers=workers, morsel_tiles=morsel_tiles
    )
    engine.semcache = (
        SemanticResultCache() if budget is None else SemanticResultCache(budget)
    )
    return engine


class TestSemanticKey:
    def test_equivalent_spellings_share_key(self):
        a = make_scan("a", And((Range("lo_orderdate", 19930101, 19931231),
                                Range("lo_discount", 1, 3))))
        b = make_scan("b", And((Range("lo_discount", 1, 3),
                                And((Range("lo_orderdate", 19930101, 19931231),)))))
        assert a.semantic_key() == b.semantic_key()

    def test_point_range_equals_equals(self):
        a = make_scan("a", And((Range("lo_discount", 3, 3),)))
        b = make_scan("b", And((Equals("lo_discount", 3),)))
        assert a.semantic_key() == b.semantic_key()

    def test_different_filters_differ(self):
        a = make_scan("a", And((Range("lo_discount", 1, 3),)))
        b = make_scan("b", And((Range("lo_discount", 1, 4),)))
        assert a.semantic_key() != b.semantic_key()

    def test_registry_queries_have_keys(self):
        keys = {name: QUERIES[name].semantic_key() for name in QUERIES}
        assert len(set(keys.values())) == len(keys)  # all distinct
        # The flight-1 registry entries are plain predicate scans now, so
        # an identically-filtered ad-hoc scan coalesces with them.
        adhoc = make_flight1("q1.1-copy", 19930101, 19931231, 1, 3, 0, 24)
        assert adhoc.semantic_key() == QUERIES["q1.1"].semantic_key()

    def test_scan_rejects_unfilterable_column(self):
        with pytest.raises(ValueError, match="lo_revenue"):
            make_scan("bad", And((Range("lo_revenue", 0, 1),)))


# ---------------------------------------------------------------------------
# Bit-identity: warm answers equal cold answers, everywhere
# ---------------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("codec_name", GPU_CODECS)
    def test_drilldown_matches_cold_every_codec(self, sorted_db, codec_name):
        store = _encoded_store(sorted_db, codec_name)
        warm = _cached_engine(sorted_db, store, workers=2, morsel_tiles=1)
        for i, (label, pred) in enumerate(DRILLDOWN):
            q = make_scan(f"scan-{label}", pred)
            got = warm.run(q).groups
            cold = CrystalEngine(sorted_db, store, streaming=True).run(q).groups
            assert got == cold, (codec_name, label, i)

    @pytest.mark.parametrize("workers", (1, 4))
    def test_drilldown_matches_cold_every_worker_count(
        self, sorted_db, sorted_store, workers
    ):
        warm = _cached_engine(sorted_db, sorted_store, workers=workers, morsel_tiles=1)
        for label, pred in DRILLDOWN:
            q = make_scan(f"scan-{label}", pred)
            got = warm.run(q).groups
            cold = CrystalEngine(
                sorted_db, sorted_store, streaming=True, stream_workers=workers
            ).run(q).groups
            assert got == cold, (workers, label)

    def test_registry_flight1_through_cache(self, sorted_db, sorted_store):
        warm = _cached_engine(sorted_db, sorted_store)
        for name in ("q1.1", "q1.2", "q1.3", "q1.1"):
            got = warm.run(QUERIES[name]).groups
            cold = CrystalEngine(sorted_db, sorted_store, streaming=True)
            assert got == cold.run(QUERIES[name]).groups, name
        assert warm.semcache.stats()["semcache_hits"] >= 1


class TestExactReuse:
    def test_repeat_is_a_full_hit(self, sorted_db, sorted_store):
        engine = _cached_engine(sorted_db, sorted_store)
        q = make_scan("scan-year", YEAR)
        first = engine.run(q).groups
        second = engine.run(q).groups
        assert first == second
        stats = engine.semcache.stats()
        assert stats["semcache_hits"] == 1
        assert stats["semcache_misses"] == 1
        # The warm run executed zero fresh morsels.
        assert engine.last_stream_stats["cached_morsels"] == engine.last_stream_stats["morsels"]

    def test_spelling_variant_hits_same_entry(self, sorted_db, sorted_store):
        engine = _cached_engine(sorted_db, sorted_store)
        engine.run(make_scan("a", YEAR))
        variant = And(tuple(reversed(YEAR.predicates)))
        engine.run(make_scan("b", variant))
        stats = engine.semcache.stats()
        assert stats["semcache_hits"] == 1
        assert stats["semcache_entries"] == 1


class TestDonorReuse:
    def test_quarter_drilldown_reuses_year_partials(self, sorted_db, sorted_store):
        engine = _cached_engine(sorted_db, sorted_store, morsel_tiles=1)
        engine.run(make_scan("scan-year", YEAR))
        got = engine.run(make_scan("scan-quarter", QUARTER)).groups
        cold = CrystalEngine(sorted_db, sorted_store, streaming=True)
        assert got == cold.run(make_scan("scan-quarter", QUARTER)).groups
        stats = engine.semcache.stats()
        assert stats["semcache_donated_partials"] >= 1
        assert stats.get("semcache_partial_hits", 0) + stats.get("semcache_hits", 0) >= 1

    def test_widening_refuses_donation(self, sorted_db, sorted_store):
        # Dropping the quantity conjunct widens the row set: the year
        # partials exclude qty>24 rows the wide query needs, so zone maps
        # must refuse the transfer (quantity is unclustered — no tile is
        # all-inside qty<=24).
        engine = _cached_engine(sorted_db, sorted_store, morsel_tiles=1)
        engine.run(make_scan("scan-year", YEAR))
        got = engine.run(make_scan("scan-wide", WIDE_QTY)).groups
        cold = CrystalEngine(sorted_db, sorted_store, streaming=True)
        assert got == cold.run(make_scan("scan-wide", WIDE_QTY)).groups
        assert "semcache_donated_partials" not in engine.semcache.stats()

    def test_unsorted_data_cannot_prove_reuse(self, ssb_db):
        # Same drill-down on unclustered dates: every tile spans the full
        # date domain, so nothing is provable and nothing transfers —
        # but the answer is still exact.
        store = load_lineorder(ssb_db, "gpu-star")
        engine = _cached_engine(ssb_db, store, morsel_tiles=1)
        engine.run(make_scan("scan-year", YEAR))
        got = engine.run(make_scan("scan-quarter", QUARTER)).groups
        cold = CrystalEngine(ssb_db, store, streaming=True)
        assert got == cold.run(make_scan("scan-quarter", QUARTER)).groups
        assert "semcache_donated_partials" not in engine.semcache.stats()

    def test_promoted_spans_hit_without_donor_scan(self, sorted_db, sorted_store):
        engine = _cached_engine(sorted_db, sorted_store, morsel_tiles=1)
        engine.run(make_scan("scan-year", YEAR))
        engine.run(make_scan("scan-quarter", QUARTER))
        donated = engine.semcache.stats()["semcache_donated_partials"]
        # The repeat finds the donated spans under its own signature.
        engine.run(make_scan("scan-quarter", QUARTER))
        stats = engine.semcache.stats()
        assert stats["semcache_donated_partials"] == donated
        assert stats["semcache_hits"] >= 1


# ---------------------------------------------------------------------------
# Invalidation: flushes can never leave a stale partial servable
# ---------------------------------------------------------------------------


def _matching_row(db) -> int:
    d = db.lineorder
    mask = (
        (d["lo_orderdate"] >= 19930101) & (d["lo_orderdate"] <= 19931231)
        & (d["lo_discount"] >= 1) & (d["lo_discount"] <= 3)
        & (d["lo_quantity"] <= 24)
    )
    rows = np.flatnonzero(mask)
    assert rows.size, "workload fixture must select at least one row"
    return int(rows[0])


class TestInvalidation:
    def test_flush_drops_partials_and_serves_fresh(self, sorted_db):
        store = load_lineorder(sorted_db, "gpu-star")
        engine = _cached_engine(sorted_db, store)
        device = GPUDevice()
        ucol = UpdatableColumn(sorted_db.lineorder["lo_extendedprice"])
        engine.bind_updatable("lo_extendedprice", ucol)
        q = make_scan("scan-year", YEAR)
        before = engine.run(q).groups

        row = _matching_row(sorted_db)
        ucol.update(row, ucol.read(row) + 10_000_000)
        ucol.flush(device)

        after = engine.run(q).groups
        assert after != before  # the update is visible
        cold = CrystalEngine(sorted_db, store, streaming=True)
        assert after == cold.run(q).groups  # and exactly right
        stats = engine.semcache.stats()
        assert stats["semcache_invalidations"] >= 1
        assert stats["semcache_invalidated_partials"] >= 1

    def test_epoch_bumps_only_dependent_entries(self, sorted_db, sorted_store):
        engine = _cached_engine(sorted_db, sorted_store)
        engine.run(make_scan("scan-year", YEAR))
        dropped = engine.semcache.invalidate_column("lo_revenue")
        assert dropped == 0  # scans do not read lo_revenue
        assert engine.semcache.stats()["semcache_entries"] == 1
        dropped = engine.semcache.invalidate_column("lo_quantity")
        assert dropped == 1
        assert engine.semcache.stats()["semcache_entries"] == 0

    def test_flush_storm_never_serves_stale(self, sorted_db):
        """Concurrent queries racing flushes: every answer matches some
        consistent epoch, and post-storm answers match the final bytes."""
        store = load_lineorder(sorted_db, "gpu-star")
        server = QueryServer(
            sorted_db, store, streaming=True, stream_workers=2,
            semantic_cache=True,
        )
        device = GPUDevice()
        ucol = UpdatableColumn(sorted_db.lineorder["lo_extendedprice"])
        server.engine.bind_updatable("lo_extendedprice", ucol)
        q = make_scan("scan-year", YEAR)
        row = _matching_row(sorted_db)

        def reference() -> dict[int, int]:
            return CrystalEngine(sorted_db, store, streaming=True).run(q).groups

        # Epoch 0 reference, then flush between query waves, snapshotting
        # a reference under the engine lock after each flush (the lock
        # orders the flush against in-flight executions, exactly as a
        # maintenance path must).
        references = [reference()]
        server.start()
        results: list[dict[int, int]] = []
        errors: list[Exception] = []

        def client(n: int) -> None:
            try:
                for _ in range(n):
                    res = server.query(q).result(timeout=60)
                    assert res.ok, res.error
                    results.append(res.groups)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(4,)) for _ in range(3)]
        for t in threads:
            t.start()
        for bump in (1, 2, 3):
            with server._engine_lock:
                ucol.update(row, ucol.read(row) + 10_000_000 * bump)
                ucol.flush(device)
                references.append(reference())
        for t in threads:
            t.join()
        final = server.query(q).result(timeout=60)
        server.stop()
        assert not errors, errors
        # Zero stale reads: every served answer is one of the epoch
        # references — a stale partial merged with fresh data would be a
        # mixture matching none of them.
        distinct = {tuple(sorted(r.items())) for r in references}
        assert len(distinct) == len(references)  # each flush changed the answer
        for groups in results:
            assert tuple(sorted(groups.items())) in distinct
        assert final.ok and final.groups == references[-1]


# ---------------------------------------------------------------------------
# Budget pressure
# ---------------------------------------------------------------------------


class TestBudget:
    def test_resident_bytes_bounded(self, sorted_db, sorted_store):
        budget = 400
        engine = _cached_engine(sorted_db, sorted_store, budget=budget)
        for label, pred in DRILLDOWN:
            engine.run(make_scan(f"scan-{label}", pred))
        stats = engine.semcache.stats()
        assert 0 < stats["semcache_resident_bytes"] <= budget

    def test_budget_too_small_for_any_partial(self, sorted_db, sorted_store):
        engine = _cached_engine(sorted_db, sorted_store, budget=64)
        q = make_scan("scan-year", YEAR)
        first = engine.run(q).groups
        second = engine.run(q).groups  # nothing cached: full re-execution
        assert first == second
        stats = engine.semcache.stats()
        assert stats["semcache_install_rejections"] >= 1
        assert stats["semcache_resident_bytes"] == 0
        assert stats["semcache_misses"] == 2

    def test_eviction_keeps_answers_exact(self, sorted_db, sorted_store):
        engine = _cached_engine(sorted_db, sorted_store, budget=400)
        for _round in range(2):
            for label, pred in DRILLDOWN:
                q = make_scan(f"scan-{label}", pred)
                got = engine.run(q).groups
                cold = CrystalEngine(sorted_db, sorted_store, streaming=True)
                assert got == cold.run(q).groups, label


# ---------------------------------------------------------------------------
# Server integration: coalescing and configuration
# ---------------------------------------------------------------------------


class TestServerIntegration:
    def test_semantic_cache_requires_streaming(self, sorted_db, sorted_store):
        with pytest.raises(ValueError, match="streaming"):
            QueryServer(sorted_db, sorted_store, semantic_cache=True)

    def test_equivalent_spellings_coalesce(self, sorted_db, sorted_store):
        # Two ad-hoc requests with the same rows under different
        # spellings land in one drain window and execute once.
        server = QueryServer(
            sorted_db, sorted_store, streaming=True, semantic_cache=True
        )
        a = make_scan("spelling-a", YEAR)
        b = make_scan("spelling-b", And(tuple(reversed(YEAR.predicates))))
        fa, fb = server.query(a), server.query(b)
        server.drain()
        ra, rb = fa.result(), fb.result()
        assert ra.ok and rb.ok
        assert ra.batch_size == rb.batch_size == 2
        assert ra.groups == rb.groups
        assert server.metrics.snapshot()["server_batched_requests"] >= 1

    def test_warm_queries_hit_through_server(self, sorted_db, sorted_store):
        server = QueryServer(
            sorted_db, sorted_store, streaming=True, semantic_cache=True
        )
        q = make_scan("scan-year", YEAR)
        server.query(q)
        server.drain()
        f = server.query(q)
        server.drain()
        assert f.result().ok
        snap = server.metrics_snapshot()
        assert snap["semcache_hits"] == 1
        assert snap["semcache_queries"] == 2

    def test_server_without_cache_has_no_semcache(self, sorted_db, sorted_store):
        server = QueryServer(sorted_db, sorted_store, streaming=True)
        assert server.semcache is None
        assert server.engine.semcache is None
