"""Workload-adaptive codec tiering: decayed heat counters, the
cross-codec swap matrix, and atomic hot-swap under live traffic."""

import os
import threading

import numpy as np
import pytest

from repro.core.updates import UpdatableColumn
from repro.formats.registry import get_codec
from repro.gpusim import GPUDevice
from repro.serving import (
    CodecTieringManager,
    QueryServer,
    ServeRequest,
    TieringPolicy,
)
from repro.serving.metrics import MetricsRegistry
from repro.serving.tiering import HOT_CODECS, TIERS
from repro.ssb.dbgen import generate
from repro.ssb.loader import load_lineorder


@pytest.fixture(scope="module")
def db():
    return generate(scale_factor=0.002, seed=7)


def fresh_manager(db, store, policy=None, metrics=None):
    """A manager wired to nothing but the store (no engine pools)."""
    return CodecTieringManager(
        store,
        engines=(),
        device=GPUDevice(),
        metrics=metrics,
        policy=policy if policy is not None else TieringPolicy(),
    )


class TestDecayedCounters:
    """The MetricsRegistry EWMA counters the heat scoring rides on."""

    def test_touch_accumulates_and_decays(self):
        reg = MetricsRegistry()
        reg.touch("heat", 4.0, at=0.0, half_life=10.0)
        assert reg.decayed_value("heat", now=0.0, half_life=10.0) == 4.0
        # One half-life later, half the heat is gone...
        assert reg.decayed_value("heat", now=10.0, half_life=10.0) == pytest.approx(2.0)
        # ...and a new touch decays the old value before adding.
        got = reg.touch("heat", 1.0, at=10.0, half_life=10.0)
        assert got == pytest.approx(3.0)

    def test_labels_keep_columns_separate(self):
        reg = MetricsRegistry()
        reg.touch("heat", 2.0, at=0.0, half_life=5.0, labels={"column": "a"})
        reg.touch("heat", 7.0, at=0.0, half_life=5.0, labels={"column": "b"})
        assert reg.decayed_value(
            "heat", now=0.0, half_life=5.0, labels={"column": "a"}
        ) == 2.0
        assert reg.decayed_value(
            "heat", now=0.0, half_life=5.0, labels={"column": "b"}
        ) == 7.0

    def test_time_never_runs_backwards(self):
        reg = MetricsRegistry()
        reg.touch("heat", 1.0, at=100.0, half_life=10.0)
        # An out-of-order touch is clamped to the last-seen timestamp
        # instead of "undecaying" the counter.
        reg.touch("heat", 1.0, at=50.0, half_life=10.0)
        assert reg.decayed_value("heat", now=100.0, half_life=10.0) == 2.0

    def test_half_life_must_be_positive(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.touch("heat", 1.0, at=0.0, half_life=0.0)

    def test_snapshot_scrapes_do_not_stall_touchers(self):
        # Copy-on-scrape: decayed_snapshot copies the dict items under
        # the lock and does the pow() projection outside it, so frequent
        # scrapes never starve concurrent touch() writers.
        reg = MetricsRegistry()
        for i in range(2000):
            reg.touch(f"heat{i}", 1.0, at=0.0, half_life=10.0)
        progressed = []
        stop = threading.Event()

        def writer():
            t = 0.0
            while not stop.is_set():
                t += 1.0
                reg.touch("heat0", 1.0, at=t, half_life=10.0)
                progressed.append(t)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snap = reg.decayed_snapshot(now=1e9, half_life=10.0)
                assert len(snap) == 2000
        finally:
            stop.set()
            thread.join()
        assert progressed, "writer made no progress during scrapes"


class TestSwapMatrix:
    """Every GPU tile codec, re-encoded into every tier and back,
    bit-identical at each hop."""

    @pytest.mark.parametrize("codec_name", HOT_CODECS)
    @pytest.mark.parametrize("target", TIERS)
    def test_codec_to_tier_and_back(self, db, tmp_path, codec_name, target):
        store = load_lineorder(db, "gpu-star")
        name = "lo_quantity"
        col = store[name]
        reference = np.asarray(col.values).copy()
        # Seed the column under this specific codec.
        enc = get_codec(codec_name).encode(col.values)
        store.swap_column(
            name,
            type(col)(
                name=name, system=col.system, values=col.values,
                payload=enc, nbytes=enc.nbytes, codec_name=codec_name,
            ),
        )
        manager = fresh_manager(
            db, store, TieringPolicy(spill_dir=str(tmp_path))
        )
        manager._move(name, target, now=0.0)
        moved = store[name]
        assert moved.tier == target
        if target == "hot":
            assert moved.codec_name in HOT_CODECS
            decoded = get_codec(moved.codec_name).decode(moved.payload)
        elif target == "cold":
            assert moved.codec_name == ""
            assert moved.payload is None and moved.spill_path is not None
            assert os.path.exists(moved.spill_path)
            from repro.core.nvcomp import decode_nvcomp

            decoded = decode_nvcomp(store.ensure_payload(name))
        else:
            decoded = get_codec(moved.codec_name).decode(moved.payload)
        assert np.array_equal(np.asarray(decoded, dtype=np.int64), reference)
        # ...and back to warm: the planner's static choice again.
        manager._move(name, "warm", now=1.0)
        back = store[name]
        assert back.tier == "warm" if target != "warm" else True
        assert np.array_equal(
            get_codec(back.codec_name).decode(back.payload), reference
        ) or target == "warm"

    def test_epochs_bump_on_every_swap(self, db):
        store = load_lineorder(db, "gpu-star")
        manager = fresh_manager(db, store)
        e0 = store["lo_tax"].epoch
        manager._move("lo_tax", "hot", now=0.0)
        assert store["lo_tax"].epoch == e0 + 1
        manager._move("lo_tax", "cold", now=1.0)
        assert store["lo_tax"].epoch == e0 + 2

    def test_budget_blocks_hot_promotion(self, db):
        store = load_lineorder(db, "gpu-star")
        metrics = MetricsRegistry()
        manager = CodecTieringManager(
            store,
            engines=(),
            device=GPUDevice(),
            metrics=metrics,
            policy=TieringPolicy(bytes_budget_factor=1.0),
        )
        # Shrink the recorded baseline so no hot encoding can fit: the
        # guard must skip the move whole, never publish a partial.
        manager.baseline_bytes = store["lo_orderkey"].nbytes
        before = store["lo_orderkey"]
        moved = manager._move("lo_orderkey", "hot", now=0.0)
        assert moved == 0
        assert store["lo_orderkey"] is before
        assert metrics.counter("tiering_budget_skips") == 1


class TestRunOnce:
    def test_heat_ranking_assigns_all_three_tiers(self, db):
        store = load_lineorder(db, "gpu-star")
        metrics = MetricsRegistry()
        manager = CodecTieringManager(
            store,
            engines=(),
            device=GPUDevice(),
            metrics=metrics,
            policy=TieringPolicy(
                hot_count=1, hot_min_accesses=4.0, cold_max_accesses=0.5,
                half_life_ms=1e6, maintenance_interval_ms=0.0,
            ),
        )
        manager.record_access(("lo_revenue",), amount=10.0, at=0.0)
        manager.record_access(("lo_quantity",), amount=2.0, at=0.0)
        swaps = manager.run_once(now=0.0)
        assert swaps > 0
        tiers = manager.tiers()
        assert tiers["lo_revenue"] == "hot"
        assert tiers["lo_quantity"] == "warm"
        # Untouched columns all fell to the entropy tier.
        assert tiers["lo_tax"] == "cold"
        assert metrics.gauge_value("tiering_hot_columns") == 1
        assert metrics.counter("tiering_swaps") == swaps

    def test_maybe_run_respects_interval(self, db):
        store = load_lineorder(db, "gpu-star")
        manager = fresh_manager(
            db, store, TieringPolicy(maintenance_interval_ms=10.0)
        )
        assert manager.maybe_run(now=0.0) >= 0  # first pass runs
        ran_again = manager.maybe_run(now=5.0)
        assert ran_again == 0  # inside the interval: skipped

    def test_min_dwell_hysteresis(self, db):
        store = load_lineorder(db, "gpu-star")
        manager = fresh_manager(db, store, TieringPolicy(min_dwell_ms=100.0))
        assert manager._move("lo_tax", "cold", now=0.0) == 1
        # Immediately reversing direction is suppressed by the dwell.
        assert manager._move("lo_tax", "warm", now=1.0) == 0
        assert manager._move("lo_tax", "warm", now=200.0) == 1


class TestFlushRacesSwap:
    def test_flush_wins_the_epoch_cas(self, db):
        """A flush that lands between the manager's snapshot and its
        publish makes the re-encode's compare-and-swap fail: the flushed
        (newer) image survives, the stale re-encode is dropped."""
        store = load_lineorder(db, "gpu-star")
        metrics = MetricsRegistry()
        manager = CodecTieringManager(
            store, engines=(), device=GPUDevice(), metrics=metrics
        )
        name = "lo_quantity"
        updatable = UpdatableColumn(store[name].values)
        updatable.update(0, 99)
        device = GPUDevice()
        original_build = manager._build

        def build_with_racing_flush(col, target):
            new = original_build(col, target)
            # The flush publishes while the re-encode is still in
            # flight: epoch bumps past the manager's snapshot.
            updatable.flush(device)
            flushed = store[name]
            store.swap_column(
                name,
                type(flushed)(
                    name=name, system=flushed.system,
                    values=updatable.values.copy(),
                    payload=updatable.encoded,
                    nbytes=updatable.encoded.nbytes,
                    codec_name=updatable.codec_name,
                ),
            )
            return new

        manager._build = build_with_racing_flush
        assert manager._move(name, "cold", now=0.0) == 0
        assert metrics.counter("tiering_swap_races") == 1
        assert metrics.counter("tiering_swaps") == 0
        final = store[name]
        assert final.tier == "warm"  # the flush's image, not the demotion
        assert final.values[0] == 99


SWAP_COLUMNS = ("lo_quantity", "lo_discount", "lo_extendedprice")


class TestSwapUnderLiveTraffic:
    """Background swaps racing streaming queries and lookups must never
    surface a torn or stale read, at 1 shard and at 4."""

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_bit_identical_under_concurrent_swaps(self, db, tmp_path, num_shards):
        store = load_lineorder(db, "gpu-star")
        expected_lookup = {
            name: np.asarray(store[name].values).copy() for name in SWAP_COLUMNS
        }
        server = QueryServer(
            db,
            store,
            budget_bytes=256_000_000,
            streaming=True,
            num_shards=num_shards,
            tiering=TieringPolicy(
                spill_dir=str(tmp_path), maintenance_interval_ms=0.0
            ),
        )
        server.start()
        # Reference answers before any swap.
        expected_q = server.query("q1.1", block_s=10.0).result(60).groups

        errors: list = []
        stop = threading.Event()

        def client(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                if rng.random() < 0.5:
                    result = server.query("q1.1", block_s=10.0).result(60)
                    if not result.ok or result.groups != expected_q:
                        errors.append(("q1.1", result.status))
                        return
                else:
                    name = SWAP_COLUMNS[int(rng.integers(len(SWAP_COLUMNS)))]
                    idx = rng.integers(0, db.num_lineorder_rows, size=64)
                    result = server.lookup(name, idx, block_s=10.0).result(60)
                    if not result.ok or not np.array_equal(
                        result.values, expected_lookup[name][idx]
                    ):
                        errors.append((name, result.status))
                        return

        threads = [threading.Thread(target=client, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        try:
            # Churn every swap column through the full tier cycle while
            # the clients hammer the server.
            for cycle_tier in ("hot", "cold", "warm", "hot", "warm"):
                for name in SWAP_COLUMNS:
                    server.tiering._move(name, cycle_tier, now=float(len(errors)))
        finally:
            stop.set()
            for t in threads:
                t.join()
        server.stop()
        assert not errors, errors[:3]
        snap = server.metrics_snapshot()
        assert snap.get("tiering_swaps", 0) > 0

    def test_scheduler_drives_heat_and_pins_hot(self, db):
        """End-to-end through the scheduler: repeated lookups make a
        column hot and its decoded image lands pinned in the pool."""
        store = load_lineorder(db, "gpu-star")
        server = QueryServer(
            db,
            store,
            budget_bytes=256_000_000,
            streaming=True,
            tiering=TieringPolicy(
                hot_count=1, hot_min_accesses=3.0, cold_max_accesses=0.0,
                half_life_ms=1e6, maintenance_interval_ms=0.0,
            ),
        )
        rng = np.random.default_rng(5)
        idx = rng.integers(0, db.num_lineorder_rows, size=128)
        reference = np.asarray(store["lo_revenue"].values)[idx]
        for _ in range(6):
            results = server.serve(
                [ServeRequest("lookup", "lo_revenue", indices=idx)]
            )
            assert results[0].ok
            assert np.array_equal(results[0].values, reference)
        assert server.tiering.heat("lo_revenue") >= 3.0
        server.tiering.run_once()
        assert store["lo_revenue"].tier == "hot"
        assert server.engine.pinned_decoded("lo_revenue") is not None
        # Served from the pinned image, still bit-identical.
        results = server.serve(
            [ServeRequest("lookup", "lo_revenue", indices=idx)]
        )
        assert np.array_equal(results[0].values, reference)
        server.stop()
