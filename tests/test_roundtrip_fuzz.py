"""Property-style round-trip fuzz: adversarial value distributions
through encode → framed container → decode for every tile codec.

Hand-rolled seeded generators instead of a hypothesis dependency: each
distribution targets a codec weak spot (outliers blow up FOR references,
negatives exercise zigzag/reference arithmetic, int64 extremes overflow
naive deltas, all-equal hits the bitwidth-0 path, sawtooth defeats RLE).
The property: for every distribution × codec × size, either encode
rejects the input with a clean ``ValueError``/``OverflowError`` or the
full pipeline — including the serialized container and the out-buffer
decode paths — returns bit-identical values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import set_checksums, set_verify_mode
from repro.formats.container import (
    checked_decode,
    dumps,
    encode_with_checksums,
    loads,
)
from repro.formats.base import TileCodec
from repro.formats.registry import codec_names, get_codec

TILE_CODECS = ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128")
SIZES = (0, 1, 127, 4096, 4097, 10_000)
SEEDS = (0, 1)


@pytest.fixture(autouse=True)
def _hardened():
    prev_checks = set_checksums(True)
    prev_mode = set_verify_mode("always")
    yield
    set_checksums(prev_checks)
    set_verify_mode(prev_mode)


def _dist_outliers(rng, n):
    values = rng.integers(0, 100, size=n).astype(np.int64)
    if n:
        hot = rng.integers(0, n, size=max(1, n // 500))
        values[hot] = rng.integers(1 << 40, 1 << 50, size=hot.size)
    return values


def _dist_negatives(rng, n):
    return rng.integers(-(1 << 31), 1 << 31, size=n).astype(np.int64)


def _dist_int64_extremes(rng, n):
    values = rng.integers(-(1 << 62), 1 << 62, size=n).astype(np.int64)
    if n >= 2:
        values[0] = np.iinfo(np.int64).min + 1
        values[-1] = np.iinfo(np.int64).max - 1
    return values


def _dist_all_equal(rng, n):
    return np.full(n, int(rng.integers(-1000, 1000)), dtype=np.int64)


def _dist_sawtooth(rng, n):
    period = int(rng.integers(2, 97))
    return (np.arange(n, dtype=np.int64) % period) * int(rng.integers(1, 9))


def _dist_sorted_runs(rng, n):
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    runs = rng.integers(1, 50, size=max(1, n // 10))
    values = np.repeat(np.cumsum(rng.integers(0, 5, size=runs.size)), runs)
    return values[:n].astype(np.int64) if values.size >= n else np.resize(
        values, n
    ).astype(np.int64)


DISTRIBUTIONS = {
    "outliers": _dist_outliers,
    "negatives": _dist_negatives,
    "int64-extremes": _dist_int64_extremes,
    "all-equal": _dist_all_equal,
    "sawtooth": _dist_sawtooth,
    "sorted-runs": _dist_sorted_runs,
}

#: Encode-time rejection is an acceptable outcome for hostile inputs —
#: wrong decoded values never are.
CLEAN_REJECTIONS = (ValueError, OverflowError, NotImplementedError)


@pytest.mark.parametrize("codec_name", TILE_CODECS)
@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("seed", SEEDS)
def test_container_roundtrip_tile_codecs(codec_name, dist, seed):
    rng = np.random.default_rng(seed)
    for n in SIZES:
        values = DISTRIBUTIONS[dist](rng, n)
        try:
            enc = encode_with_checksums(codec_name, values, column="fuzz")
        except CLEAN_REJECTIONS:
            continue  # clean refusal at encode: acceptable
        blob = dumps(enc)
        assert isinstance(blob, (bytes, bytearray))
        back = loads(bytes(blob), column="fuzz")
        got = checked_decode(back, column="fuzz")
        assert got.shape == values.shape, f"{dist}/n={n}: shape mismatch"
        assert np.array_equal(np.asarray(got, dtype=np.int64), values), (
            f"{codec_name}/{dist}/n={n}/seed={seed}: round-trip mismatch"
        )


@pytest.mark.parametrize("codec_name", TILE_CODECS)
@pytest.mark.parametrize("dist", ("outliers", "negatives", "sawtooth"))
def test_out_buffer_paths_match_allocating(codec_name, dist):
    rng = np.random.default_rng(5)
    codec = get_codec(codec_name)
    assert isinstance(codec, TileCodec)
    for n in (4096, 10_000):
        values = DISTRIBUTIONS[dist](rng, n)
        try:
            enc = encode_with_checksums(codec_name, values, column="fuzz")
        except CLEAN_REJECTIONS:
            continue
        n_tiles = codec.num_tiles(enc)
        per_tile = codec.tile_elements(enc)
        # Full range through decode_tiles_into.
        out = np.empty(n_tiles * per_tile, dtype=np.int64)
        written = codec.decode_tiles_into(enc, np.arange(n_tiles), out)
        assert written == values.size
        assert np.array_equal(out[:written], values)
        # Non-contiguous subset, reusing the (dirty) buffer.
        subset = np.arange(0, n_tiles, 2)
        written = codec.decode_tiles_into(enc, subset, out)
        expect = codec.decode_tiles(enc, subset)
        assert np.array_equal(out[:written], np.asarray(expect, np.int64))
        # Range variant.
        lo, hi = 0, max(1, n_tiles // 2)
        written = codec.decode_range_into(enc, lo, hi, out)
        expect = codec.decode_range(enc, lo, hi)
        assert np.array_equal(out[:written], np.asarray(expect, np.int64))


@pytest.mark.parametrize("codec_name", sorted(set(codec_names()) - set(TILE_CODECS)))
def test_container_roundtrip_baseline_codecs(codec_name):
    """Baselines ride the same container: one distribution sweep each."""
    rng = np.random.default_rng(2)
    for dist in ("outliers", "negatives", "all-equal"):
        values = DISTRIBUTIONS[dist](rng, 4096)
        try:
            enc = encode_with_checksums(codec_name, values, column="fuzz")
        except CLEAN_REJECTIONS:
            continue
        back = loads(dumps(enc), column="fuzz")
        got = checked_decode(back, column="fuzz")
        assert np.array_equal(np.asarray(got, dtype=np.int64), values), (
            f"{codec_name}/{dist}: container round-trip mismatch"
        )
