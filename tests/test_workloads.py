"""Synthetic workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    d1_sorted,
    d2_normal,
    d3_zipf,
    runs,
    sorted_keys,
    uniform_bitwidth,
)


class TestUniformBitwidth:
    @pytest.mark.parametrize("bits", [1, 2, 16, 31, 32])
    def test_range(self, bits):
        data = uniform_bitwidth(bits, 10_000)
        assert data.min() >= 0
        assert int(data.max()) < 2**bits
        if bits <= 16:
            assert int(data.max()).bit_length() == bits  # actually uses them

    def test_deterministic(self):
        assert np.array_equal(uniform_bitwidth(8, 100, 1), uniform_bitwidth(8, 100, 1))

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            uniform_bitwidth(0, 10)
        with pytest.raises(ValueError):
            uniform_bitwidth(33, 10)


class TestD1:
    def test_sorted(self):
        data = d1_sorted(1000, 50_000)
        assert np.all(np.diff(data) >= 0)

    def test_cardinality_tracked(self):
        few = d1_sorted(4, 10_000)
        many = d1_sorted(2**20, 100_000)
        assert np.unique(few).size <= 4
        assert np.unique(many).size > 50_000

    def test_low_cardinality_long_runs(self):
        data = d1_sorted(4, 10_000)
        changes = np.count_nonzero(np.diff(data)) + 1
        assert 10_000 / changes > 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            d1_sorted(0, 10)


class TestD2:
    def test_mean_and_sigma(self):
        data = d2_normal(2**20, 100_000)
        assert abs(data.mean() - 2**20) < 5
        assert 18 < data.std() < 22

    def test_clamped_non_negative(self):
        data = d2_normal(0, 10_000)
        assert data.min() >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            d2_normal(-5, 10)


class TestD3:
    def test_skew_increases_with_alpha(self):
        mild = d3_zipf(1.2, 50_000)
        steep = d3_zipf(5.0, 50_000)
        # Higher alpha concentrates mass on the smallest codes.
        assert (steep == 0).mean() > (mild == 0).mean()
        assert steep.max() < mild.max()

    def test_codes_in_vocabulary(self):
        data = d3_zipf(2.0, 10_000, vocabulary=500)
        assert data.max() < 500

    def test_alpha_must_normalize(self):
        with pytest.raises(ValueError):
            d3_zipf(1.0, 100)


class TestHelpers:
    def test_sorted_keys(self):
        keys = sorted_keys(100)
        assert keys[0] == 1 and keys[-1] == 100

    def test_runs_average_length(self):
        data = runs(50, 100_000)
        changes = np.count_nonzero(np.diff(data)) + 1
        assert 25 < 100_000 / changes < 100

    def test_runs_exact_size(self):
        assert runs(7, 12_345).size == 12_345

    def test_runs_validation(self):
        with pytest.raises(ValueError):
            runs(0, 100)
