"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in a subprocess with the repository defaults (the
slowest, ssb_analytics, gets a small explicit scale factor).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "compression_advisor.py",
    "coprocessor_pipeline.py",
    "updates_and_persistence.py",
    "out_of_core_cache.py",
    "explain_queries.py",
    "serving_layer.py",
]


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_ssb_analytics_runs_small():
    result = _run("ssb_analytics.py", "0.005")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "identical answers" in result.stdout
    assert "geomean" in result.stdout


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = set(FAST_EXAMPLES) | {"ssb_analytics.py"}
    assert on_disk == covered, f"untested examples: {on_disk - covered}"
