"""SSB generator: schema invariants, determinism, Figure-9 distributions."""

import numpy as np
import pytest

from repro.core.stats import ColumnStats
from repro.ssb import schema
from repro.ssb.dbgen import generate
from repro.ssb.loader import SYSTEMS, compress_column, load_lineorder


class TestSchema:
    def test_geography_hierarchy(self):
        assert schema.nation_of_city(37) == 3
        assert schema.region_of_nation(13) == 2
        assert schema.NUM_CITIES == 250
        assert schema.NUM_NATIONS == 25

    def test_part_hierarchy(self):
        assert schema.category_of_brand(279) == 6
        assert schema.mfgr_of_category(6) == 1
        assert schema.NUM_BRANDS == 1000

    def test_parts_for_sf(self):
        assert schema.parts_for_sf(1) == 200_000
        assert schema.parts_for_sf(4) == 600_000
        with pytest.raises(ValueError):
            schema.parts_for_sf(0)


class TestDbgen:
    def test_deterministic(self):
        a = generate(scale_factor=0.01, seed=3)
        b = generate(scale_factor=0.01, seed=3)
        for col in a.lineorder:
            assert np.array_equal(a.lineorder[col], b.lineorder[col])

    def test_seed_changes_data(self):
        a = generate(scale_factor=0.01, seed=3)
        b = generate(scale_factor=0.01, seed=4)
        assert not np.array_equal(a.lineorder["lo_partkey"], b.lineorder["lo_partkey"])

    def test_date_dimension_shape(self, ssb_db):
        d = ssb_db.date
        assert d["d_datekey"].size == 2557  # 1992-1998 with two leap years
        assert d["d_year"].min() == 1992 and d["d_year"].max() == 1998
        assert np.all(np.diff(d["d_datekey"]) > 0)

    def test_datekey_format(self, ssb_db):
        key = int(ssb_db.date["d_datekey"][59])  # 1992-02-29 (leap year)
        assert key == 19920229

    def test_foreign_keys_resolve(self, ssb_db):
        lo = ssb_db.lineorder
        assert lo["lo_custkey"].max() <= ssb_db.customer["c_custkey"].max()
        assert lo["lo_suppkey"].max() <= ssb_db.supplier["s_suppkey"].max()
        assert lo["lo_partkey"].max() <= ssb_db.part["p_partkey"].max()
        assert np.isin(lo["lo_orderdate"], ssb_db.date["d_datekey"]).all()
        assert np.isin(lo["lo_commitdate"], ssb_db.date["d_datekey"]).all()

    def test_orderkey_sorted_with_runs(self, ssb_db):
        stats = ColumnStats.from_values(ssb_db.lineorder["lo_orderkey"])
        assert stats.is_sorted
        assert 2.5 < stats.avg_run_length < 6

    def test_per_order_columns_have_runs(self, ssb_db):
        # The Figure 9 story: orderdate/custkey/ordtotalprice repeat per
        # order, giving average run length ~4.
        for col in ("lo_orderdate", "lo_custkey", "lo_ordtotalprice"):
            stats = ColumnStats.from_values(ssb_db.lineorder[col])
            assert stats.avg_run_length > 2.5, col

    def test_line_numbers_within_orders(self, ssb_db):
        lo = ssb_db.lineorder
        first_of_order = np.flatnonzero(np.diff(lo["lo_orderkey"], prepend=-1))
        assert np.all(lo["lo_linenumber"][first_of_order] == 1)
        assert lo["lo_linenumber"].max() <= schema.MAX_LINES_PER_ORDER

    def test_value_domains(self, ssb_db):
        lo = ssb_db.lineorder
        assert lo["lo_quantity"].min() >= 1 and lo["lo_quantity"].max() <= 50
        assert lo["lo_discount"].min() >= 0 and lo["lo_discount"].max() <= 10
        assert lo["lo_tax"].min() >= 0 and lo["lo_tax"].max() <= 8

    def test_derived_columns_consistent(self, ssb_db):
        lo = ssb_db.lineorder
        price = ssb_db.part["p_price"][lo["lo_partkey"] - 1]
        assert np.array_equal(lo["lo_extendedprice"], lo["lo_quantity"] * price)
        expected_rev = lo["lo_extendedprice"] * (100 - lo["lo_discount"]) // 100
        assert np.array_equal(lo["lo_revenue"], expected_rev)

    def test_ordtotalprice_sums_lines(self, ssb_db):
        lo = ssb_db.lineorder
        order_ids = lo["lo_orderkey"]
        totals = np.bincount(order_ids, weights=lo["lo_extendedprice"])
        assert np.array_equal(
            lo["lo_ordtotalprice"], totals[order_ids].astype(np.int64)
        )

    def test_commitdate_after_orderdate(self, ssb_db):
        lo = ssb_db.lineorder
        assert np.all(lo["lo_commitdate"] >= lo["lo_orderdate"])

    def test_table_accessor(self, ssb_db):
        assert ssb_db.table("customer") is ssb_db.customer
        with pytest.raises(KeyError):
            ssb_db.table("orders")


class TestLoader:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_all_systems_roundtrip_values(self, ssb_db, system):
        store = load_lineorder(ssb_db, system)
        for name, col in store.columns.items():
            assert np.array_equal(col.values, ssb_db.lineorder[name]), (system, name)

    def test_unknown_system(self, ssb_db):
        with pytest.raises(ValueError):
            compress_column("x", ssb_db.lineorder["lo_tax"], "zip")

    def test_gpu_star_smaller_than_none(self, ssb_db):
        none = load_lineorder(ssb_db, "none")
        star = load_lineorder(ssb_db, "gpu-star")
        assert none.total_bytes / star.total_bytes > 2.0

    def test_nvcomp_within_percent_of_star(self, ssb_db):
        star = load_lineorder(ssb_db, "gpu-star")
        nv = load_lineorder(ssb_db, "nvcomp")
        assert 0.98 < nv.total_bytes / star.total_bytes < 1.15

    def test_expected_scheme_choices(self, gpu_star_store):
        assert gpu_star_store["lo_orderkey"].codec_name == "gpu-dfor"
        assert gpu_star_store["lo_orderdate"].codec_name == "gpu-rfor"
        assert gpu_star_store["lo_extendedprice"].codec_name == "gpu-for"
