"""Property-based fuzzing: random Query specs vs the numpy oracle.

A seeded generator draws random valid specs over the SSB semantic model
— random measures (including multi-measure and lone min/max), random
predicate conjunctions over fact and dimension attributes, random
group-bys — compiles each through :class:`QueryCompiler`, executes it on
a compressed store (materialized and streaming), and compares against
the naive uncompressed-numpy oracle in ``query_oracle.py``.

CI smoke mode checks >= 200 result cells.  On a mismatch the failing
spec is shrunk by greedy component removal and the minimal repro —
seed, spec constructor and both result dicts — is printed, so a
regression reduces to one pasteable test case.
"""

from __future__ import annotations

import numpy as np
import pytest

from query_oracle import evaluate
from repro.engine.crystal import CrystalEngine
from repro.engine.predicates import Equals, InSet, Range
from repro.query.compiler import QueryCompiler
from repro.query.model import Query
from repro.query.ssb import ssb_model
from repro.ssb.dbgen import generate
from repro.ssb.loader import load_lineorder

#: Enough draws to clear 200 result cells with margin; the cell floor
#: below is the hard requirement.
SMOKE_SPECS = 60
MIN_CELLS = 200
SEED = 20260808

#: Keep fuzzed group spaces small enough for the dense bincount.
MAX_GROUP_CODES = 200_000


def _draw_predicate(rng, attr) -> "Range | Equals | InSet":
    lo = attr.base
    hi = attr.base + attr.domain - 1
    kind = rng.integers(0, 3)
    if kind == 0:
        return Equals(attr.name, int(rng.integers(lo, hi + 1)))
    if kind == 1:
        a, b = sorted(rng.integers(lo, hi + 1, 2).tolist())
        return Range(attr.name, int(a), int(b))
    count = int(rng.integers(1, min(6, attr.domain) + 1))
    values = rng.choice(np.arange(lo, hi + 1), size=count, replace=False)
    return InSet(attr.name, tuple(int(v) for v in values))


def _draw_spec(rng, model, index: int) -> Query:
    additive = [
        name for name, m in model.measures.items() if m.merge_op == "sum"
    ]
    extreme = [
        name for name, m in model.measures.items() if m.merge_op != "sum"
    ]
    if rng.random() < 0.15 and extreme:
        measures = (str(rng.choice(extreme)),)
    else:
        count = int(rng.integers(1, 3))
        measures = tuple(
            str(m) for m in rng.choice(additive, size=count, replace=False)
        )

    groupable = [a for a in model.attributes.values() if a.groupable]
    filters = []
    for _ in range(int(rng.integers(0, 4))):
        attr = groupable[int(rng.integers(0, len(groupable)))]
        filters.append(_draw_predicate(rng, attr))

    group_by: list[str] = []
    codes = 1
    for _ in range(int(rng.integers(0, 3))):
        attr = groupable[int(rng.integers(0, len(groupable)))]
        if attr.name in group_by or codes * attr.domain > MAX_GROUP_CODES:
            continue
        group_by.append(attr.name)
        codes *= attr.domain

    return Query(
        f"fuzz-{index}",
        measures=measures,
        filters=tuple(filters),
        group_by=tuple(group_by),
    )


def _shrink(spec: Query, still_fails) -> Query:
    """Greedily drop filters/group-bys/measures while the failure holds."""
    changed = True
    while changed:
        changed = False
        for i in range(len(spec.filters)):
            candidate = Query(
                spec.name, spec.measures,
                spec.filters[:i] + spec.filters[i + 1:], spec.group_by,
            )
            if still_fails(candidate):
                spec, changed = candidate, True
                break
        if changed:
            continue
        for i in range(len(spec.group_by)):
            candidate = Query(
                spec.name, spec.measures, spec.filters,
                spec.group_by[:i] + spec.group_by[i + 1:],
            )
            if still_fails(candidate):
                spec, changed = candidate, True
                break
        if changed:
            continue
        if len(spec.measures) > 1:
            for i in range(len(spec.measures)):
                candidate = Query(
                    spec.name,
                    spec.measures[:i] + spec.measures[i + 1:],
                    spec.filters, spec.group_by,
                )
                if still_fails(candidate):
                    spec, changed = candidate, True
                    break
    return spec


class TestQueryFuzz:
    @pytest.fixture(scope="class")
    def harness(self):
        db = generate(scale_factor=0.002, seed=7)
        store = load_lineorder(db, "gpu-star")
        model = ssb_model()
        compiler = QueryCompiler(model, db, store=store)
        engines = {
            "materialized": CrystalEngine(db, store),
            "streaming": CrystalEngine(
                db, store, streaming=True, stream_workers=2
            ),
        }
        return db, model, compiler, engines

    def test_random_specs_match_numpy_oracle(self, harness):
        db, model, compiler, engines = harness

        def run(spec: Query, mode: str) -> dict[int, int]:
            return engines[mode].run(compiler.compile(spec)).groups

        def mismatch(spec: Query, mode: str) -> bool:
            try:
                return run(spec, mode) != evaluate(model, db, spec)
            except Exception:
                return True

        rng = np.random.default_rng(SEED)
        cells = 0
        failures = []
        for index in range(SMOKE_SPECS):
            spec = _draw_spec(rng, model, index)
            expected = evaluate(model, db, spec)
            mode = "streaming" if index % 2 else "materialized"
            got = run(spec, mode)
            cells += max(1, len(expected))
            if got != expected:
                shrunk = _shrink(spec, lambda s: mismatch(s, mode))
                print(
                    f"\nFUZZ MISMATCH (seed={SEED}, spec #{index}, {mode})\n"
                    f"repro: {shrunk!r}\n"
                    f"expected: {evaluate(model, db, shrunk)}\n"
                    f"got:      {engines[mode].run(compiler.compile(shrunk)).groups}"
                )
                failures.append((index, shrunk))
        assert not failures, f"{len(failures)} fuzzed specs mismatched the oracle"
        assert cells >= MIN_CELLS, (
            f"smoke run compared only {cells} cells (< {MIN_CELLS}); "
            f"raise SMOKE_SPECS"
        )

    def test_generator_is_deterministic(self):
        model = ssb_model()
        a = [_draw_spec(np.random.default_rng(SEED), model, i) for i in range(10)]
        b = [_draw_spec(np.random.default_rng(SEED), model, i) for i in range(10)]
        assert a == b
