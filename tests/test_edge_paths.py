"""Remaining edge paths: serialization guards, corrupt streams, misc API."""

import io

import numpy as np
import pytest

from repro.formats import EncodedColumn, GpuVByte, Simple8b, get_codec, save_encoded
from repro.formats.io import load_encoded
from repro.gpusim import GPUDevice, Stopwatch


class TestSerializationGuards:
    def test_reserved_array_name_rejected(self):
        enc = EncodedColumn(
            codec="gpu-for",
            count=0,
            arrays={"__repro_meta__": np.zeros(1, np.uint8)},
        )
        with pytest.raises(ValueError, match="reserved"):
            save_encoded(enc, io.BytesIO())

    def test_version_mismatch_rejected(self, rng, tmp_path):
        enc = get_codec("nsf").encode(rng.integers(0, 10, 100))
        path = tmp_path / "c.npz"
        save_encoded(enc, path)
        # Tamper with the version field.
        import json

        with np.load(path) as archive:
            meta = json.loads(bytes(archive["__repro_meta__"].tobytes()))
            arrays = {k: archive[k] for k in archive.files if k != "__repro_meta__"}
        meta["version"] = 99
        arrays["__repro_meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_encoded(path)


class TestCorruptStreams:
    def test_vbyte_count_mismatch_detected(self, rng):
        enc = GpuVByte().encode(rng.integers(0, 100, 50))
        # Set a continuation bit on the last byte: one value goes missing.
        data = enc.arrays["data"].copy()
        data[-1] |= 0x80
        enc.arrays["data"] = data
        with pytest.raises(ValueError, match="count mismatch"):
            GpuVByte().decode(enc)

    def test_simple8b_count_mismatch_detected(self, rng):
        enc = Simple8b().encode(rng.integers(0, 100, 50))
        truncated = EncodedColumn(
            codec=enc.codec,
            count=enc.count,
            arrays={"data": enc.arrays["data"][:-1]},
            dtype=enc.dtype,
        )
        with pytest.raises(ValueError, match="count mismatch"):
            Simple8b().decode(truncated)

    def test_simple8b_empty_stream_nonzero_count(self):
        enc = EncodedColumn(
            codec="simple8b",
            count=5,
            arrays={"data": np.zeros(0, np.uint64)},
        )
        with pytest.raises(ValueError, match="count mismatch"):
            Simple8b().decode(enc)


class TestMiscApi:
    def test_encoded_column_repr(self, rng):
        enc = get_codec("gpu-for").encode(rng.integers(0, 100, 256))
        text = repr(enc)
        assert "gpu-for" in text and "bits_per_int" in text

    def test_stopwatch_tracks_transfers_too(self):
        device = GPUDevice()
        watch = Stopwatch(device)
        device.transfer_to_device(10**7)
        assert watch.lap_ms() > 0

    def test_empty_column_bits_per_int(self):
        enc = get_codec("nsf").encode(np.array([], dtype=np.int64))
        assert enc.bits_per_int == 0.0

    def test_registry_unknown_codec_message(self):
        with pytest.raises(KeyError, match="available"):
            get_codec("zstd")

    def test_is_tile_codec(self):
        from repro.formats import is_tile_codec

        assert is_tile_codec("gpu-for")
        assert is_tile_codec("gpu-rfor")
        assert not is_tile_codec("nsf")
        assert not is_tile_codec("pfor")
