"""Scheme-selection layers: the Fang planner, the nvCOMP model, GPU-*."""

import numpy as np
import pytest

from repro.core.hybrid import GPU_STAR_SCHEMES, choose_gpu_star, heuristic_scheme
from repro.core.nvcomp import (
    CHUNK_VALUES,
    SCHEMES,
    decode_nvcomp,
    decompress_nvcomp,
    encode_nvcomp,
)
from repro.core.planner import (
    CANDIDATE_PLANS,
    decode_planned,
    decompress_planned,
    encode_with_plan,
    plan_column,
)
from repro.core.stats import ColumnStats
from repro.gpusim import GPUDevice


class TestPlanner:
    def test_every_plan_roundtrips(self, rng):
        values = np.repeat(rng.integers(0, 64, 500), rng.integers(1, 6, 500))
        for logical, terminal in CANDIDATE_PLANS:
            try:
                col = encode_with_plan(values, logical, terminal)
            except ValueError:
                continue
            assert np.array_equal(decode_planned(col), values), (logical, terminal)

    def test_picks_rle_for_runs(self, rng):
        values = np.repeat(rng.integers(0, 100, 1000), 40)
        assert plan_column(values).logical == "rle"

    def test_picks_delta_for_dense_sorted(self, rng):
        # Dense sorted keys: deltas are tiny, delta+NSF wins.
        values = np.sort(rng.integers(0, 2**20, 500_000))
        plan = plan_column(values)
        assert plan.logical == "delta"
        assert plan.bits_per_int < 10

    def test_no_bitpacking_hurts_large_randoms(self, rng):
        # The planner's structural weakness (Section 9.4).
        values = rng.integers(0, 2**25, 50_000)
        planned = plan_column(values)
        from repro.core.hybrid import choose_gpu_star

        star = choose_gpu_star(values)
        assert planned.nbytes > 1.15 * star.encoded.nbytes

    def test_nsv_on_negative_deltas_skipped(self, rng):
        values = rng.integers(0, 2**8, 10_000)  # unsorted: deltas negative
        plan = plan_column(values)
        assert np.array_equal(decode_planned(plan), values)

    def test_raw_fallback_exists(self):
        col = encode_with_plan(np.array([1, 2, 3]), None, "none")
        assert col.nbytes == 12
        assert np.array_equal(decode_planned(col), [1, 2, 3])

    def test_raw_fallback_rejects_logical_layer(self):
        with pytest.raises(ValueError):
            encode_with_plan(np.array([1]), "rle", "none")

    def test_unknown_layer(self):
        with pytest.raises(ValueError):
            encode_with_plan(np.array([1]), "bogus", "nsf")

    def test_decompress_kernels_match_plan_depth(self, rng):
        values = np.repeat(rng.integers(0, 50, 300), 30)
        col = encode_with_plan(values, "rle", "nsf")
        report = decompress_planned(col, GPUDevice())
        # 2 widen passes (values+lengths) + 4 RLE steps.
        assert report.kernel_count == 6
        assert np.array_equal(report.values, values)

    def test_plan_name(self):
        assert encode_with_plan(np.array([1]), None, "nsf").plan_name == "nsf"
        assert (
            encode_with_plan(np.array([1, 1]), "rle", "nsf").plan_name == "rle+nsf"
        )


class TestNvComp:
    def test_auto_selection_matches_data(self, rng):
        sorted_keys = np.arange(100_000)
        runs = np.repeat(rng.integers(0, 50, 1000), 100)
        uniform = rng.integers(0, 2**20, 100_000)
        assert encode_nvcomp(sorted_keys).scheme == "delta-for-bitpack"
        assert encode_nvcomp(runs).scheme == "rle-for-bitpack"
        assert encode_nvcomp(uniform).scheme == "for-bitpack"

    def test_explicit_scheme(self, rng):
        values = rng.integers(0, 100, 10_000)
        col = encode_nvcomp(values, scheme="for-bitpack")
        assert col.scheme == "for-bitpack"
        assert np.array_equal(decode_nvcomp(col), values)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            encode_nvcomp(np.array([1]), scheme="zstd")

    def test_chunk_overhead(self, rng):
        values = rng.integers(0, 100, CHUNK_VALUES * 10)
        col = encode_nvcomp(values)
        assert col.nbytes == col.inner.nbytes + 10 * 64

    def test_slightly_worse_ratio_than_gpu_star(self, rng):
        values = rng.integers(0, 2**16, 500_000)
        nv = encode_nvcomp(values)
        star = choose_gpu_star(values)
        assert 1.0 < nv.nbytes / star.encoded.nbytes < 1.10

    def test_decompress_slower_than_tile(self, rng):
        from repro.core import decompress

        values = rng.integers(0, 2**16, 200_000)
        nv = encode_nvcomp(values)
        star = choose_gpu_star(values)
        nv_ms = decompress_nvcomp(nv, GPUDevice()).simulated_ms
        star_ms = decompress(star.encoded, GPUDevice(), write_back=True).simulated_ms
        assert 1.5 < nv_ms / star_ms < 5

    def test_all_schemes_roundtrip(self, rng):
        values = np.repeat(rng.integers(0, 1000, 2000), rng.integers(1, 8, 2000))
        for scheme in SCHEMES:
            col = encode_nvcomp(values, scheme=scheme)
            assert np.array_equal(decode_nvcomp(col), values), scheme
            report = decompress_nvcomp(col, GPUDevice())
            assert np.array_equal(report.values, values), scheme


class TestGpuStar:
    def test_tries_all_three(self, rng):
        choice = choose_gpu_star(rng.integers(0, 100, 10_000))
        assert set(choice.candidate_bytes) == set(GPU_STAR_SCHEMES)

    def test_picks_smallest(self, rng):
        choice = choose_gpu_star(rng.integers(0, 100, 10_000))
        assert choice.encoded.nbytes == min(choice.candidate_bytes.values())

    @pytest.mark.parametrize(
        "maker,expected",
        [
            (lambda rng: np.arange(200_000), "gpu-dfor"),
            (lambda rng: np.repeat(rng.integers(0, 100, 2000), 100), "gpu-rfor"),
            (lambda rng: rng.integers(0, 2**16, 200_000), "gpu-for"),
        ],
    )
    def test_choice_tracks_distribution(self, rng, maker, expected):
        assert choose_gpu_star(maker(rng)).codec_name == expected

    def test_codec_property(self, rng):
        choice = choose_gpu_star(rng.integers(0, 10, 1000))
        assert choice.codec.name == choice.codec_name


class TestHeuristic:
    def test_runs_pick_rfor(self, rng):
        stats = ColumnStats.from_values(np.repeat(rng.integers(0, 9, 500), 20))
        assert heuristic_scheme(stats) == "gpu-rfor"

    def test_sorted_unique_picks_dfor(self):
        stats = ColumnStats.from_values(np.arange(100_000))
        assert heuristic_scheme(stats) == "gpu-dfor"

    def test_uniform_picks_for(self, rng):
        stats = ColumnStats.from_values(rng.integers(0, 2**16, 100_000))
        assert heuristic_scheme(stats) == "gpu-for"

    def test_empty_defaults_to_for(self):
        stats = ColumnStats.from_values(np.array([], dtype=np.int64))
        assert heuristic_scheme(stats) == "gpu-for"

    def test_heuristic_close_to_exact_on_ssb(self, ssb_db):
        # The stats heuristic should agree with exhaustive search on most
        # SSB columns (it is the documented Section 8 rule of thumb).
        agree = 0
        cols = list(ssb_db.lineorder)
        for name in cols:
            values = ssb_db.lineorder[name]
            exact = choose_gpu_star(values).codec_name
            guess = heuristic_scheme(ColumnStats.from_values(values))
            agree += exact == guess
        assert agree >= len(cols) // 2


class TestStatsPlanner:
    """The stats-driven planner variant vs the exhaustive oracle."""

    def test_roundtrips(self, rng):
        from repro.core.planner import decode_planned, plan_column_stats

        for maker in (
            lambda: rng.integers(0, 2**20, 5000),
            lambda: np.sort(rng.integers(0, 2**16, 50_000)),
            lambda: np.repeat(rng.integers(0, 40, 500), 20),
        ):
            values = maker()
            col = plan_column_stats(values)
            assert np.array_equal(decode_planned(col), values)

    def test_never_beats_oracle(self, rng):
        from repro.core.planner import plan_column, plan_column_stats

        for maker in (
            lambda: rng.integers(0, 2**12, 20_000),
            lambda: np.sort(rng.integers(0, 2**18, 50_000)),
            lambda: np.repeat(rng.integers(0, 40, 1000), 30),
            lambda: rng.integers(0, 2**28, 10_000),
        ):
            values = maker()
            oracle = plan_column(values).nbytes
            stats = plan_column_stats(values).nbytes
            assert stats >= oracle

    def test_agrees_on_clear_cut_shapes(self, rng):
        from repro.core.planner import plan_column, plan_column_stats

        runs_col = np.repeat(rng.integers(0, 40, 1000), 30)
        assert plan_column_stats(runs_col).logical == plan_column(runs_col).logical == "rle"
        # Sorted, high cardinality (run length ~1): delta wins for both.
        sorted_col = np.sort(rng.integers(0, 2**24, 200_000))
        assert plan_column_stats(sorted_col).logical == plan_column(sorted_col).logical == "delta"

    def test_negative_fallback(self):
        from repro.core.planner import decode_planned, plan_column_stats

        values = np.array([-(2**30), 2**30] * 100)
        col = plan_column_stats(values)
        assert np.array_equal(decode_planned(col), values)
