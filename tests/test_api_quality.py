"""API quality gates: docstrings everywhere, exports resolvable, no cycles."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.startswith("repro.experiments.")  # drivers documented below
]
MODULES.append("repro.experiments")


def _public_members(module):
    for name in dir(module):
        if name.startswith("_"):
            continue
        obj = getattr(module, name)
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestDocumentation:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_items_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = [
            name
            for name, obj in _public_members(module)
            if not (obj.__doc__ and obj.__doc__.strip())
        ]
        assert not undocumented, f"{module_name}: {undocumented}"

    def test_experiment_drivers_have_run_and_main(self):
        import repro.experiments as exp

        for name in exp.__all__:
            module = getattr(exp, name)
            assert callable(getattr(module, "main", None)), name
            assert module.__doc__ and module.__doc__.strip(), name


class TestExports:
    @pytest.mark.parametrize(
        "module_name",
        ["repro", "repro.core", "repro.formats", "repro.engine",
         "repro.gpusim", "repro.ssb", "repro.workloads"],
    )
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_every_module_imports_cleanly(self):
        for name in MODULES:
            importlib.import_module(name)
