"""Golden regression tests for the calibrated performance model.

The §4.2 ladder and the Figure 5 D-sweep are the two calibration anchors
(docs/model_calibration.md): every other figure is *predicted* from the
same constants.  These tests pin the anchors' simulated values so any
change to the cost model that would silently shift the whole reproduction
fails loudly here first.

Tolerances are ±2% — tight enough to catch constant changes, loose enough
to survive dataset-seed noise in compressed sizes.
"""

import pytest

from repro.core.tile_decompress import decompress, read_uncompressed
from repro.formats.registry import get_codec
from repro.gpusim import GPUDevice
from repro.workloads.synthetic import uniform_bitwidth

_N = 400_000
_SCALE = 500_000_000 / _N

#: Pinned 500M-projected milliseconds (measured at calibration time).
GOLDEN_LADDER = {0: 18.19, 1: 6.75, 2: 2.72, 3: 2.22}
GOLDEN_READ_MS = 2.28
GOLDEN_D_SWEEP = {1: 6.25, 2: 3.57, 4: 2.22, 8: 1.55, 16: 1.23, 32: 4.67}


@pytest.fixture(scope="module")
def data16():
    return uniform_bitwidth(16, _N, seed=0)


class TestGoldenLadder:
    @pytest.mark.parametrize("opt", [0, 1, 2, 3])
    def test_ladder_step(self, data16, opt):
        enc = get_codec("gpu-for").encode(data16)
        report = decompress(enc, GPUDevice(), opt_level=opt, write_back=False)
        assert report.scaled_ms(_SCALE) == pytest.approx(GOLDEN_LADDER[opt], rel=0.02)

    def test_uncompressed_read(self):
        device = GPUDevice()
        ms = read_uncompressed(_N, device)
        overhead = device.spec.kernel_launch_us / 1000.0
        projected = (ms - overhead) * _SCALE + overhead
        assert projected == pytest.approx(GOLDEN_READ_MS, rel=0.02)


class TestGoldenDSweep:
    @pytest.mark.parametrize("d", [1, 2, 4, 8, 16, 32])
    def test_d_value(self, data16, d):
        enc = get_codec("gpu-for", d_blocks=d).encode(data16)
        report = decompress(enc, GPUDevice(), write_back=False)
        assert report.scaled_ms(_SCALE) == pytest.approx(GOLDEN_D_SWEEP[d], rel=0.02)


class TestGoldenTraffic:
    def test_compressed_bytes_deterministic(self, data16):
        # Format-level golden value: 16-bit uniform at 0.75-bit overhead.
        enc = get_codec("gpu-for").encode(data16)
        assert enc.bits_per_int == pytest.approx(16.75, abs=0.02)

    def test_traffic_accounting_deterministic(self, data16):
        enc = get_codec("gpu-for").encode(data16)
        a = decompress(enc, GPUDevice(), write_back=True)
        device = GPUDevice()
        b = decompress(enc, device, write_back=True)
        assert a.simulated_ms == b.simulated_ms  # bit-for-bit deterministic
        assert device.global_bytes_moved > enc.nbytes  # alignment waste exists
        assert device.global_bytes_moved < enc.nbytes * 1.3 + enc.count * 4 + 4096
