"""Grouped aggregates beyond SUM (engine extension)."""

import numpy as np
import pytest

from repro.engine.crystal import CrystalEngine
from repro.gpusim import GPUDevice


@pytest.fixture
def pipeline(ssb_db, none_store):
    engine = CrystalEngine(ssb_db, none_store, GPUDevice())
    return engine.pipeline("agg-test"), ssb_db


class TestGroupAggregate:
    def test_count_per_group(self, pipeline):
        p, db = pipeline
        quantity = p.load("lo_quantity")
        codes = quantity % 5
        result = p.group_aggregate(codes, None, 5, how="count")
        expected = {int(c): int(n) for c, n in zip(*np.unique(codes, return_counts=True))}
        assert result == expected

    def test_min_max_match_numpy(self, pipeline):
        p, db = pipeline
        quantity = p.load("lo_quantity")
        price = p.load("lo_extendedprice")
        codes = quantity % 7
        got_min = p.group_aggregate(codes, price, 7, how="min")
        got_max = p.group_aggregate(codes, price, 7, how="max")
        for g in range(7):
            sel = codes == g
            if not sel.any():
                continue
            assert got_min[g] == int(price[sel].min())
            assert got_max[g] == int(price[sel].max())

    def test_avg_is_floor_of_mean(self, pipeline):
        p, db = pipeline
        quantity = p.load("lo_quantity")
        codes = np.zeros(quantity.size, dtype=np.int64)
        got = p.group_aggregate(codes, quantity, 1, how="avg")
        assert got[0] == int(quantity.sum()) // quantity.size

    def test_respects_filters(self, pipeline):
        p, db = pipeline
        quantity = p.load("lo_quantity")
        p.filter(quantity > 25)
        codes = np.zeros(quantity.size, dtype=np.int64)
        got = p.group_aggregate(codes, quantity, 1, how="min")
        assert got[0] == 26

    def test_sum_delegates(self, pipeline):
        p, db = pipeline
        quantity = p.load("lo_quantity")
        codes = np.zeros(quantity.size, dtype=np.int64)
        assert (
            p.group_aggregate(codes, quantity, 1, how="sum")
            == p.group_sum(codes, quantity, 1)
        )

    def test_empty_selection(self, pipeline):
        p, db = pipeline
        quantity = p.load("lo_quantity")
        p.filter(quantity > 10**9)
        got = p.group_aggregate(np.zeros(quantity.size, np.int64), quantity, 1, "max")
        assert got == {}

    def test_validation(self, pipeline):
        p, db = pipeline
        quantity = p.load("lo_quantity")
        codes = np.zeros(quantity.size, dtype=np.int64)
        with pytest.raises(ValueError, match="unknown aggregate"):
            p.group_aggregate(codes, quantity, 1, how="median")
        for how in ("sum", "avg", "min", "max"):
            with pytest.raises(ValueError, match="needs a values"):
                p.group_aggregate(codes, None, 1, how=how)
        with pytest.raises(ValueError, match="range"):
            p.group_aggregate(codes + 9, quantity, 3, how="min")

    def test_charged_to_fused_kernel(self, ssb_db, none_store):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        p = engine.pipeline("t")
        q = p.load("lo_quantity")
        p.group_aggregate(np.zeros(q.size, np.int64), q, 1, how="max")
        p.finish()
        assert engine.device.kernel_count == 1
