"""Morsel-streaming execution: out-buffer decode, bit-identity, threads.

Four layers of coverage:

* out-buffer decode contract — every tile codec's ``decode_tiles_into``
  must agree with its allocating twin across full ranges, non-contiguous
  subsets, partial last tiles and buffer reuse, and reject undersized or
  mistyped buffers;
* streaming vs materialized — for every GPU-* codec and a cross-flight
  query matrix, the streaming executor must return bit-identical
  aggregates and the same kernel count at every worker count, including
  unaligned morsel widths and plans whose pushdown prunes every tile;
* merge semantics — min/max partials merge, avg is refused, lookups are
  built exactly once in the plan pass;
* concurrency — the engine's metadata/decode caches and the serving
  pool survive a multi-threaded access storm, and the ``QueryServer``
  records streaming metrics.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine.crystal import CrystalEngine, SSBQuery
from repro.engine.predicates import And, Range
from repro.engine.ssb_queries import QUERIES
from repro.engine.streaming import DEFAULT_MORSEL_TILES, TileStreamExecutor
from repro.formats.base import DecodeArena, TileCodec
from repro.formats.registry import get_codec
from repro.serving.pool import ColumnPool
from repro.ssb.loader import ColumnStore, StoredColumn

GPU_CODECS = ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128")
MATRIX_QUERIES = ("q1.1", "q1.3", "q2.1", "q3.1", "q4.1")


# ---------------------------------------------------------------------------
# Out-buffer decode contract
# ---------------------------------------------------------------------------


def _datasets(rng):
    return {
        "random": rng.integers(0, 10_000, 20_000),
        "sorted": np.sort(rng.integers(0, 100_000, 9000)),
        "runs": np.repeat(rng.integers(0, 50, 60), rng.integers(1, 300, 60)),
        "partial_tail": rng.integers(0, 1000, 2 * 4096 + 17),
        "one_tile": rng.integers(0, 1000, 100),
        "empty": np.zeros(0, dtype=np.int64),
    }


@pytest.mark.parametrize("codec_name", GPU_CODECS)
class TestDecodeTilesInto:
    def test_matches_allocating_decode(self, codec_name, rng):
        codec = get_codec(codec_name)
        assert isinstance(codec, TileCodec)
        for label, data in _datasets(rng).items():
            data = np.asarray(data, dtype=np.int64)
            enc = codec.encode(data)
            n_tiles = codec.num_tiles(enc)
            elems = codec.tile_elements(enc)
            out = np.full(max(1, n_tiles * elems), -1, dtype=np.int64)
            written = codec.decode_range_into(enc, 0, n_tiles, out)
            assert written == data.size, label
            assert np.array_equal(out[:written], data), label

    def test_non_contiguous_subset(self, codec_name, rng):
        codec = get_codec(codec_name)
        data = rng.integers(0, 10_000, 3 * 4096 + 77).astype(np.int64)
        enc = codec.encode(data)
        n_tiles = codec.num_tiles(enc)
        elems = codec.tile_elements(enc)
        # Every other tile, always including the partial last tile.
        tiles = np.unique(np.r_[np.arange(0, n_tiles, 2), n_tiles - 1])
        out = np.empty(tiles.size * elems, dtype=np.int64)
        written = codec.decode_tiles_into(enc, tiles, out)
        expect = codec.decode_tiles(enc, tiles).astype(np.int64)
        assert written == expect.size
        assert np.array_equal(out[:written], expect)

    def test_empty_tile_list(self, codec_name, rng):
        codec = get_codec(codec_name)
        enc = codec.encode(rng.integers(0, 100, 5000).astype(np.int64))
        out = np.empty(1, dtype=np.int64)
        assert codec.decode_tiles_into(enc, np.zeros(0, dtype=np.int64), out) == 0

    def test_buffer_reuse_across_calls(self, codec_name, rng):
        codec = get_codec(codec_name)
        data = rng.integers(0, 10_000, 2 * 4096 + 100).astype(np.int64)
        enc = codec.encode(data)
        n_tiles = codec.num_tiles(enc)
        elems = codec.tile_elements(enc)
        arena = DecodeArena()
        for tiles in (
            np.arange(n_tiles),
            np.array([n_tiles - 1]),
            np.arange(min(2, n_tiles)),
        ):
            buf = arena.scratch("col", tiles.size * elems)
            written = codec.decode_tiles_into(enc, tiles, buf)
            expect = codec.decode_tiles(enc, tiles).astype(np.int64)
            assert np.array_equal(buf[:written], expect)
        # Grow-only: one buffer per key, sized for the largest request.
        assert arena.resident_bytes == n_tiles * elems * 8

    def test_rejects_bad_buffers(self, codec_name, rng):
        codec = get_codec(codec_name)
        enc = codec.encode(rng.integers(0, 100, 5000).astype(np.int64))
        elems = codec.tile_elements(enc)
        tiles = np.array([0])
        with pytest.raises(ValueError):
            codec.decode_tiles_into(enc, tiles, np.empty(elems - 1, dtype=np.int64))
        with pytest.raises(ValueError):
            codec.decode_tiles_into(enc, tiles, np.empty(elems, dtype=np.float64))
        with pytest.raises(ValueError):
            codec.decode_tiles_into(
                enc, tiles, np.empty(2 * elems, dtype=np.int64)[::2]
            )


# ---------------------------------------------------------------------------
# Streaming vs materialized bit-identity
# ---------------------------------------------------------------------------


def _columns_for(queries) -> tuple[str, ...]:
    names: list[str] = []
    for q in queries:
        for c in QUERIES[q].columns:
            if c not in names:
                names.append(c)
    return tuple(names)


def _encoded_store(db, codec_name: str, columns) -> ColumnStore:
    """A gpu-star store with every fact column under one codec."""
    stored = {}
    for name in columns:
        values = db.lineorder[name]
        enc = get_codec(codec_name).encode(values)
        stored[name] = StoredColumn(
            name, "gpu-star", values, enc, enc.nbytes, codec_name=codec_name
        )
    return ColumnStore(system="gpu-star", columns=stored)


@pytest.fixture(scope="module", params=GPU_CODECS)
def codec_store(request, ssb_db):
    return request.param, _encoded_store(
        ssb_db, request.param, _columns_for(MATRIX_QUERIES)
    )


class TestStreamingBitIdentity:
    @pytest.mark.parametrize("qname", MATRIX_QUERIES)
    def test_matches_materialized_every_worker_count(
        self, codec_store, ssb_db, qname
    ):
        codec_name, store = codec_store
        query = QUERIES[qname]
        ref = CrystalEngine(ssb_db, store).run(query)
        for workers, morsel_tiles in ((1, None), (2, None), (8, None), (2, 3)):
            engine = CrystalEngine(
                ssb_db,
                store,
                streaming=True,
                stream_workers=workers,
                morsel_tiles=morsel_tiles,
            )
            got = engine.run(query)
            label = (codec_name, qname, workers, morsel_tiles)
            assert got.groups == ref.groups, label
            assert got.kernel_count == ref.kernel_count, label
            stats = engine.last_stream_stats
            assert stats["workers"] == workers
            assert stats["morsels"] == len(stats["morsel_ms"])
            assert stats["peak_decoded_bytes"] > 0

    def test_uncompressed_store_streams_too(self, ssb_db, none_store):
        query = QUERIES["q2.1"]
        ref = CrystalEngine(ssb_db, none_store).run(query)
        engine = CrystalEngine(
            ssb_db, none_store, streaming=True, stream_workers=4
        )
        got = engine.run(query)
        assert got.groups == ref.groups
        assert got.kernel_count == ref.kernel_count
        # Nothing decodes, so the arenas stay empty.
        assert engine.last_stream_stats["peak_decoded_bytes"] == 0

    def test_repeat_runs_reuse_executor_and_stay_identical(
        self, ssb_db, gpu_star_store
    ):
        engine = CrystalEngine(
            ssb_db, gpu_star_store, streaming=True, stream_workers=2
        )
        query = QUERIES["q1.1"]
        first = engine.run(query).groups
        executor = engine._stream_executor
        for _ in range(2):
            assert engine.run(query).groups == first
        assert engine._stream_executor is executor
        assert executor.peak_decoded_bytes > 0

    def test_empty_after_pushdown(self, ssb_db, gpu_star_store):
        # Far above any conservative codec bound (reference + 2**bits),
        # so pushdown provably prunes every tile.
        impossible = Range("lo_orderdate", 2**40, None)

        def fn(engine):
            p = engine.pipeline("empty-scan")
            p.filter_pushdown(And((impossible,)))
            orderdate = p.load("lo_orderdate")
            p.filter_predicate(impossible, orderdate)
            price = p.load("lo_extendedprice")
            result = p.total_sum(price)
            p.finish()
            return result

        query = SSBQuery("empty", ("lo_orderdate", "lo_extendedprice"), fn)
        ref = CrystalEngine(ssb_db, gpu_star_store).run(query)
        assert ref.groups == {0: 0}
        for workers in (1, 4):
            engine = CrystalEngine(
                ssb_db, gpu_star_store, streaming=True, stream_workers=workers
            )
            got = engine.run(query)
            assert got.groups == {0: 0}
            assert got.kernel_count == ref.kernel_count
            assert engine.last_stream_stats["morsels"] == 0


# ---------------------------------------------------------------------------
# Merge semantics and guard rails
# ---------------------------------------------------------------------------


def _minmax_query(how: str) -> SSBQuery:
    def fn(engine):
        p = engine.pipeline("minmax")
        quantity = p.load("lo_quantity")
        p.filter(np.asarray(quantity, dtype=np.int64) % 3 == 0)
        discount = p.load("lo_discount")
        result = p.group_aggregate(
            np.asarray(quantity, dtype=np.int64) % 8,
            np.asarray(discount, dtype=np.int64) * 100 + quantity,
            8,
            how=how,
        )
        p.finish()
        return result

    return SSBQuery(f"minmax-{how}", ("lo_quantity", "lo_discount"), fn)


class TestMergeSemantics:
    @pytest.mark.parametrize("how", ("min", "max"))
    def test_min_max_partials_merge(self, ssb_db, gpu_star_store, how):
        query = _minmax_query(how)
        ref = CrystalEngine(ssb_db, gpu_star_store).run(query)
        engine = CrystalEngine(
            ssb_db, gpu_star_store, streaming=True, stream_workers=4
        )
        assert engine.run(query).groups == ref.groups

    def test_avg_is_refused(self, ssb_db, gpu_star_store):
        def fn(engine):
            p = engine.pipeline("avg")
            quantity = p.load("lo_quantity")
            result = p.group_aggregate(
                np.zeros(p.n, dtype=np.int64), quantity, 1, how="avg"
            )
            p.finish()
            return result

        query = SSBQuery("avg", ("lo_quantity",), fn)
        engine = CrystalEngine(ssb_db, gpu_star_store, streaming=True)
        with pytest.raises(NotImplementedError):
            engine.run(query)
        # The materialized path still supports it.
        assert CrystalEngine(ssb_db, gpu_star_store).run(query).groups

    def test_lookups_build_once(self, ssb_db, gpu_star_store):
        engine = CrystalEngine(
            ssb_db, gpu_star_store, streaming=True, stream_workers=4
        )
        before = engine.device.kernel_count
        engine.run(QUERIES["q3.1"])
        names = [
            launch.spec.name
            for launch in engine.device.launches[before:]
            if launch.spec.name.startswith("build-")
        ]
        # customer, supplier, date: one build kernel each despite the
        # query function re-running once per morsel.
        assert len(names) == 3

    def test_streaming_gating(self, ssb_db, gpu_star_store):
        engine = CrystalEngine(ssb_db, gpu_star_store, streaming=True)
        assert engine.uses_streaming()
        for system in ("omnisci", "nvcomp", "planner", "gpu-bp"):
            gated = CrystalEngine(
                ssb_db, ColumnStore(system=system, columns={}), streaming=True
            )
            assert not gated.uses_streaming()

    def test_invalid_config_rejected(self, ssb_db, gpu_star_store):
        engine = CrystalEngine(ssb_db, gpu_star_store)
        with pytest.raises(ValueError):
            TileStreamExecutor(engine, workers=0)
        with pytest.raises(ValueError):
            TileStreamExecutor(engine, morsel_tiles=0)
        assert (
            TileStreamExecutor(engine).morsel_tiles == DEFAULT_MORSEL_TILES
        )


# ---------------------------------------------------------------------------
# Concurrency: engine caches, serving pool, server metrics
# ---------------------------------------------------------------------------


def _storm(worker, n_threads: int = 8) -> list:
    errors: list = []
    barrier = threading.Barrier(n_threads)

    def run(i):
        barrier.wait()
        try:
            worker(i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestConcurrentAccess:
    def test_engine_metadata_caches(self, ssb_db, gpu_star_store):
        engine = CrystalEngine(ssb_db, gpu_star_store)
        columns = ("lo_orderdate", "lo_quantity", "lo_discount", "lo_extendedprice")
        expected = {c: engine.column_values(c).copy() for c in columns}
        engine.evict_decoded()

        def worker(i):
            for rep in range(10):
                for c in columns:
                    engine.tile_read_bytes(c)
                    mins, maxs = engine.column_tile_bounds(c)
                    assert mins.size == engine.num_tiles == maxs.size
                    assert np.array_equal(engine.column_values(c), expected[c])
                if i == 0 and rep % 3 == 0:
                    engine.evict_decoded()

        assert _storm(worker) == []

    def test_pool_admit_get_invalidate_storm(self):
        pool = ColumnPool(budget_bytes=1 << 20)
        from repro.serving.pool import PoolAdmissionError

        def worker(i):
            for rep in range(50):
                key = f"decoded/col{(i + rep) % 4}"
                try:
                    pool.admit(key, 4096, kind="decoded", payload=rep)
                except PoolAdmissionError:  # pragma: no cover - tiny budget
                    pass
                pool.get(key)
                if rep % 7 == 0:
                    pool.invalidate(key)

        assert _storm(worker) == []
        assert pool.resident_bytes <= 1 << 20

    def test_query_server_streaming_metrics(self, ssb_db, gpu_star_store):
        from repro.serving.scheduler import QueryServer, ServeRequest

        ref = CrystalEngine(ssb_db, gpu_star_store).run(QUERIES["q1.1"])
        server = QueryServer(
            ssb_db, gpu_star_store, streaming=True, stream_workers=2
        )
        assert server.engine.uses_streaming()
        results = server.serve([ServeRequest("query", "q1.1")])
        assert results[0].ok
        assert results[0].groups == ref.groups
        snap = server.metrics_snapshot()
        assert snap["streaming_queries"] == 1
        assert snap["streaming_morsels"] >= 1
        assert snap["streaming_morsel_ms_count"] >= 1
        assert snap["streaming_peak_decoded_bytes"] > 0
