"""Experiment drivers: every figure/table runs and reproduces its shape.

These are the reproduction's acceptance tests: each assertion encodes a
qualitative claim from the paper's evaluation (who wins, by roughly what
factor, where the knees fall).  Runs use reduced element counts / scale
factors and project to paper scale.
"""

import pytest

from repro.experiments import (
    ablation_miniblocks,
    ablation_vertical,
    compression_speed,
    fig5_blocks_per_tb,
    fig7_bitwidths,
    fig8_distributions,
    fig9_ssb_compression,
    fig10_decompression,
    fig11_ssb_queries,
    fig12_coprocessor,
    opt_ladder,
    random_access,
    streaming_scan,
)
from repro.experiments.common import format_table, geomean
from repro.ssb.dbgen import generate

_N = 400_000


@pytest.fixture(scope="module")
def small_db():
    return generate(scale_factor=0.01, seed=7)


class TestCommon:
    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geomean([])

    def test_format_table(self):
        out = format_table([{"a": 1, "b": 2.5}])
        assert "a" in out and "2.500" in out
        assert format_table([]) == "(no rows)"


class TestOptLadder:
    def test_monotone_and_close_to_paper(self):
        rows = opt_ladder.run(n=_N)
        times = [r["simulated_ms"] for r in rows[:4]]
        assert times[0] > times[1] > times[2] > times[3]
        # Base algorithm ~18 ms, final below the uncompressed read.
        assert 14 < times[0] < 23
        assert times[3] < rows[4]["simulated_ms"] * 1.05


class TestFig5:
    def test_u_shape(self):
        rows = fig5_blocks_per_tb.run(n=_N)
        by_d = {r["D"]: r["simulated_ms"] for r in rows}
        assert by_d[1] > by_d[4] > by_d[16]
        assert by_d[32] > 2 * by_d[16]  # the collapse

    def test_collapse_is_resource_driven(self):
        rows = fig5_blocks_per_tb.run(n=_N)
        d32 = next(r for r in rows if r["D"] == 32)
        assert d32["occupancy"] < 0.5
        assert d32["spilled_regs"] > 0


class TestFig7:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig7_bitwidths.run(n=_N, bitwidths=(4, 16, 28))

    def test_rates_linear_with_overhead(self, rows):
        for r in rows:
            assert abs(r["rate GPU-FOR"] - (r["bitwidth"] + 0.75)) < 0.4
            assert r["rate None"] == 32.0

    def test_nsf_staircase(self, rows):
        by_bits = {r["bitwidth"]: r["rate NSF"] for r in rows}
        assert by_bits[4] == 8.0 and by_bits[16] == 16.0 and by_bits[28] == 32.0

    def test_tile_beats_cascade(self, rows):
        for r in rows:
            assert r["time FOR+BitPack"] > 2.0 * r["time GPU-FOR"]
            assert r["time Delta+FOR+BitPack"] > 3.0 * r["time GPU-DFOR"]
            assert r["time RLE+FOR+BitPack"] > 6.0 * r["time GPU-RFOR"]

    def test_gpu_for_within_15pct_of_nsf(self, rows):
        # Section 9.2: worst-case gap vs NSF is ~15%.
        for r in rows:
            assert r["time GPU-FOR"] < 1.25 * r["time NSF"] + 0.2

    def test_projection_helpers(self, rows):
        assert set(fig7_bitwidths.time_rows(rows)[0]) == {
            "bitwidth", *fig7_bitwidths.TIME_SERIES
        }
        assert set(fig7_bitwidths.rate_rows(rows)[0]) == {
            "bitwidth", *fig7_bitwidths.RATE_SERIES
        }


class TestFig8:
    def test_d1_dfor_wins_at_high_cardinality(self):
        rows = fig8_distributions.run_d1(n=_N, unique_counts=(2**5, 2**18))
        high = rows[-1]
        assert high["rate GPU-DFOR"] < high["rate GPU-FOR"] / 2
        low = rows[0]
        assert low["rate GPU-RFOR"] < low["rate GPU-FOR"]

    def test_d1_rfor_beats_plain_rle_decode(self):
        rows = fig8_distributions.run_d1(n=_N, unique_counts=(2**5,))
        assert rows[0]["time RLE"] > 1.8 * rows[0]["time GPU-RFOR"]

    def test_d2_for_absorbs_mean(self):
        rows = fig8_distributions.run_d2(n=_N, means=(2**24,))
        r = rows[0]
        assert r["rate GPU-FOR"] < 12  # sigma 20 -> ~8 bits + overhead
        assert r["rate NSF"] == 32.0

    def test_d3_bit_aligned_beats_nsv(self):
        rows = fig8_distributions.run_d3(n=_N, alphas=(2.0,))
        r = rows[0]
        assert r["rate GPU-FOR"] < r["rate NSV"]
        assert r["time NSV"] > 2 * r["time GPU-FOR"]

    def test_sorted_keys_headline(self):
        bits = fig8_distributions.run_sorted_keys(n=_N)
        assert bits["GPU-DFOR"] < 2.0
        assert 6.0 < bits["GPU-FOR"] < 8.5
        assert 7.0 < bits["GPU-RFOR"] < 10.0


class TestFig9:
    def test_footprint_ratios(self, small_db):
        rows = fig9_ssb_compression.run(db=small_db)
        s = fig9_ssb_compression.summary(rows)
        assert 2.4 < s["none_over_gpu_star"] < 3.6  # paper 2.8x
        assert 1.2 < s["gpu_bp_over_gpu_star"] < 1.8  # paper ~1.5x
        assert 1.1 < s["planner_over_gpu_star"] < 1.6  # paper ~1.4x
        assert 0.98 < s["nvcomp_over_gpu_star"] < 1.15  # paper ~1.02x

    def test_gpu_star_wins_every_column(self, small_db):
        # GPU-* beats the planner everywhere; vs GPU-BP it wins big on the
        # run-length and date columns the paper highlights and is within a
        # whisker elsewhere (GPU-BP's 8-byte block header vs GPU-FOR's 12
        # when FOR saves nothing on a small-domain column).
        rows = fig9_ssb_compression.run(db=small_db)
        for r in rows:
            if r["column"] == "mean":
                continue
            assert r["gpu-star"] <= r["planner"] + 1e-9, r["column"]
            assert r["gpu-star"] <= r["gpu-bp"] * 1.08, r["column"]
        by_col = {r["column"]: r for r in rows}
        for column in ("lo_orderkey", "lo_orderdate", "lo_custkey", "lo_commitdate"):
            assert by_col[column]["gpu-bp"] > 1.3 * by_col[column]["gpu-star"], column


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self, small_db):
        return fig10_decompression.run(db=small_db)

    def test_cascade_ratios(self, rows):
        for r in fig10_decompression.cascade_ratios(rows):
            assert 1.4 < r["nvcomp_over_gpu_star"] < 4.5, r

    def test_geomean_ordering(self, rows):
        g = fig10_decompression.geomeans(rows)
        assert g["gpu-star"] < g["gpu-bp"] < g["nvcomp"]
        assert g["gpu-star"] < g["planner"]


class TestFig11:
    @pytest.fixture(scope="class")
    def rows(self, small_db):
        return fig11_ssb_queries.run(db=small_db)

    def test_answers_cross_checked(self, small_db):
        # run() raises if any system disagrees; reaching here is the test.
        fig11_ssb_queries.run(
            db=small_db, systems=("none", "gpu-star"), check_answers=True
        )

    def test_geomean_ratios(self, rows):
        ratios = {r["system"]: r["vs_gpu_star"] for r in fig11_ssb_queries.ratios(rows)}
        assert 0.6 < ratios["none"] < 0.95  # paper 0.74
        assert 2.0 < ratios["nvcomp"] < 5.0  # paper 2.6
        assert 3.0 < ratios["planner"] < 8.0  # paper 4
        assert 2.0 < ratios["gpu-bp"] < 4.5  # paper 2.4
        assert 8.0 < ratios["omnisci"] < 16.0  # paper 12

    def test_all_queries_present(self, rows):
        assert {r["query"] for r in rows} == {
            "q1.1", "q1.2", "q1.3", "q2.1", "q2.2", "q2.3",
            "q3.1", "q3.2", "q3.3", "q3.4", "q4.1", "q4.2", "q4.3", "geomean",
        }


class TestFig12:
    def test_compression_speeds_up_coprocessor(self, small_db):
        rows = fig12_coprocessor.run(db=small_db)
        geo = next(r for r in rows if r["query"] == "geomean")
        assert 1.8 < geo["speedup"] < 3.2  # paper 2.3x

    def test_transfer_dominates(self, small_db):
        rows = fig12_coprocessor.run(db=small_db)
        for r in rows[:-1]:
            assert r["none transfer"] > 0.5 * r["none"]


class TestRandomAccess:
    def test_plateaus(self):
        rows = random_access.run(n=_N)
        comp = [r["compressed_ms"] for r in rows]
        unc = [r["uncompressed_ms"] for r in rows]
        # Both plateau; compressed plateau is lower (the Section 8 claim).
        assert comp[-1] == pytest.approx(comp[-3], rel=0.02)
        assert unc[-1] == pytest.approx(unc[-3], rel=0.02)
        assert comp[-1] < unc[-1]

    def test_compressed_knee_earlier(self):
        rows = random_access.run(n=_N)
        by_sel = {r["selectivity"]: r for r in rows}
        # At 1e-3 the compressed side is already near its plateau while
        # the uncompressed side is still cheap.
        assert by_sel[1e-3]["compressed_ms"] > 2 * by_sel[1e-3]["uncompressed_ms"]


class TestCompressionSpeed:
    def test_rfor_slowest_on_random(self):
        rows = compression_speed.run(n=150_000)
        times = {r["scheme"]: r["encode_s"] for r in rows}
        assert times["gpu-rfor"] > times["gpu-for"]


class TestAblations:
    def test_vertical_decode_slower(self):
        rows = ablation_vertical.run_decode(n=_N)
        ratio = rows[-1]["simulated_ms"]
        assert 1.8 < ratio < 4.0  # paper 2.7x

    def test_vertical_query_catastrophic(self, small_db):
        # Paper reports 14x; our resource model overshoots but the
        # direction (order-of-magnitude collapse) is the claim under test.
        rows = ablation_vertical.run_query(sf=0.01)
        assert rows[-1]["q1.1_ms"] > 8

    def test_miniblocks_near_free_on_uniform(self):
        rows = ablation_miniblocks.run(n=_N)
        four, single = rows
        assert abs(four["bits_per_int"] - single["bits_per_int"]) < 0.01
        assert 1.0 < four["decode_ms"] / single["decode_ms"] < 1.25

    def test_miniblocks_win_under_skew(self):
        rows = ablation_miniblocks.run(n=_N, skewed=True)
        four, single = rows
        assert single["bits_per_int"] > four["bits_per_int"] + 2


class TestStreamingScan:
    def test_rows_and_bit_identity(self, small_db):
        # run() raises AssertionError itself if any worker count ever
        # disagrees with the materialized answer.
        rows = streaming_scan.run(
            db=small_db, queries=("q1.1",), workers=(1, 2), reps=1
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["query"] == "q1.1"
        assert row["peak_MB_materialized"] > 0
        assert row["peak_MB_stream"] > 0
        assert row["wall_speedup"] > 0
