"""The ``python -m repro`` command-line entry point."""


from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_exact_name(self, capsys):
        assert main(["run", "opt_ladder"]) == 0
        out = capsys.readouterr().out
        assert "optimization ladder" in out

    def test_run_prefix_match(self, capsys):
        assert main(["run", "fig5"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown" in capsys.readouterr().out

    def test_run_ambiguous(self, capsys):
        assert main(["run", "fig1"]) == 2  # fig10, fig11, fig12
        assert "ambiguous" in capsys.readouterr().out

    def test_no_args_usage(self, capsys):
        assert main([]) == 2
        assert "Usage" in capsys.readouterr().out

    def test_run_without_name(self):
        assert main(["run"]) == 2

    def test_unknown_command(self):
        assert main(["bogus"]) == 2

    def test_every_registered_experiment_has_main(self):
        for name, (module, description) in EXPERIMENTS.items():
            assert callable(module.main), name
            assert description
