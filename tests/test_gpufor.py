"""GPU-FOR: format layout (Figures 3-4), round trips, tiles, resources."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.gpufor import (
    BLOCK,
    BLOCK_HEADER_WORDS,
    GpuFor,
    bit_length,
    pack_blocks,
    unpack_blocks,
)


class TestBitLength:
    def test_matches_python_bit_length(self, rng):
        values = rng.integers(0, 2**32, 1000, dtype=np.uint64)
        expected = np.array([int(v).bit_length() for v in values])
        assert np.array_equal(bit_length(values), expected)

    def test_powers_of_two_exact(self):
        # The classic float-log pitfall: 2**k must need exactly k+1 bits.
        powers = 2 ** np.arange(32, dtype=np.uint64)
        assert np.array_equal(bit_length(powers), np.arange(32) + 1)

    def test_63_bit_boundary_exact(self):
        # Top of the supported range: 2**62 and 2**63 - 1 need 63 bits.
        vals = np.array([2**62 - 1, 2**62, 2**63 - 1], dtype=np.uint64)
        assert np.array_equal(bit_length(vals), [62, 63, 63])

    def test_values_beyond_63_bits_rejected(self):
        # Regression: 2**63 used to silently report 63 bits (the bound
        # table stops at 2**62) and mis-pack downstream.
        with pytest.raises(ValueError, match=r"2\*\*63"):
            bit_length(np.array([2**63], dtype=np.uint64))
        with pytest.raises(ValueError, match=r"2\*\*63"):
            bit_length(np.array([2**64 - 1], dtype=np.uint64))

    def test_negative_wraparound_rejected(self):
        # Negative inputs wrap to >= 2**63 under the uint64 view; they
        # must raise instead of reporting 63-bit widths.
        with pytest.raises(ValueError, match=r"2\*\*63"):
            bit_length(np.array([-1], dtype=np.int64))


class TestPackBlocks:
    def test_reference_is_block_minimum(self):
        values = np.arange(100, 100 + BLOCK, dtype=np.int64)
        data, starts, bits = pack_blocks(values)
        assert data[starts[0]].view(np.int32) == 100

    def test_bitwidth_word_layout(self):
        # Four miniblocks with known widths 1, 2, 3, 4.
        values = np.concatenate(
            [np.tile([0, 2**b - 1], 16) for b in (1, 2, 3, 4)]
        ).astype(np.int64)
        data, starts, bits = pack_blocks(values)
        assert list(bits[0]) == [1, 2, 3, 4]
        bw_word = int(data[starts[0] + 1])
        assert [(bw_word >> (8 * j)) & 0xFF for j in range(4)] == [1, 2, 3, 4]

    def test_block_words_match_bitwidths(self):
        values = np.arange(2 * BLOCK, dtype=np.int64)
        data, starts, bits = pack_blocks(values)
        for blk in range(2):
            expected = BLOCK_HEADER_WORDS + int(bits[blk].sum())
            assert starts[blk + 1] - starts[blk] == expected

    def test_all_equal_block_needs_header_only(self):
        values = np.full(BLOCK, 42, dtype=np.int64)
        data, starts, bits = pack_blocks(values)
        assert starts[1] - starts[0] == BLOCK_HEADER_WORDS
        assert np.all(bits == 0)

    def test_negative_values_via_reference(self):
        values = np.full(BLOCK, -5, dtype=np.int64)
        values[0] = -100
        data, starts, _ = pack_blocks(values)
        out = unpack_blocks(data, starts, 0, 1)
        assert np.array_equal(out, values)

    def test_range_over_32_bits_rejected(self):
        values = np.zeros(BLOCK, dtype=np.int64)
        values[0] = -1
        values[1] = 2**32
        with pytest.raises(ValueError, match="range exceeds"):
            pack_blocks(values)

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            pack_blocks(np.zeros(100, dtype=np.int64))

    def test_empty(self):
        data, starts, bits = pack_blocks(np.zeros(0, dtype=np.int64))
        assert data.size == 0 and starts.size == 1 and bits.size == 0

    def test_unpack_without_reference_gives_raw_diffs(self):
        values = np.arange(100, 100 + BLOCK, dtype=np.int64)
        data, starts, _ = pack_blocks(values)
        diffs = unpack_blocks(data, starts, 0, 1, add_reference=False)
        assert np.array_equal(diffs, np.arange(BLOCK))

    def test_partial_block_range_decode(self):
        values = np.arange(5 * BLOCK, dtype=np.int64) * 3
        data, starts, _ = pack_blocks(values)
        out = unpack_blocks(data, starts, 2, 4)
        assert np.array_equal(out, values[2 * BLOCK : 4 * BLOCK])


class TestGpuForCodec:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda rng: rng.integers(0, 2**16, 10_000),
            lambda rng: rng.integers(-(2**20), 2**20, 5_000),
            lambda rng: np.sort(rng.integers(0, 2**30, 7_777)),
            lambda rng: np.zeros(BLOCK * 3 + 1, dtype=np.int64),
            lambda rng: np.array([2**31 - 1]),
            lambda rng: np.array([-(2**31)]),
        ],
    )
    def test_roundtrip(self, rng, maker):
        values = np.asarray(maker(rng), dtype=np.int64)
        codec = GpuFor()
        out = codec.decode(codec.encode(values))
        assert np.array_equal(out, values)

    def test_empty_column(self):
        codec = GpuFor()
        enc = codec.encode(np.array([], dtype=np.int64))
        assert enc.count == 0
        assert codec.decode(enc).size == 0

    def test_overhead_is_0_75_bits(self, rng):
        # 1 block-start + 1 reference + 1 bitwidth word per 128 values.
        values = rng.integers(0, 2**16, 1_000_000)
        enc = GpuFor().encode(values)
        overhead = enc.bits_per_int - 16
        assert 0.70 <= overhead <= 0.85

    def test_compression_linear_in_bitwidth(self, rng):
        sizes = [
            GpuFor().encode(rng.integers(0, 2**b, 50_000)).bits_per_int
            for b in (4, 8, 16)
        ]
        assert sizes[0] < sizes[1] < sizes[2]
        assert abs((sizes[1] - sizes[0]) - 4) < 0.6
        assert abs((sizes[2] - sizes[1]) - 8) < 0.6

    def test_tiles_concatenate_to_column(self, rng):
        values = rng.integers(0, 1000, 10 * BLOCK + 17)
        codec = GpuFor(d_blocks=4)
        enc = codec.encode(values)
        tiles = [codec.decode_tile(enc, t) for t in range(codec.num_tiles(enc))]
        assert np.array_equal(np.concatenate(tiles), values)

    def test_tile_out_of_range(self, rng):
        codec = GpuFor()
        enc = codec.encode(rng.integers(0, 10, 100))
        with pytest.raises(IndexError):
            codec.decode_tile(enc, 99)

    def test_tile_segments_cover_data_array(self, rng):
        values = rng.integers(0, 2**12, 20 * BLOCK)
        codec = GpuFor(d_blocks=4)
        enc = codec.encode(values)
        starts, lengths = codec.tile_segments(enc)
        n_tiles = codec.num_tiles(enc)
        data_segs = slice(0, n_tiles)
        covered = int(lengths[data_segs].sum())
        assert covered == enc.arrays["data"].nbytes

    def test_d_blocks_validation(self):
        with pytest.raises(ValueError):
            GpuFor(d_blocks=0)

    def test_kernel_resources_scale_with_d(self):
        small = GpuFor(d_blocks=1)
        big = GpuFor(d_blocks=32)
        enc_s = small.encode(np.arange(BLOCK))
        enc_b = big.encode(np.arange(BLOCK))
        rs, rb = small.kernel_resources(enc_s), big.kernel_resources(enc_b)
        assert rb.registers_per_thread > rs.registers_per_thread
        assert rb.shared_mem_per_block > rs.shared_mem_per_block

    def test_cascade_passes_structure(self, rng):
        enc = GpuFor().encode(rng.integers(0, 100, 1000))
        passes = GpuFor().cascade_passes(enc)
        assert [p.name for p in passes] == ["unpack-bits", "add-reference"]
        assert passes[0].write_bytes == enc.count * 4

    def test_check_roundtrip_helper(self, rng):
        GpuFor().check_roundtrip(rng.integers(0, 50, 300))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="1-D"):
            GpuFor().encode(np.zeros((2, 2), dtype=np.int64))

    @given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=0, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        codec = GpuFor()
        try:
            enc = codec.encode(arr)
        except ValueError:
            # Legal only when a block's range exceeds 32 bits.
            assert arr.size > 0
            return
        assert np.array_equal(codec.decode(enc), arr)
