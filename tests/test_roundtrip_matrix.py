"""Adversarial round-trip shapes across every registry codec.

Each codec must either round-trip a shape bit-exactly or reject it with a
clear :class:`ValueError` naming its documented domain — never silently
corrupt.  Shapes cover the classic encoder edge cases: empty input, a
single value, sizes that are not multiples of the 128/512 block sizes,
all-negative columns, constant columns, and values straddling the int32
boundary.

Shapes whose values all fit in int32 are the common domain the paper's
formats are built for: every codec must round-trip those (except the
documented non-negative-only codecs on negative shapes).  Shapes with
values at or above ``2**31`` are outside several formats' 32-bit
reference/value words; there a clear rejection is as good as a
round-trip, but silent wrapping (the bug this file pins down) is not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.registry import codec_names, get_codec

#: Codecs whose documented domain excludes negative values.
NON_NEGATIVE_ONLY = {"gpu-bp", "gpu-vbyte", "nsv", "simple8b"}

SHAPES: dict[str, np.ndarray] = {
    "empty": np.zeros(0, dtype=np.int64),
    "single": np.array([42], dtype=np.int64),
    "single_negative": np.array([-42], dtype=np.int64),
    "non_multiple_127": np.arange(127, dtype=np.int64),
    "non_multiple_129": np.arange(129, dtype=np.int64),
    "non_multiple_511": np.arange(511, dtype=np.int64) % 89,
    "non_multiple_513": np.arange(513, dtype=np.int64) % 89,
    "non_multiple_4097": np.arange(4097, dtype=np.int64) % 1000,
    "all_negative": -np.arange(1, 700, dtype=np.int64),
    "constant": np.full(1000, 7, dtype=np.int64),
    "constant_negative": np.full(640, -123456, dtype=np.int64),
    "int32_boundary": np.array(
        [2**31 - 2, 2**31 - 1, 2**31, 2**31 + 1] * 64, dtype=np.int64
    ),
    # Every value above int32: trips any encoder that stores a 32-bit
    # reference or value word without checking (these used to wrap).
    "above_int32": np.full(1000, 2**31 + 5, dtype=np.int64),
}


def _fits_int32(values: np.ndarray) -> bool:
    if values.size == 0:
        return True
    return -(2**31) <= int(values.min()) and int(values.max()) < 2**31


def _expects_domain_error(codec_name: str, values: np.ndarray) -> bool:
    return (
        codec_name in NON_NEGATIVE_ONLY
        and values.size > 0
        and int(values.min()) < 0
    )


@pytest.mark.parametrize("shape_name", sorted(SHAPES))
@pytest.mark.parametrize("codec_name", codec_names())
def test_roundtrip_or_clear_rejection(codec_name, shape_name):
    codec = get_codec(codec_name)
    values = SHAPES[shape_name]
    if _expects_domain_error(codec_name, values):
        with pytest.raises(ValueError):
            codec.encode(values)
        return
    try:
        enc = codec.encode(values)
    except ValueError as err:
        # A clear rejection is acceptable only outside the common int32
        # domain (e.g. int32 reference words cannot hold these values).
        assert not _fits_int32(values), (
            f"{codec_name} rejected an in-domain shape: {err}"
        )
        assert str(err), "rejection must carry a message"
        return
    assert enc.count == values.size
    out = codec.decode(enc)
    assert out.shape == values.shape
    assert out.dtype == values.dtype
    assert np.array_equal(out, values), (
        f"{codec_name} silently corrupted shape {shape_name}"
    )


@pytest.mark.parametrize("shape_name", sorted(SHAPES))
@pytest.mark.parametrize("codec_name", codec_names())
def test_int32_inputs_keep_dtype(codec_name, shape_name):
    """The same shapes delivered as int32 columns come back as int32."""
    values = SHAPES[shape_name]
    if not _fits_int32(values):
        pytest.skip("shape does not fit in int32")
    values = values.astype(np.int32)
    if _expects_domain_error(codec_name, values):
        pytest.skip("outside codec domain")
    codec = get_codec(codec_name)
    out = codec.decode(codec.encode(values))
    assert out.dtype == np.int32
    assert np.array_equal(out, values)
