"""GPU-DFOR: per-tile delta chains, first values, compression behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.gpudfor import GpuDFor
from repro.formats.gpufor import BLOCK, GpuFor


class TestFormat:
    def test_first_value_per_tile(self, rng):
        codec = GpuDFor(d_blocks=4)
        tile = 4 * BLOCK
        values = rng.integers(0, 10**6, 3 * tile)
        enc = codec.encode(values)
        assert np.array_equal(
            enc.arrays["first_values"].astype(np.int64), values[::tile]
        )

    def test_tiles_decode_independently(self, rng):
        codec = GpuDFor(d_blocks=4)
        tile = 4 * BLOCK
        values = np.sort(rng.integers(0, 2**28, 5 * tile))
        enc = codec.encode(values)
        # Decode the middle tile alone — no dependence on earlier tiles.
        out = codec.decode_tile(enc, 2)
        assert np.array_equal(out, values[2 * tile : 3 * tile])

    def test_overhead_is_0_81_bits(self, rng):
        # GPU-FOR's 0.75 + one first-value word per D=4 blocks.
        values = rng.integers(0, 2**16, 1_000_000)
        enc = GpuDFor().encode(values)
        raw_bits = 17  # unsorted deltas need one extra bit (Section 9.2)
        assert abs(enc.bits_per_int - (raw_bits + 0.81)) < 0.6

    def test_sorted_keys_compress_hard(self):
        # Section 5.1: 1..n sorted costs ~1.8 bits/int vs ~7.8 for GPU-FOR.
        n = 500_000
        keys = np.arange(1, n + 1, dtype=np.int64)
        dfor = GpuDFor().encode(keys).bits_per_int
        ffor = GpuFor().encode(keys).bits_per_int
        assert dfor < 2.0
        assert 6.5 < ffor < 8.5
        assert ffor / dfor > 3

    def test_unsorted_worse_than_gpufor(self, rng):
        # Deltas of uniform data span a wider range than the data itself.
        values = rng.integers(0, 32, 100_000)
        assert (
            GpuDFor().encode(values).bits_per_int
            > GpuFor().encode(values).bits_per_int
        )

    def test_first_value_overflow_rejected(self):
        with pytest.raises(ValueError, match="int32"):
            GpuDFor().encode(np.array([2**40]))


class TestRoundtrip:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda rng: np.sort(rng.integers(-(2**30), 2**30, 10_000)),
            lambda rng: rng.integers(0, 100, 3 * 512 + 1),
            lambda rng: np.arange(512, dtype=np.int64)[::-1],  # descending
            lambda rng: np.array([7]),
            lambda rng: np.array([], dtype=np.int64),
            lambda rng: np.full(512 * 2, -(2**20), dtype=np.int64),
        ],
    )
    def test_roundtrip(self, rng, maker):
        values = np.asarray(maker(rng), dtype=np.int64)
        codec = GpuDFor()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    @pytest.mark.parametrize("d", [1, 2, 4, 8])
    def test_roundtrip_any_d(self, rng, d):
        values = np.sort(rng.integers(0, 2**24, 4_000))
        codec = GpuDFor(d_blocks=d)
        enc = codec.encode(values)
        assert np.array_equal(codec.decode(enc), values)
        tiles = [codec.decode_tile(enc, t) for t in range(codec.num_tiles(enc))]
        assert np.array_equal(np.concatenate(tiles), values)

    def test_cascade_is_three_passes(self, rng):
        enc = GpuDFor().encode(np.sort(rng.integers(0, 1000, 2000)))
        names = [p.name for p in GpuDFor().cascade_passes(enc)]
        assert names == ["unpack-bits", "add-reference", "prefix-sum"]

    @given(st.lists(st.integers(-(2**26), 2**26), min_size=1, max_size=600))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        codec = GpuDFor()
        assert np.array_equal(codec.decode(codec.encode(arr)), arr)

    def test_segments_include_first_values(self, rng):
        codec = GpuDFor()
        enc = codec.encode(np.sort(rng.integers(0, 10**6, 3000)))
        starts, lengths = codec.tile_segments(enc)
        # 3 segment groups per tile: data, block starts, first value.
        assert starts.size == 3 * codec.num_tiles(enc)
