"""Extension sweeps: interconnect generations, sensitivity experiment."""

import pytest

from repro.experiments import interconnect_sweep, sensitivity_gpu
from repro.ssb.dbgen import generate


@pytest.fixture(scope="module")
def small_db():
    return generate(scale_factor=0.01, seed=7)


class TestInterconnectSweep:
    @pytest.fixture(scope="class")
    def rows(self, small_db):
        return interconnect_sweep.run(db=small_db)

    def test_pcie3_matches_fig12(self, rows):
        pcie3 = next(r for r in rows if r["link"] == "PCIe3 x16")
        assert 1.8 < pcie3["speedup"] < 3.2  # Figure 12's 2.3x

    def test_speedup_decays_with_bandwidth(self, rows):
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups, reverse=True)

    def test_fast_links_erode_the_win(self, rows):
        nvlink4 = next(r for r in rows if r["link"] == "NVLink4")
        pcie3 = next(r for r in rows if r["link"] == "PCIe3 x16")
        assert nvlink4["speedup"] < pcie3["speedup"] / 1.5

    def test_all_links_present(self, rows):
        assert {r["link"] for r in rows} == set(interconnect_sweep.LINKS)


class TestSensitivity:
    def test_a100_sustains_d32(self):
        rows = sensitivity_gpu.run_d_sweep(n=300_000)
        by_d = {r["D"]: r for r in rows}
        assert by_d[32]["V100"] > 2 * by_d[16]["V100"]  # V100 collapses
        assert by_d[32]["A100"] < 1.5 * by_d[16]["A100"]  # A100 doesn't

    def test_tile_advantage_on_both_devices(self):
        rows = sensitivity_gpu.run_tile_vs_cascade(n=300_000)
        for r in rows:
            assert r["V100 ratio"] > 1.5 and r["A100 ratio"] > 1.5

    def test_tuner_rows(self):
        rows = sensitivity_gpu.run_tuner()
        by_key = {(r["device"], r["output_columns"]): r["best_D"] for r in rows}
        assert by_key[("V100", 4)] == 4
        assert by_key[("A100", 1)] >= by_key[("V100", 1)]


class TestLightweightVsEntropy:
    def test_capture_is_high(self, small_db):
        from repro.experiments import lightweight_vs_entropy

        rows = lightweight_vs_entropy.run(db=small_db)
        mean = next(r for r in rows if r["column"] == "mean")
        # The §2.2 claim: lightweight schemes capture most of the gains.
        assert mean["savings_capture"] > 0.8

    def test_structure_beats_entropy_on_run_columns(self, small_db):
        from repro.experiments import lightweight_vs_entropy

        rows = lightweight_vs_entropy.run(db=small_db)
        by_col = {r["column"]: r for r in rows}
        for column in ("lo_orderkey", "lo_orderdate", "lo_custkey"):
            r = by_col[column]
            assert r["gpu_star_bits"] < r["entropy_bits"], column
            assert r["savings_capture"] == 1.0, column
