"""Shared fixtures: RNG, a small deterministic SSB database, and stores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ssb.dbgen import generate
from repro.ssb.loader import load_lineorder


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def ssb_db():
    """A tiny but fully-formed SSB database (≈60k lineorder rows)."""
    return generate(scale_factor=0.01, seed=7)


@pytest.fixture(scope="session")
def gpu_star_store(ssb_db):
    return load_lineorder(ssb_db, "gpu-star")


@pytest.fixture(scope="session")
def none_store(ssb_db):
    return load_lineorder(ssb_db, "none")
