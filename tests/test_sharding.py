"""Sharded multi-GPU serving: routing, bit-identity, staleness, faults.

The contract under test is the tentpole one: a :class:`ShardRouter`
partitions each compressed column tile-range-wise over N simulated
devices, routes queries only to shards whose tile ranges survive
zone-map pushdown, and scatter-gathers per-shard partials — and the
merged answer is **bit-identical** to single-device execution at every
shard count, for every GPU tile codec, with or without batching,
replication, semantic caching, mid-flight flushes or injected faults.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.updates import UpdatableColumn
from repro.engine.crystal import TILE, CrystalEngine
from repro.engine.predicates import And, Range
from repro.engine.ssb_queries import QUERIES, make_flight1, make_scan
from repro.formats import set_checksums, set_verify_mode
from repro.serving import (
    FaultInjector,
    MetricsRegistry,
    QueryServer,
    ServeRequest,
    ShardRouter,
    codec_tile_alignment,
    labeled,
)
from repro.ssb.loader import load_lineorder
from tests.test_streaming import (
    GPU_CODECS,
    MATRIX_QUERIES,
    _columns_for,
    _encoded_store,
)

SHARD_COUNTS = (1, 2, 4, 7)


@pytest.fixture
def hardened():
    """Checksummed encodings + lazy verification, so injected corruption
    is detectable (same contract as the fault-serving tests)."""
    prev_checks = set_checksums(True)
    prev_mode = set_verify_mode("lazy")
    yield
    set_checksums(prev_checks)
    set_verify_mode(prev_mode)


# ---------------------------------------------------------------------------
# Labeled metrics (satellite: per-shard counters without breaking scrapes)
# ---------------------------------------------------------------------------


class TestLabeledMetrics:
    def test_labeled_key_format(self):
        assert labeled("shard_queue_depth") == "shard_queue_depth"
        assert labeled("shard_queue_depth", {"shard": 2}) == (
            "shard_queue_depth{shard=2}"
        )
        # Labels sort by key, so the flat name is canonical.
        assert labeled("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"

    def test_labeled_and_unlabeled_coexist(self):
        metrics = MetricsRegistry()
        metrics.inc("hits", 3)
        metrics.inc("hits", 5, labels={"shard": 0})
        metrics.inc("hits", 7, labels={"shard": 1})
        assert metrics.counter("hits") == 3
        assert metrics.counter("hits", labels={"shard": 0}) == 5
        snap = metrics.snapshot()
        assert snap["hits"] == 3
        assert snap["hits{shard=0}"] == 5
        assert snap["hits{shard=1}"] == 7

    def test_labeled_series_percentiles(self):
        metrics = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            metrics.observe("lat", v, labels={"shard": 2})
        assert metrics.series("lat", labels={"shard": 2}) == [1.0, 2.0, 3.0]
        assert metrics.series_percentile("lat", 50, labels={"shard": 2}) == 2.0
        snap = metrics.snapshot()
        assert snap["lat{shard=2}_count"] == 3
        assert snap["lat{shard=2}_p50"] == 2.0


# ---------------------------------------------------------------------------
# Alignment and shard geometry
# ---------------------------------------------------------------------------


class TestAlignment:
    def test_alignment_is_codec_tile_lcm(self, ssb_db):
        cols = _columns_for(("q1.1",))
        store128 = _encoded_store(ssb_db, "gpu-simdbp128", cols)
        assert codec_tile_alignment(store128) == 4096
        store_for = _encoded_store(ssb_db, "gpu-for", cols)
        assert codec_tile_alignment(store_for) % TILE == 0

    def test_shard_spans_tile_aligned_and_cover(self, ssb_db):
        store = _encoded_store(ssb_db, "gpu-simdbp128", _columns_for(("q1.1",)))
        router = ShardRouter(ssb_db, store, 4)
        assert router.alignment == 4096
        assert router.shards[0].row_lo == 0
        assert router.shards[-1].row_hi == ssb_db.num_lineorder_rows
        for shard, nxt in zip(router.shards, router.shards[1:]):
            assert shard.row_hi == nxt.row_lo
            if shard.row_hi < ssb_db.num_lineorder_rows:
                assert shard.row_hi % 4096 == 0
        router.close()


# ---------------------------------------------------------------------------
# Bit-identity: shard counts x codecs x queries
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module", params=GPU_CODECS)
def sharding_codec_store(request, ssb_db):
    return request.param, _encoded_store(
        ssb_db, request.param, _columns_for(("q1.1", "q1.3", "q3.1"))
    )


class TestShardedBitIdentity:
    @pytest.mark.parametrize("qname", ("q1.1", "q1.3", "q3.1"))
    def test_matches_single_device_every_shard_count(
        self, sharding_codec_store, ssb_db, qname
    ):
        codec_name, store = sharding_codec_store
        query = QUERIES[qname]
        ref = CrystalEngine(ssb_db, store).run(query).groups
        for num_shards in SHARD_COUNTS:
            router = ShardRouter(ssb_db, store, num_shards)
            groups, wall_ms = router.execute(query)
            assert groups == ref, (codec_name, qname, num_shards)
            assert wall_ms > 0
            router.close()

    def test_full_matrix_at_four_shards(self, ssb_db):
        """Every matrix query, gpu-star store, 4 shards — one pass."""
        store = load_lineorder(ssb_db, "gpu-star")
        router = ShardRouter(ssb_db, store, 4)
        for qname in MATRIX_QUERIES:
            query = QUERIES[qname]
            ref = CrystalEngine(ssb_db, store).run(query).groups
            groups, _ = router.execute(query)
            assert groups == ref, qname
        router.close()

    def test_pruned_to_zero_still_answers_identity(self, ssb_db):
        """A predicate no tile satisfies: the fallback shard still
        produces the aggregate identity single-device returns."""
        store = load_lineorder(ssb_db, "gpu-star")
        dead = make_scan("dead", And((Range("lo_quantity", 10_000, 20_000),)))
        ref = CrystalEngine(ssb_db, store, streaming=True).run(dead).groups
        router = ShardRouter(ssb_db, store, 4)
        groups, _ = router.execute(dead)
        assert groups == ref
        assert len(router.last_execution["shards"]) == 1
        router.close()

    def test_replicated_columns_identical_answers(self, ssb_db):
        store = load_lineorder(ssb_db, "gpu-star")
        query = QUERIES["q1.1"]
        ref = CrystalEngine(ssb_db, store).run(query).groups
        router = ShardRouter(
            ssb_db, store, 4, replicate_columns=("lo_discount",)
        )
        groups, _ = router.execute(query)
        assert groups == ref
        # The replica is pinned in full on every shard.
        nbytes = store["lo_discount"].nbytes
        for shard in router.shards:
            resident = shard.pool.get("compressed/lo_discount")
            assert resident is not None and resident.nbytes == nbytes
            assert resident.pin_count > 0
        router.close()


# ---------------------------------------------------------------------------
# Zone-map routing
# ---------------------------------------------------------------------------


def _key_scan(name: str, key_lo: int, key_hi: int):
    """An ad-hoc revenue scan keyed on the *sorted* lo_orderkey column,
    so zone maps genuinely prune whole shards."""
    pred = And((Range("lo_orderkey", key_lo, key_hi),))
    key_pred = pred.predicates[0]

    def fn(engine):
        p = engine.pipeline(name)
        p.filter_pushdown(pred)
        orderkey = p.load("lo_orderkey")
        p.filter_predicate(key_pred, orderkey)
        discount = p.load("lo_discount")
        extendedprice = p.load("lo_extendedprice")
        result = p.total_sum_product(extendedprice, discount)
        p.finish()
        return result

    from repro.engine.crystal import SSBQuery

    return SSBQuery(
        name,
        ("lo_orderkey", "lo_discount", "lo_extendedprice"),
        fn,
        plan_key=("scan", "key-revenue"),
        predicate=pred,
    )


class TestRouting:
    def test_selective_key_range_routes_subset(self, ssb_db):
        store = load_lineorder(
            ssb_db, "gpu-star"
        )
        keys = ssb_db.lineorder["lo_orderkey"]
        assert np.all(np.diff(keys) >= 0), "lo_orderkey must be sorted"
        router = ShardRouter(ssb_db, store, 4)
        first = router.shards[0]
        # A range entirely inside shard 0's rows.
        hi_key = int(keys[first.row_hi - 1])
        lo_q = _key_scan("first-shard", int(keys[0]), max(int(keys[0]), hi_key - 1))
        selected = router.route(lo_q)
        assert [s.index for s in selected] == [0]
        # An unkeyed scan fans out everywhere.
        broad = make_scan("broad", And((Range("lo_discount", 0, 10),)))
        assert len(router.route(broad)) == 4
        snap = router.metrics.snapshot()
        assert snap["shard_queries{shard=0}"] == 2
        assert snap["router_routing_skew"] > 1.0
        router.close()

    def test_skewed_answers_still_identical(self, ssb_db):
        store = load_lineorder(ssb_db, "gpu-star")
        keys = ssb_db.lineorder["lo_orderkey"]
        router = ShardRouter(ssb_db, store, 4)
        ref_engine = CrystalEngine(ssb_db, store, streaming=True)
        for lo_frac, hi_frac in ((0.0, 0.2), (0.4, 0.6), (0.1, 0.9)):
            lo = int(keys[int(lo_frac * (keys.size - 1))])
            hi = int(keys[int(hi_frac * (keys.size - 1))])
            q = _key_scan(f"skew-{lo_frac}", lo, hi)
            assert router.execute(q)[0] == ref_engine.run(q).groups
        router.close()


# ---------------------------------------------------------------------------
# Scatter-gather point lookups
# ---------------------------------------------------------------------------


class TestShardedLookup:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_lookup_reassembles_original_order(self, ssb_db, num_shards):
        store = load_lineorder(ssb_db, "gpu-star")
        router = ShardRouter(ssb_db, store, num_shards)
        rng = np.random.default_rng(17)
        indices = rng.integers(0, ssb_db.num_lineorder_rows, 513)
        values, wall_ms = router.lookup("lo_extendedprice", indices)
        assert np.array_equal(
            values, ssb_db.lineorder["lo_extendedprice"][indices]
        )
        assert wall_ms > 0
        router.close()

    def test_replicated_lookup_uses_one_shard(self, ssb_db):
        store = load_lineorder(ssb_db, "gpu-star")
        router = ShardRouter(
            ssb_db, store, 4, replicate_columns=("lo_extendedprice",)
        )
        indices = np.arange(0, ssb_db.num_lineorder_rows, 97)
        values, _ = router.lookup("lo_extendedprice", indices)
        assert np.array_equal(
            values, ssb_db.lineorder["lo_extendedprice"][indices]
        )
        # Exactly one device did gather work for the lookup.
        busy = [s for s in router.shards if s.busy_ms > 0]
        assert len(busy) == 1
        router.close()


# ---------------------------------------------------------------------------
# Through the QueryServer
# ---------------------------------------------------------------------------


class TestShardedServer:
    def test_requires_streaming(self, ssb_db, gpu_star_store):
        with pytest.raises(ValueError, match="streaming"):
            QueryServer(ssb_db, gpu_star_store, num_shards=2)

    @pytest.mark.parametrize("num_shards", (2, 4))
    def test_server_answers_match_single_device(
        self, ssb_db, gpu_star_store, num_shards
    ):
        requests = [
            ServeRequest("query", "q1.1"),
            ServeRequest("query", "q3.1"),
            ServeRequest(
                "lookup", "lo_extendedprice", indices=np.arange(100, 400)
            ),
        ]
        ref_srv = QueryServer(ssb_db, gpu_star_store, streaming=True)
        ref = ref_srv.serve([ServeRequest(r.kind, r.name, indices=r.indices)
                             for r in requests])
        ref_srv.stop()
        server = QueryServer(
            ssb_db, gpu_star_store, streaming=True, num_shards=num_shards
        )
        got = server.serve(requests)
        for a, b in zip(ref, got):
            assert b.ok, b.error
            if a.groups is not None:
                assert b.groups == a.groups
            else:
                assert np.array_equal(b.values, a.values)
        snap = server.metrics_snapshot()
        assert snap["server_served"] == 3
        for i in range(num_shards):
            assert f"pool_budget_bytes{{shard={i}}}" in snap
        assert snap["router_queries"] >= 2
        server.stop()

    def test_semantic_cache_per_shard(self, ssb_db, gpu_star_store):
        server = QueryServer(
            ssb_db,
            gpu_star_store,
            streaming=True,
            num_shards=4,
            semantic_cache=True,
            batch_window=1,
        )
        ref = CrystalEngine(ssb_db, gpu_star_store).run(QUERIES["q1.1"]).groups
        r1 = server.serve([ServeRequest("query", "q1.1")])[0]
        r2 = server.serve([ServeRequest("query", "q1.1")])[0]
        assert r1.groups == r2.groups == ref
        snap = server.metrics_snapshot()
        assert snap.get("semcache_covered_morsels", 0) > 0
        server.stop()

    def test_flush_during_sharded_serving_never_stale(self, ssb_db):
        """An UpdatableColumn flush must invalidate *every* shard: the
        next sharded answer reflects the post-update bytes exactly."""
        store = load_lineorder(ssb_db, "gpu-star")
        router = ShardRouter(ssb_db, store, 4)
        ucol = UpdatableColumn(ssb_db.lineorder["lo_extendedprice"])
        router.bind_updatable("lo_extendedprice", ucol)
        query = QUERIES["q1.1"]
        before, _ = router.execute(query)

        rows = np.arange(0, ssb_db.num_lineorder_rows, 7)
        ucol.update_many(rows, np.ones(rows.size, dtype=np.int64))
        ucol.flush(router.shards[0].device)
        after, _ = router.execute(query)

        fresh = load_lineorder(ssb_db, "gpu-star")
        fresh["lo_extendedprice"].values = ucol.values.copy()
        fresh["lo_extendedprice"].payload = ucol.encoded
        fresh["lo_extendedprice"].codec_name = ucol.codec_name
        expect = CrystalEngine(ssb_db, fresh, streaming=True).run(query).groups
        assert expect != before, "update must be visible in the aggregate"
        assert after == expect, "a shard served stale pre-flush bytes"
        router.close()

    def test_quarantined_column_degrades_structurally(self, ssb_db, hardened):
        """Persistent corruption on one column: sharded serving answers
        with a structured quarantine error, and queries not touching the
        corrupt column keep working."""
        store = load_lineorder(ssb_db, "gpu-star")
        injector = FaultInjector(seed=7)
        injector.corrupt(store["lo_discount"].payload, "payload-bit")
        server = QueryServer(
            ssb_db, store, streaming=True, num_shards=4, batch_window=1
        )
        bad = server.serve([ServeRequest("query", "q1.1")])[0]
        assert bad.status == "error"
        assert "quarantined" in bad.error or "corrupt" in bad.error.lower()
        assert server.quarantined_columns()
        # q3.1 never reads lo_discount: it must still be served.
        good = server.serve([ServeRequest("query", "q3.1")])[0]
        assert good.ok, good.error
        snap = server.metrics_snapshot()
        assert snap.get("server_quarantines", 0) == 1
        server.stop()

    def test_transient_shard_fault_retried(self, ssb_db):
        store = load_lineorder(ssb_db, "gpu-star")
        server = QueryServer(
            ssb_db, store, streaming=True, num_shards=2, max_retries=2
        )
        injector = FaultInjector(seed=3)
        hook = injector.transient_faults(columns=["lo_discount"], times=1)
        for shard in server.router.shards:
            shard.engine.fault_hook = hook
        result = server.serve([ServeRequest("query", "q1.1")])[0]
        assert result.ok, result.error
        assert server.metrics_snapshot().get("server_transient_retries", 0) >= 1
        server.stop()


# ---------------------------------------------------------------------------
# Flight-1 correctness under batching (many distinct ad-hoc scans)
# ---------------------------------------------------------------------------


class TestShardedWorkload:
    def test_mixed_scan_workload_identical(self, ssb_db, gpu_star_store):
        mix = [
            make_flight1("w-a", 19930101, 19931231, 1, 3, 0, 24),
            make_flight1("w-b", 19940101, 19941231, 4, 6, 26, 35),
            make_flight1("w-c", 19940204, 19940210, 5, 7, 26, 35),
        ]
        ref_engine = CrystalEngine(ssb_db, gpu_star_store, streaming=True)
        expected = {q.name: ref_engine.run(q).groups for q in mix}
        server = QueryServer(ssb_db, gpu_star_store, streaming=True, num_shards=4)
        results = server.serve(
            [ServeRequest("query", q.name, query=q) for q in mix * 2]
        )
        for result in results:
            assert result.ok, result.error
            assert result.groups == expected[result.request.name]
        server.stop()
