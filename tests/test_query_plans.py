"""Golden plan-trace snapshots for the compiled SSB + TPC-DS queries.

Every compiled plan's trace — resolved joins, FK reductions, pushdown
conjuncts, decode-cost filter order, fused-filter and
late-materialization decisions, surviving-tile counts — is snapshotted
as JSON under ``tests/snapshots/``.  A planner regression (a dropped
pushdown conjunct, a join that stopped eliminating, a cost-order flip)
fails with a readable unified diff instead of a silent plan change.

Regenerate intentionally with::

    REPRO_UPDATE_SNAPSHOTS=1 PYTHONPATH=src python -m pytest tests/test_query_plans.py
"""

from __future__ import annotations

import difflib
import json
import os
from pathlib import Path

import pytest

from repro.query.compiler import QueryCompiler
from repro.query.ssb import SSB_SPECS, ssb_model
from repro.query.tpcds import TPCDS_SPECS, tpcds_model
from repro.ssb.dbgen import generate_tpcds_subset
from repro.ssb.loader import load_star

SNAPSHOT_DIR = Path(__file__).parent / "snapshots"
UPDATE = os.environ.get("REPRO_UPDATE_SNAPSHOTS") == "1"


def _render(trace: dict) -> str:
    return json.dumps(trace, indent=2, sort_keys=True) + "\n"


def _check_snapshot(name: str, trace: dict) -> None:
    path = SNAPSHOT_DIR / f"{name}.json"
    rendered = _render(json.loads(json.dumps(trace)))
    if UPDATE or not path.exists():
        SNAPSHOT_DIR.mkdir(exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        if not UPDATE:
            pytest.fail(
                f"snapshot {path.name} did not exist and was created; "
                f"inspect and commit it"
            )
        return
    expected = path.read_text(encoding="utf-8")
    if rendered != expected:
        diff = "".join(
            difflib.unified_diff(
                expected.splitlines(keepends=True),
                rendered.splitlines(keepends=True),
                fromfile=f"snapshots/{path.name} (committed)",
                tofile=f"snapshots/{path.name} (compiled now)",
            )
        )
        pytest.fail(
            f"compiled plan for {name!r} changed:\n{diff}\n"
            f"If intentional, regenerate with REPRO_UPDATE_SNAPSHOTS=1."
        )


@pytest.fixture(scope="module")
def ssb_compiler(ssb_db, gpu_star_store):
    return QueryCompiler(ssb_model(), ssb_db, store=gpu_star_store)


@pytest.fixture(scope="module")
def tpcds_compiler():
    sdb = generate_tpcds_subset(scale_factor=0.01, seed=7)
    return QueryCompiler(tpcds_model(), sdb, store=load_star(sdb, "gpu-star"))


@pytest.mark.parametrize("name", tuple(SSB_SPECS))
def test_ssb_plan_snapshot(ssb_compiler, name):
    compiled = ssb_compiler.compile(SSB_SPECS[name])
    _check_snapshot(f"ssb_{name.replace('.', '_')}", compiled.trace)


@pytest.mark.parametrize("name", tuple(TPCDS_SPECS))
def test_tpcds_plan_snapshot(tpcds_compiler, name):
    compiled = tpcds_compiler.compile(TPCDS_SPECS[name])
    _check_snapshot(f"tpcds_{name}", compiled.trace)


def test_traces_record_planner_decisions(ssb_compiler):
    """Sanity on trace content itself, independent of snapshot churn."""
    q1 = ssb_compiler.compile(SSB_SPECS["q1.1"])
    # Flight 1's date join reduces exactly to a datekey range: dropped.
    assert q1.trace["joins"][0]["dropped"] is True
    assert q1.trace["joins"][0]["exact"] is True
    assert len(q1.trace["pushdown"]) == 3
    assert set(q1.trace["filter_order"]) == {
        "lo_orderdate", "lo_discount", "lo_quantity"
    }
    # Cheapest-decode-first: recorded costs are non-decreasing.
    costs = [q1.trace["filter_cost_ms"][c] for c in q1.trace["filter_order"]]
    assert costs == sorted(costs)

    q4 = ssb_compiler.compile(SSB_SPECS["q4.2"])
    tables = {j["table"]: j for j in q4.trace["joins"]}
    assert tables["date"]["dropped"] is False  # d_year is group payload
    assert tables["date"]["exact"] is True  # ...but the FK range is exact
    assert any(c[1] == "lo_orderdate" for c in q4.trace["pushdown"])
    assert q4.trace["surviving_tiles"] <= q4.trace["total_tiles"]
