"""GPU-RFOR: per-block RLE, the two packed streams, expansion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.gpufor import GpuFor
from repro.formats.gpurfor import RFOR_BLOCK, GpuRFor, run_length_encode


class TestRunLengthEncode:
    def test_runs_never_cross_block_boundary(self):
        values = np.full(2 * RFOR_BLOCK, 9, dtype=np.int64)
        run_values, run_lengths, per_block = run_length_encode(values)
        assert list(run_lengths) == [RFOR_BLOCK, RFOR_BLOCK]
        assert list(per_block) == [1, 1]

    def test_alternating_values(self):
        values = np.tile([1, 2], RFOR_BLOCK // 2).astype(np.int64)
        run_values, run_lengths, per_block = run_length_encode(values)
        assert run_values.size == RFOR_BLOCK
        assert np.all(run_lengths == 1)

    def test_lengths_cover_input(self, rng):
        values = np.repeat(rng.integers(0, 50, 300), rng.integers(1, 30, 300))
        values = values[: (values.size // RFOR_BLOCK) * RFOR_BLOCK]
        _, run_lengths, per_block = run_length_encode(values)
        assert int(run_lengths.sum()) == values.size
        assert int(per_block.sum()) == run_lengths.size

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            run_length_encode(np.zeros(100, dtype=np.int64))

    def test_empty(self):
        rv, rl, pb = run_length_encode(np.zeros(0, dtype=np.int64))
        assert rv.size == rl.size == pb.size == 0


class TestGpuRForCodec:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda rng: np.repeat(rng.integers(0, 100, 500), rng.integers(1, 40, 500)),
            lambda rng: rng.integers(0, 5, 5000),
            lambda rng: rng.integers(-(2**20), 2**20, 2000),  # run-free
            lambda rng: np.full(RFOR_BLOCK * 3, -7, dtype=np.int64),
            lambda rng: np.array([1]),
            lambda rng: np.array([], dtype=np.int64),
            lambda rng: np.arange(RFOR_BLOCK + 1, dtype=np.int64),
        ],
    )
    def test_roundtrip(self, rng, maker):
        values = np.asarray(maker(rng), dtype=np.int64)
        codec = GpuRFor()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_tiles_concatenate(self, rng):
        values = np.repeat(rng.integers(0, 30, 400), rng.integers(1, 10, 400))
        codec = GpuRFor()
        enc = codec.encode(values)
        tiles = [codec.decode_tile(enc, t) for t in range(codec.num_tiles(enc))]
        assert np.array_equal(np.concatenate(tiles), values)

    def test_high_run_length_beats_gpufor(self, rng):
        values = np.repeat(rng.integers(0, 1000, 2000), 64)
        rfor_bits = GpuRFor().encode(values).bits_per_int
        ffor_bits = GpuFor().encode(values).bits_per_int
        assert rfor_bits < ffor_bits / 3

    def test_avg_run_length_metadata(self, rng):
        values = np.repeat(np.arange(100), 50)
        enc = GpuRFor().encode(values)
        assert enc.meta["avg_run_length"] > 25

    def test_run_free_data_still_linear_in_bitwidth(self, rng):
        # Figure 7b: GPU-RFOR stays linear because bit-packing applies to
        # the run streams too.
        small = GpuRFor().encode(rng.integers(0, 2**4, 50_000)).bits_per_int
        large = GpuRFor().encode(rng.integers(0, 2**20, 50_000)).bits_per_int
        assert 14 < large - small < 18

    def test_cascade_is_eight_passes(self, rng):
        enc = GpuRFor().encode(rng.integers(0, 10, 2048))
        assert len(GpuRFor().cascade_passes(enc)) == 8

    def test_two_streams_present(self, rng):
        enc = GpuRFor().encode(rng.integers(0, 10, 2048))
        for key in ("values_data", "lengths_data", "values_starts",
                    "lengths_starts", "run_counts"):
            assert key in enc.arrays

    def test_resources_double_dfor(self, rng):
        from repro.formats.gpudfor import GpuDFor

        rfor = GpuRFor()
        dfor = GpuDFor()
        enc_r = rfor.encode(np.arange(RFOR_BLOCK))
        enc_d = dfor.encode(np.arange(512))
        assert (
            rfor.kernel_resources(enc_r).shared_mem_per_block
            > 1.5 * dfor.kernel_resources(enc_d).shared_mem_per_block
        )

    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=40),
        st.lists(st.integers(1, 60), min_size=40, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values, lengths):
        arr = np.repeat(
            np.array(values, dtype=np.int64),
            np.array(lengths[: len(values)], dtype=np.int64),
        )
        codec = GpuRFor()
        assert np.array_equal(codec.decode(codec.encode(arr)), arr)
