"""Differential tests: every codec against every distribution, and every
read path against every other read path.

The invariants:

1. decode(encode(x)) == x for every codec/distribution pair;
2. concatenated tile decodes == full decode (tile codecs);
3. save -> load -> decode == decode (serializable codecs);
4. gather(indices) == decode()[indices] (tile codecs);
5. validate_encoded accepts every fresh encoding.
"""

import io

import numpy as np
import pytest

from repro.core.random_access import gather
from repro.formats import get_codec, load_encoded, save_encoded
from repro.formats.base import TileCodec
from repro.formats.validate import validate_encoded
from repro.gpusim import GPUDevice
from repro.workloads.synthetic import (
    d1_sorted,
    d2_normal,
    d3_zipf,
    runs,
    uniform_bitwidth,
)

_N = 8_192

DISTRIBUTIONS = {
    "uniform4": lambda: uniform_bitwidth(4, _N, 1),
    "uniform20": lambda: uniform_bitwidth(20, _N, 2),
    "sorted-dense": lambda: d1_sorted(_N // 2, _N, 3),
    "sorted-sparse": lambda: d1_sorted(2**27, _N, 4),
    "normal": lambda: d2_normal(2**20, _N, seed=5),
    "zipf": lambda: d3_zipf(1.5, _N, seed=6),
    "runs": lambda: runs(16, _N, distinct=100, seed=7),
    "constant": lambda: np.full(_N, 12345, dtype=np.int64),
    "ramp": lambda: np.arange(_N, dtype=np.int64),
}

#: Codecs that accept any distribution above (non-negative, < 2^32 range).
ALL_CODECS = (
    "gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128",
    "gpu-vbyte", "nsf", "nsv", "pfor", "rle", "simple8b", "delta", "dict",
)
VALIDATABLE = ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "nsf", "nsv", "rle")


@pytest.mark.parametrize("dist", list(DISTRIBUTIONS))
@pytest.mark.parametrize("codec_name", ALL_CODECS)
def test_roundtrip_everywhere(codec_name, dist):
    values = DISTRIBUTIONS[dist]()
    codec = get_codec(codec_name)
    enc = codec.encode(values)
    out = codec.decode(enc)
    assert np.array_equal(out.astype(np.int64), values.astype(np.int64)), (
        codec_name, dist,
    )


@pytest.mark.parametrize("dist", ["uniform20", "sorted-dense", "runs", "constant"])
@pytest.mark.parametrize(
    "codec_name", ["gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128"]
)
def test_tiles_equal_full_decode(codec_name, dist):
    values = DISTRIBUTIONS[dist]()
    codec = get_codec(codec_name)
    assert isinstance(codec, TileCodec)
    enc = codec.encode(values)
    tiles = np.concatenate(
        [codec.decode_tile(enc, t) for t in range(codec.num_tiles(enc))]
    )
    assert np.array_equal(tiles.astype(np.int64), codec.decode(enc).astype(np.int64))


@pytest.mark.parametrize("dist", ["uniform20", "runs", "zipf"])
@pytest.mark.parametrize("codec_name", ALL_CODECS)
def test_save_load_equals_original(codec_name, dist, tmp_path):
    values = DISTRIBUTIONS[dist]()
    codec = get_codec(codec_name)
    enc = codec.encode(values)
    buf = io.BytesIO()
    save_encoded(enc, buf)
    buf.seek(0)
    loaded = load_encoded(buf)
    assert np.array_equal(
        codec.decode(loaded).astype(np.int64), values.astype(np.int64)
    ), (codec_name, dist)


@pytest.mark.parametrize("dist", ["uniform20", "sorted-dense", "runs"])
@pytest.mark.parametrize("codec_name", ["gpu-for", "gpu-dfor", "gpu-rfor"])
def test_gather_equals_decode_subscript(codec_name, dist):
    values = DISTRIBUTIONS[dist]()
    codec = get_codec(codec_name)
    enc = codec.encode(values)
    rng = np.random.default_rng(9)
    idx = rng.integers(0, values.size, 300)
    report = gather(enc, idx, GPUDevice())
    assert np.array_equal(
        report.values.astype(np.int64), codec.decode(enc).astype(np.int64)[idx]
    )


@pytest.mark.parametrize("dist", list(DISTRIBUTIONS))
@pytest.mark.parametrize("codec_name", VALIDATABLE)
def test_fresh_encodings_always_validate(codec_name, dist):
    enc = get_codec(codec_name).encode(DISTRIBUTIONS[dist]())
    validate_encoded(enc)
