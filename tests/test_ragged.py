"""Ragged FOR+bit-packing (GPU-RFOR's physical layer)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.ragged import pack_ragged, unpack_ragged


def _roundtrip(values, counts):
    packed = pack_ragged(
        np.asarray(values, dtype=np.int64), np.asarray(counts, dtype=np.int64)
    )
    out, out_counts = unpack_ragged(packed)
    return packed, out, out_counts


class TestPackRagged:
    def test_single_block(self):
        packed, out, counts = _roundtrip([5, 9, 7], [3])
        assert np.array_equal(out, [5, 9, 7])
        assert list(counts) == [3]

    def test_varying_block_sizes(self, rng):
        counts = rng.integers(1, 200, 50)
        values = rng.integers(-1000, 1000, int(counts.sum()))
        _, out, _ = _roundtrip(values, counts)
        assert np.array_equal(out, values)

    def test_blocks_padded_to_miniblocks(self):
        # One value still allocates a whole 32-value miniblock, but padding
        # uses the block's own value so it costs 0 bits.
        packed, _, _ = _roundtrip([7], [1])
        # reference + 1 bw word + 0 payload (all-equal after FOR).
        assert packed.data.size == 2

    def test_per_block_references(self):
        values = np.array([100, 101, -50, -49], dtype=np.int64)
        packed = pack_ragged(values, np.array([2, 2]))
        refs = packed.data[packed.block_starts[:-1].astype(np.int64)].view(np.int32)
        assert list(refs) == [100, -50]

    def test_empty(self):
        packed = pack_ragged(np.zeros(0, np.int64), np.zeros(0, np.int64))
        out, counts = unpack_ragged(packed)
        assert out.size == 0 and counts.size == 0

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            pack_ragged(np.array([1]), np.array([1, 0]))

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            pack_ragged(np.array([1, 2]), np.array([3]))

    def test_wide_range_rejected(self):
        with pytest.raises(ValueError, match="exceeds 32 bits"):
            pack_ragged(np.array([0, 2**33]), np.array([2]))

    def test_block_range_decode(self, rng):
        counts = rng.integers(1, 100, 20)
        values = rng.integers(0, 10**6, int(counts.sum()))
        packed = pack_ragged(values, counts)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        out, c = unpack_ragged(packed, 5, 12)
        assert np.array_equal(out, values[offsets[5] : offsets[12]])
        assert np.array_equal(c, counts[5:12])

    def test_bad_block_range(self, rng):
        packed = pack_ragged(np.array([1, 2]), np.array([2]))
        with pytest.raises(IndexError):
            unpack_ragged(packed, 0, 5)

    @given(st.lists(st.integers(1, 90), min_size=1, max_size=30), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, counts, seed):
        counts = np.array(counts, dtype=np.int64)
        rng = np.random.default_rng(seed)
        values = rng.integers(-(2**30), 2**30, int(counts.sum()))
        _, out, _ = _roundtrip(values, counts)
        assert np.array_equal(out, values)
