"""Kernel backend layer: bit-identity oracle matrix and fused decode+filter.

The pluggable backends under ``repro.formats.kernels`` must be
bit-identical: the reference NumPy phase-loop implementation is the
oracle, and the precompiled shift-table backend (plus the optional numba
JIT) are checked against it across every bitwidth, for ordinary,
read-only, and strided input streams.  The fused
``decode_filter_tiles_into`` codec entry points are likewise checked
against the base-class oracle (full decode, then ``row_mask``) across
the codec registry × predicate matrix.
"""

import warnings

import numpy as np
import pytest

from repro.engine.predicates import Equals, InSet, Range
from repro.formats import bitio, kernels
from repro.formats.base import TileCodec
from repro.formats.kernels import numba_jit
from repro.formats.kernels.numpy_ref import NumpyBackend
from repro.formats.kernels.shift_table import ShiftTableBackend
from repro.formats.registry import get_codec

GPU_CODECS = ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128")

#: Sizes spanning the fancy-gather small-batch path, phase-unaligned
#: tails, and the large strided regime.
SIZES = (1, 7, 31, 32, 33, 100, 4095, 4096, 4097, 10000)


def _make_backend(name: str):
    if name == "numpy":
        return NumpyBackend()
    if name == "shift-table":
        return ShiftTableBackend()
    if not numba_jit.AVAILABLE:
        pytest.skip(f"numba unavailable: {numba_jit.UNAVAILABLE_REASON}")
    return numba_jit.NumbaBackend()


@pytest.fixture(params=["numpy", "shift-table", "numba"])
def backend(request):
    return _make_backend(request.param)


@pytest.fixture
def oracle():
    return NumpyBackend()


class TestBackendBitIdentity:
    @pytest.mark.parametrize("bits", range(1, 33))
    def test_pack_unpack_matches_oracle(self, backend, oracle, bits, rng):
        for size in SIZES:
            values = rng.integers(0, 2**bits, size, dtype=np.uint64)
            packed = backend.pack(values, bits)
            expect = oracle.pack(values, bits)
            assert np.array_equal(packed, expect), (bits, size, "pack")
            out = backend.unpack(packed, size, bits)
            assert out.dtype == np.uint32
            assert np.array_equal(out, values.astype(np.uint32)), (bits, size)

    @pytest.mark.parametrize("bits", range(1, 33))
    def test_unpack_into_matches_oracle(self, backend, oracle, bits, rng):
        # The allocation-free variant writing int64 scratch directly.
        for size in (1, 100, 4095, 4097, 10000):
            values = rng.integers(0, 2**bits, size, dtype=np.uint64)
            packed = oracle.pack(values, bits)
            out = np.full(size + 5, -1, dtype=np.int64)
            backend.unpack_into(packed, size, bits, out)
            assert np.array_equal(out[:size], values.astype(np.int64)), (bits, size)
            assert (out[size:] == -1).all(), (bits, size)  # no overrun

    @pytest.mark.parametrize("bits", [1, 3, 8, 17, 32])
    def test_read_only_streams(self, backend, bits, rng):
        # Backends must never write into their input (e.g. mmap'd pages).
        values = rng.integers(0, 2**bits, 2000, dtype=np.uint64)
        packed = bitio.pack_bits(values, bits)
        packed.setflags(write=False)
        out = backend.unpack(packed, values.size, bits)
        assert np.array_equal(out, values.astype(np.uint32))

    @pytest.mark.parametrize("bits", [1, 5, 8, 16, 24, 32])
    def test_strided_block_unpack(self, backend, oracle, bits, rng):
        # Synthetic block stream: header word + word-aligned payload,
        # repeated — the geometry the codecs' fast path hands over.
        count = 128  # 128 * bits is a multiple of 32 for every width
        payload_words = bitio.words_needed(count, bits)
        n_blocks = 9
        stride = payload_words + 2
        data = rng.integers(0, 2**32, n_blocks * stride + 1, dtype=np.uint64)
        data = data.astype(np.uint32)
        expect_all = []
        for i in range(n_blocks):
            vals = rng.integers(0, 2**bits, count, dtype=np.uint64)
            packed = bitio.pack_bits(vals, bits)
            data[1 + i * stride : 1 + i * stride + payload_words] = packed
            expect_all.append(vals.astype(np.uint32))
        got = backend.unpack_strided(
            data, 1, n_blocks, payload_words, stride, count, bits
        )
        assert np.array_equal(got, np.concatenate(expect_all))
        # And through the validated bitio wrappers, plain and into.
        got2 = bitio.unpack_bits_strided(
            data, 1, n_blocks, payload_words, stride, count, bits
        )
        assert np.array_equal(got2, np.concatenate(expect_all))
        out = np.full(n_blocks * count + 2, -1, dtype=np.int64)
        bitio.unpack_bits_strided_into(
            data, 1, n_blocks, payload_words, stride, count, bits, out
        )
        assert np.array_equal(out[: n_blocks * count], np.concatenate(expect_all))
        assert (out[n_blocks * count :] == -1).all()
        with pytest.raises(ValueError, match="1-D integer buffer"):
            bitio.unpack_bits_strided_into(
                data, 1, n_blocks, payload_words, stride, count, bits,
                np.empty(3, dtype=np.int64),
            )

    def test_strided_input_view(self, backend, rng):
        # A strided (non-contiguous) word view must unpack like its
        # contiguous copy: bitio normalizes with ascontiguousarray.
        values = rng.integers(0, 2**7, 999, dtype=np.uint64)
        packed = bitio.pack_bits(values, 7)
        interleaved = np.vstack([packed, packed]).T.reshape(-1)[::2]
        assert not interleaved.flags["C_CONTIGUOUS"]
        out = bitio.unpack_bits(interleaved, values.size, 7)
        assert np.array_equal(out, values.astype(np.uint32))


class TestBackendSelection:
    def test_default_and_aliases(self):
        assert kernels.normalize_backend_name("shift_table") == "shift-table"
        assert kernels.normalize_backend_name("ref") == "numpy"
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.normalize_backend_name("cuda")

    def test_capability_report_shape(self):
        report = kernels.capability_report()
        assert report["active"] in kernels.BACKEND_NAMES
        for name in kernels.BACKEND_NAMES:
            entry = report["backends"][name]
            assert isinstance(entry["available"], bool)
            if not entry["available"]:
                assert entry["reason"]

    def test_set_backend_roundtrip(self):
        previous = kernels.backend_name()
        try:
            for name in ("numpy", "shift-table"):
                assert kernels.set_backend(name).name == name
                assert kernels.backend_name() == name
        finally:
            kernels.set_backend(previous)

    def test_numba_fallback_warns_when_absent(self):
        if numba_jit.AVAILABLE:
            pytest.skip("numba present: no fallback to exercise")
        previous = kernels.backend_name()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                resolved = kernels.set_backend("numba")
            assert resolved.name == "shift-table"
            assert any("numba" in str(w.message) for w in caught)
            report = kernels.capability_report()
            assert report["fallback_reason"]
            assert report["backends"]["numba"]["available"] is False
        finally:
            kernels.set_backend(previous)


# ---------------------------------------------------------------------------
# Fused decode+filter vs the base-class oracle
# ---------------------------------------------------------------------------

PREDICATES = [
    Range("c", 100, 5000),
    Range("c", None, 300),
    Range("c", 9_000_000, None),
    Range("c", -5, -1),
    Equals("c", 42),
    InSet("c", frozenset({1, 5, 42, 77})),
]


def _datasets(rng):
    return {
        "uniform": rng.integers(0, 10_000, 20_000).astype(np.int64),
        "clustered": np.sort(rng.integers(0, 10**7, 20_000)).astype(np.int64),
        "runs": np.repeat(rng.integers(0, 50, 500), 40).astype(np.int64),
        "negative": rng.integers(-1_000, 1_000, 12_000).astype(np.int64),
        "zeros": np.zeros(5_000, dtype=np.int64),
        "tiny": np.array([42], dtype=np.int64),
    }


@pytest.mark.parametrize("codec_name", GPU_CODECS)
@pytest.mark.parametrize("backend_name", ["numpy", "shift-table", "numba"])
class TestFusedDecodeFilter:
    def test_matches_oracle(self, codec_name, backend_name, rng):
        _make_backend(backend_name)  # skip early when numba is absent
        previous = kernels.backend_name()
        kernels.set_backend(backend_name)
        try:
            self._run_matrix(codec_name, rng)
        finally:
            kernels.set_backend(previous)

    def _run_matrix(self, codec_name, rng):
        codec = get_codec(codec_name)
        for dname, vals in _datasets(rng).items():
            if codec_name == "gpu-bp" and vals.size and vals.min() < 0:
                continue
            enc = codec.encode(vals)
            nt = codec.num_tiles(enc)
            elems = codec.tile_elements(enc)
            selections = [
                np.arange(nt),
                np.arange(nt)[::2],
                np.arange(nt)[::-1],
                np.array([], dtype=np.int64),
            ]
            for sel in selections:
                for pred in PREDICATES:
                    cap = sel.size * elems
                    out = np.empty(cap + 3, dtype=np.int64)
                    mask = np.empty(cap + 3, dtype=np.bool_)
                    ref_out = np.empty(cap + 3, dtype=np.int64)
                    ref_mask = np.empty(cap + 3, dtype=np.bool_)
                    written = codec.decode_filter_tiles_into(
                        enc, sel, pred, out, mask
                    )
                    expect = TileCodec.decode_filter_tiles_into(
                        codec, enc, sel, pred, ref_out, ref_mask
                    )
                    label = (codec_name, dname, sel.size, pred)
                    assert written == expect, label
                    assert np.array_equal(mask[:written], ref_mask[:written]), label
                    # Values are only defined where the mask is True.
                    assert np.array_equal(
                        out[:written][mask[:written]],
                        ref_out[:written][ref_mask[:written]],
                    ), label

    def test_plain_decode_unchanged(self, codec_name, backend_name, rng):
        # The regular-geometry fast paths must not change decode output.
        _make_backend(backend_name)
        previous = kernels.backend_name()
        kernels.set_backend(backend_name)
        try:
            codec = get_codec(codec_name)
            for vals in (
                rng.integers(0, 250, 20_000).astype(np.int64),  # uniform width
                rng.integers(0, 2**20, 9_000).astype(np.int64),
            ):
                enc = codec.encode(vals)
                nt = codec.num_tiles(enc)
                got = codec.decode_range(enc, 0, nt)
                assert np.array_equal(np.asarray(got, dtype=np.int64), vals)
        finally:
            kernels.set_backend(previous)


class TestFusedBufferContracts:
    def test_rejects_bad_mask_buffers(self, rng):
        codec = get_codec("gpu-for")
        enc = codec.encode(rng.integers(0, 100, 5000).astype(np.int64))
        elems = codec.tile_elements(enc)
        pred = Range("c", 1, 50)
        out = np.empty(elems, dtype=np.int64)
        with pytest.raises(ValueError):
            codec.decode_filter_tiles_into(
                enc, np.array([0]), pred, out, np.empty(elems - 1, dtype=np.bool_)
            )
        with pytest.raises(ValueError):
            codec.decode_filter_tiles_into(
                enc, np.array([0]), pred, out, np.empty(elems, dtype=np.uint8)
            )
