"""Bit-level packing primitives: exactness, layout, and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import bitio


class TestRequiredBits:
    def test_empty_needs_zero(self):
        assert bitio.required_bits(np.array([], dtype=np.int64)) == 0

    def test_zero_needs_zero(self):
        assert bitio.required_bits(np.zeros(10, dtype=np.int64)) == 0

    def test_one_needs_one(self):
        assert bitio.required_bits(np.array([1, 0, 1])) == 1

    @pytest.mark.parametrize("b", [1, 2, 7, 8, 15, 16, 31, 32])
    def test_boundary_values(self, b):
        assert bitio.required_bits(np.array([2**b - 1], dtype=np.uint64)) == b
        if b < 32:
            assert bitio.required_bits(np.array([2**b], dtype=np.uint64)) == b + 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            bitio.required_bits(np.array([-1]))

    def test_unpackable_width_rejected_at_source(self):
        # Widths above MAX_BITS used to leak out of required_bits and
        # blow up later, deep inside pack_bits, with no hint of which
        # value was responsible.  Now the error names value and width.
        with pytest.raises(ValueError, match=r"9223372036854775808 needs 64 bits"):
            bitio.required_bits(np.array([2**63], dtype=np.uint64))
        with pytest.raises(ValueError, match=r"needs 33 bits.*maximum of 32"):
            bitio.required_bits(np.array([1, 2**32, 3], dtype=np.uint64))

    def test_max_bits_none_gives_raw_width(self):
        values = np.array([2**63], dtype=np.uint64)
        assert bitio.required_bits(values, max_bits=None) == 64
        assert bitio.required_bits(np.array([2**40], dtype=np.uint64), max_bits=41) == 41

    def test_max_bits_boundary_accepted(self):
        assert bitio.required_bits(np.array([2**32 - 1], dtype=np.uint64)) == 32


class TestWordsNeeded:
    @pytest.mark.parametrize(
        "count,bits,expected",
        [(0, 5, 0), (32, 1, 1), (32, 32, 32), (32, 5, 5), (33, 5, 6), (1, 5, 1)],
    )
    def test_exact_counts(self, count, bits, expected):
        assert bitio.words_needed(count, bits) == expected

    def test_miniblock_of_32_always_word_aligned(self):
        # The format property Section 4.1 builds on.
        for b in range(33):
            assert bitio.words_needed(32, b) == b

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bitio.words_needed(-1, 4)
        with pytest.raises(ValueError):
            bitio.words_needed(4, 33)


class TestPackUnpack:
    def test_known_layout_lsb_first(self):
        # Values 1,2,3 at 2 bits: bits 01 10 11 -> word 0b111001 = 57.
        words = bitio.pack_bits(np.array([1, 2, 3]), 2)
        assert words.dtype == np.uint32
        assert words[0] == 0b111001

    def test_value_spanning_word_boundary(self):
        # 7 values of 5 bits = 35 bits: the 7th spans words 0 and 1.
        values = np.array([0, 0, 0, 0, 0, 0, 0b11111])
        words = bitio.pack_bits(values, 5)
        assert words.size == 2
        assert words[0] >> 30 == 0b11  # low 2 bits of the last value
        assert words[1] & 0b111 == 0b111

    def test_roundtrip_all_bitwidths(self, rng):
        for b in range(1, 33):
            hi = 2**b
            values = rng.integers(0, hi, 100, dtype=np.uint64)
            out = bitio.unpack_bits(bitio.pack_bits(values, b), 100, b)
            assert np.array_equal(out, values.astype(np.uint32))

    def test_phase_unaligned_counts(self, rng):
        # The phase-sliced packer writes values whose phase pattern
        # repeats every 32/gcd(bits, 32) values; counts that are not a
        # multiple of the period exercise its ragged final columns and
        # the cross-word spill fold at every width.
        for b in range(1, 33):
            period = 32 // np.gcd(b, 32)
            for n in (period - 1, period + 1, 3 * period + max(1, period // 2)):
                values = rng.integers(0, 2**b, max(n, 1), dtype=np.uint64)
                out = bitio.unpack_bits(bitio.pack_bits(values, b), values.size, b)
                assert np.array_equal(out, values.astype(np.uint32)), (b, n)

    def test_zero_bits(self):
        assert bitio.pack_bits(np.zeros(10, np.uint64), 0).size == 0
        assert np.array_equal(bitio.unpack_bits(np.zeros(0, np.uint32), 10, 0), np.zeros(10))

    def test_empty(self):
        assert bitio.pack_bits(np.array([], np.uint64), 7).size == 0
        assert bitio.unpack_bits(np.zeros(0, np.uint32), 0, 7).size == 0

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="do not fit"):
            bitio.pack_bits(np.array([4]), 2)

    def test_zero_bits_rejects_nonzero_values(self):
        # A 0-bit stream packs to nothing; nonzero input would be lost.
        with pytest.raises(ValueError, match="do not fit in 0 bits"):
            bitio.pack_bits(np.array([0, 3, 0]), 0)

    def test_full_width_boundary(self):
        # bits == 32 (the documented maximum): 2**32 - 1 fits, 2**32
        # must be rejected — the old `bits < 64` guard made this the
        # edge the validation contract has to pin down.
        top = np.array([2**32 - 1, 0, 1], dtype=np.uint64)
        out = bitio.unpack_bits(bitio.pack_bits(top, 32), top.size, 32)
        assert np.array_equal(out, top)
        with pytest.raises(ValueError, match="do not fit in 32 bits"):
            bitio.pack_bits(np.array([2**32], dtype=np.uint64), 32)

    def test_width_above_contract_rejected(self):
        for bits in (33, 63, 64):
            with pytest.raises(ValueError, match="bits must be in"):
                bitio.pack_bits(np.array([1], dtype=np.uint64), bits)
            with pytest.raises(ValueError):
                bitio.unpack_bits(np.zeros(4, np.uint32), 1, bits)

    def test_short_stream_rejected(self):
        with pytest.raises(ValueError, match="need"):
            bitio.unpack_bits(np.zeros(1, np.uint32), 100, 7)

    def test_trailing_bits_zero(self):
        words = bitio.pack_bits(np.array([1]), 3)
        assert words[0] == 1  # bits 3..31 are zero padding

    @given(
        st.lists(st.integers(0, 2**17 - 1), min_size=0, max_size=300),
        st.just(17),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values, bits):
        arr = np.array(values, dtype=np.uint64)
        out = bitio.unpack_bits(bitio.pack_bits(arr, bits), arr.size, bits)
        assert np.array_equal(out, arr.astype(np.uint32))

    @given(st.integers(1, 32), st.integers(0, 200), st.integers(0, 2**31))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_random_widths(self, bits, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**bits, n, dtype=np.uint64)
        out = bitio.unpack_bits(bitio.pack_bits(values, bits), n, bits)
        assert np.array_equal(out, values.astype(np.uint32))


class TestVertical:
    def test_lane_striping_layout(self):
        # With 2 lanes and 32-bit values, word g*2+l belongs to lane l.
        values = np.arange(128, dtype=np.uint64)
        words = bitio.pack_vertical(values, 32, 2)
        # Lane 0 holds even indices; its first packed word is value 0.
        assert words[0] == 0
        assert words[1] == 1  # lane 1's first value

    @pytest.mark.parametrize("lanes", [1, 2, 4, 32])
    @pytest.mark.parametrize("bits", [1, 5, 16, 32])
    def test_roundtrip(self, rng, lanes, bits):
        n = lanes * 32 * 3
        values = rng.integers(0, 2**bits, n, dtype=np.uint64)
        words = bitio.pack_vertical(values, bits, lanes)
        out = bitio.unpack_vertical(words, n, bits, lanes)
        assert np.array_equal(out, values.astype(np.uint32))

    def test_same_words_as_horizontal(self, rng):
        # Vertical and horizontal packing use identical space.
        values = rng.integers(0, 2**9, 4096, dtype=np.uint64)
        assert (
            bitio.pack_vertical(values, 9, 32).size
            == bitio.pack_bits(values, 9).size
        )

    def test_misaligned_size_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            bitio.pack_vertical(np.zeros(33, np.uint64), 4, 32)
        with pytest.raises(ValueError, match="multiple"):
            bitio.unpack_vertical(np.zeros(8, np.uint32), 33, 4, 32)

    def test_zero_bits_vertical(self):
        out = bitio.unpack_vertical(np.zeros(0, np.uint32), 64, 0, 2)
        assert np.array_equal(out, np.zeros(64))
