"""Streaming encoding (GpuForBuilder) and compression analytics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    analyze_column,
    block_range_bound,
    delta_entropy,
    empirical_entropy,
)
from repro.core.builder import GpuForBuilder
from repro.formats import GpuFor


class TestGpuForBuilder:
    def _batched(self, values, batch):
        builder = GpuForBuilder()
        for i in range(0, values.size, batch):
            builder.append(values[i : i + batch])
        return builder.finish()

    @pytest.mark.parametrize("batch", [1, 17, 128, 777, 10_000])
    def test_bit_identical_to_one_shot(self, rng, batch):
        values = rng.integers(0, 2**16, 5_000)
        streamed = self._batched(values, batch)
        one_shot = GpuFor().encode(values)
        assert np.array_equal(streamed.arrays["data"], one_shot.arrays["data"])
        assert np.array_equal(
            streamed.arrays["block_starts"], one_shot.arrays["block_starts"]
        )
        assert streamed.count == one_shot.count

    def test_decodes_correctly(self, rng):
        values = rng.integers(-1000, 1000, 3000)
        enc = self._batched(values, 250)
        assert np.array_equal(GpuFor().decode(enc), values)

    def test_empty_builder(self):
        enc = GpuForBuilder().finish()
        assert enc.count == 0
        assert GpuFor().decode(enc).size == 0

    def test_progress_properties(self, rng):
        builder = GpuForBuilder()
        builder.append(rng.integers(0, 100, 300))
        assert builder.count == 300
        assert builder.compressed_bytes_so_far > 0  # 2 whole blocks flushed

    def test_finish_twice_rejected(self):
        builder = GpuForBuilder()
        builder.finish()
        with pytest.raises(RuntimeError):
            builder.finish()
        with pytest.raises(RuntimeError):
            builder.append(np.array([1]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            GpuForBuilder().append(np.zeros((2, 2)))

    def test_memory_stays_bounded(self, rng):
        # Pending raw data never exceeds one block after a flush.
        builder = GpuForBuilder()
        for _ in range(20):
            builder.append(rng.integers(0, 100, 1000))
            assert builder._pending.size < 128

    @given(st.lists(st.integers(1, 500), min_size=1, max_size=12), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_any_batching_property(self, batch_sizes, seed):
        rng = np.random.default_rng(seed)
        batches = [rng.integers(0, 2**12, b) for b in batch_sizes]
        values = np.concatenate(batches)
        builder = GpuForBuilder()
        for b in batches:
            builder.append(b)
        enc = builder.finish()
        one_shot = GpuFor().encode(values)
        assert np.array_equal(enc.arrays["data"], one_shot.arrays["data"])


class TestEntropy:
    def test_uniform_entropy(self, rng):
        values = rng.integers(0, 256, 200_000)
        assert empirical_entropy(values) == pytest.approx(8.0, abs=0.02)

    def test_constant_entropy_zero(self):
        assert empirical_entropy(np.full(100, 7)) == 0.0
        assert empirical_entropy(np.array([], dtype=np.int64)) == 0.0

    def test_two_symbol(self):
        assert empirical_entropy(np.array([0, 1] * 500)) == pytest.approx(1.0)

    def test_delta_entropy_of_ramp_is_zero(self):
        assert delta_entropy(np.arange(1000)) == 0.0

    def test_block_range_bound(self, rng):
        values = rng.integers(0, 2**10, 12_800)
        bound = block_range_bound(values)
        assert 9.5 <= bound <= 10.0  # per-block span just under 2^10


class TestAnalyzeColumn:
    def test_gpu_for_near_block_bound_on_uniform(self, rng):
        values = rng.integers(0, 2**12, 100_000)
        a = analyze_column(values)
        # GPU-FOR achieves the block-range bound + ~0.75 overhead.
        assert a.achieved_bits["gpu-for"] <= a.block_range_bits + 1.0
        # And the block bound is close to entropy for uniform data.
        assert a.block_range_bits <= a.entropy_bits + 1.0

    def test_structure_beats_order0_entropy(self):
        # Sorted keys: DFOR exploits delta structure the order-0 model
        # cannot see, so efficiency > 1.
        a = analyze_column(np.arange(100_000))
        assert a.best_scheme == "gpu-dfor"
        assert a.efficiency > 2.0

    def test_runs_favour_rfor(self, rng):
        values = np.repeat(rng.integers(0, 100, 1000), 64)
        a = analyze_column(values)
        assert a.best_scheme == "gpu-rfor"
        assert a.achieved_bits["gpu-rfor"] < a.entropy_bits

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            analyze_column(np.zeros((2, 2)))


class TestMultiGpuScaling:
    def test_near_linear(self):
        from repro.experiments import multigpu_scaling

        rows = multigpu_scaling.run(n=300_000)
        by_devices = {r["devices"]: r for r in rows}
        assert by_devices[1]["speedup"] == pytest.approx(1.0)
        assert by_devices[4]["speedup"] > 3.0
        assert by_devices[8]["speedup"] > 5.5
        assert by_devices[8]["capacity_GB"] == 8 * 16
