"""Random-access API: gather, filtered scans, tile skipping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.random_access import (
    filtered_scan,
    gather,
    uncompressed_filtered_scan_ms,
)
from repro.formats import get_codec
from repro.gpusim import GPUDevice, V100


@pytest.fixture
def column(rng):
    return rng.integers(0, 2**16, 100_000)


@pytest.fixture
def encoded(column):
    return get_codec("gpu-for").encode(column)


class TestGather:
    def test_values_correct(self, rng, column, encoded):
        idx = rng.integers(0, column.size, 500)
        report = gather(encoded, idx, GPUDevice())
        assert np.array_equal(report.values, column[idx])

    def test_duplicates_and_order_preserved(self, column, encoded):
        idx = np.array([5, 5, 99_999, 0, 5])
        report = gather(encoded, idx, GPUDevice())
        assert np.array_equal(report.values, column[idx])

    def test_sparse_gather_touches_few_tiles(self, encoded):
        report = gather(encoded, np.array([0, 1, 2]), GPUDevice())
        assert report.tiles_touched == 1
        assert report.tile_fraction < 0.05

    def test_dense_gather_touches_all_tiles(self, rng, column, encoded):
        idx = rng.permutation(column.size)
        report = gather(encoded, idx, GPUDevice())
        assert report.tiles_touched == report.tiles_total

    def test_sparse_cheaper_than_dense(self, rng, column, encoded):
        overhead = V100.kernel_launch_us / 1000.0
        sparse = gather(encoded, np.array([17]), GPUDevice())
        dense = gather(encoded, rng.integers(0, column.size, column.size), GPUDevice())
        assert (sparse.simulated_ms - overhead) < (dense.simulated_ms - overhead) / 5

    def test_out_of_range(self, encoded):
        with pytest.raises(IndexError):
            gather(encoded, np.array([encoded.count]), GPUDevice())
        with pytest.raises(IndexError):
            gather(encoded, np.array([-1]), GPUDevice())

    def test_empty_gather(self, encoded):
        report = gather(encoded, np.array([], dtype=np.int64), GPUDevice())
        assert report.values.size == 0
        assert report.tiles_touched == 0

    @pytest.mark.parametrize("codec", ["gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp"])
    def test_all_tile_codecs(self, rng, codec):
        column = np.repeat(rng.integers(0, 100, 2000), rng.integers(1, 10, 2000))
        enc = get_codec(codec).encode(column)
        idx = rng.integers(0, column.size, 200)
        report = gather(enc, idx, GPUDevice())
        assert np.array_equal(report.values.astype(np.int64), column[idx])

    def test_non_tile_codec_rejected(self, column):
        enc = get_codec("nsf").encode(column)
        with pytest.raises(TypeError):
            gather(enc, np.array([0]), GPUDevice())

    @given(st.lists(st.integers(0, 9999), min_size=0, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_gather_property(self, indices):
        rng = np.random.default_rng(0)
        column = rng.integers(0, 1000, 10_000)
        enc = get_codec("gpu-for").encode(column)
        idx = np.array(indices, dtype=np.int64)
        report = gather(enc, idx, GPUDevice())
        assert np.array_equal(report.values, column[idx])


class TestFilteredScan:
    def test_values_in_row_order(self, rng, column, encoded):
        mask = rng.random(column.size) < 0.03
        report = filtered_scan(encoded, mask, GPUDevice())
        assert np.array_equal(report.values, column[mask])

    def test_empty_selection(self, column, encoded):
        report = filtered_scan(encoded, np.zeros(column.size, bool), GPUDevice())
        assert report.values.size == 0
        assert report.tiles_touched == 0

    def test_full_selection(self, column, encoded):
        report = filtered_scan(encoded, np.ones(column.size, bool), GPUDevice())
        assert np.array_equal(report.values, column)
        assert report.tiles_touched == report.tiles_total

    def test_mask_shape_checked(self, encoded):
        with pytest.raises(ValueError):
            filtered_scan(encoded, np.ones(3, bool), GPUDevice())

    def test_cost_plateaus_beyond_tile_knee(self, rng, column, encoded):
        # Selectivity 1/64 already touches ~every 512-row tile.
        times = []
        for sel in (1 / 64, 0.5, 1.0):
            mask = rng.random(column.size) < sel
            times.append(filtered_scan(encoded, mask, GPUDevice()).simulated_ms)
        assert times[2] == pytest.approx(times[0], rel=0.05)
        assert times[2] == pytest.approx(times[1], rel=0.05)

    def test_compressed_plateau_below_uncompressed(self, rng, column, encoded):
        mask = np.ones(column.size, bool)
        compressed = filtered_scan(encoded, mask, GPUDevice()).simulated_ms
        uncompressed = uncompressed_filtered_scan_ms(
            column.size, column.size, GPUDevice()
        )
        assert compressed < uncompressed


class TestUncompressedScan:
    def test_caps_at_full_sweep(self):
        device = GPUDevice()
        full = uncompressed_filtered_scan_ms(10_000, 10_000, device)
        device = GPUDevice()
        beyond_knee = uncompressed_filtered_scan_ms(10_000, 1_000, device)
        assert beyond_knee == pytest.approx(full, rel=0.05)

    def test_sparse_is_cheap(self):
        overhead = V100.kernel_launch_us / 1000.0
        sparse = uncompressed_filtered_scan_ms(1_000_000, 10, GPUDevice())
        dense = uncompressed_filtered_scan_ms(1_000_000, 1_000_000, GPUDevice())
        assert (sparse - overhead) < (dense - overhead) / 5

    def test_validation(self):
        with pytest.raises(ValueError):
            uncompressed_filtered_scan_ms(10, 11, GPUDevice())
