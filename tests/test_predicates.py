"""Unit tests for the predicate IR (`repro.engine.predicates`).

The load-bearing property is *consistency*: whenever ``row_mask`` keeps
any row of a tile, ``tile_may_match`` on that tile's exact bounds must
be True — otherwise pushdown would prune rows the query needs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.predicates import (
    And,
    ColumnPredicate,
    Equals,
    InSet,
    Range,
    column_predicates,
)


def _random_predicates(rng):
    return [
        Range("c", 10, 500),
        Range("c", None, 250),
        Range("c", 100, None),
        Range("c", None, None),
        Range("c", 7, 7),
        Equals("c", 42),
        Equals("c", -1),
        InSet("c", (3, 99, 512, 700)),
        InSet("c", ()),
        InSet("c", (1000000,)),
    ]


class TestRowMask:
    def test_range(self):
        v = np.array([0, 5, 10, 15, 20])
        assert Range("c", 5, 15).row_mask(v).tolist() == [False, True, True, True, False]
        assert Range("c", None, 10).row_mask(v).tolist() == [True, True, True, False, False]
        assert Range("c", 10, None).row_mask(v).tolist() == [False, False, True, True, True]
        assert Range("c", None, None).row_mask(v).all()

    def test_equals_and_inset(self):
        v = np.array([1, 2, 3, 2])
        assert Equals("c", 2).row_mask(v).tolist() == [False, True, False, True]
        assert InSet("c", (3, 1)).row_mask(v).tolist() == [True, False, True, False]
        assert not InSet("c", ()).row_mask(v).any()

    def test_inset_normalizes(self):
        assert InSet("c", (5, 1, 5, 3)).values == (1, 3, 5)


class TestTileMayMatch:
    def test_range_overlap(self):
        mins = np.array([0, 100, 200])
        maxs = np.array([99, 199, 299])
        assert Range("c", 150, 160).tile_may_match(mins, maxs).tolist() == [
            False, True, False,
        ]
        assert Range("c", 99, 100).tile_may_match(mins, maxs).tolist() == [
            True, True, False,
        ]
        assert Range("c", None, None).tile_may_match(mins, maxs).all()

    def test_inset_binary_search(self):
        mins = np.array([0, 100, 200])
        maxs = np.array([99, 199, 299])
        assert InSet("c", (150, 250)).tile_may_match(mins, maxs).tolist() == [
            False, True, True,
        ]
        assert not InSet("c", ()).tile_may_match(mins, maxs).any()
        # Members exactly on the inclusive bounds count.
        assert InSet("c", (99,)).tile_may_match(mins, maxs).tolist() == [
            True, False, False,
        ]

    def test_consistency_with_row_mask(self, rng):
        """A tile with any matching row must never be prunable."""
        for pred in _random_predicates(rng):
            for _ in range(20):
                tile = rng.integers(0, 1000, 64)
                keeps_rows = bool(pred.row_mask(tile).any())
                may = bool(
                    pred.tile_may_match(
                        np.array([tile.min()]), np.array([tile.max()])
                    )[0]
                )
                assert may or not keeps_rows, pred


class TestComposition:
    def test_and_flattens(self):
        a, b, c = Range("x", 1, 2), Equals("y", 3), InSet("z", (4,))
        nested = And((a, And((b, c))))
        assert nested.predicates == (a, b, c)

    def test_column_predicates(self):
        a, b = Range("x", 1, 2), Equals("y", 3)
        assert column_predicates(None) == ()
        assert column_predicates(a) == (a,)
        assert column_predicates(And((a, b))) == (a, b)
        with pytest.raises(TypeError):
            column_predicates("not a predicate")

    def test_base_class_is_abstract(self):
        pred = ColumnPredicate()
        with pytest.raises(NotImplementedError):
            pred.row_mask(np.zeros(1))
        with pytest.raises(NotImplementedError):
            pred.tile_may_match(np.zeros(1), np.zeros(1))
