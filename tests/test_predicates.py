"""Unit tests for the predicate IR (`repro.engine.predicates`).

The load-bearing property is *consistency*: whenever ``row_mask`` keeps
any row of a tile, ``tile_may_match`` on that tile's exact bounds must
be True — otherwise pushdown would prune rows the query needs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.predicates import (
    And,
    ColumnPredicate,
    Equals,
    InSet,
    Range,
    canonical_key,
    canonical_predicates,
    column_predicates,
)


def _random_predicates(rng):
    return [
        Range("c", 10, 500),
        Range("c", None, 250),
        Range("c", 100, None),
        Range("c", None, None),
        Range("c", 7, 7),
        Equals("c", 42),
        Equals("c", -1),
        InSet("c", (3, 99, 512, 700)),
        InSet("c", ()),
        InSet("c", (1000000,)),
    ]


class TestRowMask:
    def test_range(self):
        v = np.array([0, 5, 10, 15, 20])
        assert Range("c", 5, 15).row_mask(v).tolist() == [False, True, True, True, False]
        assert Range("c", None, 10).row_mask(v).tolist() == [True, True, True, False, False]
        assert Range("c", 10, None).row_mask(v).tolist() == [False, False, True, True, True]
        assert Range("c", None, None).row_mask(v).all()

    def test_equals_and_inset(self):
        v = np.array([1, 2, 3, 2])
        assert Equals("c", 2).row_mask(v).tolist() == [False, True, False, True]
        assert InSet("c", (3, 1)).row_mask(v).tolist() == [True, False, True, False]
        assert not InSet("c", ()).row_mask(v).any()

    def test_inset_normalizes(self):
        assert InSet("c", (5, 1, 5, 3)).values == (1, 3, 5)


class TestTileMayMatch:
    def test_range_overlap(self):
        mins = np.array([0, 100, 200])
        maxs = np.array([99, 199, 299])
        assert Range("c", 150, 160).tile_may_match(mins, maxs).tolist() == [
            False, True, False,
        ]
        assert Range("c", 99, 100).tile_may_match(mins, maxs).tolist() == [
            True, True, False,
        ]
        assert Range("c", None, None).tile_may_match(mins, maxs).all()

    def test_inset_binary_search(self):
        mins = np.array([0, 100, 200])
        maxs = np.array([99, 199, 299])
        assert InSet("c", (150, 250)).tile_may_match(mins, maxs).tolist() == [
            False, True, True,
        ]
        assert not InSet("c", ()).tile_may_match(mins, maxs).any()
        # Members exactly on the inclusive bounds count.
        assert InSet("c", (99,)).tile_may_match(mins, maxs).tolist() == [
            True, False, False,
        ]

    def test_consistency_with_row_mask(self, rng):
        """A tile with any matching row must never be prunable."""
        for pred in _random_predicates(rng):
            for _ in range(20):
                tile = rng.integers(0, 1000, 64)
                keeps_rows = bool(pred.row_mask(tile).any())
                may = bool(
                    pred.tile_may_match(
                        np.array([tile.min()]), np.array([tile.max()])
                    )[0]
                )
                assert may or not keeps_rows, pred


class TestComposition:
    def test_and_flattens(self):
        a, b, c = Range("x", 1, 2), Equals("y", 3), InSet("z", (4,))
        nested = And((a, And((b, c))))
        assert nested.predicates == (a, b, c)

    def test_column_predicates(self):
        a, b = Range("x", 1, 2), Equals("y", 3)
        assert column_predicates(None) == ()
        assert column_predicates(a) == (a,)
        assert column_predicates(And((a, b))) == (a, b)
        with pytest.raises(TypeError):
            column_predicates("not a predicate")

    def test_base_class_is_abstract(self):
        pred = ColumnPredicate()
        with pytest.raises(NotImplementedError):
            pred.row_mask(np.zeros(1))
        with pytest.raises(NotImplementedError):
            pred.tile_may_match(np.zeros(1), np.zeros(1))
        with pytest.raises(NotImplementedError):
            pred.cache_key()

    def test_base_must_match_defaults_to_false(self):
        # Always sound: "cannot prove every row matches".
        assert not ColumnPredicate().tile_must_match(np.zeros(3), np.ones(3)).any()


class TestTileMustMatch:
    def test_range_containment(self):
        mins = np.array([0, 100, 200])
        maxs = np.array([99, 199, 299])
        assert Range("c", 0, 250).tile_must_match(mins, maxs).tolist() == [
            True, True, False,
        ]
        assert Range("c", None, None).tile_must_match(mins, maxs).all()

    def test_equals_and_inset_need_constant_tiles(self):
        mins = np.array([5, 5, 7])
        maxs = np.array([5, 6, 7])
        assert Equals("c", 5).tile_must_match(mins, maxs).tolist() == [
            True, False, False,
        ]
        assert InSet("c", (5, 7)).tile_must_match(mins, maxs).tolist() == [
            True, False, True,
        ]
        assert not InSet("c", ()).tile_must_match(mins, maxs).any()

    def test_consistency_with_row_mask(self, rng):
        """must_match on a tile's exact bounds implies every row matches."""
        for pred in _random_predicates(rng):
            for _ in range(20):
                tile = rng.integers(0, 1000, 64)
                must = bool(
                    pred.tile_must_match(
                        np.array([tile.min()]), np.array([tile.max()])
                    )[0]
                )
                assert not must or pred.row_mask(tile).all(), pred


class TestCacheKey:
    def test_degenerate_forms_collapse(self):
        # Range(lo == hi), Equals, and a singleton InSet select the same
        # rows, so they must share one key (and one hash).
        keys = {
            Range("c", 42, 42).cache_key(),
            Equals("c", 42).cache_key(),
            InSet("c", (42,)).cache_key(),
        }
        assert keys == {("eq", "c", 42)}

    def test_empty_forms_collapse(self):
        assert Range("c", 10, 5).cache_key() == ("empty", "c")
        assert InSet("c", ()).cache_key() == ("empty", "c")

    def test_distinct_predicates_distinct_keys(self):
        assert Range("c", 1, 9).cache_key() != Range("c", 1, 8).cache_key()
        assert Range("c", 1, 9).cache_key() != Range("d", 1, 9).cache_key()
        assert Equals("c", 1).cache_key() != Equals("c", 2).cache_key()

    def test_keys_are_hashable_and_stable(self):
        preds = [Range("c", 1, 9), Equals("c", 3), InSet("c", (1, 2))]
        for p in preds:
            assert hash(p.cache_key()) == hash(p.cache_key())
            assert p.cache_key() == p.cache_key()

    def test_inset_order_irrelevant(self):
        assert InSet("c", (3, 1, 2)).cache_key() == InSet("c", (1, 2, 3)).cache_key()


class TestCanonicalization:
    def test_equivalent_spellings_share_key(self):
        # The dashboard case: the same filter built with different
        # nesting, conjunct order, and redundant repeats.
        a = And((Range("x", 1, 9), Equals("y", 3)))
        b = And((Equals("y", 3), And((Range("x", 1, 9), Range("x", 1, 9)))))
        c = And((InSet("y", (3,)), Range("x", 1, None), Range("x", None, 9)))
        assert canonical_key(a) == canonical_key(b) == canonical_key(c)
        assert hash(canonical_key(a)) == hash(canonical_key(c))

    def test_intervals_intersect(self):
        pred = And((Range("x", 0, 100), Range("x", 50, 200)))
        assert canonical_predicates(pred) == (Range("x", 50, 100),)

    def test_set_clipped_to_interval(self):
        pred = And((InSet("x", (1, 5, 9)), Range("x", 4, 10)))
        assert canonical_predicates(pred) == (InSet("x", (5, 9)),)

    def test_point_intersection_becomes_equals(self):
        pred = And((Range("x", 0, 7), Range("x", 7, 100)))
        assert canonical_predicates(pred) == (Equals("x", 7),)

    def test_unsatisfiable_is_false(self):
        assert canonical_key(And((Range("x", 10, 20), Range("x", 30, 40)))) == (
            "false",
        )
        assert canonical_key(And((InSet("x", (1,)), Equals("x", 2)))) == ("false",)

    def test_unconstrained_is_true(self):
        assert canonical_key(None) == ("true",)
        assert canonical_key(And(())) == ("true",)
        assert canonical_key(Range("x", None, None)) == ("true",)

    def test_columns_sorted(self):
        a = And((Range("b", 1, 2), Range("a", 3, 4)))
        b = And((Range("a", 3, 4), Range("b", 1, 2)))
        assert canonical_predicates(a) == canonical_predicates(b)
        assert [p.column for p in canonical_predicates(a)] == ["a", "b"]

    def test_canonical_preserves_rows(self, rng):
        """Canonicalization must never change which rows survive."""
        for _ in range(30):
            values = rng.integers(0, 50, 256)
            conjuncts = [
                Range("c", int(rng.integers(0, 25)), int(rng.integers(25, 50))),
                InSet("c", tuple(int(v) for v in rng.integers(0, 50, 5))),
            ]
            rng.shuffle(conjuncts)
            pred = And(tuple(conjuncts))
            mask = np.ones(values.shape, dtype=bool)
            for p in pred.predicates:
                mask &= p.row_mask(values)
            canon = np.ones(values.shape, dtype=bool)
            for p in canonical_predicates(pred):
                canon &= p.row_mask(values)
            assert np.array_equal(mask, canon)

    def test_rejects_unknown_predicate_type(self):
        class Weird(ColumnPredicate):
            column = "c"

        with pytest.raises(TypeError, match="canonicalize"):
            canonical_predicates(And((Weird(),)))
