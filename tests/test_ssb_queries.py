"""SSB query correctness: the engine vs independent NumPy references.

The reference implementations below join/filter/aggregate with plain
pandas-style NumPy operations, sharing no code with the engine's
pipeline, lookups, or group encodings — an independent oracle for all 13
queries.
"""

import numpy as np
import pytest

from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import (
    AMERICA,
    ASIA,
    BRAND_2221,
    BRAND_2228,
    BRAND_2239,
    CATEGORY_MFGR12,
    CATEGORY_MFGR14,
    CITY_UK1,
    CITY_UK5,
    EUROPE,
    NATION_US,
    QUERIES,
)
from repro.gpusim import GPUDevice
from repro.ssb.loader import load_lineorder


def _dim_map(keys, values):
    out = {}
    for k, v in zip(keys.tolist(), values.tolist()):
        out[k] = v
    return out


def _date_attr(db, attr):
    return _dim_map(db.date["d_datekey"], db.date[attr])


def _group_dict(codes, weights, mask):
    sums: dict[int, int] = {}
    for c, w in zip(codes[mask].tolist(), weights[mask].tolist()):
        sums[c] = sums.get(c, 0) + int(w)
    return {c: v for c, v in sums.items() if v != 0}


def _ref_flight1(db, date_pred, dlo, dhi, qlo, qhi):
    lo = db.lineorder
    years = np.array([date_pred(k) for k in lo["lo_orderdate"].tolist()])
    mask = (
        years
        & (lo["lo_discount"] >= dlo)
        & (lo["lo_discount"] <= dhi)
        & (lo["lo_quantity"] >= qlo)
        & (lo["lo_quantity"] <= qhi)
    )
    total = int((lo["lo_extendedprice"] * lo["lo_discount"])[mask].sum())
    return {0: total} if total else {}


def ref_q1_1(db):
    year = _date_attr(db, "d_year")
    return _ref_flight1(db, lambda k: year[k] == 1993, 1, 3, 0, 24)


def ref_q1_2(db):
    ymn = _date_attr(db, "d_yearmonthnum")
    return _ref_flight1(db, lambda k: ymn[k] == 199401, 4, 6, 26, 35)


def ref_q1_3(db):
    year = _date_attr(db, "d_year")
    week = _date_attr(db, "d_weeknuminyear")
    return _ref_flight1(db, lambda k: week[k] == 6 and year[k] == 1994, 5, 7, 36, 40)


def _ref_flight2(db, part_mask, supp_region):
    lo = db.lineorder
    brand_of = _dim_map(db.part["p_partkey"], db.part["p_brand1"])
    part_ok = {
        k: bool(m) for k, m in zip(db.part["p_partkey"].tolist(), part_mask.tolist())
    }
    supp_ok = _dim_map(db.supplier["s_suppkey"], db.supplier["s_region"] == supp_region)
    year = _date_attr(db, "d_year")

    mask = np.array(
        [
            part_ok[p] and supp_ok[s]
            for p, s in zip(lo["lo_partkey"].tolist(), lo["lo_suppkey"].tolist())
        ]
    )
    years = np.array([year[k] - 1992 for k in lo["lo_orderdate"].tolist()])
    brands = np.array([brand_of[p] for p in lo["lo_partkey"].tolist()])
    codes = years * 1000 + brands
    return _group_dict(codes, lo["lo_revenue"], mask)


def ref_q2_1(db):
    return _ref_flight2(db, db.part["p_category"] == CATEGORY_MFGR12, AMERICA)


def ref_q2_2(db):
    b = db.part["p_brand1"]
    return _ref_flight2(db, (b >= BRAND_2221) & (b <= BRAND_2228), ASIA)


def ref_q2_3(db):
    return _ref_flight2(db, db.part["p_brand1"] == BRAND_2239, EUROPE)


def _ref_flight3(db, cpay, cmask, spay, smask, dmask, stride):
    lo = db.lineorder
    cust = {
        k: (int(p) if m else None)
        for k, p, m in zip(
            db.customer["c_custkey"].tolist(), cpay.tolist(), cmask.tolist()
        )
    }
    supp = {
        k: (int(p) if m else None)
        for k, p, m in zip(
            db.supplier["s_suppkey"].tolist(), spay.tolist(), smask.tolist()
        )
    }
    date = {
        k: (int(y) - 1992 if m else None)
        for k, y, m in zip(
            db.date["d_datekey"].tolist(),
            db.date["d_year"].tolist(),
            dmask.tolist(),
        )
    }
    sums: dict[int, int] = {}
    for ck, sk, dk, rev in zip(
        lo["lo_custkey"].tolist(),
        lo["lo_suppkey"].tolist(),
        lo["lo_orderdate"].tolist(),
        lo["lo_revenue"].tolist(),
    ):
        cg, sg, yg = cust[ck], supp[sk], date[dk]
        if cg is None or sg is None or yg is None:
            continue
        code = (cg * stride + sg) * 7 + yg
        sums[code] = sums.get(code, 0) + rev
    return {c: v for c, v in sums.items() if v != 0}


def ref_q3_1(db):
    years = (db.date["d_year"] >= 1992) & (db.date["d_year"] <= 1997)
    return _ref_flight3(
        db,
        db.customer["c_nation"], db.customer["c_region"] == ASIA,
        db.supplier["s_nation"], db.supplier["s_region"] == ASIA,
        years, 25,
    )


def ref_q3_2(db):
    years = (db.date["d_year"] >= 1992) & (db.date["d_year"] <= 1997)
    return _ref_flight3(
        db,
        db.customer["c_city"], db.customer["c_nation"] == NATION_US,
        db.supplier["s_city"], db.supplier["s_nation"] == NATION_US,
        years, 250,
    )


def ref_q3_3(db):
    years = (db.date["d_year"] >= 1992) & (db.date["d_year"] <= 1997)
    return _ref_flight3(
        db,
        db.customer["c_city"], np.isin(db.customer["c_city"], (CITY_UK1, CITY_UK5)),
        db.supplier["s_city"], np.isin(db.supplier["s_city"], (CITY_UK1, CITY_UK5)),
        years, 250,
    )


def ref_q3_4(db):
    dec97 = db.date["d_yearmonthnum"] == 199712
    return _ref_flight3(
        db,
        db.customer["c_city"], np.isin(db.customer["c_city"], (CITY_UK1, CITY_UK5)),
        db.supplier["s_city"], np.isin(db.supplier["s_city"], (CITY_UK1, CITY_UK5)),
        dec97, 250,
    )


def _ref_flight4(db, cpay, cmask, spay, smask, ppay, pmask, dmask, code_fn):
    lo = db.lineorder
    cust = {
        k: (int(p) if m else None)
        for k, p, m in zip(db.customer["c_custkey"].tolist(), cpay.tolist(), cmask.tolist())
    }
    supp = {
        k: (int(p) if m else None)
        for k, p, m in zip(db.supplier["s_suppkey"].tolist(), spay.tolist(), smask.tolist())
    }
    part = {
        k: (int(p) if m else None)
        for k, p, m in zip(db.part["p_partkey"].tolist(), ppay.tolist(), pmask.tolist())
    }
    date = {
        k: (int(y) - 1992 if m else None)
        for k, y, m in zip(
            db.date["d_datekey"].tolist(), db.date["d_year"].tolist(), dmask.tolist()
        )
    }
    sums: dict[int, int] = {}
    for ck, sk, pk, dk, rev, cost in zip(
        lo["lo_custkey"].tolist(),
        lo["lo_suppkey"].tolist(),
        lo["lo_partkey"].tolist(),
        lo["lo_orderdate"].tolist(),
        lo["lo_revenue"].tolist(),
        lo["lo_supplycost"].tolist(),
    ):
        cg, sg, pg, yg = cust[ck], supp[sk], part[pk], date[dk]
        if cg is None or sg is None or pg is None or yg is None:
            continue
        code = code_fn(cg, sg, pg, yg)
        sums[code] = sums.get(code, 0) + (rev - cost)
    return {c: v for c, v in sums.items() if v != 0}


def ref_q4_1(db):
    ones = np.zeros(db.date["d_datekey"].size, dtype=bool) | True
    return _ref_flight4(
        db,
        db.customer["c_nation"], db.customer["c_region"] == AMERICA,
        np.zeros_like(db.supplier["s_suppkey"]), db.supplier["s_region"] == AMERICA,
        np.zeros_like(db.part["p_partkey"]), np.isin(db.part["p_mfgr"], (0, 1)),
        ones,
        lambda cg, sg, pg, yg: yg * 25 + cg,
    )


def ref_q4_2(db):
    years = np.isin(db.date["d_year"], (1997, 1998))
    return _ref_flight4(
        db,
        np.zeros_like(db.customer["c_custkey"]), db.customer["c_region"] == AMERICA,
        db.supplier["s_nation"], db.supplier["s_region"] == AMERICA,
        db.part["p_category"], np.isin(db.part["p_mfgr"], (0, 1)),
        years,
        lambda cg, sg, pg, yg: (yg * 25 + sg) * 25 + pg,
    )


def ref_q4_3(db):
    years = np.isin(db.date["d_year"], (1997, 1998))
    return _ref_flight4(
        db,
        np.zeros_like(db.customer["c_custkey"]), db.customer["c_region"] == AMERICA,
        db.supplier["s_city"], db.supplier["s_nation"] == NATION_US,
        db.part["p_brand1"], db.part["p_category"] == CATEGORY_MFGR14,
        years,
        lambda cg, sg, pg, yg: (yg * 250 + sg) * 1000 + pg,
    )


REFERENCES = {
    "q1.1": ref_q1_1,
    "q1.2": ref_q1_2,
    "q1.3": ref_q1_3,
    "q2.1": ref_q2_1,
    "q2.2": ref_q2_2,
    "q2.3": ref_q2_3,
    "q3.1": ref_q3_1,
    "q3.2": ref_q3_2,
    "q3.3": ref_q3_3,
    "q3.4": ref_q3_4,
    "q4.1": ref_q4_1,
    "q4.2": ref_q4_2,
    "q4.3": ref_q4_3,
}


@pytest.mark.parametrize("qname", list(QUERIES))
def test_query_matches_reference_uncompressed(ssb_db, none_store, qname):
    engine = CrystalEngine(ssb_db, none_store, GPUDevice())
    result = engine.run(QUERIES[qname])
    assert result.groups == REFERENCES[qname](ssb_db)


@pytest.mark.parametrize("qname", list(QUERIES))
def test_query_matches_reference_compressed(ssb_db, gpu_star_store, qname):
    engine = CrystalEngine(ssb_db, gpu_star_store, GPUDevice())
    result = engine.run(QUERIES[qname])
    assert result.groups == REFERENCES[qname](ssb_db)


def test_flight1_results_nonempty(ssb_db, none_store):
    # Guard against vacuous-filter regressions in the generator.
    for qname in ("q1.1", "q2.1", "q3.1", "q4.1"):
        engine = CrystalEngine(ssb_db, none_store, GPUDevice())
        assert engine.run(QUERIES[qname]).groups, qname


@pytest.mark.parametrize("system", ["nvcomp", "planner", "gpu-bp", "omnisci"])
def test_all_systems_agree(ssb_db, none_store, system):
    expected = {
        q: CrystalEngine(ssb_db, none_store, GPUDevice()).run(QUERIES[q]).groups
        for q in QUERIES
    }
    store = load_lineorder(ssb_db, system)
    for qname in QUERIES:
        engine = CrystalEngine(ssb_db, store, GPUDevice())
        assert engine.run(QUERIES[qname]).groups == expected[qname], (system, qname)
