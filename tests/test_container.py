"""The framed container format: framing, CRCs, versioning, tamper rejection."""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest

from repro.formats import CorruptTileError, set_checksums, set_verify_mode
from repro.formats.container import (
    CODEC_VERSION,
    CONTAINER_VERSION,
    MAGIC,
    checked_decode,
    dumps,
    encode_with_checksums,
    load_container,
    loads,
    save_container,
)
from repro.formats.io import load_encoded, save_encoded


@pytest.fixture(autouse=True)
def _hardened():
    prev_checks = set_checksums(True)
    prev_mode = set_verify_mode("always")
    yield
    set_checksums(prev_checks)
    set_verify_mode(prev_mode)


@pytest.fixture
def enc():
    rng = np.random.default_rng(0)
    values = rng.integers(0, 10_000, size=5000).astype(np.int64)
    return encode_with_checksums("gpu-for", values, column="c"), values


def test_roundtrip_bit_identical(enc):
    encoded, values = enc
    blob = dumps(encoded)
    assert blob[:4] == MAGIC
    back = loads(blob)
    assert back.codec == encoded.codec
    assert back.count == encoded.count
    assert back.meta["column"] == "c"
    assert back.meta["codec_version"] == CODEC_VERSION
    got = checked_decode(back)
    assert np.array_equal(np.asarray(got, np.int64), values)


def test_roundtrip_via_file(enc, tmp_path):
    encoded, values = enc
    path = tmp_path / "col.rtlc"
    save_container(encoded, path)
    back = load_container(path)
    assert np.array_equal(np.asarray(checked_decode(back), np.int64), values)
    # File-object form too.
    buf = io.BytesIO()
    save_container(encoded, buf)
    buf.seek(0)
    back2 = load_container(buf)
    assert np.array_equal(np.asarray(checked_decode(back2), np.int64), values)


def test_bad_magic_rejected(enc):
    blob = bytearray(dumps(enc[0]))
    blob[:4] = b"NOPE"
    with pytest.raises(CorruptTileError, match="magic"):
        loads(bytes(blob))


def test_future_versions_rejected(enc):
    blob = dumps(enc[0])
    preamble = struct.Struct("<4sHHI")
    _, _, _, header_len = preamble.unpack_from(blob)
    newer_container = preamble.pack(
        MAGIC, CONTAINER_VERSION + 1, CODEC_VERSION, header_len
    ) + blob[preamble.size:]
    with pytest.raises(CorruptTileError, match="container version"):
        loads(newer_container)
    newer_codec = preamble.pack(
        MAGIC, CONTAINER_VERSION, CODEC_VERSION + 1, header_len
    ) + blob[preamble.size:]
    with pytest.raises(CorruptTileError, match="codec version"):
        loads(newer_codec)


def test_truncation_rejected(enc):
    blob = dumps(enc[0])
    with pytest.raises(CorruptTileError):
        loads(blob[:3])  # shorter than the preamble
    with pytest.raises(CorruptTileError, match="header"):
        loads(blob[:struct.calcsize("<4sHHI") + 5])  # preamble ok, header cut
    with pytest.raises(CorruptTileError, match="declares"):
        loads(blob[:-17])  # payload cut


def test_payload_bitflip_rejected(enc):
    blob = bytearray(dumps(enc[0]))
    blob[-100] ^= 0x40
    with pytest.raises(CorruptTileError, match="checksum"):
        loads(bytes(blob))


def test_garbage_header_rejected(enc):
    blob = dumps(enc[0])
    preamble = struct.Struct("<4sHHI")
    # Valid preamble, but the "header" bytes are not JSON.
    bad = preamble.pack(MAGIC, CONTAINER_VERSION, CODEC_VERSION, 16)
    bad += b"\xff" * 16
    with pytest.raises(CorruptTileError, match="header"):
        loads(bad)
    del blob  # silence unused warning


def test_runtime_meta_keys_not_persisted(enc):
    encoded, _ = enc
    checked_decode(encoded)  # plants _validated (and maybe _crc_seen)
    assert "_validated" in encoded.meta
    back = loads(dumps(encoded))
    assert not any(k.startswith("_") for k in back.meta)


def test_unknown_codec_is_corrupt_not_keyerror(enc):
    encoded, _ = enc
    back = loads(dumps(encoded))
    back.codec = "no-such-codec"
    with pytest.raises(CorruptTileError, match="format id"):
        checked_decode(back)


def test_io_v2_array_crc_tamper_detected(enc, tmp_path):
    """The .npz path (io.py) gained per-array CRCs in format v2."""
    encoded, values = enc
    path = tmp_path / "col.npz"
    save_encoded(encoded, path)
    clean = load_encoded(path)
    assert np.array_equal(
        np.asarray(checked_decode(clean), np.int64), values
    )
    # Tamper *after* save: patch bytes inside the archive itself, so the
    # stored CRC (computed at save) disagrees with the loaded array.
    import zipfile

    with zipfile.ZipFile(path) as zf:
        names = zf.namelist()
        blobs = {n: zf.read(n) for n in names}
    target = next(n for n in names if n == "data.npy")
    raw = bytearray(blobs[target])
    raw[-9] ^= 0x01  # flip a bit inside the stored array payload
    blobs[target] = bytes(raw)
    path3 = tmp_path / "bitflipped.npz"
    with zipfile.ZipFile(path3, "w") as zf:
        for n in names:
            zf.writestr(n, blobs[n])
    with pytest.raises(CorruptTileError, match="checksum"):
        load_encoded(path3)


def test_meta_arrays_framed_with_crc(enc):
    encoded, _ = enc
    assert "tile_crcs" in encoded.meta  # checksums were on at encode
    back = loads(dumps(encoded))
    assert isinstance(back.meta["tile_crcs"], np.ndarray)
    assert np.array_equal(back.meta["tile_crcs"], encoded.meta["tile_crcs"])
