"""Setup shim: lets pip perform a legacy editable install in offline
environments that lack the ``wheel`` package (metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
