"""CUDA-style occupancy calculation.

Occupancy — the fraction of a streaming multiprocessor's thread slots that
are resident — determines how well memory latency is hidden.  The paper's
Figure 5 hinges on it: processing D=32 data blocks per thread block needs
128 bytes of shared memory and >64 registers per thread, which collapses
occupancy and spills registers, so performance craters.

The calculation below is the standard one: resident blocks per SM are
limited by the thread-slot, block-slot, register-file, and shared-memory
budgets; occupancy is resident threads over the thread-slot budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.spec import GPUSpec

#: Register allocation granularity (registers round up to this multiple).
_REGISTER_GRANULARITY = 8
#: Shared-memory allocation granularity per block, in bytes.
_SMEM_GRANULARITY = 256


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel configuration."""

    #: Resident thread blocks per SM.
    blocks_per_sm: int
    #: Resident threads / max threads, in [0, 1].
    occupancy: float
    #: Registers per thread actually allocated (capped by the spill limit).
    allocated_registers: int
    #: Registers per thread that did not fit and spill to local memory.
    spilled_registers: int
    #: Which resource bound the block count ("threads", "blocks",
    #: "registers", or "shared_mem").
    limiter: str


def compute_occupancy(
    spec: GPUSpec,
    block_threads: int,
    registers_per_thread: int,
    shared_mem_per_block: int,
) -> OccupancyResult:
    """Compute achieved occupancy for a kernel resource configuration.

    Args:
        spec: device resource limits.
        block_threads: threads per thread block (32..1024).
        registers_per_thread: registers the kernel wants per thread.
        shared_mem_per_block: bytes of shared memory per thread block.

    Returns:
        An :class:`OccupancyResult`; never raises for heavy kernels — a
        kernel that cannot fit even one block is reported with
        ``blocks_per_sm == 1`` and the overflow charged as spilling, which
        is how a real compiler/driver degrades rather than refuses.
    """
    if not 32 <= block_threads <= 1024:
        raise ValueError(f"block_threads must be in [32, 1024], got {block_threads}")
    if registers_per_thread < 0 or shared_mem_per_block < 0:
        raise ValueError("resource requests must be non-negative")

    # The compiler caps register allocation; demand beyond the cap spills.
    allocated = min(registers_per_thread, spec.max_registers_per_thread)
    allocated = max(allocated, 1)
    spilled = max(0, registers_per_thread - allocated)

    granted_regs = -(-allocated // _REGISTER_GRANULARITY) * _REGISTER_GRANULARITY
    granted_smem = max(
        _SMEM_GRANULARITY,
        -(-shared_mem_per_block // _SMEM_GRANULARITY) * _SMEM_GRANULARITY,
    )

    by_threads = spec.max_threads_per_sm // block_threads
    by_blocks = spec.max_blocks_per_sm
    by_registers = spec.registers_per_sm // (granted_regs * block_threads)
    by_smem = spec.shared_mem_per_sm // granted_smem

    limits = {
        "threads": by_threads,
        "blocks": by_blocks,
        "registers": by_registers,
        "shared_mem": by_smem,
    }
    limiter = min(limits, key=limits.__getitem__)
    blocks_per_sm = limits[limiter]

    if blocks_per_sm < 1:
        # Too big to co-schedule at all: run one block anyway and charge the
        # shared-memory overflow as additional spilled state.
        blocks_per_sm = 1
        overflow_bytes = max(0, granted_smem - spec.shared_mem_per_sm)
        spilled += -(-overflow_bytes // 4) // max(block_threads, 1)
        limiter = "shared_mem"

    occupancy = blocks_per_sm * block_threads / spec.max_threads_per_sm
    return OccupancyResult(
        blocks_per_sm=blocks_per_sm,
        occupancy=min(1.0, occupancy),
        allocated_registers=allocated,
        spilled_registers=spilled,
        limiter=limiter,
    )


def bandwidth_efficiency(spec: GPUSpec, occupancy: float) -> float:
    """Fraction of peak global bandwidth achievable at a given occupancy.

    Above the latency-hiding knee the memory system saturates and extra
    occupancy does not help; below it, in-flight requests scale with
    resident warps so effective bandwidth degrades linearly.
    """
    if not 0.0 <= occupancy <= 1.0:
        raise ValueError(f"occupancy must be in [0, 1], got {occupancy}")
    if occupancy >= spec.latency_hiding_knee:
        return 1.0
    return max(occupancy / spec.latency_hiding_knee, 1e-3)
