"""Global-memory traffic accounting.

GPU global memory serves loads and stores of a warp in fixed-size
transactions (128 bytes on the V100, split into 32-byte sectors).  A warp
reading 32 adjacent 4-byte integers costs exactly one transaction; a warp
gathering from scattered addresses costs up to one 32-byte sector per
thread.  The paper's optimizations (Section 4.2) are largely about turning
scattered per-thread loads into coalesced tile loads, so the simulator
counts traffic exactly, in bytes, at transaction/sector granularity.

:class:`TrafficCounter` is the accumulator a kernel writes its accesses
into.  Access patterns are described in aggregate (e.g. "these segments of
the buffer were each read once") and the counter computes the traffic
vectorized with NumPy, so accounting stays cheap even for millions of
logical accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.spec import GPUSpec

#: Granularity of an uncoalesced access: one L2 sector.
SECTOR_BYTES = 32


def segment_bytes(starts: np.ndarray, lengths: np.ndarray, transaction_bytes: int) -> int:
    """Bytes of traffic to touch each byte segment once, one warp per segment.

    Each segment ``[starts[i], starts[i] + lengths[i])`` is served by the
    aligned transaction windows it overlaps.  Segments are assumed to be
    issued by different warps/blocks and therefore do not share
    transactions, matching the coalescing behaviour of compressed blocks
    scattered across a column.

    Args:
        starts: byte offsets of each segment.
        lengths: byte length of each segment (zero-length segments cost 0).
        transaction_bytes: aligned transaction window size.

    Returns:
        Total bytes moved (transaction count times window size).
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have the same shape")
    if np.any(lengths < 0) or np.any(starts < 0):
        raise ValueError("segments must have non-negative starts and lengths")
    nonzero = lengths > 0
    if not np.any(nonzero):
        return 0
    s = starts[nonzero]
    e = s + lengths[nonzero]
    first = s // transaction_bytes
    last = (e - 1) // transaction_bytes
    return int(np.sum(last - first + 1)) * transaction_bytes


def linear_bytes(nbytes: int, transaction_bytes: int) -> int:
    """Traffic for a perfectly coalesced sequential sweep of ``nbytes``."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return -(-nbytes // transaction_bytes) * transaction_bytes


def gather_bytes(count: int, element_bytes: int, sector_bytes: int = SECTOR_BYTES) -> int:
    """Traffic for ``count`` independent scattered loads of ``element_bytes``.

    Models per-thread loads with no coalescing: each load pulls whole
    32-byte sectors covering the element (an element can straddle one
    sector boundary in the worst case, which is the common case for
    bit-packed 8-byte windows, so we charge the covering sectors exactly).
    """
    if count < 0 or element_bytes < 0:
        raise ValueError("count and element_bytes must be non-negative")
    sectors_per_load = max(1, -(-element_bytes // sector_bytes))
    return count * sectors_per_load * sector_bytes


@dataclass
class TrafficCounter:
    """Accumulates one kernel launch's memory traffic and compute work."""

    spec: GPUSpec
    read_bytes: int = 0
    write_bytes: int = 0
    #: Local-memory traffic caused by register spilling.
    spill_bytes: int = 0
    #: Bytes moved through shared memory (loads + stores).
    shared_bytes: int = 0
    #: Scalar integer operations executed (for the compute-bound term).
    compute_ops: int = 0

    # -- global memory ----------------------------------------------------

    def read_linear(self, nbytes: int) -> None:
        """Record a fully coalesced sequential read of ``nbytes``."""
        self.read_bytes += linear_bytes(nbytes, self.spec.transaction_bytes)

    def write_linear(self, nbytes: int) -> None:
        """Record a fully coalesced sequential write of ``nbytes``."""
        self.write_bytes += linear_bytes(nbytes, self.spec.transaction_bytes)

    def read_segments(self, starts: np.ndarray, lengths: np.ndarray) -> None:
        """Record reads of independent byte segments (one warp group each)."""
        self.read_bytes += segment_bytes(starts, lengths, self.spec.transaction_bytes)

    def write_segments(self, starts: np.ndarray, lengths: np.ndarray) -> None:
        """Record writes of independent byte segments (one warp group each)."""
        self.write_bytes += segment_bytes(starts, lengths, self.spec.transaction_bytes)

    def read_gather(
        self, count: int, element_bytes: int, region_bytes: int | None = None
    ) -> None:
        """Record ``count`` uncoalesced loads of ``element_bytes`` each.

        When ``region_bytes`` bounds the source region, traffic cannot
        exceed one full sweep of that region — dense gathers (e.g. RLE
        expansion where nearly every element is touched) coalesce into
        sequential transactions on real hardware.
        """
        cost = gather_bytes(count, element_bytes)
        if region_bytes is not None:
            cost = min(cost, linear_bytes(region_bytes, self.spec.transaction_bytes))
        self.read_bytes += cost

    def write_scatter(
        self, count: int, element_bytes: int, region_bytes: int | None = None
    ) -> None:
        """Record ``count`` uncoalesced stores of ``element_bytes`` each.

        ``region_bytes`` bounds dense scatters the same way as
        :meth:`read_gather`.
        """
        cost = gather_bytes(count, element_bytes)
        if region_bytes is not None:
            cost = min(cost, linear_bytes(region_bytes, self.spec.transaction_bytes))
        self.write_bytes += cost

    # -- other resources ---------------------------------------------------

    def spill(self, nbytes: int) -> None:
        """Record local-memory traffic caused by register spilling.

        A spilled value is stored once and reloaded once, so the charged
        traffic is twice the spilled byte count.
        """
        self.spill_bytes += 2 * linear_bytes(nbytes, self.spec.transaction_bytes)

    def shared(self, nbytes: int) -> None:
        """Record ``nbytes`` moved through shared memory."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        self.shared_bytes += nbytes

    def compute(self, ops: int) -> None:
        """Record ``ops`` scalar integer operations."""
        if ops < 0:
            raise ValueError(f"ops must be non-negative, got {ops}")
        self.compute_ops += ops

    # -- summary -----------------------------------------------------------

    @property
    def global_bytes(self) -> int:
        """Total bytes moved through global memory, including spills."""
        return self.read_bytes + self.write_bytes + self.spill_bytes

    def merge(self, other: "TrafficCounter") -> None:
        """Fold another counter's totals into this one."""
        self.read_bytes += other.read_bytes
        self.write_bytes += other.write_bytes
        self.spill_bytes += other.spill_bytes
        self.shared_bytes += other.shared_bytes
        self.compute_ops += other.compute_ops
