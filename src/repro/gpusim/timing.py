"""Cost model: recorded kernel traffic → simulated milliseconds.

The model captures the regime the paper operates in: database kernels on a
GPU are memory-bound, so a launch's time is its global-memory traffic
divided by the bandwidth it can actually achieve, with shared-memory and
compute terms that only dominate when a kernel leans on them unusually hard
(e.g. GPU-DFOR's block-wide prefix sums are shared-memory bound, the naive
miniblock-offset loop of Algorithm 1 is compute bound).

Terms overlap on real hardware, so a launch costs the *maximum* of the
three resource times plus the fixed launch overhead — the classic roofline
treatment.
"""

from __future__ import annotations

from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.occupancy import bandwidth_efficiency
from repro.gpusim.spec import GPUSpec


class CostModel:
    """Converts a :class:`KernelLaunch`'s recorded traffic into time."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    def launch_time_ms(self, launch: KernelLaunch) -> float:
        """Simulated execution time of one kernel launch in milliseconds."""
        spec = self.spec
        efficiency = bandwidth_efficiency(spec, launch.occupancy.occupancy)

        global_bytes = launch.traffic.global_bytes
        mem_ms = global_bytes / (spec.global_bandwidth_gbps * 1e9 * efficiency) * 1e3

        shared_ms = (
            launch.traffic.shared_bytes / (spec.shared_bandwidth_gbps * 1e9) * 1e3
        )

        # Compute throughput scales with occupancy the same way bandwidth
        # does: fewer resident warps, fewer instructions in flight.
        compute_ms = (
            launch.traffic.compute_ops
            / (spec.int_throughput_gops * 1e9 * efficiency)
            * 1e3
        )

        return spec.kernel_launch_us / 1000.0 + max(mem_ms, shared_ms, compute_ms)
