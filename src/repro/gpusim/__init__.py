"""Deterministic GPU execution simulator (the reproduction's substrate).

The paper measures CUDA kernels on an Nvidia V100; this package provides a
performance model of that device: 128-byte global-memory transactions with
32-byte sectors for uncoalesced access, a CUDA-style occupancy calculator,
register-spill modelling, a roofline cost model, and a PCIe transfer
model.  See DESIGN.md section 2 for why this substitution preserves the
paper's conclusions.
"""

from repro.gpusim.executor import GPUDevice, Stopwatch, TransferRecord
from repro.gpusim.multigpu import ShardedDevice
from repro.gpusim.kernel import KernelLaunch, KernelSpec
from repro.gpusim.memory import (
    SECTOR_BYTES,
    TrafficCounter,
    gather_bytes,
    linear_bytes,
    segment_bytes,
)
from repro.gpusim.occupancy import (
    OccupancyResult,
    bandwidth_efficiency,
    compute_occupancy,
)
from repro.gpusim.spec import A100, V100, GPUSpec, PCIeSpec
from repro.gpusim.timing import CostModel

__all__ = [
    "A100",
    "CostModel",
    "GPUDevice",
    "GPUSpec",
    "KernelLaunch",
    "KernelSpec",
    "OccupancyResult",
    "PCIeSpec",
    "SECTOR_BYTES",
    "ShardedDevice",
    "Stopwatch",
    "TrafficCounter",
    "TransferRecord",
    "V100",
    "bandwidth_efficiency",
    "compute_occupancy",
    "gather_bytes",
    "linear_bytes",
    "segment_bytes",
]
