"""Kernel launch descriptions and per-launch statistics.

A :class:`KernelSpec` is the static resource signature of a kernel — the
numbers a CUDA compiler would report (threads per block, registers per
thread, shared memory per block).  A :class:`KernelLaunch` pairs a spec
with a grid size and a :class:`~repro.gpusim.memory.TrafficCounter`, and is
what kernels record their memory behaviour into while they execute their
(NumPy) data transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.memory import TrafficCounter
from repro.gpusim.occupancy import OccupancyResult, compute_occupancy
from repro.gpusim.spec import GPUSpec


@dataclass(frozen=True)
class KernelSpec:
    """Static resource signature of one GPU kernel."""

    name: str
    block_threads: int = 128
    registers_per_thread: int = 32
    shared_mem_per_block: int = 0

    def __post_init__(self) -> None:
        if not 32 <= self.block_threads <= 1024:
            raise ValueError(
                f"block_threads must be in [32, 1024], got {self.block_threads}"
            )
        if self.registers_per_thread < 1:
            raise ValueError("registers_per_thread must be at least 1")
        if self.shared_mem_per_block < 0:
            raise ValueError("shared_mem_per_block must be non-negative")


@dataclass
class KernelLaunch:
    """One kernel launch: spec + grid + recorded traffic.

    The launch object doubles as the recording surface: kernel
    implementations call :meth:`read_linear`, :meth:`read_segments`,
    :meth:`shared`, :meth:`compute` etc. (delegated to the traffic
    counter) while doing their actual work.
    """

    spec: KernelSpec
    grid_blocks: int
    device_spec: GPUSpec
    traffic: TrafficCounter = field(init=False)
    occupancy: OccupancyResult = field(init=False)
    #: Filled in by the executor when the launch completes.
    time_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.grid_blocks < 1:
            raise ValueError(f"grid_blocks must be >= 1, got {self.grid_blocks}")
        self.traffic = TrafficCounter(self.device_spec)
        self.occupancy = compute_occupancy(
            self.device_spec,
            self.spec.block_threads,
            self.spec.registers_per_thread,
            self.spec.shared_mem_per_block,
        )
        # Spilled registers cost local-memory traffic for every thread.
        if self.occupancy.spilled_registers:
            total_threads = self.grid_blocks * self.spec.block_threads
            self.traffic.spill(self.occupancy.spilled_registers * 4 * total_threads)

    # -- delegation to the traffic counter ---------------------------------

    def read_linear(self, nbytes: int) -> None:
        self.traffic.read_linear(nbytes)

    def write_linear(self, nbytes: int) -> None:
        self.traffic.write_linear(nbytes)

    def read_segments(self, starts: np.ndarray, lengths: np.ndarray) -> None:
        self.traffic.read_segments(starts, lengths)

    def write_segments(self, starts: np.ndarray, lengths: np.ndarray) -> None:
        self.traffic.write_segments(starts, lengths)

    def read_gather(
        self, count: int, element_bytes: int, region_bytes: int | None = None
    ) -> None:
        self.traffic.read_gather(count, element_bytes, region_bytes)

    def write_scatter(
        self, count: int, element_bytes: int, region_bytes: int | None = None
    ) -> None:
        self.traffic.write_scatter(count, element_bytes, region_bytes)

    def shared(self, nbytes: int) -> None:
        self.traffic.shared(nbytes)

    def compute(self, ops: int) -> None:
        self.traffic.compute(ops)
