"""The simulated GPU device: launches kernels and keeps a time ledger.

:class:`GPUDevice` is the substrate every codec and query in this
reproduction runs on.  Code structured as GPU kernels opens a launch with
:meth:`GPUDevice.launch`, records its memory behaviour on the launch object
while performing the actual data transformation in NumPy, and the device
prices the launch with the :class:`~repro.gpusim.timing.CostModel` when the
``with`` block closes.

The ledger of priced launches is the simulator's only output; experiment
harnesses read :attr:`GPUDevice.elapsed_ms` before/after an operation to
attribute simulated time, exactly the way the paper attributes CUDA event
timings to kernels.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.gpusim.kernel import KernelLaunch, KernelSpec
from repro.gpusim.spec import V100, GPUSpec
from repro.gpusim.timing import CostModel


@dataclass
class TransferRecord:
    """A host↔device copy over the interconnect."""

    direction: str
    nbytes: int
    time_ms: float


@dataclass
class GPUDevice:
    """A deterministic, traffic-priced stand-in for one CUDA device."""

    spec: GPUSpec = field(default_factory=lambda: V100)

    def __post_init__(self) -> None:
        self._cost = CostModel(self.spec)
        self.launches: list[KernelLaunch] = []
        self.transfers: list[TransferRecord] = []

    # -- kernels -----------------------------------------------------------

    @contextlib.contextmanager
    def launch(
        self,
        name: str,
        grid_blocks: int,
        block_threads: int = 128,
        registers_per_thread: int = 32,
        shared_mem_per_block: int = 0,
    ) -> Iterator[KernelLaunch]:
        """Open a kernel launch; priced and recorded when the block exits.

        Example::

            with device.launch("unpack", grid_blocks=blocks) as k:
                k.read_linear(compressed_nbytes)
                k.write_linear(decoded_nbytes)
        """
        spec = KernelSpec(
            name=name,
            block_threads=block_threads,
            registers_per_thread=registers_per_thread,
            shared_mem_per_block=shared_mem_per_block,
        )
        launch = KernelLaunch(spec=spec, grid_blocks=grid_blocks, device_spec=self.spec)
        yield launch
        launch.time_ms = self._cost.launch_time_ms(launch)
        self.launches.append(launch)

    # -- transfers ---------------------------------------------------------

    def transfer_to_device(self, nbytes: int) -> float:
        """Copy ``nbytes`` host→device over PCIe; returns the time in ms."""
        time_ms = self.spec.pcie.transfer_ms(nbytes)
        self.transfers.append(TransferRecord("h2d", nbytes, time_ms))
        return time_ms

    def transfer_to_host(self, nbytes: int) -> float:
        """Copy ``nbytes`` device→host over PCIe; returns the time in ms."""
        time_ms = self.spec.pcie.transfer_ms(nbytes)
        self.transfers.append(TransferRecord("d2h", nbytes, time_ms))
        return time_ms

    # -- ledger ------------------------------------------------------------

    @property
    def kernel_ms(self) -> float:
        """Total simulated kernel time so far."""
        return sum(launch.time_ms for launch in self.launches)

    @property
    def transfer_ms(self) -> float:
        """Total simulated transfer time so far."""
        return sum(t.time_ms for t in self.transfers)

    @property
    def elapsed_ms(self) -> float:
        """Total simulated time so far (kernels + transfers)."""
        return self.kernel_ms + self.transfer_ms

    @property
    def kernel_count(self) -> int:
        return len(self.launches)

    @property
    def global_bytes_moved(self) -> int:
        """Total global-memory bytes across all launches."""
        return sum(launch.traffic.global_bytes for launch in self.launches)

    def reset(self) -> None:
        """Clear the ledger (start a fresh measurement window)."""
        self.launches.clear()
        self.transfers.clear()

    def timeline(self) -> list[dict]:
        """Per-launch breakdown of the ledger (EXPLAIN-style rows).

        One row per kernel launch with its resource signature, achieved
        occupancy, traffic, and priced time — what ``nvprof`` would show
        for the real system.
        """
        rows = []
        for launch in self.launches:
            t = launch.traffic
            rows.append(
                {
                    "kernel": launch.spec.name,
                    "grid": launch.grid_blocks,
                    "regs": launch.spec.registers_per_thread,
                    "smem_KB": launch.spec.shared_mem_per_block / 1024,
                    "occupancy": launch.occupancy.occupancy,
                    "read_MB": t.read_bytes / 1e6,
                    "write_MB": t.write_bytes / 1e6,
                    "spill_MB": t.spill_bytes / 1e6,
                    "shared_MB": t.shared_bytes / 1e6,
                    "Gops": t.compute_ops / 1e9,
                    "ms": launch.time_ms,
                }
            )
        return rows


class Stopwatch:
    """Measures simulated time elapsed on a device across an operation.

    Usage::

        watch = Stopwatch(device)
        run_query(...)
        print(watch.lap_ms())
    """

    def __init__(self, device: GPUDevice):
        self.device = device
        self._mark = device.elapsed_ms

    def lap_ms(self) -> float:
        """Simulated ms since construction or the previous lap."""
        now = self.device.elapsed_ms
        lap = now - self._mark
        self._mark = now
        return lap
