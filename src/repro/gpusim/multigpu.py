"""Multi-GPU sharding (the Section 1 motivation).

The paper motivates compression with the capacity wall: working sets
larger than one device get sharded "between CPU and GPU or between
multiple GPUs", paying interconnect cost.  This module models the
multi-GPU half: a :class:`ShardedDevice` fans a column's tiles out over
``k`` simulated GPUs round-robin and executes work on all shards
concurrently, so elapsed time is the slowest shard plus a small all-reduce
for result merging over the interconnect.

Compression composes with sharding exactly as the paper argues it should:
it either shrinks each shard (more working set per GPU) or reduces the
number of GPUs needed for a fixed working set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.executor import GPUDevice
from repro.gpusim.spec import V100, GPUSpec


@dataclass
class ShardedDevice:
    """``k`` simulated GPUs executing the same kernel over shards."""

    num_devices: int
    spec: GPUSpec = field(default_factory=lambda: V100)
    #: Bandwidth of the inter-GPU link used for result merging (NVLink-ish).
    interconnect_gbps: float = 50.0

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
        self.devices = [GPUDevice(spec=self.spec) for _ in range(self.num_devices)]
        self._merge_ms = 0.0

    def shard_sizes(self, total: int, tile: int = 1) -> list[int]:
        """Split ``total`` items over the devices on ``tile`` boundaries.

        With the default ``tile=1`` this is the raw even split (sizes
        differ by at most one item).  A larger ``tile`` — the codec's
        tile size, or the LCM of several codecs' tile sizes — keeps every
        shard boundary a tile multiple, so no codec tile ever straddles
        two devices: only the final shard may end mid-tile, on the
        column's own ragged tail.  Sizes always sum to ``total``; devices
        past the tile count get empty shards.
        """
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        if tile < 1:
            raise ValueError(f"tile must be >= 1, got {tile}")
        if tile == 1:
            base = total // self.num_devices
            extra = total % self.num_devices
            return [base + (1 if i < extra else 0) for i in range(self.num_devices)]
        num_tiles = -(-total // tile)
        base = num_tiles // self.num_devices
        extra = num_tiles % self.num_devices
        sizes = []
        remaining = total
        for i in range(self.num_devices):
            tiles = base + (1 if i < extra else 0)
            size = min(tiles * tile, remaining)
            sizes.append(size)
            remaining -= size
        return sizes

    def shard_bounds(self, total: int, tile: int = 1) -> list[tuple[int, int]]:
        """``[lo, hi)`` item ranges per device, from :meth:`shard_sizes`."""
        bounds = []
        lo = 0
        for size in self.shard_sizes(total, tile=tile):
            bounds.append((lo, lo + size))
            lo += size
        return bounds

    def run_sharded(self, fn, total_items: int, *args, **kwargs) -> list:
        """Run ``fn(device, shard_items, *args)`` on every device's shard.

        ``fn`` performs (and accounts) one shard's work on its device;
        returns the list of per-shard results.
        """
        results = []
        for device, items in zip(self.devices, self.shard_sizes(total_items)):
            results.append(fn(device, items, *args, **kwargs))
        return results

    def merge_results(self, nbytes_per_device: int) -> float:
        """All-gather partial results over the interconnect; returns ms."""
        if nbytes_per_device < 0:
            raise ValueError("nbytes_per_device must be non-negative")
        # Ring all-gather: each device ships its partial once.
        ms = (
            nbytes_per_device
            * (self.num_devices - 1)
            / (self.interconnect_gbps * 1e9)
            * 1e3
        )
        self._merge_ms += ms
        return ms

    @property
    def elapsed_ms(self) -> float:
        """Wall-clock of the sharded execution: slowest device + merges."""
        return max(d.elapsed_ms for d in self.devices) + self._merge_ms

    @property
    def total_device_ms(self) -> float:
        """Aggregate device time (resource cost, not wall-clock)."""
        return sum(d.elapsed_ms for d in self.devices)

    @property
    def capacity_bytes(self) -> int:
        """Combined device memory."""
        return self.num_devices * self.spec.global_capacity_bytes

    def reset(self) -> None:
        for device in self.devices:
            device.reset()
        self._merge_ms = 0.0
