"""Hardware specifications for the simulated GPU and host interconnect.

The reproduction runs on a deterministic performance model instead of real
CUDA hardware.  A :class:`GPUSpec` captures the handful of device parameters
that the paper's performance story depends on: global-memory bandwidth,
shared-memory bandwidth, streaming-multiprocessor (SM) resource limits used
by the occupancy calculation, and kernel launch overhead.

The default spec mirrors the Nvidia V100 used in the paper (Section 9.1):
16 GB HBM2 at 880 GB/s measured read/write bandwidth, 80 SMs, 96 KB shared
memory per SM, 64K 32-bit registers per SM, and a 12.8 GB/s bidirectional
PCIe 3.0 link to the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PCIeSpec:
    """Host-device interconnect model.

    Attributes:
        bandwidth_gbps: sustained transfer bandwidth in gigabytes/second.
        latency_us: fixed per-transfer setup latency in microseconds.
    """

    bandwidth_gbps: float = 12.8
    latency_us: float = 10.0

    def transfer_ms(self, nbytes: int) -> float:
        """Time in milliseconds to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency_us / 1000.0 + nbytes / (self.bandwidth_gbps * 1e9) * 1e3


@dataclass(frozen=True)
class GPUSpec:
    """Resource and throughput model of a single GPU device.

    The attributes are the inputs of a standard CUDA occupancy calculation
    plus the bandwidth figures that the cost model converts memory traffic
    into simulated milliseconds with.
    """

    name: str = "V100"
    #: Measured global read/write bandwidth (the paper reports 880 GB/s).
    global_bandwidth_gbps: float = 880.0
    #: Shared memory bandwidth, roughly an order of magnitude above global.
    shared_bandwidth_gbps: float = 10_000.0
    #: Global memory capacity in bytes (16 GB HBM2 on the V100).
    global_capacity_bytes: int = 16 * 1024**3
    #: Size of one coalesced global-memory transaction in bytes.
    transaction_bytes: int = 128
    #: Number of streaming multiprocessors.
    sm_count: int = 80
    #: Maximum resident threads per SM.
    max_threads_per_sm: int = 2048
    #: Maximum resident thread blocks per SM.
    max_blocks_per_sm: int = 32
    #: 32-bit registers per SM.
    registers_per_sm: int = 65_536
    #: Shared memory per SM in bytes (96 KB usable on the V100).
    shared_mem_per_sm: int = 96 * 1024
    #: Register count beyond which the compiler spills to local memory.
    max_registers_per_thread: int = 64
    #: Fixed cost of launching one kernel, in microseconds.
    kernel_launch_us: float = 5.0
    #: Simple integer-op throughput in giga-operations/second, used for the
    #: compute-bound term of the cost model.
    int_throughput_gops: float = 4000.0
    #: Occupancy below this fraction no longer hides memory latency fully;
    #: effective bandwidth degrades proportionally below the knee.
    latency_hiding_knee: float = 0.50
    #: Host interconnect.
    pcie: PCIeSpec = field(default_factory=PCIeSpec)

    def __post_init__(self) -> None:
        if self.global_bandwidth_gbps <= 0:
            raise ValueError("global_bandwidth_gbps must be positive")
        if self.transaction_bytes <= 0 or self.transaction_bytes % 32:
            raise ValueError("transaction_bytes must be a positive multiple of 32")
        if not 0.0 < self.latency_hiding_knee <= 1.0:
            raise ValueError("latency_hiding_knee must be in (0, 1]")


#: The device used throughout the paper's evaluation (Section 9.1).
V100 = GPUSpec()

#: A newer part, used to sanity-check that conclusions transfer.
A100 = GPUSpec(
    name="A100",
    global_bandwidth_gbps=1555.0,
    shared_bandwidth_gbps=19_000.0,
    global_capacity_bytes=40 * 1024**3,
    sm_count=108,
    shared_mem_per_sm=164 * 1024,
    pcie=PCIeSpec(bandwidth_gbps=25.0),
)
