"""SSB data generator (the reproduction's stand-in for ``ssb-dbgen``).

Generates the five SSB tables as integer column dictionaries, mirroring
the distributions that drive the paper's Figure 9 compression results:

* ``lo_orderkey`` is sorted with runs of one order's lines — GPU-DFOR /
  GPU-RFOR territory;
* ``lo_orderdate``, ``lo_custkey``, ``lo_ordtotalprice`` repeat per order
  (average run length ~4) — GPU-RFOR columns;
* ``lo_extendedprice``, ``lo_revenue``, ``lo_supplycost`` are large
  "random" integers only bit-packing compresses;
* small-domain columns (``lo_quantity``, ``lo_discount``, ``lo_tax``,
  ``lo_linenumber``) bit-pack to a few bits.

String attributes are generated directly as dictionary codes; the string
dictionaries themselves (nation names etc.) live in
:mod:`repro.ssb.schema`.  Generation is deterministic given (scale
factor, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ssb import schema


@dataclass
class SSBDatabase:
    """All five SSB tables as ``{column: int64 array}`` dictionaries."""

    scale_factor: float
    date: dict[str, np.ndarray] = field(default_factory=dict)
    customer: dict[str, np.ndarray] = field(default_factory=dict)
    supplier: dict[str, np.ndarray] = field(default_factory=dict)
    part: dict[str, np.ndarray] = field(default_factory=dict)
    lineorder: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_lineorder_rows(self) -> int:
        return int(self.lineorder["lo_orderkey"].size)

    def table(self, name: str) -> dict[str, np.ndarray]:
        """Look a table up by name."""
        if name not in ("date", "customer", "supplier", "part", "lineorder"):
            raise KeyError(f"unknown SSB table {name!r}")
        return getattr(self, name)


def _days_in_month(year: int, month: int) -> int:
    if month == 2:
        return 29 if year % 4 == 0 else 28
    return 31 if month in (1, 3, 5, 7, 8, 10, 12) else 30


def _gen_date() -> dict[str, np.ndarray]:
    """The date dimension: one row per calendar day of 1992-1998."""
    datekey, year, month, day = [], [], [], []
    for y in schema.DATE_YEARS:
        for m in range(1, 13):
            for d in range(1, _days_in_month(y, m) + 1):
                datekey.append(y * 10_000 + m * 100 + d)
                year.append(y)
                month.append(m)
                day.append(d)
    datekey = np.array(datekey, dtype=np.int64)
    year = np.array(year, dtype=np.int64)
    month = np.array(month, dtype=np.int64)
    day = np.array(day, dtype=np.int64)
    day_of_epoch = np.arange(datekey.size, dtype=np.int64)
    day_of_year = _day_of_year(year, month, day)
    return {
        "d_datekey": datekey,
        "d_year": year,
        "d_monthnuminyear": month,
        "d_daynuminmonth": day,
        "d_yearmonthnum": year * 100 + month,
        "d_weeknuminyear": (day_of_year - 1) // 7 + 1,
        "d_daynuminweek": day_of_epoch % 7 + 1,
        "d_dayofepoch": day_of_epoch,
    }


def _day_of_year(year: np.ndarray, month: np.ndarray, day: np.ndarray) -> np.ndarray:
    doy = np.zeros(year.size, dtype=np.int64)
    for y in np.unique(year):
        cum = np.cumsum([0] + [_days_in_month(int(y), m) for m in range(1, 12)])
        sel = year == y
        doy[sel] = cum[month[sel] - 1] + day[sel]
    return doy


def _gen_customer(n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
    city = rng.integers(0, schema.NUM_CITIES, n)
    return {
        "c_custkey": np.arange(1, n + 1, dtype=np.int64),
        "c_city": city,
        "c_nation": city // schema.CITIES_PER_NATION,
        "c_region": city // (schema.CITIES_PER_NATION * schema.NATIONS_PER_REGION),
    }


def _gen_supplier(n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
    city = rng.integers(0, schema.NUM_CITIES, n)
    return {
        "s_suppkey": np.arange(1, n + 1, dtype=np.int64),
        "s_city": city,
        "s_nation": city // schema.CITIES_PER_NATION,
        "s_region": city // (schema.CITIES_PER_NATION * schema.NATIONS_PER_REGION),
    }


def _gen_part(n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
    brand = rng.integers(0, schema.NUM_BRANDS, n)
    category = brand // schema.BRANDS_PER_CATEGORY
    return {
        "p_partkey": np.arange(1, n + 1, dtype=np.int64),
        "p_brand1": brand,
        "p_category": category,
        "p_mfgr": category // schema.CATEGORIES_PER_MFGR,
        "p_color": rng.integers(0, 92, n),
        "p_size": rng.integers(1, 51, n),
        # Retail price in cents-free SSB style: ~90,000 .. 200,000.
        "p_price": rng.integers(90_000, 200_001, n),
    }


def generate(scale_factor: float = 0.1, seed: int = 42) -> SSBDatabase:
    """Generate a deterministic SSB database.

    Args:
        scale_factor: SSB SF; the paper runs SF=20 (120M lineorder rows),
            tests and benches here default far smaller.
        seed: RNG seed; same (sf, seed) always yields the same database.

    Returns:
        A fully populated :class:`SSBDatabase`.
    """
    rng = np.random.default_rng(seed)
    db = SSBDatabase(scale_factor=scale_factor)
    db.date = _gen_date()

    n_cust = max(100, int(schema.CUSTOMERS_PER_SF * scale_factor))
    n_supp = max(50, int(schema.SUPPLIERS_PER_SF * scale_factor))
    n_part = schema.parts_for_sf(scale_factor)
    db.customer = _gen_customer(n_cust, rng)
    db.supplier = _gen_supplier(n_supp, rng)
    db.part = _gen_part(n_part, rng)

    n_orders = max(100, int(schema.ORDERS_PER_SF * scale_factor))
    db.lineorder = _gen_lineorder(db, n_orders, rng)
    return db


@dataclass
class StarDatabase:
    """A generic star schema: one fact table plus named dimensions.

    Duck-types the :class:`SSBDatabase` surface the engine layer
    consumes (``num_lineorder_rows``, ``table``), so a
    :class:`~repro.engine.crystal.CrystalEngine` — and everything above
    it — runs unmodified over non-SSB stars.
    """

    name: str
    scale_factor: float
    fact_name: str
    fact: dict[str, np.ndarray] = field(default_factory=dict)
    dimensions: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)

    @property
    def num_lineorder_rows(self) -> int:
        first = next(iter(self.fact.values()))
        return int(first.size)

    def table(self, name: str) -> dict[str, np.ndarray]:
        """Look a table up by name (the fact table or a dimension)."""
        if name == self.fact_name:
            return self.fact
        if name in self.dimensions:
            return self.dimensions[name]
        raise KeyError(f"unknown {self.name} table {name!r}")


#: TPC-DS subset sizing knobs (per unit scale factor).
TPCDS_YEARS = range(1998, 2003)
TPCDS_ITEMS_PER_SF = 20_000
TPCDS_STORES_PER_SF = 500
TPCDS_TICKETS_PER_SF = 400_000
_TPCDS_MAX_LINES_PER_TICKET = 8


def _gen_tpcds_date() -> dict[str, np.ndarray]:
    """``date_dim``: one row per calendar day, dense surrogate keys."""
    year, moy, dom = [], [], []
    for y in TPCDS_YEARS:
        for m in range(1, 13):
            for d in range(1, _days_in_month(y, m) + 1):
                year.append(y)
                moy.append(m)
                dom.append(d)
    year = np.array(year, dtype=np.int64)
    return {
        "d_date_sk": np.arange(1, year.size + 1, dtype=np.int64),
        "d_year": year,
        "d_moy": np.array(moy, dtype=np.int64),
        "d_dom": np.array(dom, dtype=np.int64),
        "d_qoy": (np.array(moy, dtype=np.int64) - 1) // 3 + 1,
    }


def generate_tpcds_subset(
    scale_factor: float = 0.01, seed: int = 42
) -> StarDatabase:
    """Generate a deterministic TPC-DS-subset star.

    ``store_sales`` fact with ``date_dim`` / ``item`` / ``store``
    dimensions — the minimal star the retail-sales TPC-DS queries (q3,
    q42, q55, ...) touch.  Hierarchies are generated as dictionary codes
    in the SSB style (brand -> category, county -> state), and tickets
    repeat their date/store across lines so ``ss_sold_date_sk`` and
    ``ss_store_sk`` carry SSB-like run lengths for the run-aware codecs.
    """
    rng = np.random.default_rng(seed)
    date_dim = _gen_tpcds_date()

    n_items = max(100, int(TPCDS_ITEMS_PER_SF * scale_factor))
    brand = rng.integers(0, 100, n_items)
    item = {
        "i_item_sk": np.arange(1, n_items + 1, dtype=np.int64),
        "i_brand": brand,
        "i_category": brand // 10,
        "i_class": rng.integers(0, 50, n_items),
        "i_current_price": rng.integers(100, 10_001, n_items),
    }

    n_stores = max(20, int(TPCDS_STORES_PER_SF * scale_factor))
    county = rng.integers(0, 100, n_stores)
    store = {
        "s_store_sk": np.arange(1, n_stores + 1, dtype=np.int64),
        "s_county": county,
        "s_state": county // 5,
        "s_market_id": rng.integers(0, 10, n_stores),
    }

    n_tickets = max(100, int(TPCDS_TICKETS_PER_SF * scale_factor))
    lines_per_ticket = rng.integers(1, _TPCDS_MAX_LINES_PER_TICKET + 1, n_tickets)
    n = int(lines_per_ticket.sum())
    ticket_of_line = np.repeat(np.arange(n_tickets), lines_per_ticket)

    ticket_date = rng.integers(1, date_dim["d_date_sk"].size + 1, n_tickets)
    ticket_store = rng.integers(1, n_stores + 1, n_tickets)
    item_sk = rng.integers(1, n_items + 1, n)
    quantity = rng.integers(1, 101, n)
    list_price = item["i_current_price"][item_sk - 1]
    # Sales price discounts the list price by 0-50%; wholesale sits
    # below it, so the "sub" profit measure stays meaningful.
    sales_price = list_price * (100 - rng.integers(0, 51, n)) // 100
    wholesale = list_price * rng.integers(40, 81, n) // 100

    fact = {
        "ss_sold_date_sk": ticket_date[ticket_of_line].astype(np.int64),
        "ss_item_sk": item_sk.astype(np.int64),
        "ss_store_sk": ticket_store[ticket_of_line].astype(np.int64),
        "ss_quantity": quantity.astype(np.int64),
        "ss_list_price": list_price.astype(np.int64),
        "ss_sales_price": sales_price.astype(np.int64),
        "ss_ext_sales_price": (quantity * sales_price).astype(np.int64),
        "ss_wholesale_cost": wholesale.astype(np.int64),
        "ss_ext_wholesale_cost": (quantity * wholesale).astype(np.int64),
    }
    return StarDatabase(
        name="tpcds-subset",
        scale_factor=scale_factor,
        fact_name="store_sales",
        fact=fact,
        dimensions={"date_dim": date_dim, "item": item, "store": store},
    )


def sort_lineorder_by(db: SSBDatabase, column: str = "lo_orderdate") -> SSBDatabase:
    """Return a copy of ``db`` with lineorder rows sorted by one column.

    dbgen draws each order's date independently, so ``lo_orderdate``
    arrives unclustered and zone-map pruning can skip almost nothing.
    Real warehouses ingest roughly in date order; this reorders the fact
    table to that layout (a stable sort, so ties keep generation order).
    Every lineorder column is permuted together and dimension tables are
    untouched, hence all SSB aggregates — which are row-order invariant —
    return bit-identical results on the sorted database.
    """
    if column not in db.lineorder:
        raise KeyError(f"unknown lineorder column {column!r}")
    order = np.argsort(db.lineorder[column], kind="stable")
    return SSBDatabase(
        scale_factor=db.scale_factor,
        date=db.date,
        customer=db.customer,
        supplier=db.supplier,
        part=db.part,
        lineorder={name: vals[order] for name, vals in db.lineorder.items()},
    )


def _gen_lineorder(
    db: SSBDatabase, n_orders: int, rng: np.random.Generator
) -> dict[str, np.ndarray]:
    lines_per_order = rng.integers(
        schema.MIN_LINES_PER_ORDER, schema.MAX_LINES_PER_ORDER + 1, n_orders
    )
    n = int(lines_per_order.sum())
    order_of_line = np.repeat(np.arange(n_orders), lines_per_order)

    datekeys = db.date["d_datekey"]
    n_cust = db.customer["c_custkey"].size
    n_supp = db.supplier["s_suppkey"].size
    n_part = db.part["p_partkey"].size

    # Per-order attributes: repeated across the order's lines, which is
    # exactly what gives lo_orderdate / lo_custkey / lo_ordtotalprice
    # their high average run length (Section 9.4).
    order_date_idx = rng.integers(0, datekeys.size, n_orders)
    order_custkey = rng.integers(1, n_cust + 1, n_orders)

    # Per-line attributes.
    partkey = rng.integers(1, n_part + 1, n)
    suppkey = rng.integers(1, n_supp + 1, n)
    quantity = rng.integers(1, 51, n)
    discount = rng.integers(0, 11, n)
    tax = rng.integers(0, 9, n)
    price = db.part["p_price"][partkey - 1]
    extendedprice = quantity * price
    revenue = extendedprice * (100 - discount) // 100
    supplycost = 6 * price // 10 + rng.integers(0, 10_000, n)

    # Commit date: 30-90 days after the order date, clamped to the range.
    commit_idx = np.minimum(
        order_date_idx[order_of_line] + rng.integers(30, 91, n), datekeys.size - 1
    )

    # Order total price: the sum of the order's extended prices.
    ordtotal = np.bincount(order_of_line, weights=extendedprice, minlength=n_orders)
    ordtotal = ordtotal.astype(np.int64)

    line_number = _line_numbers(lines_per_order)

    return {
        "lo_orderkey": (order_of_line + 1).astype(np.int64),
        "lo_linenumber": line_number,
        "lo_custkey": order_custkey[order_of_line].astype(np.int64),
        "lo_partkey": partkey.astype(np.int64),
        "lo_suppkey": suppkey.astype(np.int64),
        "lo_orderdate": datekeys[order_date_idx[order_of_line]],
        "lo_ordtotalprice": ordtotal[order_of_line],
        "lo_quantity": quantity.astype(np.int64),
        "lo_extendedprice": extendedprice.astype(np.int64),
        "lo_discount": discount.astype(np.int64),
        "lo_revenue": revenue.astype(np.int64),
        "lo_supplycost": supplycost.astype(np.int64),
        "lo_tax": tax.astype(np.int64),
        "lo_commitdate": datekeys[commit_idx],
    }


def _line_numbers(lines_per_order: np.ndarray) -> np.ndarray:
    """1, 2, ..., k within each order, concatenated."""
    n = int(lines_per_order.sum())
    offsets = np.zeros(lines_per_order.size, dtype=np.int64)
    np.cumsum(lines_per_order[:-1], out=offsets[1:])
    return np.arange(n, dtype=np.int64) - np.repeat(offsets, lines_per_order) + 1
