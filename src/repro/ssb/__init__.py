"""Star Schema Benchmark substrate: deterministic dbgen + column loading."""

from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.loader import (
    SYSTEMS,
    ColumnStore,
    StoredColumn,
    compress_column,
    load_lineorder,
)

__all__ = [
    "SSBDatabase",
    "SYSTEMS",
    "ColumnStore",
    "StoredColumn",
    "compress_column",
    "generate",
    "load_lineorder",
]
