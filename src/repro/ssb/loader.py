"""Column-store loading: compress SSB columns under each system's scheme.

This is the Figure 9 machinery: every lineorder column is compressed with
each competing system's best configuration —

* ``none`` / ``omnisci``: raw 4-byte integers (OmniSci's only compression
  is the dictionary encoding already applied to strings at generation);
* ``gpu-star``: per-column best of GPU-FOR / GPU-DFOR / GPU-RFOR;
* ``gpu-bp``: single-layer bit-packing (Mallia et al.);
* ``planner``: the Fang et al. cascade planner;
* ``nvcomp``: nvCOMP's cascade auto-selector.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.hybrid import choose_gpu_star
from repro.core.nvcomp import encode_nvcomp
from repro.core.planner import plan_column
from repro.formats.registry import get_codec
from repro.ssb.dbgen import SSBDatabase, StarDatabase
from repro.ssb.schema import LINEORDER_COLUMNS

#: Systems Figure 9 / Figure 11 compare.
SYSTEMS = ("none", "planner", "gpu-bp", "nvcomp", "gpu-star", "omnisci")


@dataclass
class StoredColumn:
    """One lineorder column as stored by one system."""

    name: str
    system: str
    #: Decoded values (the engine's correctness path).
    values: np.ndarray
    #: System-specific compressed representation (None for raw storage).
    payload: Any
    #: Compressed footprint in bytes.
    nbytes: int
    #: Codec name for tile-decodable payloads ("" otherwise).
    codec_name: str = ""
    #: Codec tier ("hot" / "warm" / "cold") the tiering manager maintains.
    tier: str = "warm"
    #: Monotone publish epoch: bumped by every atomic swap and flush, so
    #: an off-path re-encode can detect that a flush won the race.
    epoch: int = 0
    #: On-disk container path for cold columns spilled out of memory.
    spill_path: Any = None


@dataclass
class ColumnStore:
    """All lineorder columns under one system's compression."""

    system: str
    columns: dict[str, StoredColumn]
    #: Serializes atomic column swaps (readers stay lock-free: they take
    #: one object snapshot via ``store[name]`` and never see a torn mix).
    _swap_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def total_bytes(self) -> int:
        return sum(c.nbytes for c in self.columns.values())

    def __getitem__(self, name: str) -> StoredColumn:
        return self.columns[name]

    def swap_column(
        self, name: str, new: StoredColumn, expected_epoch: int | None = None
    ) -> StoredColumn | None:
        """Atomically publish ``new`` as the stored image of ``name``.

        The whole :class:`StoredColumn` object is replaced in one dict
        store, so a concurrent reader holding the old object keeps a
        self-consistent (values, payload, codec_name) triple and a reader
        fetching after the swap sees only the new one — never a torn mix.

        Args:
            name: column to replace (must already exist).
            new: replacement image; its ``epoch`` is assigned here.
            expected_epoch: if given, the swap aborts (returns ``None``)
                unless the current epoch still matches — the compare-and-
                swap a background re-encode uses so a racing flush wins.

        Returns:
            The previous :class:`StoredColumn`, or ``None`` if the epoch
            check failed.
        """
        with self._swap_lock:
            old = self.columns[name]
            if expected_epoch is not None and old.epoch != expected_epoch:
                return None
            new.epoch = old.epoch + 1
            self.columns[name] = new
            return old

    def place_on_device(self, pool, device, columns=None) -> float:
        """Admit columns' compressed images into a serving ColumnPool.

        This is the enforced form of "load the store onto the GPU": each
        missing column is admitted as a ``compressed`` pool resident
        (evicting reconstructible images under pressure) and charged as a
        host→device PCIe transfer.  A column larger than the pool's whole
        budget — which previously "loaded" without complaint — raises
        :class:`~repro.serving.pool.PoolAdmissionError`.

        Args:
            pool: the :class:`~repro.serving.pool.ColumnPool` owning the
                device byte budget.
            device: simulated GPU to account transfers on.
            columns: column names to place (default: every column).

        Returns:
            Simulated transfer milliseconds spent on pool misses.
        """
        total_ms = 0.0
        for name in columns if columns is not None else self.columns:
            col = self.columns[name]
            key = f"compressed/{name}"
            if pool.get(key) is not None:
                continue
            payload = col.payload
            if payload is None and col.spill_path is not None:
                payload = self.ensure_payload(name)
            pool.admit(
                key,
                col.nbytes,
                kind="compressed",
                payload=payload,
                reconstruct_cost_ms=device.spec.pcie.transfer_ms(col.nbytes),
            )
            total_ms += device.transfer_to_device(col.nbytes)
        return total_ms

    def ensure_payload(self, name: str):
        """Reload a spilled column's payload from its on-disk container.

        Cold columns spilled by the tiering manager keep only a
        ``spill_path``; the first touch after a demotion reads the
        versioned container back and re-wraps the nvCOMP layering
        recorded in its metadata.  The reloaded payload is cached on the
        stored column, so repeat touches are free.
        """
        col = self.columns[name]
        if col.payload is not None or col.spill_path is None:
            return col.payload
        from repro.core.nvcomp import NvCompColumn
        from repro.formats.container import load_container

        inner = load_container(col.spill_path, column=name)
        scheme = inner.meta.get("nvcomp_scheme")
        if scheme:
            payload = NvCompColumn(
                scheme=scheme,
                inner=inner,
                chunk_metadata_bytes=int(inner.meta.get("nvcomp_chunk_meta", 0)),
            )
        else:
            payload = inner
        col.payload = payload
        return payload


def compress_column(name: str, values: np.ndarray, system: str) -> StoredColumn:
    """Compress one column the way ``system`` would store it."""
    values = np.asarray(values, dtype=np.int64)
    if system in ("none", "omnisci"):
        return StoredColumn(name, system, values, None, values.size * 4)
    if system == "gpu-star":
        choice = choose_gpu_star(values)
        # Corruption reports carry the logical column name.
        choice.encoded.meta.setdefault("column", name)
        return StoredColumn(
            name,
            system,
            values,
            choice.encoded,
            choice.encoded.nbytes,
            codec_name=choice.codec_name,
        )
    if system == "gpu-bp":
        enc = get_codec("gpu-bp").encode(values)
        enc.meta.setdefault("column", name)
        return StoredColumn(name, system, values, enc, enc.nbytes, codec_name="gpu-bp")
    if system == "planner":
        planned = plan_column(values)
        return StoredColumn(name, system, values, planned, planned.nbytes)
    if system == "nvcomp":
        col = encode_nvcomp(values)
        return StoredColumn(name, system, values, col, col.nbytes)
    raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")


def load_lineorder(db: SSBDatabase, system: str) -> ColumnStore:
    """Compress every lineorder column under ``system``."""
    columns = {
        name: compress_column(name, db.lineorder[name], system)
        for name in LINEORDER_COLUMNS
    }
    return ColumnStore(system=system, columns=columns)


def load_star(db: StarDatabase, system: str) -> ColumnStore:
    """Compress every fact column of a generic star under ``system``."""
    columns = {
        name: compress_column(name, values, system)
        for name, values in db.fact.items()
    }
    return ColumnStore(system=system, columns=columns)
