"""Star Schema Benchmark schema constants.

SSB (O'Neil et al.) is a star-schema simplification of TPC-H: one fact
table ``lineorder`` and four dimensions ``date``, ``customer``,
``supplier``, ``part``.  The constants here follow the SSB specification's
cardinalities and value domains; string-valued attributes are represented
directly as dictionary codes (the paper dictionary-encodes all strings
before loading, Section 9.4).
"""

from __future__ import annotations

#: Rows in the date dimension: 1992-01-01 .. 1998-12-31.
DATE_YEARS = tuple(range(1992, 1999))

#: Base cardinalities at scale factor 1.
CUSTOMERS_PER_SF = 30_000
SUPPLIERS_PER_SF = 2_000
ORDERS_PER_SF = 1_500_000
PARTS_BASE = 200_000

#: Lines per order are uniform on [1, 7] (TPC-H heritage).
MIN_LINES_PER_ORDER = 1
MAX_LINES_PER_ORDER = 7

#: Geography: 5 regions x 5 nations x 10 cities.
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATIONS_PER_REGION = 5
CITIES_PER_NATION = 10
NUM_NATIONS = len(REGIONS) * NATIONS_PER_REGION
NUM_CITIES = NUM_NATIONS * CITIES_PER_NATION

#: Part hierarchy: 5 manufacturers x 5 categories x 40 brands.
NUM_MFGRS = 5
CATEGORIES_PER_MFGR = 5
BRANDS_PER_CATEGORY = 40
NUM_CATEGORIES = NUM_MFGRS * CATEGORIES_PER_MFGR
NUM_BRANDS = NUM_CATEGORIES * BRANDS_PER_CATEGORY

#: lineorder columns in the Figure 9 presentation order.
LINEORDER_COLUMNS = (
    "lo_orderkey",
    "lo_orderdate",
    "lo_ordtotalprice",
    "lo_custkey",
    "lo_partkey",
    "lo_suppkey",
    "lo_linenumber",
    "lo_quantity",
    "lo_tax",
    "lo_discount",
    "lo_commitdate",
    "lo_extendedprice",
    "lo_revenue",
    "lo_supplycost",
)


def nation_of_city(city: int) -> int:
    """Nation code of a city code."""
    return city // CITIES_PER_NATION


def region_of_nation(nation: int) -> int:
    """Region code of a nation code."""
    return nation // NATIONS_PER_REGION


def category_of_brand(brand: int) -> int:
    """Category code of a brand code."""
    return brand // BRANDS_PER_CATEGORY


def mfgr_of_category(category: int) -> int:
    """Manufacturer code of a category code."""
    return category // CATEGORIES_PER_MFGR


def parts_for_sf(scale_factor: float) -> int:
    """Part-table cardinality: 200k * (1 + log2(SF)), floored at 20k."""
    import math

    if scale_factor <= 0:
        raise ValueError(f"scale_factor must be positive, got {scale_factor}")
    if scale_factor <= 1:
        return max(20_000, int(PARTS_BASE * scale_factor) or 20_000)
    return int(PARTS_BASE * (1 + math.log2(scale_factor)))
