"""Synthetic workload generators for the paper's microbenchmarks."""

from repro.workloads.synthetic import (
    D1_UNIQUE_COUNTS,
    D2_MEANS,
    D3_ALPHAS,
    FIG7_BITWIDTHS,
    d1_sorted,
    d2_normal,
    d3_zipf,
    runs,
    sorted_keys,
    uniform_bitwidth,
)

__all__ = [
    "D1_UNIQUE_COUNTS",
    "D2_MEANS",
    "D3_ALPHAS",
    "FIG7_BITWIDTHS",
    "d1_sorted",
    "d2_normal",
    "d3_zipf",
    "runs",
    "sorted_keys",
    "uniform_bitwidth",
]
