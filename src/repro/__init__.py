"""repro — Tile-based Lightweight Integer Compression in GPU (SIGMOD 2022).

A full Python reproduction of Shanbhag, Yogatama, Yu & Madden's paper:
bit-exact implementations of the GPU-FOR / GPU-DFOR / GPU-RFOR compression
formats, the tile-based single-pass decompression model, a Crystal-style
tile-based query engine with inline decompression, all evaluated baselines
(NSF, NSV, RLE, GPU-BP, GPU-SIMDBP128, the Fang et al. planner, an nvCOMP
model, an OmniSci model), an SSB data generator, and a deterministic GPU
performance simulator standing in for the paper's V100 (see DESIGN.md).

Quickstart::

    import numpy as np
    from repro import GpuFor, GPUDevice, decompress

    data = np.random.default_rng(0).integers(0, 2**16, 1_000_000)
    enc = GpuFor().encode(data)
    print(f"{enc.bits_per_int:.2f} bits/int")  # ~16.75

    device = GPUDevice()
    report = decompress(enc, device)            # one simulated kernel pass
    assert np.array_equal(report.values, data)
    print(f"{report.simulated_ms:.3f} simulated ms")
"""

from repro.core import (
    ColumnStats,
    DecompressionReport,
    choose_gpu_star,
    decompress,
    decompress_cascaded,
    decompress_nvcomp,
    decompress_planned,
    encode_nvcomp,
    heuristic_scheme,
    plan_column,
    read_uncompressed,
)
from repro.engine import QUERIES, CrystalEngine, QueryResult
from repro.formats import (
    ColumnCodec,
    EncodedColumn,
    GpuBp,
    GpuDFor,
    GpuFor,
    GpuRFor,
    GpuSimdBp128,
    Nsf,
    Nsv,
    Rle,
    TileCodec,
    codec_names,
    get_codec,
)
from repro.gpusim import A100, V100, GPUDevice, GPUSpec
from repro.serving import ColumnPool, PoolAdmissionError, QueryServer
from repro.ssb import generate as generate_ssb
from repro.ssb import load_lineorder

__version__ = "1.0.0"

__all__ = [
    "A100",
    "ColumnCodec",
    "ColumnPool",
    "ColumnStats",
    "CrystalEngine",
    "DecompressionReport",
    "EncodedColumn",
    "GPUDevice",
    "GPUSpec",
    "GpuBp",
    "GpuDFor",
    "GpuFor",
    "GpuRFor",
    "GpuSimdBp128",
    "Nsf",
    "Nsv",
    "PoolAdmissionError",
    "QUERIES",
    "QueryResult",
    "QueryServer",
    "Rle",
    "TileCodec",
    "V100",
    "choose_gpu_star",
    "codec_names",
    "decompress",
    "decompress_cascaded",
    "decompress_nvcomp",
    "decompress_planned",
    "encode_nvcomp",
    "generate_ssb",
    "get_codec",
    "heuristic_scheme",
    "load_lineorder",
    "plan_column",
    "read_uncompressed",
]
