"""E2 — Figure 5: decompression time vs blocks per thread block (D).

The paper sweeps D in {1, 2, 4, 8, 16, 32} decoding 500M uniform 16-bit
integers: the big win is D=1 -> 4, improvements are marginal to D=16, and
D=32 collapses because shared-memory demand crushes occupancy and
registers spill.  The same resource arithmetic drives the simulator, so
the U-shape reproduces mechanically.
"""

from __future__ import annotations

from repro.core.tile_decompress import decompress
from repro.experiments.common import DEFAULT_N, PAPER_N_LADDER, print_experiment
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.workloads.synthetic import uniform_bitwidth

#: D values Figure 5 sweeps.
D_VALUES = (1, 2, 4, 8, 16, 32)


def run(n: int = DEFAULT_N, seed: int = 0) -> list[dict]:
    """Sweep D at ``n`` elements, projected to 500M."""
    data = uniform_bitwidth(16, n, seed)
    scale = PAPER_N_LADDER / n
    rows = []
    for d in D_VALUES:
        device = GPUDevice()
        enc = get_codec("gpu-for", d_blocks=d).encode(data)
        report = decompress(enc, device, write_back=False)
        launch = device.launches[-1]
        rows.append(
            {
                "D": d,
                "simulated_ms": report.scaled_ms(scale),
                "occupancy": launch.occupancy.occupancy,
                "spilled_regs": launch.occupancy.spilled_registers,
                "limiter": launch.occupancy.limiter,
            }
        )
    return rows


def main() -> None:
    print_experiment("E2: Figure 5 — decompression time vs D (500M ints, b=16)", run())


if __name__ == "__main__":
    main()
