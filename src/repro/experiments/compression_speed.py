"""E15 — Section 8: compression (encode) speed on the CPU.

Compression is a one-time, host-side activity; the paper compresses 250M
random entries on a 6-core CPU in ~1.2 s (GPU-FOR), ~1.3 s (GPU-DFOR) and
~2.2 s (GPU-RFOR — the scheme does extra work on run-free data).  This
experiment measures our NumPy encoders' wall-clock throughput and projects
a 250M-entry time.  Absolute times differ (vectorized Python vs the
authors' native encoder); the shape to check is the *ordering*: RFOR is
the slowest on run-free random data.
"""

from __future__ import annotations

import time

from repro.experiments.common import print_experiment
from repro.formats.registry import get_codec
from repro.workloads.synthetic import uniform_bitwidth

#: Paper's encode seconds for 250M random entries.
PAPER_SECONDS = {"gpu-for": 1.2, "gpu-dfor": 1.3, "gpu-rfor": 2.2}
PAPER_N = 250_000_000


def run(n: int = 1_000_000, seed: int = 0, repeats: int = 1) -> list[dict]:
    """Measure encode wall-clock for the three schemes on random data."""
    data = uniform_bitwidth(16, n, seed)
    rows = []
    for name in ("gpu-for", "gpu-dfor", "gpu-rfor"):
        codec = get_codec(name)
        codec.encode(data[: min(n, 10_000)])  # warm caches before timing
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            codec.encode(data)
            best = min(best, time.perf_counter() - start)
        rows.append(
            {
                "scheme": name,
                "encode_s": best,
                "million_entries_per_s": n / best / 1e6,
                "projected_250M_s": best * PAPER_N / n,
                "paper_250M_s": PAPER_SECONDS[name],
            }
        )
    return rows


def main() -> None:
    print_experiment("E15: Section 8 — compression speed (wall clock)", run())


if __name__ == "__main__":
    main()
