"""Related-work comparison: the Section 2.2 CPU-heritage codecs.

The paper's related work surveys VByte, PFOR, and Simple-N and argues
bit-aligned packing (GPU-FOR) dominates on the GPU; Mallia et al. shipped
GPU-VByte but the paper compares only against GPU-BP "since it has
superior compression ratio and decompression performance".  This
experiment puts the implemented related-work codecs next to GPU-FOR on
the Figure 8-style distributions so those two editorial choices can be
checked:

* GPU-BP should beat GPU-VByte on both ratio and decode speed;
* GPU-FOR should at least match PFOR / Simple-8b on ratio while decoding
  in a single inline-able pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.cascade import decompress_cascaded
from repro.core.tile_decompress import decompress
from repro.experiments.common import PAPER_N_FIG7, print_experiment
from repro.formats.base import TileCodec
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.workloads.synthetic import d3_zipf, runs, uniform_bitwidth

#: Codecs compared (tile codecs decode single-pass, others cascade).
CODECS = ("gpu-for", "gpu-bp", "gpu-vbyte", "pfor", "simple8b")


def _datasets(n: int, seed: int) -> dict[str, np.ndarray]:
    skewed = uniform_bitwidth(12, n, seed).copy()
    skewed[:: 509] = 2**27  # one outlier every ~4 blocks
    return {
        "uniform-16bit": uniform_bitwidth(16, n, seed),
        "zipf-a1.5": d3_zipf(1.5, n, seed=seed),
        "runs-avg8": runs(8, n, distinct=5000, seed=seed),
        "skewed-outliers": skewed,
    }


def run(n: int = 400_000, seed: int = 0) -> list[dict]:
    """Rate and decode time for every codec on every dataset."""
    scale = PAPER_N_FIG7 / n
    rows = []
    for dataset, data in _datasets(n, seed).items():
        row: dict = {"dataset": dataset}
        for name in CODECS:
            codec = get_codec(name)
            enc = codec.encode(data)
            device = GPUDevice()
            if isinstance(codec, TileCodec):
                report = decompress(enc, device, write_back=True)
            else:
                report = decompress_cascaded(enc, device)
            assert np.array_equal(
                report.values.astype(np.int64), data.astype(np.int64)
            )
            row[f"rate {name}"] = enc.bits_per_int
            row[f"time {name}"] = report.scaled_ms(scale)
        rows.append(row)
    return rows


def rate_rows(rows: list[dict]) -> list[dict]:
    return [
        {"dataset": r["dataset"], **{c: r[f"rate {c}"] for c in CODECS}}
        for r in rows
    ]


def time_rows(rows: list[dict]) -> list[dict]:
    return [
        {"dataset": r["dataset"], **{c: r[f"time {c}"] for c in CODECS}}
        for r in rows
    ]


def main() -> None:
    rows = run()
    print_experiment("Related work — compression rate (bits/int)", rate_rows(rows))
    print_experiment(
        "Related work — decompression time (ms, 250M-projected)", time_rows(rows)
    )


if __name__ == "__main__":
    main()
