"""Shared experiment-harness utilities.

Every experiment module exposes ``run(...) -> list[dict]`` returning the
rows/series the corresponding paper table or figure reports, plus a
``main()`` that prints them as an aligned text table.  Experiments run at
a reduced element count and project simulated times to the paper's
250M/500M-element datasets via the launch-overhead-aware ``scaled_ms``
helpers.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

#: Element counts the paper's microbenchmarks use.
PAPER_N_LADDER = 500_000_000
PAPER_N_FIG7 = 250_000_000

#: Default reduced element count for experiment runs (projected up).
DEFAULT_N = 2_000_000

#: Default SSB scale factors: the paper runs SF=20.
PAPER_SF = 20.0
DEFAULT_SF = 0.05


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (ignores non-positive values by flooring at 1e-12)."""
    vals = [max(float(v), 1e-12) for v in values]
    if not vals:
        raise ValueError("geomean of no values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render rows as an aligned text table (floats to 3 significant-ish)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
        return str(value)

    grid = [[cell(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in grid)) for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in grid)
    return f"{header}\n{sep}\n{body}"


def print_experiment(title: str, rows: Sequence[dict], columns=None) -> None:
    """Print one experiment's rows under a banner."""
    print(f"\n== {title} ==")
    print(format_table(rows, columns))
