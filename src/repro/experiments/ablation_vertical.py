"""E3 — Section 4.3: horizontal (GPU-FOR) vs vertical (GPU-SIMDBP128).

Two paper measurements:

* decode microbenchmark on 500M uniform 16-bit values: GPU-FOR with D=16
  takes 1.55 ms, GPU-SIMDBP128 4.3 ms — 2.7x slower, because decoding the
  vertical layout needs 32 packed words + 32 outputs live per thread,
  which spills registers and collapses occupancy;
* SSB q1.1 with the four columns encoded GPU-SIMDBP128 runs **14x**
  slower than with GPU-FOR.
"""

from __future__ import annotations

from repro.core.tile_decompress import decompress
from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.experiments.common import DEFAULT_N, DEFAULT_SF, PAPER_N_LADDER, PAPER_SF, print_experiment
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.ssb.dbgen import generate
from repro.ssb.loader import ColumnStore, StoredColumn
from repro.workloads.synthetic import uniform_bitwidth


def run_decode(n: int = DEFAULT_N, seed: int = 0) -> list[dict]:
    """Decode microbenchmark (paper: 1.55 ms vs 4.3 ms, 2.7x)."""
    data = uniform_bitwidth(16, n, seed)
    scale = PAPER_N_LADDER / n
    rows = []
    for label, codec in (
        ("GPU-FOR (D=16)", get_codec("gpu-for", d_blocks=16)),
        ("GPU-SIMDBP128", get_codec("gpu-simdbp128")),
    ):
        enc = codec.encode(data)
        device = GPUDevice()
        report = decompress(enc, device, write_back=False)
        launch = device.launches[-1]
        rows.append(
            {
                "scheme": label,
                "simulated_ms": report.scaled_ms(scale),
                "occupancy": launch.occupancy.occupancy,
                "spilled_regs": launch.occupancy.spilled_registers,
            }
        )
    rows.append(
        {
            "scheme": "vertical/horizontal ratio",
            "simulated_ms": rows[1]["simulated_ms"] / rows[0]["simulated_ms"],
            "occupancy": float("nan"),
            "spilled_regs": 0,
        }
    )
    return rows


def run_query(sf: float = DEFAULT_SF) -> list[dict]:
    """SSB q1.1 with vertical vs horizontal encodings (paper: 14x)."""
    db = generate(scale_factor=sf)
    scale = PAPER_SF / sf
    query = QUERIES["q1.1"]
    times = {}
    for label, codec_name in (("GPU-FOR", "gpu-for"), ("GPU-SIMDBP128", "gpu-simdbp128")):
        codec = get_codec(codec_name)
        columns = {}
        for col in query.columns:
            values = db.lineorder[col]
            enc = codec.encode(values)
            columns[col] = StoredColumn(
                col, "gpu-star", values, enc, enc.nbytes, codec_name=codec_name
            )
        # Unused columns stay raw; q1.1 never loads them.
        for col, values in db.lineorder.items():
            columns.setdefault(
                col, StoredColumn(col, "gpu-star", values, None, values.size * 4)
            )
        store = ColumnStore(system="gpu-star", columns=columns)
        engine = CrystalEngine(db, store, GPUDevice())
        times[label] = engine.run(query).scaled_ms(scale)
    return [
        {"encoding": label, "q1.1_ms": ms} for label, ms in times.items()
    ] + [
        {"encoding": "slowdown", "q1.1_ms": times["GPU-SIMDBP128"] / times["GPU-FOR"]}
    ]


def main() -> None:
    print_experiment(
        "E3a: Section 4.3 — decode, vertical vs horizontal (paper 2.7x)", run_decode()
    )
    print_experiment(
        "E3b: Section 4.3 — SSB q1.1, vertical vs horizontal (paper 14x)", run_query()
    )


if __name__ == "__main__":
    main()
