"""Morsel-streaming vs materialized execution (`repro run streaming`).

The engine's default host-side execution decodes each fact column into a
full-length image before filtering (column-at-a-time).  The streaming
executor runs the same fused plan the way the paper's kernels do
(Section 3/7): contiguous tile morsels are decoded into small per-worker
scratch buffers, filtered, probed and partially aggregated, and the
partials merge in deterministic morsel order.

For each SSB query this driver reports both paths' wall clock and peak
decoded-intermediate bytes, checks the answers agree bit for bit at
every worker count, and reports the worker-scaling of the fastest query.
"""

from __future__ import annotations

import time

from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.experiments.common import print_experiment
from repro.ssb.dbgen import SSBDatabase, generate, sort_lineorder_by
from repro.ssb.loader import load_lineorder

DEFAULT_QUERIES = ("q1.1", "q1.3", "q2.1", "q3.1", "q4.1")
DEFAULT_WORKERS = (1, 2, 8)


def _best_wall_ms(engine: CrystalEngine, query, reps: int) -> tuple[float, dict]:
    """Best-of-``reps`` wall clock with cold decoded data, warm metadata."""
    best = None
    groups = None
    for _ in range(reps):
        engine.evict_decoded()
        t0 = time.perf_counter()
        groups = engine.run(query).groups
        wall_ms = (time.perf_counter() - t0) * 1e3
        best = wall_ms if best is None else min(best, wall_ms)
    return best, groups


def run(
    db: SSBDatabase | None = None,
    scale_factor: float = 0.05,
    seed: int = 7,
    queries=DEFAULT_QUERIES,
    workers=DEFAULT_WORKERS,
    reps: int = 3,
) -> list[dict]:
    """Compare the two execution paths; returns one row per query."""
    if db is None:
        db = generate(scale_factor=scale_factor, seed=seed)
    db = sort_lineorder_by(db, "lo_orderdate")
    store = load_lineorder(db, "gpu-star")

    materialized = CrystalEngine(db, store)
    streamers = {
        w: CrystalEngine(db, store, streaming=True, stream_workers=w)
        for w in workers
    }

    rows = []
    for name in queries:
        query = QUERIES[name]
        mat_ms, mat_groups = _best_wall_ms(materialized, query, reps)
        # Peak decoded intermediates of the materialized path: every
        # loaded column's full int64 image is cache-resident at once.
        mat_peak = sum(
            materialized.column_values(c).nbytes
            for c in query.columns
            if materialized.column_inline(c)
        )
        stream_ms = {}
        stream_peak = 0
        for w, engine in streamers.items():
            ms, groups = _best_wall_ms(engine, query, reps)
            if groups != mat_groups:
                raise AssertionError(
                    f"streaming changed the answer for {name} at "
                    f"{w} workers: {groups} != {mat_groups}"
                )
            stream_ms[w] = ms
            stream_peak = max(
                stream_peak, engine.last_stream_stats["peak_decoded_bytes"]
            )
        best_stream = min(stream_ms.values())
        rows.append({
            "query": name,
            "wall_ms_materialized": mat_ms,
            **{f"wall_ms_stream_w{w}": ms for w, ms in stream_ms.items()},
            "wall_speedup": mat_ms / best_stream if best_stream else float("nan"),
            "peak_MB_materialized": mat_peak / 1e6,
            "peak_MB_stream": stream_peak / 1e6,
            "peak_ratio": mat_peak / stream_peak if stream_peak else float("nan"),
        })
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run()
    print_experiment(
        "Morsel streaming vs materialized execution (orderdate-sorted "
        "lineorder, GPU-* store; answers verified bit-identical)",
        [{k: (round(v, 3) if isinstance(v, float) else v) for k, v in r.items()}
         for r in rows],
    )
