"""Compiled declarative plans vs the hand-written SSB flights.

The query compiler turns a declarative star-schema ``Query`` spec into
the same streaming pipeline the hand-written flights in
``engine/ssb_queries.py`` build by hand: dimension predicates are
reduced to fact-FK ranges/in-sets, exact reductions drop their joins
outright, and every conjunct is pushed into the zone-map pass.  This
driver runs all 13 flights both ways on one streaming engine and
answers the two questions the compiler must get right:

* **identity** — every compiled flight returns bit-identical groups to
  its hand-written oracle (the run raises on any deviation); and
* **overhead** — the compiled plans' wall clock stays within a few
  percent of the hand plans' (``benchmarks/test_compiler.py`` pins the
  ratio at <= 1.05x into ``BENCH_compiler.json``).

Per-flight rows also surface what the planner did: dropped joins,
pushdown conjunct counts and surviving zone-map tiles, plus the
one-time compile cost.
"""

from __future__ import annotations

import time

from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.experiments.common import print_experiment
from repro.query.compiler import QueryCompiler
from repro.query.ssb import SSB_SPECS, ssb_model
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.loader import load_lineorder


def _best_of(engine: CrystalEngine, query, repeats: int) -> tuple[float, dict]:
    """Best wall-clock over ``repeats`` runs, plus the (stable) groups."""
    best_ms, groups = float("inf"), {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        groups = engine.run(query).groups
        best_ms = min(best_ms, (time.perf_counter() - t0) * 1e3)
    return best_ms, groups


def run(
    db: SSBDatabase | None = None,
    scale_factor: float = 0.05,
    seed: int = 7,
    workers: int = 4,
    repeats: int = 3,
) -> dict:
    """Run the 13-flight mix hand-written vs compiled; returns a summary.

    Raises ``AssertionError`` if any compiled flight's groups deviate
    from the hand-written plan's.
    """
    if db is None:
        db = generate(scale_factor=scale_factor, seed=seed)
    store = load_lineorder(db, "gpu-star")
    compiler = QueryCompiler(ssb_model(), db, store=store)

    compiled, compile_ms = {}, 0.0
    for name in QUERIES:
        t0 = time.perf_counter()
        compiled[name] = compiler.compile(SSB_SPECS[name])
        compile_ms += (time.perf_counter() - t0) * 1e3

    engine = CrystalEngine(db, store, streaming=True, stream_workers=workers)
    rows, mismatches = [], []
    for name in QUERIES:
        hand_ms, hand_groups = _best_of(engine, QUERIES[name], repeats)
        comp_ms, comp_groups = _best_of(engine, compiled[name], repeats)
        if comp_groups != hand_groups:
            mismatches.append(name)
        trace = compiled[name].trace
        rows.append({
            "query": name,
            "hand_ms": hand_ms,
            "compiled_ms": comp_ms,
            "overhead": comp_ms / hand_ms if hand_ms else float("inf"),
            "joins_dropped": sum(1 for j in trace["joins"] if j["dropped"]),
            "pushdown_conjuncts": len(trace["pushdown"]),
            "surviving_tiles": trace["surviving_tiles"],
            "total_tiles": trace["total_tiles"],
        })
    if mismatches:
        raise AssertionError(
            f"compiled flights deviated from the hand plans: {mismatches}"
        )

    hand_total = sum(r["hand_ms"] for r in rows)
    compiled_total = sum(r["compiled_ms"] for r in rows)
    return {
        "rows": rows,
        "num_queries": len(rows),
        "num_rows": int(db.num_lineorder_rows),
        "workers": workers,
        "repeats": repeats,
        "compile_ms_total": compile_ms,
        "hand_ms_total": hand_total,
        "compiled_ms_total": compiled_total,
        "overhead": compiled_total / hand_total if hand_total else float("inf"),
        "joins_dropped_total": sum(r["joins_dropped"] for r in rows),
        "pushdown_conjuncts_total": sum(r["pushdown_conjuncts"] for r in rows),
        "mismatches": len(mismatches),
    }


def summary_rows(summary: dict) -> list[dict]:
    """The one-line report row the extensions section renders."""
    return [
        {
            "queries": summary["num_queries"],
            "hand_ms": summary["hand_ms_total"],
            "compiled_ms": summary["compiled_ms_total"],
            "overhead": summary["overhead"],
            "compile_ms": summary["compile_ms_total"],
            "joins_dropped": summary["joins_dropped_total"],
            "pushdown_conjuncts": summary["pushdown_conjuncts_total"],
            "mismatches": summary["mismatches"],
        }
    ]


def main() -> None:  # pragma: no cover - CLI convenience
    summary = run()
    print_experiment(
        "Star-schema query compiler: declarative specs vs hand-written "
        "SSB flights (streaming GPU-* store; answers verified "
        "bit-identical)",
        [{k: (round(v, 3) if isinstance(v, float) else v) for k, v in r.items()}
         for r in summary["rows"]],
    )
    for row in summary_rows(summary):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
