"""Experiment drivers: one module per paper table/figure (see DESIGN.md
section 4 for the experiment index).  Each module exposes ``run(...)``
returning rows and a printable ``main()``."""

from repro.experiments import (
    ablation_miniblocks,
    ablation_vertical,
    compression_speed,
    fig5_blocks_per_tb,
    fig7_bitwidths,
    fig8_distributions,
    fig9_ssb_compression,
    fig10_decompression,
    fig11_ssb_queries,
    fig12_coprocessor,
    interconnect_sweep,
    lightweight_vs_entropy,
    multigpu_scaling,
    opt_ladder,
    planner_obsolete,
    pushdown_sweep,
    random_access,
    related_work,
    sensitivity_gpu,
    serving_workload,
)

__all__ = [
    "ablation_miniblocks",
    "ablation_vertical",
    "compression_speed",
    "fig10_decompression",
    "fig11_ssb_queries",
    "fig12_coprocessor",
    "fig5_blocks_per_tb",
    "fig7_bitwidths",
    "fig8_distributions",
    "fig9_ssb_compression",
    "interconnect_sweep",
    "lightweight_vs_entropy",
    "multigpu_scaling",
    "opt_ladder",
    "planner_obsolete",
    "pushdown_sweep",
    "random_access",
    "related_work",
    "sensitivity_gpu",
    "serving_workload",
]
