"""Workload-adaptive codec tiering: Zipf-skewed serving mix, X7.

The planner's static per-column codec choice (best compression ratio,
Section 8) is the right answer for a uniform workload — but serving
traffic is skewed: a handful of columns absorb most scans and point
lookups while the rest idle.  This driver pushes the same Zipf-skewed
scan+lookup mix through two otherwise identical
:class:`~repro.serving.scheduler.QueryServer` configurations over a
deliberately tight :class:`~repro.serving.pool.ColumnPool` budget:

* **static** — the planner's choice forever (tiering off);
* **adaptive** — :class:`~repro.serving.tiering.CodecTieringManager`
  re-encodes columns between tiers from decayed access heat: the hottest
  columns get the decode-cheapest codec plus a pinned decoded image
  (lookups become one coalesced gather instead of per-tile decodes, and
  scans take the uncompressed fast path), cooled columns drop to the
  nvCOMP entropy tier and spill their payload to an on-disk container.

The comparison is a **warm wall**: each mode serves a warmup prefix
first (the adaptive run converges — heat accumulates, re-encodes and
swaps land, the pool settles) and only the simulated serving clock of
the measured suffix is compared.  One-time adaptation cost is reported
separately (``reencode_ms`` is host-side work off the serving clock).
Answers are asserted bit-identical between the two modes on every
request, warmup included.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.engine.ssb_queries import make_flight1
from repro.experiments.common import print_experiment
from repro.serving.metrics import MetricsRegistry
from repro.serving.scheduler import QueryServer, ServeRequest
from repro.serving.tiering import TieringPolicy
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.loader import load_lineorder
from repro.ssb.schema import LINEORDER_COLUMNS

#: Scale factor the experiment generates when no database is supplied.
#: SF 0.05 is kernel-launch dominated; at 0.2 the decode and transfer
#: terms the tiers trade against are the actual cost drivers.
TIERING_SF = 0.2
#: Fraction of the request stream that is broad scans (rest: lookups).
SCAN_FRACTION = 0.15
#: Zipf exponent ranking columns by lookup popularity.
ZIPF_S = 2.0
#: Only the first N ranked columns ever receive lookups; the rest of the
#: table is dead weight the adaptive mode can demote and spill.
LOOKUP_CANDIDATES = 10
#: Point-lookup batch size — large enough that per-tile decode work,
#: not kernel launch overhead, dominates a compressed gather.
LOOKUP_BATCH = 16384
#: Columns the flight-1 scans read; they head the lookup ranking so the
#: workload's scan heat and lookup heat concentrate on the same hot set.
SCAN_COLUMNS = ("lo_extendedprice", "lo_quantity", "lo_orderdate", "lo_discount")


def build_workload(
    db: SSBDatabase,
    num_requests: int = 120,
    num_warmup: int = 36,
    seed: int = 13,
    lookup_batch: int = LOOKUP_BATCH,
) -> list[dict]:
    """A Zipf-skewed mix of flight-1 scans and point-lookup batches.

    Returned as request *specs* (kind + arguments), so each serving mode
    instantiates its own fresh :class:`ServeRequest` objects.  Lookup
    columns are drawn Zipf(:data:`ZIPF_S`)-ranked with the scan columns
    at the head — the top four columns absorb ~90 % of the lookups — and
    only the first :data:`LOOKUP_CANDIDATES` ranked columns are ever
    looked up: the deep tail idles forever (cold-tier candidates).

    The warmup prefix brackets its random mix with two deterministic
    catalog sweeps (one lookup per candidate column).  The opening sweep
    lands first-touch PCIe staging in the warmup wall for *both* modes;
    the closing sweep re-touches every candidate after the adaptive
    run's tier swaps have settled, so post-swap re-staging is paid
    before measurement starts and the measured suffix compares
    steady-state serving, not one-time placement.
    """
    rng = np.random.default_rng(seed)
    num_rows = db.num_lineorder_rows
    scans = [
        make_flight1("tier-scan-93", 19930101, 19931231, 1, 3, 0, 24),
        make_flight1("tier-scan-94", 19940101, 19941231, 4, 6, 26, 35),
    ]
    ranked = list(SCAN_COLUMNS) + [
        c for c in LINEORDER_COLUMNS if c not in SCAN_COLUMNS
    ]
    candidates = ranked[:LOOKUP_CANDIDATES]
    weights = 1.0 / np.arange(1, len(candidates) + 1) ** ZIPF_S
    weights /= weights.sum()

    def sweep() -> list[dict]:
        return [
            {
                "kind": "lookup",
                "column": column,
                "indices": rng.integers(0, num_rows, size=lookup_batch),
            }
            for column in candidates
        ]

    def mixed(count: int) -> list[dict]:
        out: list[dict] = []
        for i in range(count):
            if rng.random() < SCAN_FRACTION:
                out.append({"kind": "query", "query": scans[i % len(scans)]})
            else:
                column = candidates[int(rng.choice(len(candidates), p=weights))]
                indices = rng.integers(0, num_rows, size=lookup_batch)
                out.append(
                    {"kind": "lookup", "column": column, "indices": indices}
                )
        return out

    body = num_warmup - 2 * len(candidates)
    if body < 0:
        raise ValueError("num_warmup too small for two catalog sweeps")
    return (
        sweep()
        + mixed(body)
        + sweep()
        + mixed(num_requests - num_warmup)
    )


def default_policy(spill_dir: str | None = None) -> TieringPolicy:
    """The policy the experiment (and benchmark) runs with.

    Time constants are sized to the serving clock of a small simulated
    workload (a full run advances the clock a handful of simulated
    milliseconds): the heat half-life far exceeds the run, so any column
    ever touched keeps heat above the cold threshold — only the table's
    never-touched deep tail demotes to the entropy tier — while
    maintenance every 50 simulated µs converges the hot set within the
    warmup prefix.
    """
    return TieringPolicy(
        half_life_ms=50.0,
        hot_count=len(SCAN_COLUMNS),
        hot_min_accesses=4.0,
        cold_max_accesses=0.5,
        pin_hot_decoded=True,
        spill_dir=spill_dir,
        bytes_budget_factor=1.10,
        min_dwell_ms=0.0,
        maintenance_interval_ms=0.05,
    )


def _serve(
    db: SSBDatabase,
    specs: list[dict],
    num_warmup: int,
    budget_bytes: int,
    policy: TieringPolicy | None,
) -> dict:
    """Run the stream through one server configuration.

    Serves the warmup prefix, snapshots the serving clock, then serves
    the measured suffix; ``warm_wall_ms`` is the clock advance over the
    measured suffix only.
    """
    store = load_lineorder(db, "gpu-star")
    static_bytes = store.total_bytes
    metrics = MetricsRegistry()
    server = QueryServer(
        db,
        store,
        budget_bytes=budget_bytes,
        metrics=metrics,
        streaming=True,
        tiering=policy,
    )
    requests = [
        ServeRequest("query", spec["query"].name, query=spec["query"])
        if spec["kind"] == "query"
        else ServeRequest("lookup", spec["column"], indices=spec["indices"])
        for spec in specs
    ]
    answers = []

    def drain(batch):
        # One request per serve() round: this is a latency-serving
        # comparison — batching same-column lookups would amortize the
        # static mode's per-gather decode across requests.
        for request in batch:
            for result in server.serve([request]):
                assert result.ok, result.error
                answers.append(
                    dict(result.groups)
                    if result.groups is not None
                    else result.values
                )

    drain(requests[:num_warmup])
    warm_clock = server.clock_ms
    drain(requests[num_warmup:])
    warm_wall = server.clock_ms - warm_clock
    snap = metrics.snapshot()
    tiers = server.tiering.tiers() if server.tiering is not None else {}
    heats = (
        {
            name: server.tiering.heat(name, server.clock_ms)
            for name in store.columns
        }
        if server.tiering is not None
        else {}
    )
    server.stop()
    return {
        "warm_wall_ms": warm_wall,
        "total_wall_ms": server.clock_ms,
        "answers": answers,
        "static_bytes": static_bytes,
        "compressed_bytes": store.total_bytes,
        "tiers": tiers,
        "heats": heats,
        "swaps": snap.get("tiering_swaps", 0),
        "reencode_ms": snap.get("tiering_reencode_ms_count", 0)
        and snap.get("tiering_reencode_ms_mean", 0.0)
        * snap.get("tiering_reencode_ms_count", 0),
        "bytes_reclaimed": snap.get("tiering_bytes_reclaimed", 0),
        "pool_evictions": snap.get("pool_evictions", 0),
    }


def run(
    db: SSBDatabase | None = None,
    scale_factor: float = TIERING_SF,
    num_requests: int = 120,
    num_warmup: int = 36,
    seed: int = 13,
    budget_fraction: float = 0.45,
    spill: bool = True,
) -> dict:
    """Serve the skewed mix statically and adaptively; returns a summary.

    The shared pool budget is ``budget_fraction`` of the store's
    uncompressed footprint — tight enough that full decoded residency is
    impossible, big enough that the hot set's pinned decoded images fit
    (they displace the hot columns' compressed residents rather than add
    to them).
    """
    if db is None:
        db = generate(scale_factor=scale_factor, seed=7)
    else:
        scale_factor = db.num_lineorder_rows / 6_000_000
    specs = build_workload(
        db, num_requests=num_requests, num_warmup=num_warmup, seed=seed
    )
    uncompressed = db.num_lineorder_rows * 4 * len(LINEORDER_COLUMNS)
    budget = max(1, int(uncompressed * budget_fraction))
    spill_dir = tempfile.mkdtemp(prefix="repro-tiering-") if spill else None

    static = _serve(db, specs, num_warmup, budget, policy=None)
    adaptive = _serve(
        db, specs, num_warmup, budget, policy=default_policy(spill_dir)
    )

    for i, (a, b) in enumerate(zip(static["answers"], adaptive["answers"])):
        if isinstance(a, dict):
            assert a == b, f"request {i}: groups diverged under tiering"
        else:
            assert np.array_equal(a, b), f"request {i}: values diverged"

    rows = []
    for mode, result in (("static", static), ("adaptive", adaptive)):
        rows.append(
            {
                "mode": mode,
                "warm_wall_ms": result["warm_wall_ms"],
                "speedup": static["warm_wall_ms"] / result["warm_wall_ms"],
                "compressed_MB": result["compressed_bytes"] / 1e6,
                "bytes_vs_static": result["compressed_bytes"]
                / static["compressed_bytes"],
                "swaps": result["swaps"],
                "reencode_ms": result["reencode_ms"],
                "bytes_reclaimed_MB": result["bytes_reclaimed"] / 1e6,
                "pool_evictions": result["pool_evictions"],
            }
        )
    return {
        "rows": rows,
        "tiers": adaptive["tiers"],
        "heats": adaptive["heats"],
        "num_requests": num_requests,
        "num_warmup": num_warmup,
        "scale_factor": scale_factor,
        "budget_bytes": budget,
        "speedup": static["warm_wall_ms"] / adaptive["warm_wall_ms"],
        "bytes_vs_static": adaptive["compressed_bytes"]
        / static["compressed_bytes"],
    }


def summary_rows(result: dict) -> list[dict]:
    """The static-vs-adaptive comparison as report-table rows."""
    return result["rows"]


def tier_rows(result: dict) -> list[dict]:
    """The adaptive run's final tier placement, hottest first."""
    heats = result["heats"]
    return [
        {
            "column": name,
            "tier": result["tiers"].get(name, "warm"),
            "decayed_accesses": heats.get(name, 0.0),
        }
        for name in sorted(result["tiers"], key=lambda n: -heats.get(n, 0.0))
    ]


def main() -> None:
    result = run()
    print_experiment(
        "Extension — workload-adaptive codec tiering vs static planner "
        f"({result['num_requests']} requests, "
        f"{result['num_warmup']} warmup, SF={result['scale_factor']:g}, "
        f"pool budget {result['budget_bytes'] / 1e6:.1f} MB)",
        summary_rows(result),
    )
    print_experiment("Final tier placement (adaptive run)", tier_rows(result))


if __name__ == "__main__":
    main()
