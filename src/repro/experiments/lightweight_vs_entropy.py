"""Claims check — §2.2: "most of the compression gains can be achieved
with just lightweight techniques."

The paper scopes itself to lightweight schemes and asserts heavyweight
coding would add little.  With the entropy machinery in
:mod:`repro.core.analysis` that claim is checkable: an ideal order-0
entropy coder (the core of any heavyweight scheme) cannot beat the
column's empirical entropy, so comparing GPU-*'s achieved bits/int against
that bound on every SSB column bounds what Huffman/LZ-style coding could
still gain.

Reported per column: entropy, GPU-* bits/int, the *savings capture* —
(32 - achieved) / (32 - min(entropy, achieved)) — i.e. what fraction of
the ideally-achievable size reduction the lightweight scheme already
realized.  Run-length/delta structure lets GPU-* beat order-0 entropy
outright on several columns (capture = 100%).
"""

from __future__ import annotations

from repro.core.analysis import empirical_entropy
from repro.core.hybrid import choose_gpu_star
from repro.experiments.common import DEFAULT_SF, print_experiment
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.schema import LINEORDER_COLUMNS

RAW_BITS = 32.0


def run(db: SSBDatabase | None = None, sf: float = DEFAULT_SF) -> list[dict]:
    """Entropy vs achieved bits/int per SSB column, with savings capture."""
    if db is None:
        db = generate(scale_factor=sf)
    rows = []
    for column in LINEORDER_COLUMNS:
        values = db.lineorder[column]
        entropy = empirical_entropy(values)
        choice = choose_gpu_star(values)
        achieved = choice.encoded.bits_per_int
        ideal = min(entropy, achieved)
        capture = (RAW_BITS - achieved) / max(RAW_BITS - ideal, 1e-9)
        rows.append(
            {
                "column": column,
                "entropy_bits": entropy,
                "gpu_star_bits": achieved,
                "scheme": choice.codec_name,
                "savings_capture": min(capture, 1.0),
            }
        )
    mean_capture = sum(r["savings_capture"] for r in rows) / len(rows)
    rows.append(
        {
            "column": "mean",
            "entropy_bits": sum(r["entropy_bits"] for r in rows) / len(rows),
            "gpu_star_bits": sum(r["gpu_star_bits"] for r in rows) / len(rows),
            "scheme": "",
            "savings_capture": mean_capture,
        }
    )
    return rows


def main() -> None:
    rows = run()
    print_experiment(
        "Claims check — §2.2: fraction of ideally-achievable savings that "
        "lightweight GPU-* already captures on SSB columns",
        rows,
    )


if __name__ == "__main__":
    main()
