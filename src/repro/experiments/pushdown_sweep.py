"""Predicate-pushdown selectivity sweep (`repro run pushdown`).

Measures what metadata-driven tile skipping buys as a q1.x-style scan
narrows: an orderdate-sorted fact table (the layout a date-partitioned
warehouse ingests naturally) is scanned with date windows of increasing
width, with pushdown on and off.  For each width the driver reports the
surviving tile count, simulated time and read traffic, and the
*wall-clock* time of the Python-side decode — the cost late
materialization avoids — and asserts the pruned and unpruned plans agree
bit for bit.

Sorting only the fact table cannot change any SSB aggregate (they are
row-order invariant), so the same queries remain comparable against
every other experiment in the suite.
"""

from __future__ import annotations

import time

from repro.engine.crystal import CrystalEngine
from repro.engine.predicates import And, Range
from repro.experiments.common import print_experiment
from repro.ssb.dbgen import SSBDatabase, generate, sort_lineorder_by
from repro.ssb.loader import ColumnStore, load_lineorder

#: Date-window widths (days) swept; ``None`` means the full date range.
DEFAULT_WIDTHS = (2, 7, 30, 180, None)


def q1_style_scan(
    engine: CrystalEngine, date_lo: int, date_hi: int
) -> tuple[dict[int, int], dict]:
    """A flight-1-shaped scan with an explicit orderdate window.

    Returns the aggregate and per-run stats (tiles, selectivity).
    """
    date = Range("lo_orderdate", date_lo, date_hi)
    disc = Range("lo_discount", 1, 3)
    qty = Range("lo_quantity", None, 24)
    p = engine.pipeline("pushdown-sweep")
    pruned = p.filter_pushdown(And((date, disc, qty)))
    orderdate = p.load("lo_orderdate")
    p.filter_predicate(date, orderdate)
    discount = p.load("lo_discount")
    p.filter_predicate(disc, discount)
    quantity = p.load("lo_quantity")
    p.filter_predicate(qty, quantity)
    extendedprice = p.load("lo_extendedprice")
    result = p.total_sum_product(extendedprice, discount)
    stats = {
        "tiles_total": engine.num_tiles,
        "tiles_active": int(p.tile_active.sum()),
        "tiles_pruned": pruned,
        "row_selectivity": p.live_count / p.n if p.n else 0.0,
    }
    p.finish()
    return result, stats


def _measure(
    db: SSBDatabase, store: ColumnStore, date_lo: int, date_hi: int,
    pushdown: bool, reps: int,
) -> tuple[float, float, int, dict[int, int], dict]:
    """Best-of-``reps`` run with cold decoded data but warm metadata.

    Returns ``(wall_ms, sim_ms, read_bytes, result, stats)``.
    """
    engine = CrystalEngine(db, store, pushdown=pushdown)
    best = None
    for _ in range(reps):
        engine.evict_decoded()
        launches_before = len(engine.device.launches)
        ms_before = engine.device.elapsed_ms
        t0 = time.perf_counter()
        result, stats = q1_style_scan(engine, date_lo, date_hi)
        wall_ms = (time.perf_counter() - t0) * 1e3
        sim_ms = engine.device.elapsed_ms - ms_before
        read = int(sum(
            l.traffic.read_bytes
            for l in engine.device.launches[launches_before:]
        ))
        if best is None or wall_ms < best[0]:
            best = (wall_ms, sim_ms, read, result, stats)
    return best


def run(
    db: SSBDatabase | None = None,
    scale_factor: float = 0.05,
    seed: int = 7,
    widths=DEFAULT_WIDTHS,
    reps: int = 3,
) -> list[dict]:
    """Sweep date-window widths; returns one row per width."""
    if db is None:
        db = generate(scale_factor=scale_factor, seed=seed)
    db = sort_lineorder_by(db, "lo_orderdate")
    store = load_lineorder(db, "gpu-star")
    datekeys = db.date["d_datekey"]

    rows = []
    for width in widths:
        if width is None:
            lo, hi = int(datekeys.min()), int(datekeys.max())
        else:
            # A window in the middle of the calendar, in real days.
            start = datekeys.size // 3
            lo = int(datekeys[start])
            hi = int(datekeys[min(start + width - 1, datekeys.size - 1)])
        on = _measure(db, store, lo, hi, pushdown=True, reps=reps)
        off = _measure(db, store, lo, hi, pushdown=False, reps=reps)
        if on[3] != off[3]:
            raise AssertionError(
                f"pushdown changed the answer for window {lo}..{hi}: "
                f"{on[3]} != {off[3]}"
            )
        stats = on[4]
        rows.append({
            "window_days": width if width is not None else "all",
            "selectivity_pct": 100.0 * stats["row_selectivity"],
            "tiles_active": stats["tiles_active"],
            "tiles_total": stats["tiles_total"],
            "wall_ms_on": on[0],
            "wall_ms_off": off[0],
            "wall_speedup": off[0] / on[0] if on[0] else float("nan"),
            "sim_ms_on": on[1],
            "sim_ms_off": off[1],
            "read_MB_on": on[2] / 1e6,
            "read_MB_off": off[2] / 1e6,
        })
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run()
    print_experiment(
        "Predicate pushdown: q1.x-style scan vs date-window selectivity "
        "(orderdate-sorted lineorder)",
        [{k: (round(v, 3) if isinstance(v, float) else v) for k, v in r.items()}
         for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    main()
