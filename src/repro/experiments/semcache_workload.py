"""Semantic result cache under a dashboard drill-down workload.

The serving scenario the cache targets: dashboard traffic re-issuing the
same handful of filters and drilling into them — a year-level revenue
scan, half-year and quarter refinements, the SSB flight-1 queries, and
then the whole mix again on refresh.  This driver runs that workload

* **cold** — a fresh streaming engine per pass, no cache (the baseline
  every answer is verified against, bit for bit);
* **populate** — a semcache-backed engine's first pass, where drill-downs
  already reuse donor partials from the coarser scans; and
* **warm** — the same engine's second pass, where every query should be
  answered almost entirely from cached partials.

It then flushes an update into ``lo_extendedprice`` through the engine's
invalidation hook and replays the workload once more against a fresh
reference, counting stale answers (the count must be zero — epochs drop
every dependent partial).

The summary is what ``benchmarks/test_semcache.py`` pins into
``BENCH_semcache.json``: warm-over-cold wall-clock speedup, hit/partial
coverage, donated partials, and the zero-stale-reads invariant.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.updates import UpdatableColumn
from repro.engine.crystal import CrystalEngine, SSBQuery
from repro.engine.predicates import And, Range
from repro.engine.ssb_queries import QUERIES, make_scan
from repro.experiments.common import print_experiment
from repro.gpusim import GPUDevice
from repro.serving.semcache import DEFAULT_SEMCACHE_BUDGET, SemanticResultCache
from repro.ssb.dbgen import SSBDatabase, generate, sort_lineorder_by
from repro.ssb.loader import load_lineorder

#: Morsel width for the drill-down workload: narrow enough that quarter
#: windows own whole morsels outright on date-sorted data (donor reuse),
#: wide enough to keep per-morsel overhead honest.
DEFAULT_MORSEL_TILES = 2


def _flight1(date_lo: int, date_hi: int, disc_lo: int = 1, disc_hi: int = 3,
             qty_hi: int = 24) -> And:
    return And((
        Range("lo_orderdate", date_lo, date_hi),
        Range("lo_discount", disc_lo, disc_hi),
        Range("lo_quantity", 0, qty_hi),
    ))


def build_workload() -> list[SSBQuery]:
    """The drill-down mix, coarse filters ahead of their refinements."""
    return [
        QUERIES["q1.1"],                                        # year 1993
        make_scan("scan-1993H1", _flight1(19930101, 19930630)),
        make_scan("scan-1993Q1", _flight1(19930101, 19930331)),
        make_scan("scan-1993Q2", _flight1(19930401, 19930630)),
        make_scan("scan-1993Q3", _flight1(19930701, 19930930)),
        make_scan("scan-1993Q4", _flight1(19931001, 19931231)),
        QUERIES["q1.2"],                                        # jan 1994
        QUERIES["q1.3"],                                        # week 6 1994
        make_scan("scan-1994H1", _flight1(19940101, 19940630,
                                          disc_lo=4, disc_hi=6, qty_hi=35)),
        QUERIES["q1.1"],                                        # dashboard repeat
    ]


def _timed_pass(engine: CrystalEngine, workload) -> tuple[list[float], list[dict]]:
    walls, answers = [], []
    for query in workload:
        t0 = time.perf_counter()
        groups = engine.run(query).groups
        walls.append((time.perf_counter() - t0) * 1e3)
        answers.append(groups)
    return walls, answers


def run(
    db: SSBDatabase | None = None,
    scale_factor: float = 0.05,
    seed: int = 7,
    workers: int = 4,
    morsel_tiles: int = DEFAULT_MORSEL_TILES,
    budget_bytes: int = DEFAULT_SEMCACHE_BUDGET,
) -> dict:
    """Run the workload cold/populate/warm + flush replay; returns a summary.

    Raises ``AssertionError`` if any cached answer deviates from the
    cold reference, or if the post-flush replay serves a stale answer.
    """
    if db is None:
        db = generate(scale_factor=scale_factor, seed=seed)
    db = sort_lineorder_by(db, "lo_orderdate")
    store = load_lineorder(db, "gpu-star")
    workload = build_workload()

    def fresh_engine() -> CrystalEngine:
        return CrystalEngine(
            db, store, streaming=True, stream_workers=workers,
            morsel_tiles=morsel_tiles,
        )

    cold_ms, reference = _timed_pass(fresh_engine(), workload)

    cached = fresh_engine()
    cached.semcache = SemanticResultCache(budget_bytes)
    populate_ms, populate_answers = _timed_pass(cached, workload)
    warm_ms, warm_answers = _timed_pass(cached, workload)
    for i, query in enumerate(workload):
        if populate_answers[i] != reference[i] or warm_answers[i] != reference[i]:
            raise AssertionError(
                f"semantic cache changed the answer for {query.name}"
            )
    stats = cached.semcache.stats()

    # Flush an update through the invalidation hook, then replay against
    # a post-flush reference: any surviving pre-flush partial would show
    # up as a stale answer here.
    device = GPUDevice()
    ucol = UpdatableColumn(db.lineorder["lo_extendedprice"])
    cached.bind_updatable("lo_extendedprice", ucol)
    hot_row = int(np.flatnonzero(
        (db.lineorder["lo_orderdate"] >= 19930101)
        & (db.lineorder["lo_orderdate"] <= 19931231)
        & (db.lineorder["lo_discount"] >= 1)
        & (db.lineorder["lo_discount"] <= 3)
        & (db.lineorder["lo_quantity"] <= 24)
    )[0])
    ucol.update(hot_row, ucol.read(hot_row) + 10_000_000)
    ucol.flush(device)
    _, flushed_reference = _timed_pass(fresh_engine(), workload)
    _, replay_answers = _timed_pass(cached, workload)
    stale_reads = sum(
        1 for got, want in zip(replay_answers, flushed_reference) if got != want
    )
    if stale_reads:
        raise AssertionError(
            f"{stale_reads} stale answers served after flush"
        )
    if flushed_reference[0] == reference[0]:
        raise AssertionError("flush did not change the year-1993 answer")
    final_stats = cached.semcache.stats()

    rows = [
        {
            "query": q.name,
            "wall_ms_cold": cold_ms[i],
            "wall_ms_populate": populate_ms[i],
            "wall_ms_warm": warm_ms[i],
            "warm_speedup": cold_ms[i] / warm_ms[i] if warm_ms[i] else float("inf"),
        }
        for i, q in enumerate(workload)
    ]
    return {
        "rows": rows,
        "num_queries": len(workload),
        "num_rows": int(db.num_lineorder_rows),
        "morsel_tiles": morsel_tiles,
        "workers": workers,
        "budget_bytes": budget_bytes,
        "cold_ms_total": sum(cold_ms),
        "populate_ms_total": sum(populate_ms),
        "warm_ms_total": sum(warm_ms),
        "warm_speedup": sum(cold_ms) / sum(warm_ms) if sum(warm_ms) else 0.0,
        "hits": int(stats.get("semcache_hits", 0)),
        "partial_hits": int(stats.get("semcache_partial_hits", 0)),
        "misses": int(stats.get("semcache_misses", 0)),
        "donated_partials": int(stats.get("semcache_donated_partials", 0)),
        "covered_morsels": int(stats.get("semcache_covered_morsels", 0)),
        "fresh_morsels": int(stats.get("semcache_fresh_morsels", 0)),
        "stale_reads_after_flush": stale_reads,
        "invalidations": int(final_stats.get("semcache_invalidations", 0)),
        "invalidated_partials": int(
            final_stats.get("semcache_invalidated_partials", 0)
        ),
        "entries": int(final_stats.get("semcache_entries", 0)),
        "resident_bytes": int(final_stats.get("semcache_resident_bytes", 0)),
    }


def summary_rows(summary: dict) -> list[dict]:
    """The one-line report row the extensions section renders."""
    return [
        {
            "queries": summary["num_queries"],
            "cold_ms": summary["cold_ms_total"],
            "populate_ms": summary["populate_ms_total"],
            "warm_ms": summary["warm_ms_total"],
            "warm_speedup": summary["warm_speedup"],
            "hits": summary["hits"],
            "partial_hits": summary["partial_hits"],
            "donated": summary["donated_partials"],
            "stale_after_flush": summary["stale_reads_after_flush"],
        }
    ]


def main() -> None:  # pragma: no cover - CLI convenience
    summary = run()
    print_experiment(
        "Semantic result cache: dashboard drill-down workload "
        "(orderdate-sorted lineorder, GPU-* store; answers verified "
        "bit-identical, zero stale reads after flush)",
        [{k: (round(v, 3) if isinstance(v, float) else v) for k, v in r.items()}
         for r in summary["rows"]],
    )
    for row in summary_rows(summary):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
