"""Ablation — Section 4.3: miniblocks vs a single bitwidth per block.

A block could use one bitwidth for all 128 values instead of four
per-miniblock bitwidths.  Space is a wash (both store the bitwidth(s) in
one word); decoding the single-bitwidth variant skips the miniblock
offset computation, which the paper measured as a marginal win
(2.1 ms -> 2.0 ms).  The trade-off is compression: one large value now
inflates 128 values' width instead of 32.
"""

from __future__ import annotations

import numpy as np

from repro.core.tile_decompress import decompress
from repro.experiments.common import DEFAULT_N, PAPER_N_LADDER, print_experiment
from repro.formats.gpufor import BLOCK, GpuFor, pack_blocks
from repro.gpusim.executor import GPUDevice
from repro.workloads.synthetic import uniform_bitwidth

#: Per-element decode ops saved by skipping the miniblock offsets.
_SINGLE_BW_OPS = 5.5


def single_bitwidth_bits_per_int(values: np.ndarray) -> float:
    """Footprint if each 128-value block used one bitwidth (its max)."""
    values = np.asarray(values, dtype=np.int64)
    pad = (-values.size) % BLOCK
    if pad and values.size:
        values = np.concatenate([values, np.full(pad, values[-1], np.int64)])
    _, _, bits = pack_blocks(values)
    if bits.size == 0:
        return 0.0
    block_words = 2 + 4 * bits.max(axis=1)  # reference + bw word + payload
    total_bits = (int(block_words.sum()) + bits.shape[0]) * 32  # + block starts
    return total_bits / values.size


def run(n: int = DEFAULT_N, seed: int = 0, skewed: bool = False) -> list[dict]:
    """Compare the two layouts on uniform (and optionally skewed) data."""
    scale = PAPER_N_LADDER / n
    data = uniform_bitwidth(16, n, seed)
    if skewed:
        # One large value per block, the case miniblocks exist for.
        data = data.copy()
        data[:: BLOCK * 2] = 2**28

    codec = GpuFor()
    enc = codec.encode(data)
    device = GPUDevice()
    four_ms = decompress(enc, device, write_back=False).scaled_ms(scale)

    # The single-bitwidth decode runs the same kernel minus the offset
    # loop: rebuild the launch with the reduced per-element ops.
    res = codec.kernel_resources(enc)
    n_tiles = codec.num_tiles(enc)
    device = GPUDevice()
    with device.launch(
        "decode-single-bw",
        grid_blocks=n_tiles,
        block_threads=128,
        registers_per_thread=res.registers_per_thread,
        shared_mem_per_block=res.shared_mem_per_block,
    ) as k:
        k.read_segments(*codec.tile_segments(enc))
        k.compute(int(_SINGLE_BW_OPS * enc.count + res.tile_prologue_ops * n_tiles))
        k.shared(int(res.shared_bytes_per_element * enc.count))
    overhead = device.spec.kernel_launch_us / 1000.0
    single_ms = (device.elapsed_ms - overhead) * scale + overhead

    return [
        {
            "layout": "4 miniblocks (GPU-FOR)",
            "bits_per_int": enc.bits_per_int,
            "decode_ms": four_ms,
        },
        {
            "layout": "single bitwidth per block",
            "bits_per_int": single_bitwidth_bits_per_int(data),
            "decode_ms": single_ms,
        },
    ]


def main() -> None:
    print_experiment(
        "Ablation: miniblocks vs single bitwidth (paper: 2.1 -> 2.0 ms, equal size)",
        run(),
    )
    print_experiment(
        "Same ablation with one skewed value per 256 (miniblocks should win on size)",
        run(skewed=True),
    )


if __name__ == "__main__":
    main()
