"""Sharded serving workload: tile-range shards, routing skew, SF=20.

The paper's evaluation runs SSB at SF=20 (120M lineorder rows) — a
working set that motivates §1's "shard between multiple GPUs".  This
driver pushes a scan-heavy workload through the serving layer's
:class:`~repro.serving.sharding.ShardRouter` at 1/2/4 shards and reports

* simulated wall-clock and speedup per shard count (slowest routed shard
  per query plus the interconnect all-gather of partials),
* the same walls projected to the paper's SF=20 (per-query kernel launch
  overhead held fixed, data-proportional time scaled by rows),
* routing skew: the workload mixes broad flight-1 scans (fan out to all
  shards) with key-range scans over the *sorted* ``lo_orderkey`` column
  concentrated on a hot key region — zone maps route those to a subset
  of shards, so shard 0 ends up busier than the tail shards,
* per-shard occupancy (queries routed, busy ms, resident bytes,
  evictions under a deliberately tight per-shard pool budget).

Answers stay bit-identical to single-device execution at every shard
count — asserted here on every query, not just in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.engine.crystal import CrystalEngine, SSBQuery
from repro.engine.predicates import And, Range
from repro.engine.ssb_queries import make_flight1
from repro.experiments.common import DEFAULT_SF, PAPER_SF, print_experiment
from repro.serving.metrics import MetricsRegistry
from repro.serving.sharding import ShardRouter
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.loader import load_lineorder

#: Shard counts the experiment sweeps (the headline claim is at 4).
SHARD_COUNTS = (1, 2, 4)


def make_key_scan(name: str, key_lo: int, key_hi: int) -> SSBQuery:
    """A revenue scan keyed on the sorted ``lo_orderkey`` column.

    ``lo_orderkey`` is monotone in the generated lineorder table, so a
    key range maps to a contiguous row range — exactly the shape whose
    zone maps let the router prune whole shards.  (``make_scan`` only
    accepts the classic flight-1 filter columns, so this query is built
    directly.)
    """
    pred = And((Range("lo_orderkey", key_lo, key_hi),))
    key_pred = pred.predicates[0]

    def fn(engine: CrystalEngine) -> dict[int, int]:
        p = engine.pipeline(name)
        p.filter_pushdown(pred)
        orderkey = p.load("lo_orderkey")
        p.filter_predicate(key_pred, orderkey)
        discount = p.load("lo_discount")
        extendedprice = p.load("lo_extendedprice")
        result = p.total_sum_product(extendedprice, discount)
        p.finish()
        return result

    return SSBQuery(
        name,
        ("lo_orderkey", "lo_discount", "lo_extendedprice"),
        fn,
        plan_key=("scan", "key-revenue"),
        predicate=pred,
    )


def build_workload(
    db: SSBDatabase,
    num_queries: int = 24,
    seed: int = 11,
    hot_fraction: float = 0.6,
    hot_span: float = 0.25,
) -> list[SSBQuery]:
    """A scan-heavy mix: broad flight-1 scans plus skewed key scans.

    Half the stream are flight-1 revenue scans (no key predicate — they
    fan out to every shard); the rest are ``lo_orderkey`` range scans,
    ``hot_fraction`` of which land inside the first ``hot_span`` of the
    key space.  On a tile-range-sharded store that hot region lives on
    the low shards, so routing is measurably skewed.
    """
    rng = np.random.default_rng(seed)
    keys = db.lineorder["lo_orderkey"]
    broad = [
        make_flight1("shard-scan-93", 19930101, 19931231, 1, 3, 0, 24),
        make_flight1("shard-scan-94", 19940101, 19941231, 4, 6, 26, 35),
        make_flight1("shard-scan-95", 19950101, 19951231, 5, 7, 26, 35),
        make_flight1("shard-scan-all", 19930101, 19971231, 1, 7, 0, 50),
    ]
    queries: list[SSBQuery] = []
    for i in range(num_queries):
        if i % 2 == 0:
            queries.append(broad[(i // 2) % len(broad)])
            continue
        if rng.random() < hot_fraction:
            lo_frac = rng.uniform(0.0, hot_span * 0.5)
            hi_frac = lo_frac + rng.uniform(0.02, hot_span * 0.5)
        else:
            lo_frac = rng.uniform(0.0, 0.8)
            hi_frac = lo_frac + rng.uniform(0.05, 0.2)
        lo = int(keys[int(lo_frac * (keys.size - 1))])
        hi = int(keys[min(int(hi_frac * (keys.size - 1)), keys.size - 1)])
        queries.append(make_key_scan(f"shard-key-{i}", lo, hi))
    return queries


def _project_sf20(wall_ms: float, num_queries: int, scale_factor: float,
                  launch_ms: float) -> float:
    """Project a measured wall to SF=20: the per-query fused-kernel
    launch overhead is row-count independent; everything else (decode,
    filter, transfer, merge) is data-proportional."""
    fixed = num_queries * launch_ms
    variable = max(0.0, wall_ms - fixed)
    return fixed + variable * (PAPER_SF / scale_factor)


def run(
    db: SSBDatabase | None = None,
    scale_factor: float = DEFAULT_SF,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    num_queries: int = 24,
    seed: int = 11,
    budget_headroom: float = 1.03,
) -> dict:
    """Serve the skewed scan mix at each shard count; returns a summary.

    Each shard's pool budget is the largest single query's compressed
    share times ``budget_headroom`` — every query fits pinned, but the
    union of the flight-1 and key-scan column sets does not, so
    alternating between the families forces evictions on every shard.
    """
    if db is None:
        db = generate(scale_factor=scale_factor, seed=7)
    else:
        scale_factor = db.num_lineorder_rows / 6_000_000
    store = load_lineorder(db, "gpu-star")
    workload = build_workload(db, num_queries=num_queries, seed=seed)
    max_query_bytes = max(
        sum(store[c].nbytes for c in q.columns) for q in workload
    )
    reference = CrystalEngine(db, store, streaming=True)
    expected = {}
    for query in workload:
        if query.name not in expected:
            expected[query.name] = reference.run(query).groups

    rows: list[dict] = []
    shard_rows: list[dict] = []
    single_wall = None
    launch_ms = None
    for num_shards in shard_counts:
        metrics = MetricsRegistry()
        budget = max(1, int(max_query_bytes * budget_headroom) // num_shards)
        router = ShardRouter(
            db, store, num_shards, budget_bytes=budget, metrics=metrics
        )
        if launch_ms is None:
            launch_ms = router.sharded.spec.kernel_launch_us / 1000.0
        wall = 0.0
        for query in workload:
            with router.pinned(query.columns) as place_ms:
                groups, execute_ms = router.execute(query)
            wall += place_ms + execute_ms
            assert groups == expected[query.name], (num_shards, query.name)
        snap = metrics.snapshot()
        if single_wall is None:
            single_wall = wall
        wall_sf20 = _project_sf20(wall, len(workload), scale_factor, launch_ms)
        rows.append(
            {
                "shards": num_shards,
                "wall_ms": wall,
                "speedup": single_wall / wall,
                "wall_ms_sf20": wall_sf20,
                "skew": snap.get("router_routing_skew", 1.0),
                "merge_ms": snap.get("router_merge_ms_count", 0)
                and snap.get("router_merge_ms_mean", 0.0)
                * snap.get("router_merge_ms_count", 0),
                "evictions": sum(
                    metrics.counter("pool_evictions", labels={"shard": i})
                    for i in range(num_shards)
                ),
            }
        )
        if num_shards == shard_counts[-1]:
            for entry in router.shard_summary():
                entry["p99_ms"] = metrics.series_percentile(
                    "shard_execute_ms", 99.0, labels={"shard": entry["shard"]}
                )
                shard_rows.append(entry)
        router.close()

    base_sf20 = rows[0]["wall_ms_sf20"]
    for row in rows:
        row["speedup_sf20"] = base_sf20 / row["wall_ms_sf20"]
    return {
        "rows": rows,
        "shard_rows": shard_rows,
        "num_queries": len(workload),
        "scale_factor": scale_factor,
        "num_rows": int(db.num_lineorder_rows),
        "compressed_bytes": int(store.total_bytes),
    }


def summary_rows(result: dict) -> list[dict]:
    """The per-shard-count sweep as report-table rows."""
    return [
        {
            "shards": r["shards"],
            "wall_ms": r["wall_ms"],
            "speedup": r["speedup"],
            "sf20_wall_ms": r["wall_ms_sf20"],
            "sf20_speedup": r["speedup_sf20"],
            "routing_skew": r["skew"],
            "evictions": r["evictions"],
        }
        for r in result["rows"]
    ]


def shard_rows(result: dict) -> list[dict]:
    """Per-shard occupancy of the largest sweep point."""
    return [
        {
            "shard": s["shard"],
            "tiles": s["tiles"],
            "routed": s["routed"],
            "busy_ms": s["busy_ms"],
            "p99_ms": s["p99_ms"],
            "resident_MB": s["resident_bytes"] / 1e6,
            "evictions": s["evictions"],
        }
        for s in result["shard_rows"]
    ]


def main() -> None:
    result = run()
    print_experiment(
        "Extension — sharded serving: scan-heavy mix, zone-map routing "
        f"({result['num_queries']} queries, SF={result['scale_factor']:g})",
        summary_rows(result),
    )
    print_experiment(
        "Per-shard occupancy at the largest shard count",
        shard_rows(result),
    )


if __name__ == "__main__":
    main()
