"""E10/E11 — Figure 10: decompression speed on SSB columns.

* Figure 10a: one-on-one cascade comparison, nvCOMP vs GPU-*, averaged
  over the SSB columns each cascade wins (paper: GPU-FOR 2.4x, GPU-DFOR
  3.5x, GPU-RFOR 2x faster than the matching nvCOMP configuration).
* Figure 10b: geomean decompression time across all columns for Planner,
  GPU-BP, nvCOMP, GPU-* (paper: GPU-* is 5.5x / 2x / 2.2x faster).
"""

from __future__ import annotations

from repro.core.hybrid import choose_gpu_star
from repro.core.nvcomp import encode_nvcomp, decompress_nvcomp
from repro.core.planner import decompress_planned, plan_column
from repro.core.tile_decompress import decompress
from repro.experiments.common import DEFAULT_SF, PAPER_SF, geomean, print_experiment
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.schema import LINEORDER_COLUMNS

#: Paper's Figure 10a ratios per cascade.
PAPER_RATIOS = {"for-bitpack": 2.4, "delta-for-bitpack": 3.5, "rle-for-bitpack": 2.0}


def run(db: SSBDatabase | None = None, sf: float = DEFAULT_SF) -> list[dict]:
    """Per-column decompression times (ms, projected to SF=20)."""
    if db is None:
        db = generate(scale_factor=sf)
    scale = PAPER_SF / db.scale_factor
    rows = []
    for column in LINEORDER_COLUMNS:
        values = db.lineorder[column]
        row: dict = {"column": column}

        star = choose_gpu_star(values)
        device = GPUDevice()
        row["gpu-star"] = decompress(star.encoded, device, write_back=True).scaled_ms(scale)
        row["gpu-star scheme"] = star.codec_name

        nv = encode_nvcomp(values)
        device = GPUDevice()
        row["nvcomp"] = decompress_nvcomp(nv, device).scaled_ms(scale)
        row["nvcomp scheme"] = nv.scheme

        planned = plan_column(values)
        device = GPUDevice()
        row["planner"] = decompress_planned(planned, device).scaled_ms(scale)

        enc = get_codec("gpu-bp").encode(values)
        device = GPUDevice()
        row["gpu-bp"] = decompress(enc, device, write_back=True).scaled_ms(scale)
        rows.append(row)
    return rows


def cascade_ratios(rows: list[dict]) -> list[dict]:
    """Figure 10a: mean nvCOMP/GPU-* ratio per cascade configuration."""
    buckets: dict[str, list[float]] = {}
    for r in rows:
        buckets.setdefault(r["nvcomp scheme"], []).append(r["nvcomp"] / r["gpu-star"])
    return [
        {
            "cascade": scheme,
            "nvcomp_over_gpu_star": sum(v) / len(v),
            "paper": PAPER_RATIOS.get(scheme, float("nan")),
            "columns": len(v),
        }
        for scheme, v in sorted(buckets.items())
    ]


def geomeans(rows: list[dict]) -> dict[str, float]:
    """Figure 10b: geomean decompression time per system."""
    return {
        system: geomean(r[system] for r in rows)
        for system in ("planner", "gpu-bp", "nvcomp", "gpu-star")
    }


def main() -> None:
    rows = run()
    print_experiment(
        "E10: Figure 10a — per-column decompression (ms at SF=20)",
        rows,
        columns=["column", "gpu-star", "nvcomp", "planner", "gpu-bp", "gpu-star scheme", "nvcomp scheme"],
    )
    print_experiment("Figure 10a cascade ratios", cascade_ratios(rows))
    g = geomeans(rows)
    print("\nE11: Figure 10b geomeans (ms):", {k: round(v, 3) for k, v in g.items()})
    print(
        "ratios vs GPU-*:"
        f" planner {g['planner']/g['gpu-star']:.2f}x (paper 5.5x),"
        f" gpu-bp {g['gpu-bp']/g['gpu-star']:.2f}x (paper 2x),"
        f" nvcomp {g['nvcomp']/g['gpu-star']:.2f}x (paper 2.2x)"
    )


if __name__ == "__main__":
    main()
