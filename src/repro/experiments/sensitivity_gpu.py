"""Sensitivity — do the paper's conclusions transfer to a newer GPU?

Section 8 predicts: "As GPUs improve, it is likely they will have more
shared memory and registers per thread, thereby allowing us to use higher
values of D."  This experiment re-runs the Figure 5 D-sweep and the
tile-vs-cascade comparison on an A100 model (1555 GB/s, 164 KB shared
memory per SM) next to the V100, and runs the Section 8 D auto-tuner on
both parts.

Expected shapes: the tile-vs-cascade advantage persists on the A100 (it is
traffic-structural, not device-specific), and the A100's D sweet spot
moves up — confirming the paper's prediction mechanically.
"""

from __future__ import annotations

from repro.core.cascade import decompress_cascaded
from repro.core.tile_decompress import decompress
from repro.core.tuning import choose_d
from repro.experiments.common import DEFAULT_N, PAPER_N_LADDER, print_experiment
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.gpusim.spec import A100, V100, GPUSpec
from repro.workloads.synthetic import uniform_bitwidth

SPECS: tuple[GPUSpec, ...] = (V100, A100)


def run_d_sweep(n: int = DEFAULT_N, seed: int = 0) -> list[dict]:
    """Figure 5's D sweep on both devices (ms, 500M-projected)."""
    data = uniform_bitwidth(16, n, seed)
    scale = PAPER_N_LADDER / n
    rows = []
    for d in (1, 2, 4, 8, 16, 32):
        row: dict = {"D": d}
        for spec in SPECS:
            device = GPUDevice(spec=spec)
            enc = get_codec("gpu-for", d_blocks=d).encode(data)
            report = decompress(enc, device, write_back=False)
            row[spec.name] = report.scaled_ms(scale)
        rows.append(row)
    return rows


def run_tile_vs_cascade(n: int = DEFAULT_N, seed: int = 0) -> list[dict]:
    """Tile vs cascading decompression advantage on both devices."""
    data = uniform_bitwidth(16, n, seed)
    rows = []
    for codec_name in ("gpu-for", "gpu-dfor", "gpu-rfor"):
        enc = get_codec(codec_name).encode(data)
        row: dict = {"scheme": codec_name}
        for spec in SPECS:
            tile = decompress(enc, GPUDevice(spec=spec), write_back=True)
            cascade = decompress_cascaded(enc, GPUDevice(spec=spec))
            row[f"{spec.name} ratio"] = cascade.simulated_ms / tile.simulated_ms
        rows.append(row)
    return rows


def run_tuner() -> list[dict]:
    """The D auto-tuner's choices on both devices."""
    rows = []
    for spec in SPECS:
        for columns in (1, 4):
            choice = choose_d(spec, output_columns=columns)
            rows.append(
                {
                    "device": spec.name,
                    "output_columns": columns,
                    "best_D": choice.d_blocks,
                    "occupancy": choice.occupancy,
                }
            )
    return rows


def main() -> None:
    print_experiment("Sensitivity: Figure 5 D-sweep, V100 vs A100 (ms)", run_d_sweep())
    print_experiment(
        "Sensitivity: tile/cascade advantage persists across devices",
        run_tile_vs_cascade(),
    )
    print_experiment(
        "Section 8 D auto-tuner (paper: D=4 for queries on V100; higher D "
        "viable on newer GPUs)",
        run_tuner(),
    )


if __name__ == "__main__":
    main()
