"""Extension — multi-GPU sharded scan scaling (the §1 sharding story).

The paper motivates compression with working sets sharded across several
GPUs.  Tile independence makes the schemes trivially shardable, and the
serving layer's :class:`~repro.serving.sharding.ShardRouter` now does the
real thing: each compressed column is split tile-range-wise over N
simulated V100s, every shard streams its tile span through the fused
scan kernel, and per-shard partial aggregates are all-gathered over the
modeled interconnect.

This experiment pushes a scan-heavy SSB mix (broad flight-1 scans plus a
couple of hot key-range scans that zone maps route to a shard subset)
through the router at 1/2/4/8 devices.  Walls are projected to the
paper-scale 500M-row column: the per-query fused-kernel launch overhead
is row-count independent, everything else (decode, filter, merge) is
data-proportional.  Scaling is near-linear because tile-based decoding
has no cross-tile dependence to serialize — the residue is the fixed
launch overhead, the all-gather, and the routing skew the key scans
introduce.  Answers are bit-identical at every device count.
"""

from __future__ import annotations

from repro.experiments.common import PAPER_N_LADDER, print_experiment
from repro.engine.ssb_queries import make_flight1
from repro.serving.metrics import MetricsRegistry
from repro.serving.sharding import ShardRouter
from repro.ssb.dbgen import generate
from repro.ssb.loader import load_lineorder

DEVICE_COUNTS = (1, 2, 4, 8)


def _scan_mix(db) -> list:
    """Broad flight-1 scans (fan out everywhere) plus two hot key scans
    over the sorted ``lo_orderkey`` prefix (routed to the low shards)."""
    from repro.experiments.sharding_workload import make_key_scan

    keys = db.lineorder["lo_orderkey"]
    hot_hi = int(keys[keys.size // 8])
    mid_hi = int(keys[keys.size // 5])
    return [
        make_flight1("mg-scan-93", 19930101, 19931231, 1, 3, 0, 24),
        make_flight1("mg-scan-94", 19940101, 19941231, 4, 6, 26, 35),
        make_flight1("mg-scan-95", 19950101, 19951231, 5, 7, 26, 35),
        make_flight1("mg-scan-all", 19930101, 19971231, 1, 7, 0, 50),
        make_key_scan("mg-key-hot", int(keys[0]), hot_hi),
        make_key_scan("mg-key-mid", hot_hi, mid_hi),
    ]


def run(n: int = 1_000_000, seed: int = 0,
        device_counts: tuple[int, ...] = DEVICE_COUNTS) -> list[dict]:
    """Sharded scan wall-clock per device count (500M-row projected)."""
    db = generate(scale_factor=max(n / 6_000_000, 0.002), seed=7)
    store = load_lineorder(db, "gpu-star")
    queries = _scan_mix(db)
    columns = sorted({c for q in queries for c in q.columns})
    scale = PAPER_N_LADDER / db.num_lineorder_rows

    rows: list[dict] = []
    expected = None
    single_ms = None
    launch_ms = None
    for devices in device_counts:
        metrics = MetricsRegistry()
        router = ShardRouter(db, store, devices, metrics=metrics)
        if launch_ms is None:
            launch_ms = router.sharded.spec.kernel_launch_us / 1000.0
        router.place_columns(columns)  # warm the pools off the clock
        wall = 0.0
        answers = []
        for query in queries:
            groups, execute_ms = router.execute(query)
            wall += execute_ms
            answers.append(groups)
        if expected is None:
            expected = answers
        assert answers == expected, f"answers drifted at {devices} devices"
        fixed = len(queries) * launch_ms
        projected = fixed + max(0.0, wall - fixed) * scale
        if single_ms is None:
            single_ms = projected
        rows.append(
            {
                "devices": devices,
                "wall_ms": projected,
                "speedup": single_ms / projected,
                "capacity_GB": router.capacity_bytes / 1024**3,
                "skew": metrics.snapshot().get("router_routing_skew", 1.0),
                "compressed_MB": store.total_bytes * scale / 1e6,
            }
        )
        router.close()
    return rows


def main() -> None:
    print_experiment(
        "Extension — multi-GPU sharded SSB scans (500M-row projected)", run()
    )


if __name__ == "__main__":
    main()
