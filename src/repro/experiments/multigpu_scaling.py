"""Extension — multi-GPU decompression scaling (the §1 sharding story).

The paper motivates compression with working sets sharded across several
GPUs.  Tile independence makes the schemes trivially shardable: blocks of
tiles go round-robin to devices, each device decodes its shard with the
ordinary single-pass kernel, and wall-clock time is the slowest shard.

This experiment decompresses a large column on 1/2/4/8 simulated V100s
and reports wall-clock speedup and aggregate capacity — near-linear
scaling, because tile-based decompression has no cross-tile dependence to
serialize (contrast a whole-column delta chain, which would not shard).
"""

from __future__ import annotations

from repro.experiments.common import PAPER_N_LADDER, print_experiment
from repro.formats.base import TileCodec
from repro.formats.registry import get_codec
from repro.gpusim.multigpu import ShardedDevice
from repro.workloads.synthetic import uniform_bitwidth

DEVICE_COUNTS = (1, 2, 4, 8)


def run(n: int = 1_000_000, seed: int = 0) -> list[dict]:
    """Sharded decompression wall-clock per device count (500M-projected)."""
    data = uniform_bitwidth(16, n, seed)
    codec = get_codec("gpu-for")
    assert isinstance(codec, TileCodec)
    enc = codec.encode(data)
    scale = PAPER_N_LADDER / n

    res = codec.kernel_resources(enc)
    n_tiles = codec.num_tiles(enc)
    starts, lengths = codec.tile_segments(enc)
    compressed_bytes = enc.nbytes

    def decode_shard(device, shard_tiles: int) -> None:
        if shard_tiles == 0:
            return
        fraction = shard_tiles / n_tiles
        with device.launch(
            "decode-shard",
            grid_blocks=shard_tiles,
            block_threads=128,
            registers_per_thread=res.registers_per_thread,
            shared_mem_per_block=res.shared_mem_per_block,
        ) as k:
            sel = slice(0, shard_tiles)  # round-robin shards are uniform
            k.read_segments(starts[sel], lengths[sel])
            k.read_segments(
                starts[n_tiles : n_tiles + shard_tiles],
                lengths[n_tiles : n_tiles + shard_tiles],
            )
            k.write_linear(int(enc.count * 4 * fraction))
            k.compute(
                int(res.compute_ops_per_element * enc.count * fraction
                    + res.tile_prologue_ops * shard_tiles)
            )

    rows = []
    single_ms = None
    for devices in DEVICE_COUNTS:
        sharded = ShardedDevice(num_devices=devices)
        sharded.run_sharded(decode_shard, n_tiles)
        overhead = sharded.spec.kernel_launch_us / 1000.0
        wall = (sharded.elapsed_ms - overhead) * scale + overhead
        if single_ms is None:
            single_ms = wall
        rows.append(
            {
                "devices": devices,
                "wall_ms": wall,
                "speedup": single_ms / wall,
                "capacity_GB": sharded.capacity_bytes / 1024**3,
                "compressed_MB": compressed_bytes * scale / 1e6,
            }
        )
    return rows


def main() -> None:
    print_experiment(
        "Extension — multi-GPU sharded decompression (500M ints, b=16)", run()
    )


if __name__ == "__main__":
    main()
