"""E14 — Section 8: random access under a selective predicate bitvector.

A bitvector selects random entries of a 250M-value column; selectivity
sweeps 0 -> 1.  Bit-packed data lacks random access, so:

* a compressed tile is read and decoded whenever it contains *any*
  selected row — beyond selectivity ~1/TILE the whole column is touched
  and the cost plateaus (paper: 2.1 ms constant for GPU-FOR/GPU-DFOR);
* uncompressed data is fetched at 128-byte cache-line granularity, so
  beyond ~1/32 every line is touched and it plateaus at the full-column
  read (paper: 2.5 ms).

The compressed plateau sits *below* the uncompressed one because the
reduced data size compensates for the loss of random access — the paper's
argument that random access costs nothing material.  The implementation
under test is :mod:`repro.core.random_access` (tile-skipping filtered
scans), not a hand-rolled cost formula.
"""

from __future__ import annotations

import numpy as np

from repro.core.random_access import filtered_scan, uncompressed_filtered_scan_ms
from repro.experiments.common import PAPER_N_FIG7, print_experiment
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.workloads.synthetic import uniform_bitwidth

#: Selectivities swept (log-spaced through both knees).
SELECTIVITIES = (1e-5, 1e-4, 1e-3, 1e-2, 1 / 32, 0.1, 0.3, 0.5, 1.0)


def run(n: int = 2_000_000, seed: int = 0) -> list[dict]:
    """Random-access cost vs selectivity, projected to 250M values."""
    scale = PAPER_N_FIG7 / n
    data = uniform_bitwidth(16, n, seed)
    enc = get_codec("gpu-for").encode(data)

    rng = np.random.default_rng(seed)
    rows = []
    for sel in SELECTIVITIES:
        mask = rng.random(n) < sel
        selected = int(mask.sum())

        device = GPUDevice()
        report = filtered_scan(enc, mask, device)
        assert np.array_equal(report.values, data[mask])
        overhead = device.spec.kernel_launch_us / 1000.0
        compressed_ms = (report.simulated_ms - overhead) * scale + overhead

        device = GPUDevice()
        ms = uncompressed_filtered_scan_ms(n, selected, device)
        uncompressed_ms = (ms - overhead) * scale + overhead

        rows.append(
            {
                "selectivity": sel,
                "compressed_ms": compressed_ms,
                "uncompressed_ms": uncompressed_ms,
                "tiles_touched": report.tiles_touched,
            }
        )
    return rows


def main() -> None:
    print_experiment(
        "E14: Section 8 — random access vs selectivity "
        "(paper plateaus: compressed 2.1 ms, uncompressed 2.5 ms)",
        run(),
    )


if __name__ == "__main__":
    main()
