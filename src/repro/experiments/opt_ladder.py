"""E1 — the Section 4.2 optimization ladder.

Replays the paper's incremental-optimization measurement: decoding 500M
uniform U(0, 2^16) integers with the base algorithm, then adding shared-
memory staging (Opt 1), multiple blocks per thread block (Opt 2), and
precomputed miniblock offsets (Opt 3).

Paper reference points: 18 ms -> 7 ms -> 2.39 ms -> 2.1 ms, against
2.4 ms to read the uncompressed column.
"""

from __future__ import annotations

from repro.core.tile_decompress import decompress, read_uncompressed
from repro.experiments.common import DEFAULT_N, PAPER_N_LADDER, print_experiment
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.workloads.synthetic import uniform_bitwidth

#: The paper's measured milliseconds per ladder step.
PAPER_MS = {0: 18.0, 1: 7.0, 2: 2.39, 3: 2.1}
PAPER_READ_MS = 2.4

_LABELS = {
    0: "base algorithm",
    1: "opt1: shared memory",
    2: "opt2: D blocks per thread block",
    3: "opt3: precomputed offsets",
}


def run(n: int = DEFAULT_N, seed: int = 0) -> list[dict]:
    """Run the ladder at ``n`` elements, projected to 500M."""
    data = uniform_bitwidth(16, n, seed)
    scale = PAPER_N_LADDER / n
    rows = []
    for opt in range(4):
        device = GPUDevice()
        enc = get_codec("gpu-for").encode(data)
        report = decompress(enc, device, opt_level=opt, write_back=False)
        rows.append(
            {
                "step": _LABELS[opt],
                "simulated_ms": report.scaled_ms(scale),
                "paper_ms": PAPER_MS[opt],
            }
        )
    device = GPUDevice()
    ms = read_uncompressed(n, device)
    overhead = device.spec.kernel_launch_us / 1000.0
    rows.append(
        {
            "step": "read uncompressed (None)",
            "simulated_ms": (ms - overhead) * scale + overhead,
            "paper_ms": PAPER_READ_MS,
        }
    )
    return rows


def main() -> None:
    print_experiment("E1: Section 4.2 optimization ladder (500M ints, b=16)", run())


if __name__ == "__main__":
    main()
