"""E4/E5 — Figure 7: decompression time and compression rate vs bitwidth.

For 15 unsorted datasets of 250M values uniform in [0, 2^i), i = 2..30:

* Figure 7a: decompression time (read compressed, decode, write back) for
  None, NSF, the three tile-based schemes, and their cascading-
  decompression counterparts (FOR+BitPack etc.).
* Figure 7b: compression rate in bits per int for None, NSF, GPU-FOR,
  GPU-DFOR, GPU-RFOR — the bit-packed schemes are linear in the bitwidth
  with ~0.75-0.81 bits/int overhead.
"""

from __future__ import annotations

from repro.core.cascade import decompress_cascaded
from repro.core.tile_decompress import decompress, read_uncompressed
from repro.experiments.common import PAPER_N_FIG7, print_experiment
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.workloads.synthetic import FIG7_BITWIDTHS, uniform_bitwidth

#: Figure 7a series names.
TIME_SERIES = (
    "None",
    "NSF",
    "GPU-FOR",
    "GPU-DFOR",
    "GPU-RFOR",
    "FOR+BitPack",
    "Delta+FOR+BitPack",
    "RLE+FOR+BitPack",
)
#: Figure 7b series names.
RATE_SERIES = ("None", "NSF", "GPU-FOR", "GPU-DFOR", "GPU-RFOR")

_TILE_CODECS = {"GPU-FOR": "gpu-for", "GPU-DFOR": "gpu-dfor", "GPU-RFOR": "gpu-rfor"}
_CASCADES = {
    "FOR+BitPack": "gpu-for",
    "Delta+FOR+BitPack": "gpu-dfor",
    "RLE+FOR+BitPack": "gpu-rfor",
}


def run(
    n: int = 1_000_000,
    bitwidths: tuple[int, ...] = FIG7_BITWIDTHS,
    seed: int = 0,
) -> list[dict]:
    """One row per bitwidth with a time and a rate column per scheme."""
    scale = PAPER_N_FIG7 / n
    rows = []
    for bits in bitwidths:
        data = uniform_bitwidth(bits, n, seed)
        row: dict = {"bitwidth": bits}

        device = GPUDevice()
        ms = read_uncompressed(n, device, write_back=True)
        overhead = device.spec.kernel_launch_us / 1000.0
        row["time None"] = (ms - overhead) * scale + overhead
        row["rate None"] = 32.0

        nsf = get_codec("nsf")
        enc = nsf.encode(data)
        device = GPUDevice()
        from repro.core.cascade import decompress_cascaded as _casc

        report = _casc(enc, device)
        row["time NSF"] = report.scaled_ms(scale)
        row["rate NSF"] = enc.bits_per_int

        encodings = {}
        for label, codec_name in _TILE_CODECS.items():
            enc = get_codec(codec_name).encode(data)
            encodings[label] = enc
            device = GPUDevice()
            report = decompress(enc, device, write_back=True)
            row[f"time {label}"] = report.scaled_ms(scale)
            row[f"rate {label}"] = enc.bits_per_int

        for label, codec_name in _CASCADES.items():
            enc = encodings[_label_of(codec_name)]
            device = GPUDevice()
            report = decompress_cascaded(enc, device)
            row[f"time {label}"] = report.scaled_ms(scale)

        rows.append(row)
    return rows


def _label_of(codec_name: str) -> str:
    for label, name in _TILE_CODECS.items():
        if name == codec_name:
            return label
    raise KeyError(codec_name)


def time_rows(rows: list[dict]) -> list[dict]:
    """Project the Figure 7a columns out of :func:`run`'s rows."""
    return [
        {"bitwidth": r["bitwidth"], **{s: r[f"time {s}"] for s in TIME_SERIES}}
        for r in rows
    ]


def rate_rows(rows: list[dict]) -> list[dict]:
    """Project the Figure 7b columns out of :func:`run`'s rows."""
    return [
        {"bitwidth": r["bitwidth"], **{s: r[f"rate {s}"] for s in RATE_SERIES}}
        for r in rows
    ]


def main() -> None:
    rows = run()
    print_experiment("E4: Figure 7a — decompression time (ms, 250M ints)", time_rows(rows))
    print_experiment("E5: Figure 7b — compression rate (bits per int)", rate_rows(rows))


if __name__ == "__main__":
    main()
