"""Claims check — does tile-based decompression obsolete the planner?

Section 1: tile-based decompression "eliminates the need for sophisticated
compression planners used by past works, since instead of balancing the
trade-off between decompression time and compression ratio, we can simply
choose the scheme with the best compression ratio — all schemes achieve
similar performance."

This experiment makes that argument quantitative.  For a set of column
shapes it measures, for every GPU-* scheme, the compression ratio and the
decompression time under (a) the cascading execution model and (b) the
tile-based model, then reports:

* the *time spread* between the fastest and slowest scheme — large under
  cascading (the planner's reason to exist), small under tile-based;
* the *regret* of best-ratio selection: how much slower the
  smallest-footprint scheme decodes than the fastest scheme.  Near zero
  under the tile-based model, i.e. picking by ratio is safe.
"""

from __future__ import annotations

import numpy as np

from repro.core.cascade import decompress_cascaded
from repro.core.tile_decompress import decompress
from repro.experiments.common import PAPER_N_FIG7, print_experiment
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.workloads.synthetic import d1_sorted, runs, uniform_bitwidth

SCHEMES = ("gpu-for", "gpu-dfor", "gpu-rfor")


def _columns(n: int, seed: int) -> dict[str, np.ndarray]:
    return {
        "uniform-16bit": uniform_bitwidth(16, n, seed),
        "sorted-dense": d1_sorted(n // 2, n, seed),
        "runs-avg16": runs(16, n, distinct=1000, seed=seed),
    }


def run(n: int = 400_000, seed: int = 0) -> list[dict]:
    """Per column: scheme times under both models + selection regret."""
    scale = PAPER_N_FIG7 / n
    rows = []
    for name, data in _columns(n, seed).items():
        sizes: dict[str, float] = {}
        tile_ms: dict[str, float] = {}
        cascade_ms: dict[str, float] = {}
        for scheme in SCHEMES:
            enc = get_codec(scheme).encode(data)
            sizes[scheme] = enc.bits_per_int
            tile_ms[scheme] = decompress(enc, GPUDevice(), write_back=True).scaled_ms(scale)
            cascade_ms[scheme] = decompress_cascaded(enc, GPUDevice()).scaled_ms(scale)

        best_ratio = min(sizes, key=sizes.__getitem__)
        rows.append(
            {
                "column": name,
                "best_ratio_scheme": best_ratio,
                # spread: slowest / fastest scheme under each model.
                "cascade_time_spread": max(cascade_ms.values()) / min(cascade_ms.values()),
                "tile_time_spread": max(tile_ms.values()) / min(tile_ms.values()),
                # regret: cost of picking by ratio instead of by speed.
                "cascade_regret": cascade_ms[best_ratio] / min(cascade_ms.values()),
                "tile_regret": tile_ms[best_ratio] / min(tile_ms.values()),
            }
        )
    return rows


def main() -> None:
    rows = run()
    print_experiment(
        "Claims check — §1: tile-based decompression makes pick-by-ratio "
        "safe (regret ~1), while cascading decoding has a real trade-off",
        rows,
    )


if __name__ == "__main__":
    main()
