"""E9 — Figure 9: the SSB compression waterfall.

Column-by-column compressed sizes of every ``lineorder`` column under
None, Planner, GPU-BP, nvCOMP, and GPU-*, plus the mean.  Paper headline:
GPU-* reduces the total footprint 2.8x vs None, beats GPU-BP by ~50% and
Planner by ~40%, and edges nvCOMP by ~2%.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SF, PAPER_SF, print_experiment
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.loader import load_lineorder
from repro.ssb.schema import LINEORDER_COLUMNS

#: Systems in the figure's bar order.
FIG9_SYSTEMS = ("none", "planner", "gpu-bp", "nvcomp", "gpu-star")


def run(db: SSBDatabase | None = None, sf: float = DEFAULT_SF) -> list[dict]:
    """Column sizes in MB, projected to the paper's SF=20."""
    if db is None:
        db = generate(scale_factor=sf)
    project = PAPER_SF / db.scale_factor
    stores = {system: load_lineorder(db, system) for system in FIG9_SYSTEMS}

    rows = []
    for column in LINEORDER_COLUMNS:
        row: dict = {"column": column}
        for system in FIG9_SYSTEMS:
            row[system] = stores[system][column].nbytes * project / 1e6
        row["gpu-star scheme"] = stores["gpu-star"][column].codec_name
        rows.append(row)
    mean_row: dict = {"column": "mean"}
    for system in FIG9_SYSTEMS:
        mean_row[system] = sum(r[system] for r in rows) / len(rows)
    mean_row["gpu-star scheme"] = ""
    rows.append(mean_row)
    return rows


def summary(rows: list[dict]) -> dict[str, float]:
    """Total-footprint ratios the paper quotes in the text."""
    totals = {
        system: sum(r[system] for r in rows if r["column"] != "mean")
        for system in FIG9_SYSTEMS
    }
    return {
        "none_over_gpu_star": totals["none"] / totals["gpu-star"],
        "gpu_bp_over_gpu_star": totals["gpu-bp"] / totals["gpu-star"],
        "planner_over_gpu_star": totals["planner"] / totals["gpu-star"],
        "nvcomp_over_gpu_star": totals["nvcomp"] / totals["gpu-star"],
    }


def main() -> None:
    rows = run()
    print_experiment("E9: Figure 9 — SSB column sizes (MB at SF=20)", rows)
    s = summary(rows)
    print(
        "\nfootprint ratios vs GPU-*:"
        f" none {s['none_over_gpu_star']:.2f}x (paper 2.8x),"
        f" gpu-bp {s['gpu_bp_over_gpu_star']:.2f}x (paper ~1.5x),"
        f" planner {s['planner_over_gpu_star']:.2f}x (paper ~1.4x),"
        f" nvcomp {s['nvcomp_over_gpu_star']:.2f}x (paper ~1.02x)"
    )


if __name__ == "__main__":
    main()
