"""Serving-layer workload driver: a mixed query/lookup mix through
:class:`~repro.serving.QueryServer` under a constrained device budget.

The scenario the ROADMAP's north star implies: many clients, one GPU,
a device budget deliberately smaller than the decoded working set, so
the :class:`~repro.serving.ColumnPool` must evict decoded images while
queries stream through.  The driver reports throughput against the
*simulated* serving clock, latency percentiles, and the pool's hit and
eviction counters — the numbers ``BENCH_serving.json`` pins as the
perf baseline for future PRs.
"""

from __future__ import annotations

import numpy as np

from repro.engine.ssb_queries import QUERIES
from repro.serving.metrics import metrics_rows
from repro.serving.scheduler import QueryServer, ServeRequest
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.loader import load_lineorder

#: Queries the mixed workload draws from (one per SSB flight shape).
QUERY_MIX = ("q1.1", "q2.1", "q3.1", "q4.1", "q1.3", "q3.4")
#: Columns point lookups target.
LOOKUP_COLUMNS = ("lo_revenue", "lo_extendedprice", "lo_quantity")


def build_workload(
    num_requests: int,
    num_rows: int,
    seed: int = 0,
    lookup_fraction: float = 0.25,
    lookup_points: int = 64,
) -> list[ServeRequest]:
    """A reproducible mixed stream of SSB queries and point lookups."""
    rng = np.random.default_rng(seed)
    requests: list[ServeRequest] = []
    for _ in range(num_requests):
        if rng.random() < lookup_fraction:
            column = str(rng.choice(LOOKUP_COLUMNS))
            indices = rng.integers(0, num_rows, size=lookup_points)
            requests.append(ServeRequest("lookup", column, indices=indices))
        else:
            requests.append(ServeRequest("query", str(rng.choice(QUERY_MIX))))
    return requests


def decoded_working_set_bytes(db: SSBDatabase) -> int:
    """Bytes of every decoded image the query mix can materialize."""
    columns = {c for name in QUERY_MIX for c in QUERIES[name].columns}
    return len(columns) * db.num_lineorder_rows * 8


def run(
    db: SSBDatabase | None = None,
    scale_factor: float = 0.01,
    num_requests: int = 80,
    budget_fraction: float = 0.4,
    seed: int = 0,
    batch_window: int = 8,
    max_queue: int = 32,
) -> dict:
    """Serve the mixed workload; returns a summary dict.

    ``budget_fraction`` sizes the pool at the compressed store plus that
    fraction of the decoded working set — below 1.0 the pool *must*
    evict decoded images to complete the workload.
    """
    if db is None:
        db = generate(scale_factor=scale_factor, seed=7)
    store = load_lineorder(db, "gpu-star")
    decoded_ws = decoded_working_set_bytes(db)
    budget = store.total_bytes + int(decoded_ws * budget_fraction)

    server = QueryServer(
        db, store, budget_bytes=budget,
        max_queue=max_queue, batch_window=batch_window,
    )
    requests = build_workload(num_requests, db.num_lineorder_rows, seed=seed)
    results = server.serve(requests)

    snapshot = server.metrics_snapshot()
    ok = [r for r in results if r.ok]
    clock_ms = server.clock_ms
    hits = snapshot.get("pool_hits", 0)
    misses = snapshot.get("pool_misses", 0)
    return {
        "num_requests": num_requests,
        "served": len(ok),
        "timeouts": sum(1 for r in results if r.status == "timeout"),
        "rejected": sum(1 for r in results if r.status == "rejected"),
        "budget_bytes": budget,
        "decoded_working_set_bytes": decoded_ws,
        "compressed_bytes": store.total_bytes,
        "simulated_ms": clock_ms,
        "throughput_qps": len(ok) / (clock_ms / 1000.0) if clock_ms else 0.0,
        "latency_p50_ms": snapshot.get("latency_ms_p50", 0.0),
        "latency_p99_ms": snapshot.get("latency_ms_p99", 0.0),
        "latency_mean_ms": snapshot.get("latency_ms_mean", 0.0),
        "pool_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "pool_evictions": snapshot.get("pool_evictions", 0),
        "pool_peak_resident_bytes": snapshot.get("pool_peak_resident_bytes", 0.0),
        "batches": snapshot.get("server_batches", 0),
        "batched_requests": snapshot.get("server_batched_requests", 0),
        "metrics": snapshot,
    }


def summary_rows(summary: dict) -> list[dict]:
    """The one-line report row the serving section renders."""
    return [
        {
            "requests": summary["num_requests"],
            "served": summary["served"],
            "budget_MB": summary["budget_bytes"] / 1e6,
            "throughput_qps": summary["throughput_qps"],
            "p50_ms": summary["latency_p50_ms"],
            "p99_ms": summary["latency_p99_ms"],
            "hit_rate": summary["pool_hit_rate"],
            "evictions": summary["pool_evictions"],
            "peak_resident_MB": summary["pool_peak_resident_bytes"] / 1e6,
        }
    ]


def main() -> None:  # pragma: no cover - CLI convenience
    summary = run()
    for row in summary_rows(summary):
        print(row)
    for row in metrics_rows(summary["metrics"]):
        print(f"  {row['metric']}: {row['value']}")


if __name__ == "__main__":  # pragma: no cover
    main()
