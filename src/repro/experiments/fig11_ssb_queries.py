"""E12 — Figure 11: end-to-end SSB query performance across systems.

All 13 SSB queries on OmniSci, Planner, GPU-BP, nvCOMP, GPU-*, and None.
Paper headlines (geomean): None is 1.35x faster than GPU-* in-memory;
GPU-* beats Planner / GPU-BP / nvCOMP by 4x / 2.4x / 2.6x and OmniSci by
12x.  Every system must return identical query answers.
"""

from __future__ import annotations

from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.experiments.common import DEFAULT_SF, PAPER_SF, geomean, print_experiment
from repro.gpusim.executor import GPUDevice
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.loader import load_lineorder

#: Systems in the figure's bar order.
FIG11_SYSTEMS = ("omnisci", "planner", "gpu-bp", "nvcomp", "gpu-star", "none")

#: Paper's geomean slowdowns relative to GPU-*.
PAPER_RATIOS = {
    "omnisci": 12.0,
    "planner": 4.0,
    "gpu-bp": 2.4,
    "nvcomp": 2.6,
    "gpu-star": 1.0,
    "none": 1 / 1.35,
}


def run(
    db: SSBDatabase | None = None,
    sf: float = DEFAULT_SF,
    systems: tuple[str, ...] = FIG11_SYSTEMS,
    check_answers: bool = True,
) -> list[dict]:
    """One row per query with a per-system time column (ms at SF=20)."""
    if db is None:
        db = generate(scale_factor=sf)
    scale = PAPER_SF / db.scale_factor
    times: dict[str, dict[str, float]] = {}
    answers: dict[str, dict[str, dict]] = {}
    for system in systems:
        store = load_lineorder(db, system)
        times[system] = {}
        answers[system] = {}
        for qname, query in QUERIES.items():
            engine = CrystalEngine(db, store, GPUDevice())
            result = engine.run(query)
            times[system][qname] = result.scaled_ms(scale)
            answers[system][qname] = result.groups

    if check_answers:
        reference = answers[systems[0]]
        for system in systems[1:]:
            if answers[system] != reference:
                raise AssertionError(
                    f"system {system!r} disagrees with {systems[0]!r} on query answers"
                )

    rows = []
    for qname in QUERIES:
        rows.append({"query": qname, **{s: times[s][qname] for s in systems}})
    rows.append(
        {"query": "geomean", **{s: geomean(times[s].values()) for s in systems}}
    )
    return rows


def ratios(rows: list[dict]) -> list[dict]:
    """Geomean slowdowns relative to GPU-* next to the paper's."""
    geo = next(r for r in rows if r["query"] == "geomean")
    return [
        {
            "system": system,
            "geomean_ms": geo[system],
            "vs_gpu_star": geo[system] / geo["gpu-star"],
            "paper": PAPER_RATIOS.get(system, float("nan")),
        }
        for system in rows[0]
        if system != "query"
    ]


def main() -> None:
    rows = run()
    print_experiment("E12: Figure 11 — SSB query times (ms at SF=20)", rows)
    print_experiment("Figure 11 geomean ratios", ratios(rows))


if __name__ == "__main__":
    main()
