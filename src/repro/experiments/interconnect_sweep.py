"""Extension — how long does the coprocessor win last as links improve?

Figure 12's 2.3x speedup rests on a 12.8 GB/s PCIe 3 link.  Interconnects
have improved fast (PCIe 4/5, NVLink), squeezing the transfer share of
query time; this sweep reruns the coprocessor experiment across link
generations to locate where compression's transfer benefit stops paying
for its decode overhead.

Expected shape: the speedup decays monotonically from ~2.6x at PCIe 3
toward the in-memory ratio (~1/1.35 = 0.74x None-vs-GPU-*, i.e. slightly
*below* 1) as the link approaches memory bandwidth — compression's win in
the coprocessor regime is precisely a slow-link phenomenon, which is the
paper's framing read in reverse.
"""

from __future__ import annotations

from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.experiments.common import DEFAULT_SF, PAPER_SF, geomean, print_experiment
from repro.gpusim.executor import GPUDevice
from repro.gpusim.spec import PCIeSpec
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.loader import load_lineorder

#: Link generations swept (GB/s).
LINKS = {
    "PCIe3 x16": 12.8,
    "PCIe4 x16": 25.0,
    "PCIe5 x16": 50.0,
    "NVLink2": 150.0,
    "NVLink4": 450.0,
}

#: One query per flight, as in Figure 12.
SWEEP_QUERIES = ("q1.1", "q2.1", "q3.1", "q4.1")


def run(db: SSBDatabase | None = None, sf: float = DEFAULT_SF) -> list[dict]:
    """Coprocessor speedup (None/GPU-*) per link generation."""
    if db is None:
        db = generate(scale_factor=sf)
    project = PAPER_SF / db.scale_factor
    stores = {s: load_lineorder(db, s) for s in ("none", "gpu-star")}

    # Execution time is link-independent; compute it once per system.
    exec_ms: dict[str, dict[str, float]] = {}
    for system, store in stores.items():
        exec_ms[system] = {}
        for qname in SWEEP_QUERIES:
            engine = CrystalEngine(db, store, GPUDevice())
            exec_ms[system][qname] = engine.run(QUERIES[qname]).scaled_ms(project)

    rows = []
    for link, gbps in LINKS.items():
        pcie = PCIeSpec(bandwidth_gbps=gbps)
        speedups = []
        row: dict = {"link": link, "GBps": gbps}
        for qname in SWEEP_QUERIES:
            query = QUERIES[qname]
            totals = {}
            for system, store in stores.items():
                shipped = int(
                    sum(store[c].nbytes for c in query.columns) * project
                )
                totals[system] = pcie.transfer_ms(shipped) + exec_ms[system][qname]
            speedups.append(totals["none"] / totals["gpu-star"])
        row["speedup"] = geomean(speedups)
        rows.append(row)
    return rows


def main() -> None:
    print_experiment(
        "Extension — coprocessor speedup vs interconnect generation "
        "(paper's 2.3x is the PCIe3 row)",
        run(),
    )


if __name__ == "__main__":
    main()
