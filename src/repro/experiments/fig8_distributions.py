"""E6/E7/E8 (+E16) — Figure 8: robustness across data distributions.

Three distributions, each with compression rate and decompression time:

* **D1** (a, b): sorted arrays with 4 .. 2^28 unique values; compares
  None, NSF, GPU-FOR, GPU-DFOR, GPU-RFOR, and plain RLE.  Includes the
  Section 5.1 observation that fully-unique sorted keys cost GPU-DFOR
  ~1.8 bits/int vs ~7.8 for GPU-FOR (E16).
* **D2** (c, d): normal with sigma 20 and mean 2^8 .. 2^28; FOR absorbs
  the mean so the bit-aligned schemes win ~3x beyond 2^16.
* **D3** (e, f): Zipfian dictionary codes with alpha 1.2 .. 5; adds NSV,
  which adapts to skew but decodes slowest.
"""

from __future__ import annotations

import numpy as np

from repro.core.cascade import decompress_cascaded
from repro.core.tile_decompress import decompress, read_uncompressed
from repro.experiments.common import PAPER_N_FIG7, print_experiment
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.workloads.synthetic import (
    D1_UNIQUE_COUNTS,
    D2_MEANS,
    D3_ALPHAS,
    d1_sorted,
    d2_normal,
    d3_zipf,
)

_TILE = ("GPU-FOR", "GPU-DFOR", "GPU-RFOR")
_CODEC = {"GPU-FOR": "gpu-for", "GPU-DFOR": "gpu-dfor", "GPU-RFOR": "gpu-rfor"}


def _measure(label: str, data: np.ndarray, scale: float, schemes: tuple[str, ...]) -> dict:
    row: dict = {}
    device = GPUDevice()
    ms = read_uncompressed(data.size, device, write_back=True)
    overhead = device.spec.kernel_launch_us / 1000.0
    row["rate None"] = 32.0
    row["time None"] = (ms - overhead) * scale + overhead
    for scheme in schemes:
        if scheme in _CODEC:
            enc = get_codec(_CODEC[scheme]).encode(data)
            device = GPUDevice()
            report = decompress(enc, device, write_back=True)
        else:  # nsf / nsv / rle decode with their cascade kernels
            enc = get_codec(scheme.lower()).encode(data)
            device = GPUDevice()
            report = decompress_cascaded(enc, device)
        row[f"rate {scheme}"] = enc.bits_per_int
        row[f"time {scheme}"] = report.scaled_ms(scale)
    return row


def run_d1(n: int = 1_000_000, unique_counts=D1_UNIQUE_COUNTS, seed: int = 0) -> list[dict]:
    """Figure 8 (a, b): sorted data, swept cardinality."""
    scale = PAPER_N_FIG7 / n
    rows = []
    for uc in unique_counts:
        data = d1_sorted(uc, n, seed)
        row = {"unique_count": uc}
        row.update(_measure("d1", data, scale, ("NSF", *_TILE, "RLE")))
        rows.append(row)
    return rows


def run_d2(n: int = 1_000_000, means=D2_MEANS, seed: int = 0) -> list[dict]:
    """Figure 8 (c, d): normal data, swept mean."""
    scale = PAPER_N_FIG7 / n
    rows = []
    for mean in means:
        data = d2_normal(mean, n, seed=seed)
        row = {"mean": mean}
        row.update(_measure("d2", data, scale, ("NSF", "GPU-FOR", "GPU-DFOR")))
        rows.append(row)
    return rows


def run_d3(n: int = 1_000_000, alphas=D3_ALPHAS, seed: int = 0) -> list[dict]:
    """Figure 8 (e, f): Zipfian data, swept skew."""
    scale = PAPER_N_FIG7 / n
    rows = []
    for alpha in alphas:
        data = d3_zipf(alpha, n, seed=seed)
        row = {"alpha": alpha}
        row.update(_measure("d3", data, scale, ("NSF", "NSV", "GPU-FOR", "GPU-DFOR")))
        rows.append(row)
    return rows


def run_sorted_keys(n: int = 1_000_000) -> dict:
    """E16 — Section 5.1: bits/int on fully-unique sorted keys.

    Paper: GPU-DFOR 1.8 vs GPU-FOR 7.8 vs GPU-RFOR 8 bits per int.
    """
    data = np.arange(1, n + 1, dtype=np.int64)
    return {
        scheme: get_codec(_CODEC[scheme]).encode(data).bits_per_int
        for scheme in _TILE
    }


def main() -> None:
    print_experiment("E6: Figure 8(a,b) — D1 sorted, swept cardinality", run_d1())
    print_experiment("E7: Figure 8(c,d) — D2 normal, swept mean", run_d2())
    print_experiment("E8: Figure 8(e,f) — D3 Zipf, swept alpha", run_d3())
    keys = run_sorted_keys()
    print_experiment(
        "E16: Section 5.1 — sorted unique keys (paper: DFOR 1.8, FOR 7.8, RFOR 8)",
        [{"scheme": k, "bits_per_int": v} for k, v in keys.items()],
    )


if __name__ == "__main__":
    main()
