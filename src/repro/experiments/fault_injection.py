"""Fault-injection experiment: the corruption matrix plus a faulted server.

Extension beyond the paper: the SIGMOD'22 system assumes bytes arriving
on the GPU are exactly the bytes the encoder produced.  This driver
measures what the hardened container actually buys — every registry
codec is pushed through a seeded corruption matrix (payload bit flips,
metadata bit flips, truncation, length mutation) and each outcome is
classified:

* **detected** — decode raised :class:`~repro.formats.validate.CorruptTileError`;
* **clean** — decode returned values bit-identical to the original
  (the flipped bit landed in padding or a dead byte — harmless);
* **silent** — decode returned *wrong values without an error*.  The
  acceptance bar is zero.

The second half runs a fault-injected :class:`~repro.serving.QueryServer`
episode — transient decode failures plus one persistently corrupted
column — and reports the retry / re-decode / quarantine counters, proving
the serving path degrades gracefully instead of crashing or lying.
"""

from __future__ import annotations

import numpy as np

from repro.formats import (
    CorruptTileError,
    checked_decode,
    set_checksums,
    set_verify_mode,
)
from repro.formats.container import encode_with_checksums
from repro.formats.registry import codec_names
from repro.serving.faults import FAULT_MODES, FaultInjector
from repro.serving.metrics import metrics_rows
from repro.serving.scheduler import QueryServer, ServeRequest
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.loader import load_lineorder

#: Seeds the matrix replays (keep small: |codecs| x |modes| x |seeds| cells).
DEFAULT_SEEDS = (0, 1, 2)


def _sample_column(rng: np.random.Generator, n: int = 4096) -> np.ndarray:
    """A codec-friendly column: clustered values with a few outliers."""
    values = rng.integers(1000, 5000, size=n).astype(np.int64)
    outliers = rng.integers(0, n, size=max(1, n // 256))
    values[outliers] = rng.integers(0, 1 << 30, size=outliers.size)
    return values


def corruption_matrix(seeds=DEFAULT_SEEDS, n: int = 4096) -> dict:
    """Run every registry codec through every fault mode for each seed."""
    prev_checks = set_checksums(True)
    prev_mode = set_verify_mode("always")
    try:
        cells = []
        detected = clean = silent = 0
        for codec_name in codec_names():
            for seed in seeds:
                rng = np.random.default_rng(seed)
                values = _sample_column(rng, n)
                enc = encode_with_checksums(
                    codec_name, values, column=f"col-{codec_name}"
                )
                for mode_idx, mode in enumerate(FAULT_MODES):
                    injector = FaultInjector(seed=seed * 1009 + mode_idx)
                    bad = injector.corrupt_copy(enc, mode)
                    outcome = "silent"
                    try:
                        got = checked_decode(bad, column=f"col-{codec_name}")
                        if got.shape == values.shape and np.array_equal(
                            np.asarray(got, dtype=np.int64), values
                        ):
                            outcome = "clean"
                    except CorruptTileError:
                        outcome = "detected"
                    if outcome == "detected":
                        detected += 1
                    elif outcome == "clean":
                        clean += 1
                    else:
                        silent += 1
                    cells.append(
                        {"codec": codec_name, "mode": mode, "seed": seed,
                         "outcome": outcome}
                    )
        return {
            "cells": len(cells),
            "detected": detected,
            "clean": clean,
            "silent": silent,
            "silent_cells": [c for c in cells if c["outcome"] == "silent"],
            "per_codec": _per_codec(cells),
        }
    finally:
        set_checksums(prev_checks)
        set_verify_mode(prev_mode)


def _per_codec(cells: list[dict]) -> dict:
    out: dict[str, dict] = {}
    for cell in cells:
        row = out.setdefault(
            cell["codec"], {"detected": 0, "clean": 0, "silent": 0}
        )
        row[cell["outcome"]] += 1
    return out


def faulted_serving_episode(
    db: SSBDatabase | None = None,
    scale_factor: float = 0.01,
    seed: int = 0,
) -> dict:
    """One fault-injected server run: transients + a corrupt column."""
    prev_checks = set_checksums(True)
    prev_mode = set_verify_mode("lazy")
    try:
        if db is None:
            db = generate(scale_factor=scale_factor, seed=7)
        store = load_lineorder(db, "gpu-star")
        injector = FaultInjector(seed=seed)
        # Persistently corrupt one q1.1 column at the source.
        injector.corrupt(store["lo_discount"].payload, "payload-bit")

        server = QueryServer(db, store, max_retries=3)
        server.engine.fault_hook = injector.transient_faults(
            columns=["lo_orderdate"], times=1
        )
        requests = [
            ServeRequest("query", "q1.1"),   # corrupt column -> quarantine
            ServeRequest("query", "q2.1"),   # healthy, transient on shared dim
            ServeRequest("query", "q3.1"),   # healthy
        ]
        results = server.serve(requests)
        # A second wave against the quarantined column is answered with a
        # structured error without touching the engine.
        results += server.serve([ServeRequest("query", "q1.1")])
        snapshot = server.metrics_snapshot()
        statuses = [r.status for r in results]
        return {
            "statuses": statuses,
            "ok": statuses.count("ok"),
            "errors": statuses.count("error"),
            "quarantined": server.quarantined_columns(),
            "transient_retries": snapshot.get("server_transient_retries", 0),
            "checksum_failures": snapshot.get("server_checksum_failures", 0),
            "corruption_redecodes": snapshot.get("server_corruption_redecodes", 0),
            "quarantines": snapshot.get("server_quarantines", 0),
            "quarantine_rejections": snapshot.get(
                "server_quarantine_rejections", 0
            ),
            "metrics": snapshot,
        }
    finally:
        set_checksums(prev_checks)
        set_verify_mode(prev_mode)


def run(seeds=DEFAULT_SEEDS, scale_factor: float = 0.01) -> dict:
    """Corruption matrix + faulted serving episode; returns a summary."""
    matrix = corruption_matrix(seeds=seeds)
    episode = faulted_serving_episode(scale_factor=scale_factor)
    return {"matrix": matrix, "serving": episode}


def summary_rows(summary: dict) -> list[dict]:
    matrix = summary["matrix"]
    episode = summary["serving"]
    rows = [
        {
            "section": "matrix",
            "cells": matrix["cells"],
            "detected": matrix["detected"],
            "clean": matrix["clean"],
            "silent": matrix["silent"],
        },
        {
            "section": "serving",
            "ok": episode["ok"],
            "errors": episode["errors"],
            "transient_retries": episode["transient_retries"],
            "redecodes": episode["corruption_redecodes"],
            "quarantines": episode["quarantines"],
            "rejections": episode["quarantine_rejections"],
        },
    ]
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    summary = run()
    for row in summary_rows(summary):
        print(row)
    matrix = summary["matrix"]
    for codec, counts in sorted(matrix["per_codec"].items()):
        print(f"  {codec}: {counts}")
    if matrix["silent"]:
        print("  SILENT CORRUPTION CELLS:")
        for cell in matrix["silent_cells"]:
            print(f"    {cell}")
    for row in metrics_rows(summary["serving"]["metrics"]):
        print(f"  {row['metric']}: {row['value']}")


if __name__ == "__main__":  # pragma: no cover
    main()
