"""E13 — Figure 12: GPU as a coprocessor (data shipped over PCIe).

One query per flight (q1.1, q2.1, q3.1, q4.1) with the fact columns
resident on the host: each query first transfers the columns it needs
over the 12.8 GB/s PCIe link, then decompresses/executes on the GPU.
Transfer time dominates, so the speedup of GPU-* over None approaches the
compression ratio of the shipped columns — the paper reports 2.3x.
"""

from __future__ import annotations

from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.experiments.common import DEFAULT_SF, PAPER_SF, geomean, print_experiment
from repro.gpusim.executor import GPUDevice
from repro.gpusim.spec import V100
from repro.ssb.dbgen import SSBDatabase, generate
from repro.ssb.loader import load_lineorder

#: One query per SSB flight, as in the paper.
COPROCESSOR_QUERIES = ("q1.1", "q2.1", "q3.1", "q4.1")


def run(db: SSBDatabase | None = None, sf: float = DEFAULT_SF) -> list[dict]:
    """Transfer + execution time per query for None and GPU-*."""
    if db is None:
        db = generate(scale_factor=sf)
    project = PAPER_SF / db.scale_factor
    stores = {system: load_lineorder(db, system) for system in ("none", "gpu-star")}

    rows = []
    for qname in COPROCESSOR_QUERIES:
        query = QUERIES[qname]
        row: dict = {"query": qname}
        for system, store in stores.items():
            shipped = sum(store[c].nbytes for c in query.columns)
            # Transfer priced at the projected (SF=20) size directly: the
            # PCIe model is linear with a fixed per-transfer latency.
            transfer_ms = V100.pcie.transfer_ms(int(shipped * project))
            engine = CrystalEngine(db, store, GPUDevice())
            result = engine.run(query)
            row[system] = transfer_ms + result.scaled_ms(project)
            row[f"{system} transfer"] = transfer_ms
        row["speedup"] = row["none"] / row["gpu-star"]
        rows.append(row)
    rows.append(
        {
            "query": "geomean",
            "none": geomean(r["none"] for r in rows),
            "gpu-star": geomean(r["gpu-star"] for r in rows),
            "speedup": geomean(r["speedup"] for r in rows),
        }
    )
    return rows


def main() -> None:
    rows = run()
    print_experiment(
        "E13: Figure 12 — coprocessor model (ms at SF=20; paper speedup 2.3x)",
        rows,
        columns=["query", "none", "gpu-star", "speedup"],
    )


if __name__ == "__main__":
    main()
