"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig11            # run one (prefix match)
    python -m repro all                  # run every experiment
    python -m repro report [path]        # write a Markdown results report
                                         # (--full for EXPERIMENTS.md sizes)
"""

from __future__ import annotations

import sys

from repro.experiments import (
    ablation_miniblocks,
    ablation_vertical,
    compiler_workload,
    compression_speed,
    fault_injection,
    fig5_blocks_per_tb,
    fig7_bitwidths,
    fig8_distributions,
    fig9_ssb_compression,
    fig10_decompression,
    fig11_ssb_queries,
    fig12_coprocessor,
    interconnect_sweep,
    lightweight_vs_entropy,
    multigpu_scaling,
    sharding_workload,
    opt_ladder,
    pushdown_sweep,
    random_access,
    related_work,
    semcache_workload,
    sensitivity_gpu,
    serving_workload,
    streaming_scan,
    tiering_workload,
)

EXPERIMENTS = {
    "opt_ladder": (opt_ladder, "E1  — §4.2 optimization ladder"),
    "fig5": (fig5_blocks_per_tb, "E2  — Figure 5: D sweep"),
    "ablation_vertical": (ablation_vertical, "E3  — §4.3 vertical layout"),
    "ablation_miniblocks": (ablation_miniblocks, "§4.3 miniblocks vs single bitwidth"),
    "fig7": (fig7_bitwidths, "E4/E5 — Figure 7: bitwidth sweep"),
    "fig8": (fig8_distributions, "E6-E8 — Figure 8: distributions"),
    "fig9": (fig9_ssb_compression, "E9  — Figure 9: SSB compression"),
    "fig10": (fig10_decompression, "E10/E11 — Figure 10: decompression"),
    "fig11": (fig11_ssb_queries, "E12 — Figure 11: SSB queries"),
    "fig12": (fig12_coprocessor, "E13 — Figure 12: coprocessor"),
    "random_access": (random_access, "E14 — §8 random access"),
    "compression_speed": (compression_speed, "E15 — §8 compression speed"),
    "sensitivity": (sensitivity_gpu, "extension — V100 vs A100"),
    "related_work": (related_work, "extension — VByte/PFOR/Simple-8b vs GPU-FOR"),
    "pushdown": (pushdown_sweep, "extension — metadata tile skipping vs selectivity"),
    "interconnect": (interconnect_sweep, "extension — coprocessor speedup vs link generation"),
    "multigpu": (multigpu_scaling, "extension — sharded SSB scan scaling"),
    "entropy": (lightweight_vs_entropy, "claims — §2.2: lightweight captures most gains"),
    "serving": (serving_workload, "extension — serving layer: pool + scheduler under load"),
    "streaming": (streaming_scan, "extension — morsel streaming vs materialized execution"),
    "semcache": (semcache_workload, "extension — semantic result cache: drill-down reuse"),
    "faults": (fault_injection, "extension — corruption matrix + fault-injected serving"),
    "sharding": (sharding_workload, "extension — sharded serving: tile-range shards + zone-map routing"),
    "tiering": (tiering_workload, "extension — workload-adaptive codec tiering vs static planner"),
    "compiler": (compiler_workload, "extension — star-schema query compiler vs hand-written flights"),
}


def _usage() -> int:
    print(__doc__)
    return 2


def main(argv: list[str]) -> int:
    """Dispatch the CLI: list / run / all / report (returns an exit code)."""
    if not argv:
        return _usage()
    command = argv[0]

    if command == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"  {name:22s} {description}")
        return 0

    if command == "all":
        for name, (module, _) in EXPERIMENTS.items():
            print(f"\n##### {name} #####")
            module.main()
        return 0

    if command == "report":
        from repro.reporting import write_report

        path = "results.md"
        if len(argv) > 1 and not argv[1].startswith("-"):
            path = argv[1]
        quick = "--full" not in argv
        write_report(path, quick=quick)
        print(f"wrote {path} (quick={quick})")
        return 0

    if command == "run":
        if len(argv) < 2:
            return _usage()
        query = argv[1]
        matches = [n for n in EXPERIMENTS if n == query] or [
            n for n in EXPERIMENTS if n.startswith(query)
        ]
        if len(matches) != 1:
            print(f"unknown or ambiguous experiment {query!r}; try 'list'")
            return 2
        EXPERIMENTS[matches[0]][0].main()
        return 0

    return _usage()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
