"""Behavioural model of nvCOMP's cascaded compression (the strongest
baseline in Sections 9.4-9.5).

nvCOMP supports the same logical cascade (RLE / delta / frame-of-reference
/ bit-packing) as the paper's schemes, so its compression ratios track
GPU-* closely; the paper measures GPU-* only ~2% smaller, attributable to
nvCOMP's per-chunk metadata.  What nvCOMP lacks is (1) a bit-unpack kernel
that saturates memory bandwidth and (2) any way to pipeline multiple
decompression layers with each other or with query execution — every
layer is its own kernel pass.

The model therefore reuses our bit-exact formats for the payload, adds
per-chunk metadata overhead, and decodes with the cascading executor at
reduced unpack efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tile_decompress import DecompressionReport
from repro.formats.base import EncodedColumn
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice

#: Values per nvCOMP chunk (batches are compressed independently).
CHUNK_VALUES = 2048
#: Metadata bytes per chunk (sizes, scheme tags, chunk offsets).
CHUNK_METADATA_BYTES = 64
#: Fraction of peak bandwidth nvCOMP's bit-unpack kernel achieves.
UNPACK_EFFICIENCY = 0.55

#: nvCOMP cascade configurations and the format each maps onto.
SCHEMES: dict[str, str] = {
    "for-bitpack": "gpu-for",
    "delta-for-bitpack": "gpu-dfor",
    "rle-for-bitpack": "gpu-rfor",
}


@dataclass
class NvCompColumn:
    """One column compressed with an nvCOMP cascade configuration."""

    scheme: str
    inner: EncodedColumn
    chunk_metadata_bytes: int

    @property
    def count(self) -> int:
        return self.inner.count

    @property
    def nbytes(self) -> int:
        return self.inner.nbytes + self.chunk_metadata_bytes

    @property
    def bits_per_int(self) -> float:
        if self.count == 0:
            return 0.0
        return self.nbytes * 8 / self.count


def encode_nvcomp(values: np.ndarray, scheme: str | None = None) -> NvCompColumn:
    """Compress ``values`` with an nvCOMP cascade.

    Args:
        values: 1-D integer array.
        scheme: one of :data:`SCHEMES`; when omitted, every configuration
            is tried and the smallest wins (nvCOMP's auto-selector).
    """
    values = np.asarray(values)
    if scheme is not None:
        if scheme not in SCHEMES:
            raise ValueError(f"unknown nvCOMP scheme {scheme!r}")
        candidates = [scheme]
    else:
        candidates = list(SCHEMES)

    n_chunks = max(1, -(-values.size // CHUNK_VALUES))
    overhead = n_chunks * CHUNK_METADATA_BYTES
    best: NvCompColumn | None = None
    for name in candidates:
        inner = get_codec(SCHEMES[name]).encode(values)
        col = NvCompColumn(scheme=name, inner=inner, chunk_metadata_bytes=overhead)
        if best is None or col.nbytes < best.nbytes:
            best = col
    assert best is not None
    return best


def decode_nvcomp(col: NvCompColumn) -> np.ndarray:
    """Decompress (bit-exact)."""
    return get_codec(SCHEMES[col.scheme]).decode(col.inner)


def _nvcomp_passes(col: NvCompColumn) -> list[tuple[str, int, int, int]]:
    """nvCOMP's kernel passes as (name, read_bytes, write_bytes, ops).

    nvCOMP fuses more aggressively than the academic layer-per-kernel
    cascade (its delta scan adds the reference in the same kernel, its RLE
    expand is a single searchsorted-style pass), but every layer still
    round-trips through global memory and the bit-unpack kernel runs below
    bandwidth saturation.  The read bytes of unpack passes are already
    inflated by ``1 / UNPACK_EFFICIENCY``.
    """
    inner = col.inner
    n = inner.count
    decoded = n * 4
    comp = int(inner.nbytes / UNPACK_EFFICIENCY)
    if col.scheme == "for-bitpack":
        return [
            ("unpack", comp, decoded, n * 9),
            ("add-reference", decoded, decoded, n * 2),
        ]
    if col.scheme == "delta-for-bitpack":
        return [
            ("unpack", comp, decoded, n * 9),
            # Decoupled-lookback scan with the FOR reference folded in.
            ("delta-scan", 2 * decoded, decoded, n * 5),
        ]
    # rle-for-bitpack: unpack both streams, scan the lengths, then one
    # expand pass that binary-searches each output row's run.
    n_runs = int(inner.arrays["run_counts"].astype("int64").sum())
    runs_bytes = n_runs * 4
    return [
        ("unpack-values", comp // 2, runs_bytes, n_runs * 9),
        ("unpack-lengths", comp // 2, runs_bytes, n_runs * 9),
        ("scan-lengths", 2 * runs_bytes, runs_bytes, n_runs * 5),
        ("rle-expand", decoded + runs_bytes, decoded, n * 7),
    ]


def decompress_nvcomp(col: NvCompColumn, device: GPUDevice) -> DecompressionReport:
    """Decode with nvCOMP's execution model: one kernel per cascade layer,
    bit-unpack below memory-bandwidth saturation."""
    before = device.elapsed_ms
    passes = _nvcomp_passes(col)
    grid = max(1, -(-col.count // 128))
    for name, read_bytes, write_bytes, ops in passes:
        with device.launch(
            f"nvcomp-{col.scheme}-{name}",
            grid_blocks=grid,
            block_threads=128,
            registers_per_thread=28,
        ) as k:
            if read_bytes:
                k.read_linear(read_bytes)
            if write_bytes:
                k.write_linear(write_bytes)
            k.compute(ops)
    return DecompressionReport(
        values=decode_nvcomp(col),
        simulated_ms=device.elapsed_ms - before,
        kernel_count=len(passes),
        compressed_bytes=col.nbytes,
        output_bytes=col.count * 4,
        launch_overhead_ms=len(passes) * device.spec.kernel_launch_us / 1000.0,
    )
