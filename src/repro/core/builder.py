"""Streaming column encoding: build compressed columns batch by batch.

Loading pipelines rarely hold a whole column in memory at once; they
append record batches.  Because every GPU-FOR-family block encodes
independently, batches can be compressed incrementally: the builder
buffers rows until whole blocks are available, encodes them, and splices
the per-batch encodings into one :class:`EncodedColumn` at finalize time
— bit-identical to a one-shot encode of the concatenated input (tested),
while holding only O(batch) raw data.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import EncodedColumn
from repro.formats.gpufor import (
    BLOCK,
    MINIBLOCKS_PER_BLOCK,
    GpuFor,
    pack_blocks,
)


class GpuForBuilder:
    """Incrementally builds a GPU-FOR column from appended batches.

    Usage::

        builder = GpuForBuilder()
        for batch in batches:
            builder.append(batch)
        enc = builder.finish()
    """

    def __init__(self, d_blocks: int = 4):
        if d_blocks < 1:
            raise ValueError(f"d_blocks must be >= 1, got {d_blocks}")
        self._d_blocks = d_blocks
        self._pending = np.zeros(0, dtype=np.int64)
        self._data_parts: list[np.ndarray] = []
        self._block_words: list[np.ndarray] = []
        self._count = 0
        self._finished = False
        self._dtype: np.dtype | None = None

    @property
    def count(self) -> int:
        """Rows appended so far."""
        return self._count

    @property
    def compressed_bytes_so_far(self) -> int:
        """Bytes already encoded (excludes the pending partial block)."""
        return sum(p.nbytes for p in self._data_parts)

    def append(self, values: np.ndarray) -> None:
        """Append a batch of rows."""
        if self._finished:
            raise RuntimeError("builder already finished")
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("append expects a 1-D integer array")
        if self._dtype is None and values.size:
            self._dtype = values.dtype
        self._count += values.size
        self._pending = np.concatenate([self._pending, values.astype(np.int64)])
        self._flush_whole_blocks()

    def _flush_whole_blocks(self) -> None:
        whole = (self._pending.size // BLOCK) * BLOCK
        if whole == 0:
            return
        chunk, self._pending = self._pending[:whole], self._pending[whole:]
        data, starts, _ = pack_blocks(chunk)
        self._data_parts.append(data)
        self._block_words.append(np.diff(starts.astype(np.int64)))

    def finish(self) -> EncodedColumn:
        """Seal the column; returns the complete encoding.

        Bit-identical to ``GpuFor(d_blocks).encode`` of the concatenated
        batches (the trailing partial block is padded the same way).
        """
        if self._finished:
            raise RuntimeError("builder already finished")
        self._finished = True
        if self._pending.size:
            pad = (-self._pending.size) % BLOCK
            padded = np.concatenate(
                [self._pending, np.full(pad, self._pending[-1], dtype=np.int64)]
            )
            data, starts, _ = pack_blocks(padded)
            self._data_parts.append(data)
            self._block_words.append(np.diff(starts.astype(np.int64)))

        if self._data_parts:
            data = np.concatenate(self._data_parts)
            words = np.concatenate(self._block_words)
        else:
            data = np.zeros(0, dtype=np.uint32)
            words = np.zeros(0, dtype=np.int64)
        block_starts = np.zeros(words.size + 1, dtype=np.int64)
        np.cumsum(words, out=block_starts[1:])
        if block_starts.size and int(block_starts[-1]) >= 2**32:
            raise ValueError("column too large: block start offsets exceed 32 bits")

        header = np.array([self._count, BLOCK, MINIBLOCKS_PER_BLOCK], dtype=np.uint32)
        return EncodedColumn(
            codec=GpuFor.name,
            count=self._count,
            arrays={
                "header": header,
                "block_starts": block_starts.astype(np.uint32),
                "data": data,
            },
            meta={"d_blocks": self._d_blocks},
            dtype=self._dtype if self._dtype is not None else np.dtype(np.int64),
        )
