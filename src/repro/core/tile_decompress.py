"""Tile-based decompression: the paper's single-pass execution model.

A tile codec's entire cascade (bit-unpack, add reference, prefix sum, RLE
expand) runs inside **one kernel**: each thread block stages its tile's
compressed bytes in shared memory, decodes there, and either writes the
decoded tile back to global memory (the Figure 7a benchmark) or hands it
straight to query logic (inline decompression, Section 7).

The module also implements the Section 4.2 **optimization ladder** as
execution profiles, so the 18 ms -> 7 ms -> 2.39 ms -> 2.1 ms progression
of the paper can be replayed on the simulator:

====  =======================================================
opt   behaviour
====  =======================================================
0     base Algorithm 1: per-thread gathers straight from
      global memory, no shared-memory staging
1     Optimization 1: tile staged in shared memory, one data
      block per thread block (D = 1)
2     Optimization 2: D data blocks per thread block
3     Optimization 3: miniblock offsets precomputed by the
      first D*4 threads (the default, what the paper ships)
====  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import EncodedColumn, TileCodec
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice

#: Extra per-element ops of the redundant miniblock-offset for-loop that
#: optimization 3 eliminates (lines 8-11 of Algorithm 1).
_OFFSET_LOOP_OPS = 4.0
#: Per-element ops of the base algorithm: offset loop plus per-thread
#: header/block-start resolution that later optimizations amortize.
_BASE_OPS = 25.0
#: Bytes of the unaligned window each thread loads in the base algorithm
#: (an 8-byte straddle, line 15 of Algorithm 1).
_BASE_WINDOW_BYTES = 8


@dataclass
class DecompressionReport:
    """Outcome of decompressing one encoded column on the simulator."""

    values: np.ndarray
    simulated_ms: float
    kernel_count: int
    compressed_bytes: int
    output_bytes: int
    #: Fixed launch overhead included in ``simulated_ms`` (all kernels).
    launch_overhead_ms: float = 0.0

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Decoded output bytes per simulated second (paper's speed metric)."""
        if self.simulated_ms == 0:
            return 0.0
        return self.output_bytes / (self.simulated_ms * 1e6)

    def scaled_ms(self, scale: float) -> float:
        """Simulated time for a ``scale``x larger dataset.

        Traffic and compute grow linearly with the element count, but the
        per-launch overhead is fixed, so experiments run at a reduced size
        and project to the paper's 250M/500M-element datasets with this.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return (self.simulated_ms - self.launch_overhead_ms) * scale + self.launch_overhead_ms


def _resolve(enc: EncodedColumn, codec: TileCodec | None) -> TileCodec:
    if codec is None:
        codec = get_codec(enc.codec)
    if not isinstance(codec, TileCodec):
        raise TypeError(
            f"codec {enc.codec!r} does not satisfy the tile properties; "
            "use repro.core.cascade.decompress_cascaded instead"
        )
    return codec


def _with_d(enc: EncodedColumn, d_blocks: int) -> EncodedColumn:
    """A shallow view of ``enc`` with a different execution-time D."""
    return EncodedColumn(
        codec=enc.codec,
        count=enc.count,
        arrays=enc.arrays,
        meta={**enc.meta, "d_blocks": d_blocks},
        dtype=enc.dtype,
    )


def decompress(
    enc: EncodedColumn,
    device: GPUDevice,
    codec: TileCodec | None = None,
    write_back: bool = True,
    opt_level: int = 3,
) -> DecompressionReport:
    """Decode an encoded column in a single simulated kernel pass.

    Args:
        enc: the compressed column.
        device: simulated GPU to account the launch on.
        codec: codec instance; resolved from the registry when omitted.
        write_back: write the decoded values to global memory (the
            Figure 7a benchmark does; inline query execution does not).
        opt_level: Section 4.2 optimization ladder level, 0-3 (see module
            docstring).  Levels 0 and 1 are only meaningful for codecs
            whose D is an execution parameter (GPU-FOR, GPU-BP); for
            GPU-DFOR/GPU-RFOR the tile granularity is part of the format.

    Returns:
        A :class:`DecompressionReport` with the decoded values and the
        simulated time of the launch.
    """
    codec = _resolve(enc, codec)
    if not 0 <= opt_level <= 3:
        raise ValueError(f"opt_level must be 0..3, got {opt_level}")
    if opt_level <= 1 and enc.codec not in ("gpu-for", "gpu-bp"):
        raise ValueError(
            f"opt levels 0/1 re-run the Section 4.2 ladder and only apply "
            f"to execution-level-D codecs, not {enc.codec!r}"
        )

    before = device.elapsed_ms
    n = enc.count
    output_bytes = n * 4

    if opt_level == 0:
        _launch_base_algorithm(enc, device, write_back)
    else:
        exec_enc = _with_d(enc, 1) if opt_level == 1 else enc
        res = codec.kernel_resources(exec_enc)
        ops_per_element = res.compute_ops_per_element
        if opt_level < 3:
            ops_per_element += _OFFSET_LOOP_OPS
        n_tiles = codec.num_tiles(exec_enc)
        with device.launch(
            f"decode-{enc.codec}",
            grid_blocks=max(1, n_tiles),
            block_threads=128,
            registers_per_thread=res.registers_per_thread,
            shared_mem_per_block=res.shared_mem_per_block,
        ) as k:
            k.read_segments(*codec.tile_segments(exec_enc))
            if write_back:
                k.write_linear(output_bytes)
            k.compute(int(ops_per_element * n + res.tile_prologue_ops * n_tiles))
            k.shared(int(res.shared_bytes_per_element * n))

    values = codec.decode(enc)
    return DecompressionReport(
        values=values,
        simulated_ms=device.elapsed_ms - before,
        kernel_count=1,
        compressed_bytes=enc.nbytes,
        output_bytes=output_bytes,
        launch_overhead_ms=device.spec.kernel_launch_us / 1000.0,
    )


def _launch_base_algorithm(
    enc: EncodedColumn, device: GPUDevice, write_back: bool
) -> None:
    """Algorithm 1 without any optimization: every thread gathers its own
    8-byte window, block start, and header word from global memory."""
    n = enc.count
    n_blocks = max(1, -(-n // 128))
    with device.launch(
        f"decode-{enc.codec}-base",
        grid_blocks=n_blocks,
        block_threads=128,
        registers_per_thread=24,
        shared_mem_per_block=0,
    ) as k:
        k.read_gather(n, _BASE_WINDOW_BYTES)
        if write_back:
            k.write_linear(n * 4)
        k.compute(int(_BASE_OPS * n))


def read_uncompressed(
    count: int, device: GPUDevice, write_back: bool = False, element_bytes: int = 4
) -> float:
    """Simulate scanning an uncompressed column (the ``None`` baseline).

    Returns the simulated milliseconds of the sweep; with ``write_back``
    the kernel is a device-to-device copy instead of a pure read.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    before = device.elapsed_ms
    nbytes = count * element_bytes
    with device.launch(
        "scan-uncompressed",
        grid_blocks=max(1, -(-count // 512)),
        block_threads=128,
        registers_per_thread=16,
        shared_mem_per_block=0,
    ) as k:
        k.read_linear(nbytes)
        if write_back:
            k.write_linear(nbytes)
        k.compute(count)
    return device.elapsed_ms - before
