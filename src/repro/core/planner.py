"""The compression-planner baseline (Fang et al. [18] / HippogriffDB).

The planner composes the five classic lightweight schemes — RLE, DELTA,
DICT as logical layers and byte-aligned NSF/NSV as the physical layer —
and picks, per column, the plan with the best compression ratio.  It does
**not** support bit-packing (Section 9.4), which is why it loses badly on
large-random-integer columns like ``lo_extendedprice``, and it decodes
with the cascading layer-at-a-time model.

Our planner evaluates every candidate plan by its actual encoded size
rather than estimating from statistics; this is the strongest version of
the baseline (a stats-driven planner can only do worse).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.base import CascadePass, EncodedColumn
from repro.formats.nsf import Nsf
from repro.formats.nsv import Nsv
from repro.formats.rle import encode_runs
from repro.gpusim.executor import GPUDevice
from repro.core.tile_decompress import DecompressionReport

#: Logical layer / physical layer combinations the planner considers.
CANDIDATE_PLANS: tuple[tuple[str | None, str], ...] = (
    (None, "none"),
    (None, "nsf"),
    (None, "nsv"),
    ("rle", "nsf"),
    ("rle", "nsv"),
    ("delta", "nsf"),
    ("dict", "nsf"),
    ("dict", "nsv"),
)

_TERMINALS = {"nsf": Nsf, "nsv": Nsv}


@dataclass
class PlannedColumn:
    """A column compressed under one planner plan."""

    logical: str | None
    terminal: str
    count: int
    dtype: np.dtype
    #: Terminal-encoded integer parts ("data", or "values"+"lengths", ...).
    parts: dict[str, EncodedColumn] = field(default_factory=dict)
    #: Extra uncompressed arrays (dictionary entries, raw fallback data).
    extras: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return sum(p.nbytes for p in self.parts.values()) + sum(
            a.nbytes for a in self.extras.values()
        )

    @property
    def bits_per_int(self) -> float:
        if self.count == 0:
            return 0.0
        return self.nbytes * 8 / self.count

    @property
    def plan_name(self) -> str:
        if self.logical is None:
            return self.terminal
        return f"{self.logical}+{self.terminal}"


def encode_with_plan(
    values: np.ndarray, logical: str | None, terminal: str
) -> PlannedColumn:
    """Compress ``values`` under an explicit (logical, terminal) plan.

    Raises:
        ValueError: when the plan cannot represent the data (e.g. NSV on
            negative deltas); the planner skips such candidates.
    """
    values = np.asarray(values)
    col = PlannedColumn(
        logical=logical, terminal=terminal, count=values.size, dtype=values.dtype
    )
    if terminal == "none":
        if logical is not None:
            raise ValueError("the raw fallback takes no logical layer")
        col.extras["data"] = values.astype(np.int32)
        return col
    term = _TERMINALS[terminal]()

    if logical is None:
        col.parts["data"] = term.encode(values)
    elif logical == "delta":
        v = values.astype(np.int64)
        deltas = np.zeros(v.size, dtype=np.int64)
        if v.size:
            deltas[0] = v[0]
            deltas[1:] = v[1:] - v[:-1]
        col.parts["data"] = term.encode(deltas)
    elif logical == "rle":
        run_values, run_lengths = encode_runs(values)
        col.parts["values"] = term.encode(run_values)
        col.parts["lengths"] = term.encode(run_lengths)
    elif logical == "dict":
        dictionary, codes = np.unique(values.astype(np.int64), return_inverse=True)
        col.extras["dictionary"] = dictionary.astype(np.int32)
        col.parts["codes"] = term.encode(codes)
    else:
        raise ValueError(f"unknown logical layer {logical!r}")
    return col


def decode_planned(col: PlannedColumn) -> np.ndarray:
    """Decompress a planned column (bit-exact)."""
    if col.terminal == "none":
        return col.extras["data"].astype(col.dtype)
    term = _TERMINALS[col.terminal]()
    if col.logical is None:
        return term.decode(col.parts["data"]).astype(col.dtype)
    if col.logical == "delta":
        deltas = term.decode(col.parts["data"]).astype(np.int64)
        return np.cumsum(deltas).astype(col.dtype)
    if col.logical == "rle":
        run_values = term.decode(col.parts["values"]).astype(np.int64)
        run_lengths = term.decode(col.parts["lengths"]).astype(np.int64)
        return np.repeat(run_values, run_lengths).astype(col.dtype)
    if col.logical == "dict":
        codes = term.decode(col.parts["codes"]).astype(np.int64)
        return col.extras["dictionary"][codes].astype(col.dtype)
    raise ValueError(f"unknown logical layer {col.logical!r}")


def plan_column(values: np.ndarray) -> PlannedColumn:
    """Pick the candidate plan with the smallest footprint for ``values``."""
    best: PlannedColumn | None = None
    for logical, terminal in CANDIDATE_PLANS:
        try:
            candidate = encode_with_plan(values, logical, terminal)
        except ValueError:
            continue
        if best is None or candidate.nbytes < best.nbytes:
            best = candidate
    assert best is not None  # the raw fallback always succeeds
    return best


def plan_from_stats(stats) -> tuple[str | None, str]:
    """Fang et al.'s actual selection style: pick a plan from column
    statistics without trial encoding.

    The published planner consults sortedness, average run length, and
    distinct count (Section 2.2); this mirrors those rules.  It can only
    do as well as :func:`plan_column` (the oracle) — the difference is
    measured in ``tests/test_planner_nvcomp_hybrid.py``.

    Args:
        stats: a :class:`repro.core.stats.ColumnStats`.

    Returns:
        A ``(logical, terminal)`` pair accepted by :func:`encode_with_plan`.
    """
    if stats.count == 0:
        return (None, "nsf")
    if stats.avg_run_length >= 3.0:
        return ("rle", "nsf")
    if stats.is_sorted and stats.distinct_count > stats.count // 64:
        return ("delta", "nsf")
    if stats.distinct_count <= 2**16 and stats.raw_bits > 16:
        return ("dict", "nsf")
    # Plain null suppression: fixed-width when a byte width fits snugly,
    # variable-width when the value magnitudes are spread out.
    if stats.raw_bits <= 8 or stats.raw_bits <= 16:
        return (None, "nsf")
    return (None, "nsv")


def plan_column_stats(values: np.ndarray) -> PlannedColumn:
    """Stats-driven planning: derive the plan from statistics, then encode.

    Falls back to raw storage when the chosen plan cannot represent the
    data (e.g. NSV over negative values).
    """
    from repro.core.stats import ColumnStats

    logical, terminal = plan_from_stats(ColumnStats.from_values(values))
    try:
        return encode_with_plan(values, logical, terminal)
    except ValueError:
        return encode_with_plan(values, None, "none")


def decode_cost_estimate(payload, device: GPUDevice) -> float:
    """Per-codec decode cost in simulated ms — the planner's shared hook.

    One cost model serves every consumer: stats-driven planning, the
    serving pool's eviction scoring, and the codec-tiering manager all
    price "what does re-materializing this column cost?" here, so a tier
    decision and an eviction decision can never disagree about a codec's
    decode expense.

    Dispatches on the payload's representation:

    * tile-decodable :class:`~repro.formats.base.EncodedColumn` — the
      one-pass tile decompression launch, priced analytically by
      :class:`~repro.gpusim.timing.CostModel` (no device ledger touched);
    * :class:`PlannedColumn` / nvCOMP cascades — the layer-at-a-time
      kernel sequence replayed on a throwaway probe device with the same
      spec, since cascades have no single-launch closed form;
    * non-tile :class:`~repro.formats.base.EncodedColumn` — a bandwidth
      bound over compressed-in + decoded-out bytes;
    * anything else (raw storage) — 0.0: there is nothing to decode.
    """
    from repro.core.nvcomp import NvCompColumn, decompress_nvcomp
    from repro.formats.base import TileCodec
    from repro.formats.registry import get_codec
    from repro.gpusim.kernel import KernelLaunch, KernelSpec
    from repro.gpusim.timing import CostModel

    if isinstance(payload, PlannedColumn):
        return decompress_planned(payload, GPUDevice(spec=device.spec)).simulated_ms
    if isinstance(payload, NvCompColumn):
        return decompress_nvcomp(payload, GPUDevice(spec=device.spec)).simulated_ms
    if not isinstance(payload, EncodedColumn):
        return 0.0
    decoded_bytes = payload.count * 4
    codec = get_codec(payload.codec)
    if not isinstance(codec, TileCodec):
        spec = device.spec
        return (
            spec.kernel_launch_us / 1000.0
            + (payload.nbytes + decoded_bytes)
            / (spec.global_bandwidth_gbps * 1e9)
            * 1e3
        )
    res = codec.kernel_resources(payload)
    n_tiles = codec.num_tiles(payload)
    launch = KernelLaunch(
        spec=KernelSpec(
            name=f"estimate-decode-{payload.codec}",
            block_threads=128,
            registers_per_thread=res.registers_per_thread,
            shared_mem_per_block=res.shared_mem_per_block,
        ),
        grid_blocks=max(1, n_tiles),
        device_spec=device.spec,
    )
    launch.read_linear(payload.nbytes)
    launch.write_linear(decoded_bytes)
    launch.compute(
        int(
            res.compute_ops_per_element * payload.count
            + res.tile_prologue_ops * n_tiles
        )
    )
    launch.shared(int(res.shared_bytes_per_element * payload.count))
    return CostModel(device.spec).launch_time_ms(launch)


def _planned_passes(col: PlannedColumn) -> list[CascadePass]:
    """Kernel passes the cascading decompressor runs for this plan."""
    n = col.count
    passes: list[CascadePass] = []
    for name, part in col.parts.items():
        term = _TERMINALS[col.terminal]()
        for p in term.cascade_passes(part):
            passes.append(
                CascadePass(
                    name=f"{name}-{p.name}",
                    read_bytes=p.read_bytes,
                    write_bytes=p.write_bytes,
                    compute_ops=p.compute_ops,
                    gathers=p.gathers,
                    scatters=p.scatters,
                )
            )
    decoded_bytes = n * 4
    if col.logical == "delta":
        passes.append(
            CascadePass(
                name="prefix-sum",
                read_bytes=2 * decoded_bytes,
                write_bytes=decoded_bytes,
                compute_ops=n * 4,
            )
        )
    elif col.logical == "rle":
        n_runs = col.parts["values"].count
        runs_bytes = n_runs * 4
        passes.extend(
            [
                CascadePass("scan-lengths", 2 * runs_bytes, runs_bytes, n_runs * 4),
                CascadePass(
                    "scatter-flags", runs_bytes, decoded_bytes, n_runs * 2,
                    scatters=(n_runs, 4, decoded_bytes),
                ),
                CascadePass("scan-flags", 2 * decoded_bytes, decoded_bytes, n * 4),
                CascadePass(
                    "gather-values", decoded_bytes + runs_bytes, decoded_bytes, n * 2,
                    gathers=(n_runs, 4, runs_bytes),
                ),
            ]
        )
    elif col.logical == "dict":
        passes.append(
            CascadePass(
                name="dict-lookup",
                read_bytes=decoded_bytes,
                write_bytes=decoded_bytes,
                compute_ops=n,
                gathers=(col.extras["dictionary"].size, 4),
            )
        )
    if not passes:  # raw fallback: a straight copy out of the column
        passes.append(CascadePass("copy", decoded_bytes, decoded_bytes, n))
    return passes


def decompress_planned(col: PlannedColumn, device: GPUDevice) -> DecompressionReport:
    """Decode a planned column with the cascading execution model."""
    before = device.elapsed_ms
    passes = _planned_passes(col)
    grid = max(1, -(-col.count // 128))
    for p in passes:
        with device.launch(
            f"planner-{col.plan_name}-{p.name}",
            grid_blocks=grid,
            block_threads=128,
            registers_per_thread=24,
            shared_mem_per_block=0,
        ) as k:
            if p.read_bytes:
                k.read_linear(p.read_bytes)
            if p.gathers is not None:
                k.read_gather(*p.gathers)
            if p.scatters is not None:
                k.write_scatter(*p.scatters)
            if p.write_bytes:
                k.write_linear(p.write_bytes)
            if p.compute_ops:
                k.compute(p.compute_ops)
    return DecompressionReport(
        values=decode_planned(col),
        simulated_ms=device.elapsed_ms - before,
        kernel_count=len(passes),
        compressed_bytes=col.nbytes,
        output_bytes=col.count * 4,
        launch_overhead_ms=len(passes) * device.spec.kernel_launch_us / 1000.0,
    )
