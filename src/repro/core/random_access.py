"""Random access into tile-compressed columns (paper Section 8).

Bit-packed data has no per-element addressability: touching any element
means loading and decoding its whole tile.  The redeeming structure is the
``block_starts`` index — a tile's compressed bytes are locatable without
decoding anything else, so a *sparse* access pattern only pays for the
tiles it intersects.  Section 8 shows the consequences: below a
selectivity of ``1/TILE`` compressed access is nearly free, above it the
cost plateaus at one full decompression — which still undercuts
uncompressed random access, whose 128-byte line granularity makes it read
the whole column beyond selectivity ``1/32``.

This module is the executable form of that argument:
:func:`gather` fetches arbitrary row indices, :func:`filtered_scan`
applies a predicate bitvector — both decode only the tiles they must.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import EncodedColumn, TileCodec
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.gpusim.memory import linear_bytes

#: Cache-line granularity of uncompressed random access (Section 8).
CACHE_LINE_BYTES = 128


@dataclass
class RandomAccessReport:
    """Outcome of a sparse access into a compressed column."""

    values: np.ndarray
    simulated_ms: float
    tiles_touched: int
    tiles_total: int

    @property
    def tile_fraction(self) -> float:
        """Fraction of the column's tiles that had to be decoded."""
        if self.tiles_total == 0:
            return 0.0
        return self.tiles_touched / self.tiles_total


def _resolve(enc: EncodedColumn, codec: TileCodec | None) -> TileCodec:
    if codec is None:
        codec = get_codec(enc.codec)
    if not isinstance(codec, TileCodec):
        raise TypeError(f"codec {enc.codec!r} is not tile-decodable")
    return codec


def coalesce_tile_runs(tile_ids: np.ndarray) -> list[tuple[int, int]]:
    """Group sorted tile ids into maximal ``[first, last)`` runs.

    Adjacent requested tiles decode in one batched ``decode_range`` call
    instead of one Python-level ``decode_tile`` call each — the same
    amortization the paper's thread-block grid gets for free.
    """
    tile_ids = np.asarray(tile_ids, dtype=np.int64)
    if tile_ids.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(tile_ids) > 1)
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [tile_ids.size - 1]])
    return [
        (int(tile_ids[s]), int(tile_ids[e]) + 1) for s, e in zip(starts, ends)
    ]


def _per_tile_bytes(codec: TileCodec, enc: EncodedColumn, tx: int) -> np.ndarray:
    """Aligned read bytes per tile, from the codec's segment map."""
    starts, lengths = codec.tile_segments(enc)
    starts = starts.astype(np.int64)
    lengths = lengths.astype(np.int64)
    seg_bytes = np.zeros(starts.size, dtype=np.int64)
    nz = lengths > 0
    seg_bytes[nz] = ((starts[nz] + lengths[nz] - 1) // tx - starts[nz] // tx + 1) * tx
    n_tiles = codec.num_tiles(enc)
    return seg_bytes.reshape(-1, n_tiles).sum(axis=0)


def _touch_tiles(
    enc: EncodedColumn,
    codec: TileCodec,
    device: GPUDevice,
    active: np.ndarray,
    extra_read_bytes: int = 0,
) -> float:
    """Price one kernel that loads and decodes the active tiles."""
    before = device.elapsed_ms
    res = codec.kernel_resources(enc)
    per_tile = _per_tile_bytes(codec, enc, device.spec.transaction_bytes)
    tile_elems = codec.tile_elements(enc)
    touched = int(active.sum())
    with device.launch(
        f"random-access-{enc.codec}",
        grid_blocks=max(1, touched),
        block_threads=128,
        registers_per_thread=res.registers_per_thread,
        shared_mem_per_block=res.shared_mem_per_block,
    ) as k:
        k.traffic.read_bytes += int(per_tile[active].sum())
        if extra_read_bytes:
            k.read_linear(extra_read_bytes)
        k.compute(
            int(res.compute_ops_per_element * touched * tile_elems
                + res.tile_prologue_ops * touched)
        )
        k.shared(int(res.shared_bytes_per_element * touched * tile_elems))
    return device.elapsed_ms - before


def gather(
    enc: EncodedColumn,
    indices: np.ndarray,
    device: GPUDevice,
    codec: TileCodec | None = None,
) -> RandomAccessReport:
    """Fetch arbitrary row indices from a compressed column.

    Only tiles containing at least one requested index are read from
    global memory and decoded; the requested elements are then extracted
    from the decoded tiles.

    Args:
        enc: the compressed column.
        indices: row positions to fetch (any order, duplicates allowed).
        device: simulated GPU to account the kernel on.
        codec: codec instance; resolved from the registry when omitted.

    Returns:
        A :class:`RandomAccessReport` whose ``values[i]`` is the column
        value at ``indices[i]``.
    """
    codec = _resolve(enc, codec)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= enc.count):
        raise IndexError("gather index out of range")

    tile_elems = codec.tile_elements(enc)
    n_tiles = codec.num_tiles(enc)
    active = np.zeros(n_tiles, dtype=bool)
    tile_of = indices // tile_elems
    active[np.unique(tile_of)] = True

    ms = _touch_tiles(enc, codec, device, active, extra_read_bytes=indices.size * 8)

    values = np.empty(indices.size, dtype=enc.dtype)
    for t0, t1 in coalesce_tile_runs(np.flatnonzero(active)):
        sel = (tile_of >= t0) & (tile_of < t1)
        run_values = codec.decode_range(enc, t0, t1)
        values[sel] = run_values[indices[sel] - t0 * tile_elems]
    return RandomAccessReport(
        values=values,
        simulated_ms=ms,
        tiles_touched=int(active.sum()),
        tiles_total=n_tiles,
    )


def filtered_scan(
    enc: EncodedColumn,
    mask: np.ndarray,
    device: GPUDevice,
    codec: TileCodec | None = None,
) -> RandomAccessReport:
    """Return the selected elements of a compressed column.

    The Section 8 experiment's access pattern: a predicate bitvector marks
    the rows to materialize; tiles with no selected row are skipped
    entirely.

    Args:
        enc: the compressed column.
        mask: boolean selection vector of length ``enc.count``.
        device: simulated GPU to account the kernel on.
        codec: codec instance; resolved from the registry when omitted.

    Returns:
        A report whose ``values`` are the selected elements in row order.
    """
    codec = _resolve(enc, codec)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (enc.count,):
        raise ValueError("mask must cover every row of the column")

    tile_elems = codec.tile_elements(enc)
    n_tiles = codec.num_tiles(enc)
    padded = np.zeros(n_tiles * tile_elems, dtype=bool)
    padded[: enc.count] = mask
    active = padded.reshape(n_tiles, tile_elems).any(axis=1)

    # The bitvector itself is read once (1 bit per row).
    ms = _touch_tiles(enc, codec, device, active, extra_read_bytes=enc.count // 8)

    parts = []
    for t0, t1 in coalesce_tile_runs(np.flatnonzero(active)):
        run_values = codec.decode_range(enc, t0, t1)
        run_mask = padded[t0 * tile_elems : t0 * tile_elems + run_values.size]
        parts.append(run_values[run_mask])
    values = (
        np.concatenate(parts) if parts else np.zeros(0, dtype=enc.dtype)
    )
    return RandomAccessReport(
        values=values,
        simulated_ms=ms,
        tiles_touched=int(active.sum()),
        tiles_total=n_tiles,
    )


def uncompressed_filtered_scan_ms(
    count: int, selected: int, device: GPUDevice
) -> float:
    """Cost of the same filtered scan on an *uncompressed* column.

    Each selected row pulls a 128-byte cache line; beyond selectivity
    ~1/32 that touches every line, so the cost is capped at one full
    column sweep (Section 8).
    """
    if selected < 0 or selected > count:
        raise ValueError("selected must be in [0, count]")
    before = device.elapsed_ms
    with device.launch(
        "random-access-uncompressed", grid_blocks=max(1, count // 512)
    ) as k:
        k.traffic.read_bytes += min(
            selected * CACHE_LINE_BYTES,
            linear_bytes(count * 4, CACHE_LINE_BYTES),
        )
        k.read_linear(count // 8)
        k.compute(selected)
    return device.elapsed_ms - before
