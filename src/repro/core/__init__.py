"""The paper's primary contribution: tile-based decompression, the GPU-*
hybrid chooser, and the competing execution/selection models (cascading
decompression, the Fang et al. planner, nvCOMP)."""

from repro.core.analysis import (
    ColumnAnalysis,
    analyze_column,
    block_range_bound,
    delta_entropy,
    empirical_entropy,
)
from repro.core.builder import GpuForBuilder
from repro.core.cascade import decompress_cascaded
from repro.core.hybrid import GPU_STAR_SCHEMES, HybridChoice, choose_gpu_star, heuristic_scheme
from repro.core.nvcomp import (
    NvCompColumn,
    decode_nvcomp,
    decompress_nvcomp,
    encode_nvcomp,
)
from repro.core.planner import (
    PlannedColumn,
    decode_planned,
    decompress_planned,
    encode_with_plan,
    plan_column,
    plan_column_stats,
    plan_from_stats,
)
from repro.core.random_access import (
    RandomAccessReport,
    filtered_scan,
    gather,
    uncompressed_filtered_scan_ms,
)
from repro.core.stats import ColumnStats
from repro.core.tuning import DChoice, choose_d
from repro.core.updates import FlushReport, UpdatableColumn
from repro.core.tile_decompress import (
    DecompressionReport,
    decompress,
    read_uncompressed,
)

__all__ = [
    "ColumnAnalysis",
    "ColumnStats",
    "GpuForBuilder",
    "analyze_column",
    "block_range_bound",
    "delta_entropy",
    "empirical_entropy",
    "DChoice",
    "FlushReport",
    "RandomAccessReport",
    "UpdatableColumn",
    "choose_d",
    "filtered_scan",
    "gather",
    "uncompressed_filtered_scan_ms",
    "DecompressionReport",
    "GPU_STAR_SCHEMES",
    "HybridChoice",
    "NvCompColumn",
    "PlannedColumn",
    "choose_gpu_star",
    "decode_nvcomp",
    "decode_planned",
    "decompress",
    "decompress_cascaded",
    "decompress_nvcomp",
    "decompress_planned",
    "encode_nvcomp",
    "encode_with_plan",
    "heuristic_scheme",
    "plan_column",
    "plan_column_stats",
    "plan_from_stats",
    "read_uncompressed",
]
