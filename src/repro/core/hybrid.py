"""GPU-*: the per-column hybrid of GPU-FOR / GPU-DFOR / GPU-RFOR.

Section 8's rule of thumb: because tile-based decompression makes all
three schemes decode at similar (near-bandwidth) speed, there is no
compression-ratio/speed trade-off left to plan around — simply pick, per
column, the scheme with the smallest footprint.  This module implements
both that exact chooser and the stats-only heuristic the section
describes (sorted & high-NDV -> DFOR, low-NDV or long runs -> RFOR,
otherwise FOR).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats import ColumnStats
from repro.formats.base import EncodedColumn, TileCodec
from repro.formats.registry import get_codec

#: The schemes GPU-* chooses among.
GPU_STAR_SCHEMES: tuple[str, ...] = ("gpu-for", "gpu-dfor", "gpu-rfor")


@dataclass
class HybridChoice:
    """Outcome of GPU-* scheme selection for one column."""

    codec_name: str
    encoded: EncodedColumn
    #: Footprints of every candidate, for reporting.
    candidate_bytes: dict[str, int]

    @property
    def codec(self) -> TileCodec:
        codec = get_codec(self.codec_name)
        assert isinstance(codec, TileCodec)
        return codec


def choose_gpu_star(values: np.ndarray, d_blocks: int = 4) -> HybridChoice:
    """Encode with all three schemes and keep the smallest (Section 8)."""
    values = np.asarray(values)
    candidate_bytes: dict[str, int] = {}
    best_name = ""
    best_enc: EncodedColumn | None = None
    for name in GPU_STAR_SCHEMES:
        kwargs = {"d_blocks": d_blocks} if name != "gpu-rfor" else {}
        enc = get_codec(name, **kwargs).encode(values)
        candidate_bytes[name] = enc.nbytes
        if best_enc is None or enc.nbytes < best_enc.nbytes:
            best_name, best_enc = name, enc
    assert best_enc is not None
    return HybridChoice(
        codec_name=best_name, encoded=best_enc, candidate_bytes=candidate_bytes
    )


def heuristic_scheme(stats: ColumnStats) -> str:
    """Section 8's stats-only rule of thumb (no trial encoding).

    GPU-DFOR for sorted/semi-sorted high-cardinality columns, GPU-RFOR for
    low-cardinality or high-average-run-length columns, GPU-FOR otherwise.
    """
    if stats.count == 0:
        return "gpu-for"
    if stats.avg_run_length >= 4.0:
        return "gpu-rfor"
    if stats.distinct_count and stats.count / stats.distinct_count >= 64:
        return "gpu-rfor"
    if stats.is_sorted and stats.distinct_count > stats.count // 64:
        return "gpu-dfor"
    return "gpu-for"
