"""Cascading decompression: the layer-at-a-time baseline (Figure 2 left).

Prior GPU systems (Fang et al., HippogriffDB, nvCOMP) decode one
compression layer per kernel, writing every intermediate back to global
memory.  This module replays that execution model on the simulator: each
:class:`~repro.formats.base.CascadePass` a codec declares becomes one
priced kernel launch.

The contrast with :mod:`repro.core.tile_decompress` *is* the paper's
headline result — a cascade of depth X costs roughly X round trips here
and one there.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import ColumnCodec, EncodedColumn
from repro.formats.registry import get_codec
from repro.core.tile_decompress import DecompressionReport
from repro.gpusim.executor import GPUDevice


def decompress_cascaded(
    enc: EncodedColumn,
    device: GPUDevice,
    codec: ColumnCodec | None = None,
    unpack_efficiency: float = 1.0,
) -> DecompressionReport:
    """Decode an encoded column with one kernel launch per cascade layer.

    Args:
        enc: the compressed column.
        device: simulated GPU to account the launches on.
        codec: codec instance; resolved from the registry when omitted.
        unpack_efficiency: bandwidth efficiency of bit-unpack passes in
            (0, 1]; nvCOMP's unpack kernel does not saturate memory
            bandwidth (Section 2.2) and models as < 1.

    Returns:
        A :class:`DecompressionReport` covering all passes.
    """
    if codec is None:
        codec = get_codec(enc.codec)
    if not 0.0 < unpack_efficiency <= 1.0:
        raise ValueError(f"unpack_efficiency must be in (0, 1], got {unpack_efficiency}")

    before = device.elapsed_ms
    passes = codec.cascade_passes(enc)
    n = enc.count
    grid = max(1, -(-n // 128))
    for p in passes:
        inflate = 1.0
        if "unpack" in p.name and unpack_efficiency < 1.0:
            # A kernel that cannot saturate bandwidth takes longer for the
            # same bytes; charge the inverse efficiency as extra traffic.
            inflate = 1.0 / unpack_efficiency
        with device.launch(
            f"cascade-{enc.codec}-{p.name}",
            grid_blocks=grid,
            block_threads=128,
            registers_per_thread=24,
            shared_mem_per_block=0,
        ) as k:
            if p.read_bytes:
                k.read_linear(int(p.read_bytes * inflate))
            if p.read_segments is not None:
                starts, lengths = p.read_segments
                k.read_segments(starts, (np.asarray(lengths) * inflate).astype(np.int64))
            if p.gathers is not None:
                k.read_gather(*p.gathers)
            if p.scatters is not None:
                k.write_scatter(*p.scatters)
            if p.write_bytes:
                k.write_linear(p.write_bytes)
            if p.compute_ops:
                k.compute(p.compute_ops)

    values = codec.decode(enc)
    return DecompressionReport(
        values=values,
        simulated_ms=device.elapsed_ms - before,
        kernel_count=len(passes),
        compressed_bytes=enc.nbytes,
        output_bytes=n * 4,
        launch_overhead_ms=len(passes) * device.spec.kernel_launch_us / 1000.0,
    )
