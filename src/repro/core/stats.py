"""Column statistics used by the compression planners.

Both the Fang et al. planner baseline and the paper's own rule-of-thumb
(Section 8: GPU-DFOR for sorted high-NDV columns, GPU-RFOR for low-NDV or
high-run-length columns, GPU-FOR otherwise) decide from the same handful
of column properties; this module computes them once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ColumnStats:
    """Properties of an integer column that drive scheme selection."""

    count: int
    min_value: int
    max_value: int
    distinct_count: int
    is_sorted: bool
    avg_run_length: float
    #: Bits to represent the raw maximum (what plain bit-packing pays).
    raw_bits: int
    #: Bits to represent max - min (what FOR pays at whole-column scope).
    for_bits: int

    @classmethod
    def from_values(cls, values: np.ndarray) -> "ColumnStats":
        """Compute exact statistics for ``values`` (1-D integer array)."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("expected a 1-D integer array")
        n = values.size
        if n == 0:
            return cls(0, 0, 0, 0, True, 0.0, 0, 0)
        v = values.astype(np.int64)
        lo = int(v.min())
        hi = int(v.max())
        changes = int(np.count_nonzero(v[1:] != v[:-1])) + 1
        is_sorted = bool(np.all(v[1:] >= v[:-1]))
        distinct = int(np.unique(v).size)
        return cls(
            count=n,
            min_value=lo,
            max_value=hi,
            distinct_count=distinct,
            is_sorted=is_sorted,
            avg_run_length=n / changes,
            raw_bits=max(hi, 0).bit_length(),
            for_bits=(hi - lo).bit_length(),
        )
