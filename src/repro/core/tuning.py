"""Auto-tuning the D hyperparameter (paper Section 8).

``D`` — data blocks per thread block — is the schemes' only
hyperparameter.  The paper picks D=4 on the V100 by measurement and
predicts that future GPUs with more shared memory and registers will
sustain larger D.  Because the trade-off is pure resource arithmetic
(shared memory for staging + decoded tiles, registers for outputs, versus
amortizing per-tile overhead), it can be *derived* from the occupancy
model instead of swept: this module does exactly that, and the A100
sensitivity experiment confirms the paper's prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.occupancy import bandwidth_efficiency, compute_occupancy
from repro.gpusim.spec import GPUSpec

#: Candidate D values (powers of two, like the Figure 5 sweep).
D_CANDIDATES = (1, 2, 4, 8, 16, 32)

#: Resource model of the GPU-FOR-family decoder at a given D (matches
#: GpuFor.kernel_resources).
_BASE_REGISTERS = 12
_REGISTERS_PER_D = 2
_SMEM_PER_D = 128 * 4
_SMEM_FIXED = 256
_TILE_PROLOGUE_OPS = 5500.0
_OPS_PER_ELEMENT = 7.0


@dataclass(frozen=True)
class DChoice:
    """Outcome of the D auto-tuner."""

    d_blocks: int
    #: Modeled relative cost of each candidate (lower is better, best=1).
    scores: dict[int, float]
    #: Occupancy achieved by the chosen configuration.
    occupancy: float


def _relative_cost(
    spec: GPUSpec, d: int, output_columns: int, bits_per_int: float
) -> float:
    """Modeled per-element decode cost at D (arbitrary linear units).

    Combines (1) memory time for the compressed bytes, inflated by the
    coalescing waste of small tiles and deflated by achieved bandwidth
    efficiency, (2) per-tile prologue work amortized over D*128 elements,
    and (3) register-spill traffic — the same terms the simulator prices.
    """
    registers = _BASE_REGISTERS + _REGISTERS_PER_D * d * max(1, output_columns)
    smem = (_SMEM_PER_D * d + _SMEM_FIXED) * max(1, output_columns)
    occ = compute_occupancy(spec, 128, registers, smem)
    efficiency = bandwidth_efficiency(spec, occ.occupancy)

    compressed_bytes = bits_per_int / 8.0
    tile_bytes = d * 128 * compressed_bytes + 8.0  # + block_starts read
    # Coalescing waste: a tile read is rounded up to whole transactions.
    waste = (
        -(-tile_bytes // spec.transaction_bytes) * spec.transaction_bytes / tile_bytes
    )
    mem = compressed_bytes * waste / efficiency
    mem += occ.spilled_registers * 4 * 2 / d / 128  # spill bytes per element
    mem_time = mem / spec.global_bandwidth_gbps

    compute = _OPS_PER_ELEMENT + _TILE_PROLOGUE_OPS / (d * 128)
    compute_time = compute / (spec.int_throughput_gops * efficiency)
    return max(mem_time, compute_time)


def choose_d(
    spec: GPUSpec,
    output_columns: int = 1,
    bits_per_int: float = 16.0,
    candidates: tuple[int, ...] = D_CANDIDATES,
) -> DChoice:
    """Pick the best D for a device and workload shape.

    Args:
        spec: target GPU.
        output_columns: columns a query keeps live per thread (1 for pure
            decompression; SSB queries hold 3-4, which is why the paper
            settles on D=4 for query processing).
        bits_per_int: expected compressed density.
        candidates: D values to consider.

    Returns:
        The chosen D with the relative cost of every candidate.
    """
    if output_columns < 1:
        raise ValueError(f"output_columns must be >= 1, got {output_columns}")
    costs = {
        d: _relative_cost(spec, d, output_columns, bits_per_int)
        for d in candidates
    }
    best = min(costs, key=costs.__getitem__)
    best_cost = costs[best]
    registers = _BASE_REGISTERS + _REGISTERS_PER_D * best * max(1, output_columns)
    smem = (_SMEM_PER_D * best + _SMEM_FIXED) * max(1, output_columns)
    occ = compute_occupancy(spec, 128, registers, smem)
    return DChoice(
        d_blocks=best,
        scores={d: c / best_cost for d, c in costs.items()},
        occupancy=occ.occupancy,
    )
