"""Compression analytics: how close do the schemes get to entropy?

For a column store choosing among lightweight schemes, the useful
reference points are information-theoretic:

* the column's **empirical entropy** (bits/value of an order-0 model) —
  what dictionary/arithmetic coding could approach;
* the **block-local range bound** — log2(max-min+1) per 128-value block,
  the floor for any FOR + fixed-width packing scheme;
* the **delta entropy** — order-0 entropy of the successive differences,
  the floor for delta-based schemes on sorted data.

:func:`analyze_column` computes these next to every scheme's achieved
bits/int, quantifying the paper's implicit claim that lightweight
bit-packing captures "most of the compression gains" (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hybrid import GPU_STAR_SCHEMES
from repro.formats.gpufor import BLOCK, bit_length
from repro.formats.registry import get_codec


def empirical_entropy(values: np.ndarray) -> float:
    """Order-0 entropy in bits/value."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    _, counts = np.unique(values, return_counts=True)
    p = counts / values.size
    return float(-(p * np.log2(p)).sum())


def block_range_bound(values: np.ndarray, block: int = BLOCK) -> float:
    """Mean bits/value of per-block range coding: log2(max-min+1).

    The floor for any frame-of-reference + fixed-width scheme at this
    block granularity (GPU-FOR's miniblocks can dip below it on
    non-uniform blocks).
    """
    v = np.asarray(values, dtype=np.int64)
    if v.size == 0:
        return 0.0
    pad = (-v.size) % block
    if pad:
        v = np.concatenate([v, np.full(pad, v[-1], dtype=np.int64)])
    blocks = v.reshape(-1, block)
    spans = blocks.max(axis=1) - blocks.min(axis=1)
    return float(bit_length(spans).mean())


def delta_entropy(values: np.ndarray) -> float:
    """Order-0 entropy of the successive differences."""
    v = np.asarray(values, dtype=np.int64)
    if v.size < 2:
        return 0.0
    return empirical_entropy(np.diff(v))


@dataclass
class ColumnAnalysis:
    """Entropy reference points and per-scheme achieved bits/int."""

    count: int
    entropy_bits: float
    block_range_bits: float
    delta_entropy_bits: float
    achieved_bits: dict[str, float]

    @property
    def best_scheme(self) -> str:
        return min(self.achieved_bits, key=self.achieved_bits.__getitem__)

    @property
    def efficiency(self) -> float:
        """Entropy / best achieved bits — 1.0 means entropy-optimal.

        Can exceed 1.0 when run/delta structure lets a scheme beat the
        order-0 model (RLE on long runs, deltas on sorted data).
        """
        best = self.achieved_bits[self.best_scheme]
        if best == 0:
            return 1.0
        return self.entropy_bits / best


def analyze_column(
    values: np.ndarray, schemes: tuple[str, ...] = GPU_STAR_SCHEMES
) -> ColumnAnalysis:
    """Compute the reference bounds and each scheme's achieved bits/int."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("analyze_column expects a 1-D integer array")
    achieved = {
        name: get_codec(name).encode(values).bits_per_int for name in schemes
    }
    return ColumnAnalysis(
        count=values.size,
        entropy_bits=empirical_entropy(values),
        block_range_bits=block_range_bound(values),
        delta_entropy_bits=delta_entropy(values),
        achieved_bits=achieved,
    )
