"""Column updates and recompression (paper Section 8, "Compression Speed").

Compression is a one-time host-side activity — until data changes.  On an
update the paper's flow is: patch the host copy, recompress the column on
the CPU, ship the new compressed bytes over PCIe to replace the old ones.
:class:`UpdatableColumn` implements that lifecycle and accounts both the
real encode wall-time and the simulated transfer cost, so the examples
and benches can show what an update actually costs end to end.

Point updates are buffered: the compressed image plus a sparse overlay
stays queryable (reads consult the overlay), and :meth:`flush` folds the
overlay into a fresh encoding when the engine decides to pay for it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.hybrid import choose_gpu_star
from repro.formats.base import EncodedColumn
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice


@dataclass
class FlushReport:
    """Cost record of one recompression + re-upload."""

    encode_seconds: float
    transfer_ms: float
    compressed_bytes: int
    codec_name: str
    updates_applied: int


@dataclass
class UpdatableColumn:
    """A compressed, device-resident column that accepts point updates."""

    values: np.ndarray
    encoded: EncodedColumn = field(init=False)
    codec_name: str = field(init=False)
    _pending: dict[int, int] = field(init=False, default_factory=dict)
    _invalidation_hooks: list[Callable[["UpdatableColumn"], None]] = field(
        init=False, default_factory=list
    )

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.int64).copy()
        self._reencode()

    def add_invalidation_hook(
        self, hook: Callable[["UpdatableColumn"], None]
    ) -> None:
        """Call ``hook(self)`` after every flush re-encodes the column.

        Anything holding a derivative of the old encoding — an engine's
        decoded cache, a serving pool's residents — must re-read through
        a hook, or it keeps serving the pre-update bytes.
        """
        self._invalidation_hooks.append(hook)

    def _reencode(self) -> None:
        choice = choose_gpu_star(self.values)
        self.encoded = choice.encoded
        self.codec_name = choice.codec_name

    # -- reads ---------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def pending_updates(self) -> int:
        return len(self._pending)

    def read(self, index: int) -> int:
        """Current value at ``index`` (overlay wins over the encoding)."""
        if not 0 <= index < self.values.size:
            raise IndexError(f"index {index} out of range")
        if index in self._pending:
            return self._pending[index]
        return int(self.values[index])

    def snapshot(self) -> np.ndarray:
        """The column as a query would see it (encoding + overlay)."""
        out = get_codec(self.codec_name).decode(self.encoded).astype(np.int64)
        if self._pending:
            idx = np.fromiter(self._pending.keys(), dtype=np.int64)
            val = np.fromiter(self._pending.values(), dtype=np.int64)
            out[idx] = val
        return out

    # -- writes ----------------------------------------------------------------

    def update(self, index: int, value: int) -> None:
        """Buffer a point update (visible immediately, compressed later)."""
        if not 0 <= index < self.values.size:
            raise IndexError(f"index {index} out of range")
        self._pending[int(index)] = int(value)

    def update_many(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Buffer a batch of point updates."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if indices.shape != values.shape:
            raise ValueError("indices and values must align")
        if indices.size and (indices.min() < 0 or indices.max() >= self.values.size):
            raise IndexError("update index out of range")
        for i, v in zip(indices.tolist(), values.tolist()):
            self._pending[i] = v

    def flush(self, device: GPUDevice) -> FlushReport:
        """Fold pending updates in: recompress on the CPU, re-ship to GPU.

        Returns a :class:`FlushReport` with the measured encode time and
        the simulated PCIe transfer of the new compressed image.
        """
        applied = len(self._pending)
        if applied:
            idx = np.fromiter(self._pending.keys(), dtype=np.int64)
            val = np.fromiter(self._pending.values(), dtype=np.int64)
            self.values[idx] = val
            self._pending.clear()

        start = time.perf_counter()
        self._reencode()
        encode_seconds = time.perf_counter() - start

        transfer_ms = device.transfer_to_device(self.encoded.nbytes)
        for hook in self._invalidation_hooks:
            hook(self)
        return FlushReport(
            encode_seconds=encode_seconds,
            transfer_ms=transfer_ms,
            compressed_bytes=self.encoded.nbytes,
            codec_name=self.codec_name,
            updates_applied=applied,
        )
