"""Fused tile-streaming query execution with a morsel-parallel executor.

The paper's central claim (Sections 3 and 7) is that decompression is a
*device function*: a tile is decoded in shared memory and filtered,
probed and aggregated inline, so the full column never materializes in
global memory.  :class:`~repro.engine.crystal.CrystalEngine`'s default
path models the kernel accounting faithfully but executes host-side the
opposite way — ``column_values_pruned`` decodes whole columns into
column-length intermediates before :class:`FactPipeline` filters them.

This module executes the same plans tile-chunk-by-tile-chunk:

1. A **plan pass** runs the query function once against a zero-row proxy
   pipeline.  It builds (and prices) the dimension lookups exactly once,
   evaluates predicate pushdown against the full tile grid, and captures
   the fused kernel's resource footprint (registers, shared memory).
2. The surviving tiles are partitioned into contiguous **morsels** of
   ``morsel_tiles`` engine tiles.  Each morsel re-runs the query
   function against a morsel-scoped pipeline that decodes only its own
   chunk of each needed column — into a per-worker
   :class:`~repro.formats.base.DecodeArena` via ``decode_range_into``,
   so steady state allocates nothing — then filters, probes and
   accumulates partial aggregates over just those rows.
3. Partials are merged **in deterministic morsel order** with exact
   integer arithmetic, so answers are bit-identical to the materialized
   path at any worker count; one fused fact kernel is then priced from
   the merged accounting (same launch count as the materialized plan).

Morsels run on a ``ThreadPoolExecutor``: the NumPy kernels doing the
heavy lifting drop the GIL, so decode and filter work overlaps across
workers.  Only the coordinator thread ever touches the simulated
``GPUDevice`` (it is not thread-safe); workers do pure array work.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.engine.crystal import (
    BLOCK_THREADS,
    TILE,
    CrystalEngine,
    FactPipeline,
    SSBQuery,
)
from repro.engine.lookup import Lookup
from repro.engine.predicates import (
    And,
    ColumnPredicate,
    canonical_key,
    canonical_predicates,
    column_predicates,
)
from repro.formats.base import (
    DecodeArena,
    TileCodec,
    corruption_guard,
    crc32_values,
)
from repro.formats.registry import get_codec
from repro.formats.validate import CorruptTileError

__all__ = ["DEFAULT_MORSEL_TILES", "StreamPlan", "TileStreamExecutor"]

#: Engine tiles per morsel: 64 tiles = 32768 rows, a multiple of every
#: codec tile size (including GPU-SIMDBP128's 4096-value blocks), so
#: morsel boundaries land on codec tile boundaries and no tile is
#: decoded twice.
DEFAULT_MORSEL_TILES = 64


@dataclass(frozen=True)
class Morsel:
    """One contiguous chunk of the fact table's tile grid."""

    index: int
    tile_lo: int
    tile_hi: int
    row_lo: int
    row_hi: int


class _PlanPipeline(FactPipeline):
    """Zero-row pipeline for the plan pass.

    Row-level operators see empty arrays (and cost nothing), while
    pushdown runs against the **full** tile grid — the executor reads the
    surviving set from :attr:`global_tile_active`.  Resource accounting
    (registers, shared memory per block, decode register pressure) is
    row-count independent, so the plan pass captures the fused kernel's
    footprint exactly.
    """

    def __init__(self, engine: CrystalEngine, name: str, plan: "_PlanEngine | None" = None):
        super().__init__(engine, name, staged=False, rows=0, tiles=0)
        #: Tiles surviving pushdown over the whole fact table.
        self.global_tile_active = np.ones(engine.num_tiles, dtype=bool)
        self._plan = plan
        #: Operator trace of the plan pass, excluding predicate details:
        #: loads, probes (by lookup index), raw filters and aggregates in
        #: call order.  Together with the lookup fingerprints and the
        #: query's name/plan_key this identifies *what* the plan computes;
        #: the predicate conjuncts below identify *which rows* it keeps.
        self.trace: list[tuple] = []
        #: Every predicate conjunct the query applied (pushdown and exact
        #: row filters), for canonicalization into the semantic key.
        self.pred_conjuncts: list[ColumnPredicate] = []

    def _tile_read_bytes(self, name: str) -> np.ndarray:
        # Loads read nothing here: the morsels account the payload reads
        # over their own surviving tiles.  (Also warms the engine's
        # per-tile traffic cache so workers only ever read it.)
        self.engine.tile_read_bytes(name)
        return np.zeros(0, dtype=np.int64)

    def _column_slice(self, name: str) -> np.ndarray:
        return np.zeros(0, dtype=np.int64)

    def load(self, name: str) -> np.ndarray:
        self.trace.append(("load", name))
        return super().load(name)

    def probe(self, lookup: Lookup, keys: np.ndarray) -> np.ndarray:
        idx = -1
        if self._plan is not None:
            for i, (_, _, built) in enumerate(self._plan.lookups):
                if built is lookup:
                    idx = i
                    break
        self.trace.append(("probe", idx))
        return super().probe(lookup, keys)

    def filter(self, rowmask: np.ndarray) -> None:
        self.trace.append(("filter",))
        return super().filter(rowmask)

    def filter_predicate(self, predicate, values) -> None:
        self.pred_conjuncts.append(predicate)
        return super().filter_predicate(predicate, values)

    def group_sum(self, codes, weights, num_groups):
        self.trace.append(("agg", "sum", int(num_groups)))
        return super().group_sum(codes, weights, num_groups)

    def total_sum(self, values):
        self.trace.append(("agg", "sum", 1))
        return super().total_sum(values)

    def total_sum_product(self, a, b):
        self.trace.append(("agg", "sum-product", 1))
        return super().total_sum_product(a, b)

    def group_aggregate(self, codes, values, num_groups, how="sum"):
        if how not in ("sum", "count"):  # those delegate to group_sum
            self.trace.append(("agg", how, int(num_groups)))
        return super().group_aggregate(codes, values, num_groups, how=how)

    def filter_pushdown(self, predicate) -> int:
        self._check_open()
        preds = column_predicates(predicate)
        self.pred_conjuncts.extend(preds)
        if not self.engine.pushdown or not preds:
            return 0
        engine = self.engine
        before = int(self.global_tile_active.sum())
        for pred in preds:
            mins, maxs = engine.column_tile_bounds(pred.column)
            self.global_tile_active &= pred.tile_may_match(mins, maxs)
            # Zone-map metadata scan, accounted once for the whole grid
            # (morsels inherit the surviving set without re-scanning).
            self._read_bytes += engine.num_tiles * 16
            self._compute += engine.num_tiles * 2
        return before - int(self.global_tile_active.sum())

    def finish(self) -> None:
        # The executor prices one fused kernel from the merged morsel
        # accounting after the partials are in; nothing launches here.
        self._check_open()
        self._finished = True


class _MorselPipeline(FactPipeline):
    """A :class:`FactPipeline` over one morsel's rows.

    Inherits the plan pass's surviving tile set, decodes column chunks
    into the worker's arena, and records which aggregate ops ran so the
    executor knows how to merge the partial results.
    """

    def __init__(self, executor: "TileStreamExecutor", name: str, morsel: Morsel):
        super().__init__(
            executor.engine,
            name,
            staged=False,
            rows=morsel.row_hi - morsel.row_lo,
            tiles=morsel.tile_hi - morsel.tile_lo,
        )
        self._executor = executor
        self._morsel = morsel
        self.tile_active &= executor.tile_active[morsel.tile_lo : morsel.tile_hi]
        if not self.tile_active.all():
            self.mask &= np.repeat(self.tile_active, TILE)[: self.n]
        #: Aggregate merge ops in call order ("sum", "min" or "max").
        self.agg_ops: list[str] = []

    def _tile_read_bytes(self, name: str) -> np.ndarray:
        m = self._morsel
        return self.engine.tile_read_bytes(name)[m.tile_lo : m.tile_hi]

    def _column_slice(self, name: str) -> np.ndarray:
        m = self._morsel
        pinned = self.engine.pinned_decoded(name)
        if pinned is not None:
            return pinned[m.row_lo : m.row_hi]
        # One snapshot decides the branch: a racing atomic tier swap must
        # never pair an inline verdict with the other image's payload.
        col = self.engine.store[name]
        if self.engine.inline_column(col):
            return self._executor.decode_slice(name, m, self.tile_active, col=col)
        return col.values[m.row_lo : m.row_hi]

    def filter_pushdown(self, predicate) -> int:
        # Bounds were consulted once, globally, in the plan pass; the
        # morsel already inherited the surviving tile set in __init__.
        # Single-column conjuncts are still recorded: a later load of
        # that column fuses the filter into its decode.
        self._check_open()
        if self.engine.pushdown:
            for pred in column_predicates(predicate):
                self._pushdown_preds[pred.column] = pred
        return int(np.count_nonzero(~self.tile_active))

    def _column_slice_filtered(self, name, predicate):
        m = self._morsel
        return self._executor.decode_slice(
            name, m, self.tile_active, predicate=predicate
        )

    def finish(self) -> None:
        # Partial pipelines never launch; the executor prices the one
        # fused kernel from the merged accounting.
        self._check_open()
        self._finished = True

    # -- aggregate-op recording (drives the deterministic merge) ----------

    def group_sum(self, codes, weights, num_groups):
        self.agg_ops.append("sum")
        return super().group_sum(codes, weights, num_groups)

    def total_sum(self, values):
        self.agg_ops.append("sum")
        return super().total_sum(values)

    def total_sum_product(self, a, b):
        self.agg_ops.append("sum")
        return super().total_sum_product(a, b)

    def group_aggregate(self, codes, values, num_groups, how="sum"):
        if how == "avg":
            # sum/count partials would merge fine, but the division must
            # happen after the merge — the per-morsel quotients carry no
            # remainders to combine.  Run avg queries materialized.
            raise NotImplementedError(
                "avg does not decompose into mergeable morsel partials; "
                "run this query with streaming disabled"
            )
        if how in ("min", "max"):
            self.agg_ops.append(how)
        # sum/count delegate to group_sum, which records itself.
        return super().group_aggregate(codes, values, num_groups, how=how)


@dataclass
class _MorselOutcome:
    """One morsel's partial result plus its pipeline (for accounting)."""

    result: dict[int, int]
    pipeline: _MorselPipeline
    wall_ms: float


class _PlanEngine:
    """Engine proxy for the plan pass: real lookups, zero-row pipeline."""

    def __init__(self, engine: CrystalEngine):
        self._engine = engine
        self.db = engine.db
        self.pushdown = engine.pushdown
        self.lookups: list[tuple[str, str, Lookup]] = []
        #: Content fingerprints of the built lookups, in build order:
        #: (table, key column, key base, payload CRC, payload size).  Two
        #: plans probing differently-filtered dimensions (q3.1's nations
        #: vs q3.2's cities) fingerprint differently even though their
        #: operator traces look alike.
        self.fingerprints: list[tuple] = []
        self.pipeline_obj: _PlanPipeline | None = None

    def build_lookup(self, table_name, key_col, **kwargs) -> Lookup:
        lookup = self._engine.build_lookup(table_name, key_col, **kwargs)
        self.lookups.append((table_name, key_col, lookup))
        self.fingerprints.append(
            (
                table_name,
                key_col,
                int(lookup.key_base),
                int(crc32_values(lookup.payload)),
                int(lookup.payload.size),
            )
        )
        return lookup

    def replay_lookup(self, i: int, table_name: str, key_col: str) -> Lookup:
        if i >= len(self.lookups) or self.lookups[i][:2] != (table_name, key_col):
            raise RuntimeError(
                f"morsel replay diverged from the plan pass at lookup #{i} "
                f"({table_name}.{key_col}); streaming requires the query "
                f"function to be deterministic"
            )
        return self.lookups[i][2]

    def pipeline(self, name: str) -> _PlanPipeline:
        if self.pipeline_obj is not None:
            raise RuntimeError("streaming supports one pipeline per query")
        self.pipeline_obj = _PlanPipeline(self._engine, name, plan=self)
        return self.pipeline_obj


class _MorselEngine:
    """Engine proxy a morsel re-runs the query function against.

    Lookups are replayed from the plan pass (built and priced exactly
    once, read-only thereafter); the pipeline is morsel-scoped.
    """

    def __init__(self, executor: "TileStreamExecutor", plan: _PlanEngine, morsel: Morsel):
        self._executor = executor
        self._plan = plan
        self._morsel = morsel
        self._lookup_cursor = 0
        self.db = executor.engine.db
        self.pushdown = executor.engine.pushdown
        self.pipeline_obj: _MorselPipeline | None = None

    def build_lookup(self, table_name, key_col, **kwargs) -> Lookup:
        lookup = self._plan.replay_lookup(self._lookup_cursor, table_name, key_col)
        self._lookup_cursor += 1
        return lookup

    def pipeline(self, name: str) -> _MorselPipeline:
        if self.pipeline_obj is not None:
            raise RuntimeError("streaming supports one pipeline per query")
        self.pipeline_obj = _MorselPipeline(self._executor, name, self._morsel)
        return self.pipeline_obj


@dataclass
class StreamPlan:
    """Everything the plan pass learned about one query, pre-execution.

    The semantic result cache drives the executor through this object:
    :meth:`TileStreamExecutor.plan` builds it, the cache decides which
    morsels actually need to run, :meth:`TileStreamExecutor.run_morsels`
    executes a subset, and :meth:`TileStreamExecutor.merge_parts`
    combines cached and fresh partials bit-identically.

    ``base_key`` identifies *what* the plan computes (query identity,
    lookup content fingerprints, operator trace) while ``pred_key`` is
    the canonicalized form of *which rows* it keeps — together they form
    the semantic cache signature.
    """

    query: SSBQuery
    engine_plan: _PlanEngine
    ppipe: _PlanPipeline
    plan_result: dict[int, int]
    tile_active: np.ndarray
    morsels: list[Morsel]
    base_key: tuple
    pred_key: tuple
    predicates: tuple[ColumnPredicate, ...]
    #: Aggregate merge ops derived from the plan trace — available even
    #: when every morsel is pruned (a zero-morsel shard still knows it
    #: computes a sum), so cross-shard merges never lose the identity.
    agg_ops: tuple[str, ...] = ()


def _mask_runs(mask: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` runs of True in a boolean mask."""
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate([idx[:1], idx[breaks + 1]])
    ends = np.concatenate([idx[breaks], idx[-1:]]) + 1
    return list(zip(starts.tolist(), ends.tolist()))


class TileStreamExecutor:
    """Runs one query's plan morsel-by-morsel over the surviving tiles."""

    def __init__(
        self,
        engine: CrystalEngine,
        workers: int = 4,
        morsel_tiles: int | None = None,
        metrics=None,
        tile_span: tuple[int, int] | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        morsel_tiles = DEFAULT_MORSEL_TILES if morsel_tiles is None else morsel_tiles
        if morsel_tiles < 1:
            raise ValueError(f"morsel_tiles must be >= 1, got {morsel_tiles}")
        if tile_span is not None:
            lo, hi = int(tile_span[0]), int(tile_span[1])
            if not (0 <= lo <= hi <= engine.num_tiles):
                raise ValueError(
                    f"tile_span {tile_span} outside [0, {engine.num_tiles}]"
                )
            tile_span = (lo, hi)
        self.engine = engine
        self.workers = workers
        self.morsel_tiles = morsel_tiles
        self.metrics = metrics
        #: Engine-tile range ``[lo, hi)`` this executor is restricted to
        #: (``None`` = the whole fact table).  A sharded serving layer
        #: gives each shard's executor its tile span; plans then skip
        #: tiles outside it and the fused kernel is priced over the span
        #: only, so per-shard work genuinely shrinks with the shard.
        self.tile_span = tile_span
        #: Surviving tile grid of the most recent execute() (plan pass).
        self.tile_active = np.ones(0, dtype=bool)
        #: Stats of the most recent execute() call.
        self.last_stats: dict = {}
        self._tls = threading.local()
        self._arena_lock = threading.Lock()
        self._arenas: list[DecodeArena] = []
        self._pool: ThreadPoolExecutor | None = None

    # -- worker-side decode -------------------------------------------------

    def _arena(self) -> DecodeArena:
        arena = getattr(self._tls, "arena", None)
        if arena is None:
            arena = DecodeArena()
            self._tls.arena = arena
            with self._arena_lock:
                self._arenas.append(arena)
        return arena

    @property
    def peak_decoded_bytes(self) -> int:
        """Bytes held across every worker's arena (buffers only grow
        between :meth:`trim_arenas` calls, so this is also the peak
        decoded-intermediate footprint since the last trim)."""
        with self._arena_lock:
            return sum(a.resident_bytes for a in self._arenas)

    def trim_arenas(self, max_bytes: int = 0) -> int:
        """Release worker arena scratch down to ``max_bytes`` total.

        Arena buffers grow to the largest chunk ever decoded and are
        otherwise held forever; serving layers call this between query
        bursts to return the memory.  The budget is split evenly across
        workers (each arena trims to its share, largest buffers first).
        Safe against concurrent morsels: buffers a worker borrowed stay
        valid, only the arena's references are dropped.  Returns the
        number of bytes released.
        """
        with self._arena_lock:
            arenas = list(self._arenas)
        if not arenas:
            return 0
        share = max(0, max_bytes) // len(arenas)
        return sum(arena.trim(share) for arena in arenas)

    def decode_slice(
        self,
        name: str,
        morsel: Morsel,
        tile_active: np.ndarray,
        predicate=None,
        col=None,
    ):
        """Decode one column's chunk for a morsel into the worker's arena.

        Covers the codec tiles overlapping ``[row_lo, row_hi)``; codec
        tiles whose engine tiles were all pruned stay zero-filled (their
        rows are dead in the morsel's mask by construction).  Returns a
        view of exactly the morsel's rows.

        With a ``predicate``, the filter is fused into the decode via the
        codec's ``decode_filter_tiles_into`` and the return value becomes
        ``(values, rowmask)`` views — or ``(values, None)`` when fusion
        cannot apply (checksummed column under active verification), in
        which case the caller evaluates the predicate itself.

        ``col`` pins the caller's :class:`StoredColumn` snapshot so one
        object serves both the inline check and the decode; without it a
        fresh snapshot is taken here.  Either way a column that is no
        longer tile-encoded (a racing tier swap published an uncompressed
        or cold image) degrades to a plain values slice — bit-identical
        by the swap's contract, never a torn decode.
        """
        if col is None:
            col = self.engine.store[name]
        want_mask = predicate is not None
        if not col.codec_name:
            vals = col.values[morsel.row_lo : morsel.row_hi]
            return (vals, None) if want_mask else vals
        if self.engine.fault_hook is not None:
            self.engine.fault_hook(name)
        codec = get_codec(col.codec_name)
        assert isinstance(codec, TileCodec)
        enc = col.payload
        if want_mask and not self.engine.fusion_allowed(enc):
            predicate = None
        elems = codec.tile_elements(enc)
        r0, r1 = morsel.row_lo, morsel.row_hi
        c0 = r0 // elems
        c1 = min(-(-r1 // elems), codec.num_tiles(enc))
        arena = self._arena()
        cap = (c1 - c0) * elems
        buf = arena.scratch(name, cap)
        view = buf[:cap]
        mask_buf = None
        if predicate is not None:
            mask_buf = arena.scratch(f"mask/{name}", cap, dtype=np.bool_)
        try:
            with corruption_guard(name):
                self._decode_chunk(
                    codec, enc, c0, c1, elems, view,
                    self._codec_tile_activity(
                        tile_active, elems, c0, c1, morsel.tile_lo
                    ),
                    predicate,
                    None if mask_buf is None else mask_buf[:cap],
                )
        except CorruptTileError as exc:
            # Re-raise with the owning morsel span so the coordinator
            # (and the client) can see exactly which slice of which
            # worker died, instead of an anonymous thread-pool failure.
            raise CorruptTileError(
                exc.column,
                exc.tile_id,
                f"{exc.reason} [morsel {morsel.index}: engine tiles "
                f"{morsel.tile_lo}..{morsel.tile_hi}, rows {r0}..{r1}]",
            ) from exc
        off = r0 - c0 * elems
        vals = buf[off : off + (r1 - r0)]
        if want_mask:
            if mask_buf is None:
                return vals, None
            return vals, mask_buf[off : off + (r1 - r0)]
        return vals

    def _decode_chunk(
        self, codec, enc, c0, c1, elems, view, active, predicate, mview
    ) -> None:
        """Decode codec tiles [c0, c1) into ``view``, plain or fused."""
        if predicate is None:
            if active.all():
                codec.decode_range_into(enc, c0, c1, view)
            else:
                view[:] = 0
                for lo, hi in _mask_runs(active):
                    # Chunks before the column's final tile are always
                    # full, so each run's values land exactly at its
                    # tile offset.
                    codec.decode_tiles_into(
                        enc, np.arange(c0 + lo, c0 + hi), view[lo * elems :]
                    )
            return
        fused_rows = 0
        if active.all():
            fused_rows = codec.decode_filter_tiles_into(
                enc, np.arange(c0, c1), predicate, view, mview
            )
        else:
            view[:] = 0
            mview[:] = False
            for lo, hi in _mask_runs(active):
                fused_rows += codec.decode_filter_tiles_into(
                    enc,
                    np.arange(c0 + lo, c0 + hi),
                    predicate,
                    view[lo * elems :],
                    mview[lo * elems :],
                )
        self.engine.count_fused_kernel(fused_rows)

    def _codec_tile_activity(
        self,
        tile_active: np.ndarray,
        elems: int,
        c0: int,
        c1: int,
        tile_lo: int,
    ) -> np.ndarray:
        """Morsel-local engine-tile activity mapped onto codec tiles [c0, c1)."""
        n_local = c1 - c0
        if elems == TILE:
            out = np.zeros(n_local, dtype=bool)
            n = min(n_local, tile_active.size)
            out[:n] = tile_active[:n]
            return out
        if TILE % elems == 0:
            factor = TILE // elems
            return np.repeat(tile_active, factor)[:n_local]
        if elems % TILE == 0:
            # A codec tile spans several engine tiles and may start
            # before the morsel; pad to the codec grid and reduce.
            factor = elems // TILE
            padded = np.zeros(n_local * factor, dtype=bool)
            off = tile_lo - c0 * factor
            padded[off : off + tile_active.size] = tile_active
            return padded.reshape(n_local, factor).any(axis=1)
        raise ValueError(
            f"codec tile of {elems} rows does not divide the engine tile of {TILE}"
        )

    # -- orchestration ------------------------------------------------------

    def _span(self) -> tuple[int, int]:
        """The executor's engine-tile range ``[lo, hi)``."""
        if self.tile_span is not None:
            return self.tile_span
        return (0, self.engine.num_tiles)

    def _partition(self, tile_active: np.ndarray) -> list[Morsel]:
        """Contiguous fixed-width morsels; fully-pruned windows are skipped
        wholesale (the streaming counterpart of tile skipping)."""
        engine = self.engine
        span_lo, span_hi = self._span()
        morsels: list[Morsel] = []
        for tile_lo in range(span_lo, span_hi, self.morsel_tiles):
            tile_hi = min(tile_lo + self.morsel_tiles, span_hi)
            if not tile_active[tile_lo:tile_hi].any():
                continue
            morsels.append(
                Morsel(
                    index=len(morsels),
                    tile_lo=tile_lo,
                    tile_hi=tile_hi,
                    row_lo=tile_lo * TILE,
                    row_hi=min(tile_hi * TILE, engine.num_rows),
                )
            )
        return morsels

    def _run_morsel(
        self, query: SSBQuery, plan: _PlanEngine, morsel: Morsel
    ) -> _MorselOutcome:
        t0 = time.perf_counter()
        mengine = _MorselEngine(self, plan, morsel)
        result = query.fn(mengine)
        if mengine.pipeline_obj is None or not mengine.pipeline_obj._finished:
            raise RuntimeError(
                f"query {query.name} did not finish a pipeline in its morsel run"
            )
        wall_ms = (time.perf_counter() - t0) * 1e3
        return _MorselOutcome(result, mengine.pipeline_obj, wall_ms)

    def plan(self, query: SSBQuery) -> StreamPlan:
        """Run the zero-row plan pass and derive the semantic identity."""
        engine = self.engine
        plan = _PlanEngine(engine)
        plan_result = query.fn(plan)
        ppipe = plan.pipeline_obj
        if ppipe is None or not ppipe._finished:
            raise RuntimeError(
                f"query {query.name} did not run a FactPipeline plan; "
                f"streaming needs a pipeline-based query function"
            )
        active = ppipe.global_tile_active
        if self.tile_span is not None:
            # Restrict to the shard's span without mutating the global
            # pushdown result (the plan pipeline's accounting keeps it).
            active = active.copy()
            active[: self.tile_span[0]] = False
            active[self.tile_span[1] :] = False
        self.tile_active = active
        # Warm the shared metadata caches from the coordinator so morsel
        # workers only ever read them (bounds were warmed by pushdown).
        for name in query.columns:
            engine.tile_read_bytes(name)
        # Queries may declare a plan_key grouping structurally identical
        # plans (e.g. flight-1 drill-downs differing only in filters);
        # otherwise the name keeps host-side arithmetic outside the
        # predicate IR from ever aliasing across distinct queries.
        plan_base = query.plan_key if query.plan_key is not None else ("query", query.name)
        base_key = (plan_base, tuple(plan.fingerprints), tuple(ppipe.trace))
        if self.tile_span is not None:
            # Partials of different shards must never alias in a shared
            # semantic cache: the span is part of what the plan computes.
            base_key = base_key + (("span",) + self.tile_span,)
        pred = And(tuple(ppipe.pred_conjuncts))
        return StreamPlan(
            query=query,
            engine_plan=plan,
            ppipe=ppipe,
            plan_result=plan_result,
            tile_active=self.tile_active,
            morsels=self._partition(self.tile_active),
            base_key=base_key,
            pred_key=canonical_key(pred),
            predicates=canonical_predicates(pred),
            agg_ops=tuple(
                "sum" if op in ("sum", "sum-product", "count") else op
                for entry in ppipe.trace
                if entry[0] == "agg"
                for op in (entry[1],)
            ),
        )

    def run_morsels(
        self, plan: StreamPlan, morsels: list[Morsel]
    ) -> list[_MorselOutcome]:
        """Execute a subset of the plan's morsels; outcomes align positionally.

        The subset keeps the original morsel indices, so errors still
        surface deterministically (first in global morsel order).
        """
        query, engine_plan = plan.query, plan.engine_plan
        pos = {m.index: i for i, m in enumerate(morsels)}
        outcomes: list[_MorselOutcome] = [None] * len(morsels)  # type: ignore[list-item]
        if self.workers == 1 or len(morsels) <= 1:
            for m in morsels:
                outcomes[pos[m.index]] = self._run_morsel(query, engine_plan, m)
        else:
            pool = self._ensure_pool()
            futures = [
                (m, pool.submit(self._run_morsel, query, engine_plan, m))
                for m in morsels
            ]
            # Gather every future before raising: a corrupt morsel must
            # not leave siblings running against shared arenas, and the
            # error surfaced must be deterministic (first in morsel
            # order), not whichever worker lost the race.
            errors: list[tuple[int, BaseException]] = []
            for m, fut in futures:
                try:
                    outcomes[pos[m.index]] = fut.result()
                except Exception as exc:
                    errors.append((m.index, exc))
            if errors:
                if self.metrics is not None:
                    self.metrics.inc("streaming_morsel_failures", len(errors))
                errors.sort(key=lambda pair: pair[0])
                raise errors[0][1]
        return outcomes

    def publish_stats(
        self,
        plan: StreamPlan,
        outcomes: list[_MorselOutcome],
        exec_ms: float,
        cached_morsels: int = 0,
    ) -> None:
        """Record ``last_stats`` and metrics for one executed query."""
        engine = self.engine
        peak = self.peak_decoded_bytes
        span_lo, span_hi = self._span()
        self.last_stats = {
            "query": plan.query.name,
            "workers": self.workers,
            "morsel_tiles": self.morsel_tiles,
            "tiles_total": int(engine.num_tiles),
            "tiles_span": int(span_hi - span_lo),
            "tiles_active": int(np.count_nonzero(plan.tile_active)),
            "morsels": len(plan.morsels),
            "morsel_ms": [o.wall_ms for o in outcomes],
            "execute_ms": exec_ms,
            "peak_decoded_bytes": int(peak),
            "agg_ops": list(plan.agg_ops),
        }
        if cached_morsels:
            self.last_stats["cached_morsels"] = int(cached_morsels)
        if self.metrics is not None:
            self.metrics.inc("streaming_queries")
            self.metrics.inc("streaming_morsels", len(outcomes))
            for o in outcomes:
                self.metrics.observe("streaming_morsel_ms", o.wall_ms)
            self.metrics.gauge_max("streaming_peak_decoded_bytes", int(peak))

    def execute(self, query: SSBQuery) -> dict[int, int]:
        """Run ``query`` morsel-parallel; returns the merged aggregates."""
        plan = self.plan(query)
        t0 = time.perf_counter()
        outcomes = self.run_morsels(plan, plan.morsels)
        exec_ms = (time.perf_counter() - t0) * 1e3
        merged = self.merge_parts(
            plan.plan_result,
            [(o.pipeline.agg_ops, o.result) for o in outcomes],
        )
        self._price_fused_kernel(query, plan.ppipe, [o.pipeline for o in outcomes])
        self.publish_stats(plan, outcomes, exec_ms)
        return merged

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="morsel"
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a fresh one is created
        lazily if the executor is used again)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- merge + pricing ----------------------------------------------------

    @staticmethod
    def merge_parts(
        plan_result: dict[int, int],
        parts: list[tuple[list[str], dict[int, int]]],
    ) -> dict[int, int]:
        """Merge partials in morsel order with exact integer arithmetic.

        Each part is ``(agg_ops, result)`` — the aggregate merge ops a
        partial's pipeline recorded plus its result dict — so cached
        partials (which outlive their pipelines) merge through the same
        code path as fresh morsel outcomes.

        The plan pass's zero-row result seeds the merge: it is the
        aggregate's identity ({0: 0} for total sums, {} for grouped), so
        the empty-after-pushdown case falls out for free.  Sums combine
        as Python ints (arbitrary precision — no float re-rounding), so
        the result is independent of worker count and bit-identical to
        the materialized single-pass answer.
        """
        ops = {op for agg_ops, _ in parts for op in agg_ops}
        if not ops:
            return dict(plan_result)
        if len(ops) > 1:
            raise RuntimeError(f"cannot merge mixed aggregate ops {sorted(ops)}")
        op = ops.pop()
        merged = {int(k): int(v) for k, v in plan_result.items()}
        for _, result in parts:
            for code, val in result.items():
                code, val = int(code), int(val)
                if op == "sum":
                    merged[code] = merged.get(code, 0) + val
                elif op == "min":
                    merged[code] = min(merged.get(code, val), val)
                else:  # max
                    merged[code] = max(merged.get(code, val), val)
        return merged

    def _price_fused_kernel(
        self,
        query: SSBQuery,
        ppipe: _PlanPipeline,
        pipelines: list[_MorselPipeline],
    ) -> None:
        """Price the one fused fact kernel from the merged accounting.

        Resource footprint (registers, shared memory per block) comes
        from the plan pipeline — it is row-count independent and matches
        the materialized kernel exactly.  Traffic and compute sum the
        morsels' contributions; per-call gathers merge by call index
        (every morsel runs the same call sequence, so the lists align).
        """
        engine = self.engine
        read = ppipe._read_bytes + sum(p._read_bytes for p in pipelines)
        write = ppipe._write_bytes
        compute = ppipe._compute + sum(p._compute for p in pipelines)
        shared = ppipe._shared + sum(p._shared for p in pipelines)
        live = sum(p.live_count for p in pipelines)
        if pipelines and all(
            len(p._gathers) == len(pipelines[0]._gathers) for p in pipelines
        ):
            gathers = [
                (
                    sum(p._gathers[i][0] for p in pipelines),
                    pipelines[0]._gathers[i][1],
                    pipelines[0]._gathers[i][2],
                )
                for i in range(len(pipelines[0]._gathers))
            ]
        elif pipelines:  # defensive: divergent call sequences concatenate
            gathers = [g for p in pipelines for g in p._gathers]
        else:
            gathers = list(ppipe._gathers)
        regs = 14 + ppipe._extra_regs + ppipe._decode_regs
        # The fused kernel's grid covers only this executor's tile span:
        # a shard launches one block per *its* tiles, not the whole fact
        # table's, so shard wall-clock scales down with the shard.
        span_lo, span_hi = self._span()
        span_tiles = max(1, span_hi - span_lo)
        with engine.device.launch(
            f"fact-{ppipe.name}",
            grid_blocks=span_tiles,
            block_threads=BLOCK_THREADS,
            registers_per_thread=regs,
            shared_mem_per_block=ppipe._smem,
        ) as k:
            if read:
                k.traffic.read_bytes += read  # already transaction-aligned
            if write:
                k.write_linear(write)
            for count, eb, region in gathers:
                k.read_gather(count, eb, region)
            k.compute(compute + span_tiles * 600)
            k.shared(shared + live * 4)
