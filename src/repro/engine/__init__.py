"""Crystal-style tile-based query engine and the 13 SSB queries."""

from repro.engine.crystal import (
    DECOMPRESS_FIRST_SYSTEMS,
    TILE,
    CrystalEngine,
    FactPipeline,
    QueryResult,
    SSBQuery,
)
from repro.engine.coprocessor import (
    CacheStats,
    CoprocessorExecutor,
    CoprocessorResult,
    DeviceCache,
)
from repro.engine.lookup import MISS, Lookup, make_lookup
from repro.engine.primitives import (
    block_max_scan,
    block_prefix_sum,
    block_rle_expand,
)
from repro.engine.ssb_queries import QUERIES

__all__ = [
    "CacheStats",
    "CoprocessorExecutor",
    "CoprocessorResult",
    "DECOMPRESS_FIRST_SYSTEMS",
    "DeviceCache",
    "block_max_scan",
    "block_prefix_sum",
    "block_rle_expand",
    "CrystalEngine",
    "FactPipeline",
    "Lookup",
    "MISS",
    "QUERIES",
    "QueryResult",
    "SSBQuery",
    "TILE",
    "make_lookup",
]
