"""Crystal-style block-wide primitives.

Crystal (Shanbhag et al. 2020) is a library of *block-wide device
functions* — load, scan, reduce, predicate — that compose into query
kernels; the paper reuses its block-wide prefix sum for GPU-DFOR's delta
decode (Section 5.2) and its RLE expansion (Section 6).  This module
implements those primitives as array algorithms with the same structure
the CUDA versions have, so the decoders can route through them and their
step/work counts can be asserted:

* :func:`block_prefix_sum` is the work-efficient Blelloch scan [13]:
  an upsweep (reduce) phase and a downsweep phase, 2 log2(n) steps and
  O(n) adds, operating in place on a power-of-two-sized buffer exactly
  like the shared-memory version.
* :func:`block_rle_expand` is Fang et al.'s four-step RLE decode
  (scan lengths, scatter boundary flags, max-scan the flags, gather).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ScanStats:
    """Work/step counts of one block-wide scan (for model validation)."""

    steps: int
    adds: int


def _ceil_pow2(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def block_prefix_sum(values: np.ndarray, inclusive: bool = True) -> tuple[np.ndarray, ScanStats]:
    """Work-efficient (Blelloch) block-wide prefix sum.

    Mirrors the shared-memory algorithm: the input is padded to a power
    of two, an upsweep builds partial sums in place, the root is zeroed,
    and a downsweep distributes prefixes — Theta(log n) steps, Theta(n)
    additions.

    Args:
        values: the tile to scan (any length; padded internally).
        inclusive: inclusive scan (delta decoding) vs exclusive
            (offset computation).

    Returns:
        ``(scanned, stats)`` where ``scanned`` has the input's length.
    """
    values = np.asarray(values, dtype=np.int64)
    n = values.size
    if n == 0:
        return values.copy(), ScanStats(steps=0, adds=0)
    size = _ceil_pow2(n)
    buf = np.zeros(size, dtype=np.int64)
    buf[:n] = values

    steps = 0
    adds = 0
    # Upsweep: build the reduction tree in place.
    stride = 1
    while stride < size:
        left = np.arange(stride - 1, size, 2 * stride)
        right = left + stride
        buf[right] += buf[left]
        adds += left.size
        steps += 1
        stride *= 2

    total = int(buf[-1])
    buf[-1] = 0
    # Downsweep: rotate partial sums down the tree.
    stride = size // 2
    while stride >= 1:
        left = np.arange(stride - 1, size, 2 * stride)
        right = left + stride
        tmp = buf[left].copy()
        buf[left] = buf[right]
        buf[right] += tmp
        adds += left.size
        steps += 1
        stride //= 2

    exclusive = buf[:n]
    if inclusive:
        return exclusive + values, ScanStats(steps=steps, adds=adds)
    return exclusive.copy(), ScanStats(steps=steps, adds=adds)


def block_max_scan(values: np.ndarray) -> np.ndarray:
    """Inclusive block-wide maximum scan (Hillis-Steele structure).

    Used by RLE expansion to propagate run ids across the tile; the
    naive-but-step-efficient variant is what Crystal ships for max.
    """
    out = np.asarray(values, dtype=np.int64).copy()
    n = out.size
    stride = 1
    while stride < n:
        shifted = np.empty_like(out)
        shifted[:stride] = out[:stride]
        shifted[stride:] = np.maximum(out[stride:], out[:-stride])
        out = shifted
        stride *= 2
    return out


def block_rle_expand(
    run_values: np.ndarray, run_lengths: np.ndarray, tile_size: int | None = None
) -> np.ndarray:
    """Expand (value, length) runs inside one tile — Fang et al.'s 4 steps.

    1. exclusive-scan the lengths -> each run's start offset;
    2. scatter each run's index at its start offset (boundary flags);
    3. inclusive max-scan the flags -> every position's run index;
    4. gather the values through the run indices.

    Args:
        run_values: the runs' values.
        run_lengths: the runs' lengths (positive).
        tile_size: expected output size; defaults to ``sum(lengths)``.

    Returns:
        The expanded tile.
    """
    run_values = np.asarray(run_values, dtype=np.int64)
    run_lengths = np.asarray(run_lengths, dtype=np.int64)
    if run_values.shape != run_lengths.shape:
        raise ValueError("runs and lengths must align")
    if run_lengths.size and run_lengths.min() <= 0:
        raise ValueError("run lengths must be positive")
    total = int(run_lengths.sum())
    if tile_size is None:
        tile_size = total
    if total != tile_size:
        raise ValueError(f"runs cover {total} values, expected {tile_size}")
    if tile_size == 0:
        return np.zeros(0, dtype=np.int64)

    offsets, _ = block_prefix_sum(run_lengths, inclusive=False)  # step 1
    flags = np.zeros(tile_size, dtype=np.int64)
    flags[offsets] = np.arange(run_values.size)  # step 2 (scatter)
    run_of_position = block_max_scan(flags)  # step 3
    return run_values[run_of_position]  # step 4 (gather)
