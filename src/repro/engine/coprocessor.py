"""Out-of-core execution: the GPU-as-coprocessor memory manager (§8/9.5).

When the (compressed) working set exceeds device memory, the GPU runs as
a coprocessor: columns live on the host and move over PCIe per query.
Compression pays directly — fewer bytes over the 12.8 GB/s link — and a
device-resident cache pays again by keeping hot compressed columns on the
GPU between queries.

:class:`DeviceCache` implements the standard design: a byte-budgeted LRU
of compressed columns; :class:`CoprocessorExecutor` wraps a
:class:`~repro.engine.crystal.CrystalEngine` so each query first stages
its missing columns (charging simulated transfer time) and then executes
normally, with inline decompression if the store is GPU-*.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.crystal import CrystalEngine, QueryResult, SSBQuery
from repro.gpusim.executor import GPUDevice
from repro.ssb.dbgen import SSBDatabase
from repro.ssb.loader import ColumnStore


@dataclass
class CacheStats:
    """Running cache counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_transferred: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DeviceCache:
    """Byte-budgeted LRU cache of compressed columns in device memory."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._resident: OrderedDict[str, int] = OrderedDict()
        self.stats = CacheStats()

    @property
    def used_bytes(self) -> int:
        return sum(self._resident.values())

    @property
    def resident_columns(self) -> list[str]:
        return list(self._resident)

    def request(self, name: str, nbytes: int, device: GPUDevice) -> float:
        """Ensure a column is device-resident; returns transfer ms (0 on hit).

        A miss transfers the column over PCIe, evicting least-recently-used
        columns first when the budget is exceeded.  A column larger than
        the whole budget is streamed (transferred but never cached).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if name in self._resident:
            self._resident.move_to_end(name)
            self.stats.hits += 1
            return 0.0

        self.stats.misses += 1
        self.stats.bytes_transferred += nbytes
        transfer_ms = device.transfer_to_device(nbytes)
        if nbytes > self.capacity_bytes:
            return transfer_ms  # streamed, not cached
        while self.used_bytes + nbytes > self.capacity_bytes:
            self._resident.popitem(last=False)
            self.stats.evictions += 1
        self._resident[name] = nbytes
        return transfer_ms

    def invalidate(self, name: str) -> None:
        """Drop a column (e.g. after a host-side update)."""
        self._resident.pop(name, None)


@dataclass
class CoprocessorResult:
    """One query's outcome in coprocessor mode."""

    query: QueryResult
    transfer_ms: float
    cache_hits: int
    cache_misses: int
    #: Chunks used by the overlapped estimate (see :attr:`overlapped_ms`).
    overlap_chunks: int = 16

    @property
    def total_ms(self) -> float:
        """Serial staging: transfer completes before the query starts."""
        return self.transfer_ms + self.query.simulated_ms

    @property
    def overlapped_ms(self) -> float:
        """Double-buffered staging: tiles decode while later chunks are
        still in flight, so transfer and execution overlap.

        Tile independence makes this legal for the paper's formats (any
        prefix of tiles is decodable); the standard pipeline bound is
        ``max(transfer, execute) + first_chunk_latency``.
        """
        first_chunk = self.transfer_ms / max(1, self.overlap_chunks)
        return max(self.transfer_ms, self.query.simulated_ms) + first_chunk


class CoprocessorExecutor:
    """Runs SSB queries with host-resident columns and a device cache."""

    def __init__(
        self,
        db: SSBDatabase,
        store: ColumnStore,
        device_budget_bytes: int,
        device: GPUDevice | None = None,
    ):
        self.db = db
        self.store = store
        self.device = device if device is not None else GPUDevice()
        self.cache = DeviceCache(device_budget_bytes)

    def run(self, query: SSBQuery) -> CoprocessorResult:
        """Stage the query's columns (cache-aware), then execute it."""
        hits_before = self.cache.stats.hits
        misses_before = self.cache.stats.misses
        transfer_ms = 0.0
        for name in query.columns:
            transfer_ms += self.cache.request(
                name, self.store[name].nbytes, self.device
            )
        engine = CrystalEngine(self.db, self.store, self.device)
        result = engine.run(query)
        return CoprocessorResult(
            query=result,
            transfer_ms=transfer_ms,
            cache_hits=self.cache.stats.hits - hits_before,
            cache_misses=self.cache.stats.misses - misses_before,
        )
