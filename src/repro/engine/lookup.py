"""Dimension-table lookups for star joins.

SSB dimension keys are dense (1..N), so Crystal-style engines join the
fact table against **direct-address arrays**: ``payload[key - base]`` is
either the join payload or ``MISS``.  A filtered dimension simply stores
``MISS`` for rows that fail its predicate, folding selection into the
join, which is how the SSB queries below express e.g. ``s_region =
'ASIA'``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Payload value marking a key that is absent or filtered out.
MISS = -1


@dataclass
class Lookup:
    """A dense key -> payload table resident in simulated global memory."""

    name: str
    key_base: int
    payload: np.ndarray  # int32; MISS where absent

    @property
    def nbytes(self) -> int:
        return self.payload.nbytes

    def probe(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized probe; keys must lie in the table's key range."""
        idx = np.asarray(keys, dtype=np.int64) - self.key_base
        if idx.size and (idx.min() < 0 or idx.max() >= self.payload.size):
            raise IndexError(f"probe key out of range for lookup {self.name!r}")
        return self.payload[idx].astype(np.int64)


def make_lookup(
    name: str,
    keys: np.ndarray,
    payload: np.ndarray | None = None,
    mask: np.ndarray | None = None,
) -> Lookup:
    """Build a dense lookup from dimension rows.

    Args:
        name: label for kernel accounting.
        keys: dimension key column (dense but not necessarily contiguous
            from 0; the minimum becomes the base).
        payload: per-row payload; defaults to all-zeros (a pure existence
            filter).
        mask: rows failing this predicate store :data:`MISS`.

    Returns:
        The populated :class:`Lookup`.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        raise ValueError("cannot build a lookup from an empty dimension")
    if payload is None:
        payload = np.zeros(keys.size, dtype=np.int64)
    payload = np.asarray(payload, dtype=np.int64)
    if payload.shape != keys.shape:
        raise ValueError("payload must align with keys")
    if mask is not None:
        payload = np.where(np.asarray(mask, dtype=bool), payload, MISS)

    base = int(keys.min())
    span = int(keys.max()) - base + 1
    table = np.full(span, MISS, dtype=np.int32)
    table[keys - base] = payload.astype(np.int32)
    return Lookup(name=name, key_base=base, payload=table)
