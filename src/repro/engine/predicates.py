"""Column predicate IR for metadata-driven tile skipping.

The paper's tile decomposition (Section 4) gives every codec a natural
pruning granularity: a tile's block headers bound all of its values, so a
selective scan can skip whole tiles *before* decoding them.  This module
is the small predicate language the engine prunes with.

Each :class:`ColumnPredicate` answers two questions about one column:

* :meth:`~ColumnPredicate.row_mask` — the exact per-row filter, applied
  to decoded values (what the fused query kernel evaluates).
* :meth:`~ColumnPredicate.tile_may_match` — a conservative per-tile test
  against codec bounds ``[mins[t], maxs[t]]``.  ``False`` means the tile
  provably contains no matching row and may be skipped; ``True`` only
  means "cannot rule it out".

Predicates compose with :class:`And`, matching the conjunctive filters
of the SSB queries (Section 8): a tile survives only if every conjunct
may match it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "And",
    "ColumnPredicate",
    "Equals",
    "INT64_MAX",
    "INT64_MIN",
    "InSet",
    "Range",
    "canonical_key",
    "canonical_predicates",
    "column_predicates",
]


#: Inclusive int64 domain bounds, used when an interval is half-open.
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


class ColumnPredicate:
    """A filter on a single column, usable both per-row and per-tile."""

    #: Name of the column the predicate constrains.
    column: str

    def row_mask(self, values: np.ndarray) -> np.ndarray:
        """Exact boolean mask over decoded ``values``."""
        raise NotImplementedError

    def as_interval(self) -> tuple[int, int] | None:
        """The predicate as one inclusive ``(lo, hi)`` interval, if it is one.

        Fused decode+filter kernels duck-type on this (codecs must not
        import the engine): an interval test can run in a codec's shifted
        domain before the frame-of-reference is added back.  ``None``
        means "not an interval" — the caller falls back to
        :meth:`row_mask` over materialized values.
        """
        return None

    def tile_may_match(self, mins: np.ndarray, maxs: np.ndarray) -> np.ndarray:
        """Conservative per-tile test against inclusive bounds.

        Args:
            mins: Per-tile lower bounds (``int64``, one entry per tile).
            maxs: Per-tile upper bounds, aligned with ``mins``.

        Returns:
            Boolean array; ``False`` marks tiles that provably contain
            no row satisfying the predicate.
        """
        raise NotImplementedError

    def tile_must_match(self, mins: np.ndarray, maxs: np.ndarray) -> np.ndarray:
        """Conservative per-tile test for *every* row satisfying the predicate.

        The dual of :meth:`tile_may_match`: ``True`` means the bounds
        prove the predicate holds on every row of the tile, so a filter
        over that tile is a no-op; ``False`` only means "cannot prove
        it".  Predicate subclasses without a cheap proof inherit the
        all-``False`` default, which is always sound.  The semantic
        result cache uses this to establish when a partial aggregate
        computed under one predicate is reusable under another.
        """
        return np.zeros(np.asarray(mins).shape, dtype=bool)

    def cache_key(self) -> tuple:
        """A stable, hashable identity for semantically equal predicates.

        Degenerate forms collapse (``Range(lo == hi)`` and single-element
        ``InSet`` both become the ``Equals`` key; an unsatisfiable range
        or empty set becomes ``("empty", column)``), so predicates built
        differently by different query flights compare — and hash —
        equal exactly when they select the same rows.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Range(ColumnPredicate):
    """``lo <= column <= hi`` (either bound optional, both inclusive)."""

    column: str
    lo: int | None = None
    hi: int | None = None

    def row_mask(self, values: np.ndarray) -> np.ndarray:
        mask = np.ones(np.asarray(values).shape, dtype=bool)
        if self.lo is not None:
            mask &= values >= self.lo
        if self.hi is not None:
            mask &= values <= self.hi
        return mask

    def tile_may_match(self, mins: np.ndarray, maxs: np.ndarray) -> np.ndarray:
        # The tile interval [mins, maxs] must overlap [lo, hi].
        may = np.ones(np.asarray(mins).shape, dtype=bool)
        if self.lo is not None:
            may &= maxs >= self.lo
        if self.hi is not None:
            may &= mins <= self.hi
        return may

    def as_interval(self) -> tuple[int, int]:
        return (
            INT64_MIN if self.lo is None else int(self.lo),
            INT64_MAX if self.hi is None else int(self.hi),
        )

    def tile_must_match(self, mins: np.ndarray, maxs: np.ndarray) -> np.ndarray:
        # Every row matches iff the whole tile interval sits inside [lo, hi].
        must = np.ones(np.asarray(mins).shape, dtype=bool)
        if self.lo is not None:
            must &= mins >= self.lo
        if self.hi is not None:
            must &= maxs <= self.hi
        return must

    def cache_key(self) -> tuple:
        lo, hi = self.as_interval()
        if lo > hi:
            return ("empty", self.column)
        if lo == hi:
            return ("eq", self.column, lo)
        return ("range", self.column, lo, hi)


@dataclass(frozen=True)
class Equals(ColumnPredicate):
    """``column == value``."""

    column: str
    value: int

    def row_mask(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values) == self.value

    def tile_may_match(self, mins: np.ndarray, maxs: np.ndarray) -> np.ndarray:
        return (mins <= self.value) & (self.value <= maxs)

    def as_interval(self) -> tuple[int, int]:
        return (int(self.value), int(self.value))

    def tile_must_match(self, mins: np.ndarray, maxs: np.ndarray) -> np.ndarray:
        # Only a constant tile equal to the value matches on every row.
        return (mins == self.value) & (maxs == self.value)

    def cache_key(self) -> tuple:
        return ("eq", self.column, int(self.value))


@dataclass(frozen=True)
class InSet(ColumnPredicate):
    """``column IN values`` for a small explicit set."""

    column: str
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(int(v) for v in self.values)))
        object.__setattr__(self, "values", ordered)

    def row_mask(self, values: np.ndarray) -> np.ndarray:
        if not self.values:
            return np.zeros(np.asarray(values).shape, dtype=bool)
        return np.isin(values, np.asarray(self.values, dtype=np.int64))

    def tile_may_match(self, mins: np.ndarray, maxs: np.ndarray) -> np.ndarray:
        mins = np.asarray(mins)
        if not self.values:
            return np.zeros(mins.shape, dtype=bool)
        vals = np.asarray(self.values, dtype=np.int64)
        # A tile may match iff some set member falls inside [min, max]:
        # with vals sorted, that is one pair of binary searches per tile.
        first_ge_min = np.searchsorted(vals, mins, side="left")
        first_gt_max = np.searchsorted(vals, maxs, side="right")
        return first_ge_min < first_gt_max

    def tile_must_match(self, mins: np.ndarray, maxs: np.ndarray) -> np.ndarray:
        mins = np.asarray(mins)
        if not self.values:
            return np.zeros(mins.shape, dtype=bool)
        # A constant tile whose value is a set member matches everywhere.
        vals = np.asarray(self.values, dtype=np.int64)
        return (mins == maxs) & np.isin(mins, vals)

    def cache_key(self) -> tuple:
        if not self.values:
            return ("empty", self.column)
        if len(self.values) == 1:
            return ("eq", self.column, self.values[0])
        return ("in", self.column, self.values)


@dataclass(frozen=True)
class And:
    """Conjunction of single-column predicates (the SSB filter shape)."""

    predicates: tuple[ColumnPredicate, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        flat: list[ColumnPredicate] = []
        for pred in self.predicates:
            if isinstance(pred, And):
                flat.extend(pred.predicates)
            else:
                flat.append(pred)
        object.__setattr__(self, "predicates", tuple(flat))

    def cache_key(self) -> tuple:
        """Canonical key of the whole conjunction (see :func:`canonical_key`)."""
        return canonical_key(self)


def canonical_predicates(
    predicate: ColumnPredicate | And | None,
) -> tuple[ColumnPredicate, ...]:
    """Reduce a predicate to one normalized conjunct per column.

    Per-column constraints are intersected exactly — ranges intersect
    their intervals, sets intersect their members and are clipped to the
    surrounding interval — and each surviving column re-emerges in its
    simplest form: ``Equals`` for a point, ``InSet`` for a small set,
    ``Range`` for an interval, nothing for a full-domain constraint, and
    ``InSet(column, ())`` for a provably empty one.  The result is
    sorted by column name, so any two conjunctions selecting the same
    rows normalize to the same tuple.
    """
    preds = column_predicates(predicate)
    los: dict[str, int] = {}
    his: dict[str, int] = {}
    sets: dict[str, frozenset[int] | None] = {}
    for pred in preds:
        col = pred.column
        if col not in los:
            los[col], his[col], sets[col] = INT64_MIN, INT64_MAX, None
        if isinstance(pred, InSet):
            members = frozenset(pred.values)
            prior = sets[col]
            sets[col] = members if prior is None else prior & members
        elif isinstance(pred, (Range, Equals)):
            lo, hi = pred.as_interval()
            los[col] = max(los[col], lo)
            his[col] = min(his[col], hi)
        else:
            raise TypeError(
                f"cannot canonicalize predicate type {type(pred).__name__}"
            )
    out: list[ColumnPredicate] = []
    for col in sorted(los):
        lo, hi, members = los[col], his[col], sets[col]
        if members is not None:
            vals = tuple(sorted(v for v in members if lo <= v <= hi))
            if not vals:
                out.append(InSet(col, ()))
            elif len(vals) == 1:
                out.append(Equals(col, vals[0]))
            else:
                out.append(InSet(col, vals))
        elif lo > hi:
            out.append(InSet(col, ()))
        elif lo == hi:
            out.append(Equals(col, lo))
        elif lo == INT64_MIN and hi == INT64_MAX:
            continue  # no constraint at all
        else:
            out.append(
                Range(
                    col,
                    None if lo == INT64_MIN else lo,
                    None if hi == INT64_MAX else hi,
                )
            )
    return tuple(out)


def canonical_key(predicate: ColumnPredicate | And | None) -> tuple:
    """A stable hashable key identifying a predicate up to semantics.

    ``("true",)`` for no constraint, ``("false",)`` when any column's
    constraint is unsatisfiable, otherwise ``("and", (conjunct keys
    sorted by column))`` over the :func:`canonical_predicates` form.
    Semantically identical filters built by different flights (``And``
    nesting, conjunct order, ``Range(lo == hi)`` vs ``Equals``,
    single-member ``InSet``, redundant repeats) all map to one key.
    """
    conjuncts = canonical_predicates(predicate)
    keys = tuple(p.cache_key() for p in conjuncts)
    if any(k[0] == "empty" for k in keys):
        return ("false",)
    if not keys:
        return ("true",)
    return ("and", keys)


def column_predicates(
    predicate: ColumnPredicate | And | None,
) -> tuple[ColumnPredicate, ...]:
    """Normalize a predicate (or conjunction, or ``None``) to a flat tuple."""
    if predicate is None:
        return ()
    if isinstance(predicate, And):
        return predicate.predicates
    if isinstance(predicate, ColumnPredicate):
        return (predicate,)
    raise TypeError(
        f"expected ColumnPredicate or And, got {type(predicate).__name__}"
    )
