"""The 13 Star Schema Benchmark queries as Crystal-style plans.

Each query is expressed against the :class:`~repro.engine.crystal.FactPipeline`
API: build filtered dimension lookups, sweep the fact table once, probe,
filter, aggregate.  String literals from the SSB spec are pre-resolved to
the dictionary codes :mod:`repro.ssb.dbgen` generates (e.g. region
``'AMERICA'`` is code 1, brand ``'MFGR#2221'`` is code 260).

Because selections and joins fold into the single fused fact kernel, the
only difference between running a query on uncompressed data and on GPU-*
data is which load device function the kernel uses — the paper's
one-line-change claim (Section 7).
"""

from __future__ import annotations

import numpy as np

from repro.engine.crystal import MISS, CrystalEngine, SSBQuery
from repro.engine.predicates import And, Range, canonical_predicates

# -- dictionary codes for the SSB literals used by the queries -------------

#: Regions (see repro.ssb.schema.REGIONS).
AFRICA, AMERICA, ASIA, EUROPE, MIDDLE_EAST = range(5)
#: 'UNITED STATES': a nation inside AMERICA (codes 5..9).
NATION_US = 7
#: 'UNITED KI1' and 'UNITED KI5': two cities of nation 7 (codes 70..79).
CITY_UK1 = 71
CITY_UK5 = 75
#: 'MFGR#12': manufacturer 1, category 2 -> category code 0*5 + 1.
CATEGORY_MFGR12 = 1
#: 'MFGR#14': manufacturer 1, category 4.
CATEGORY_MFGR14 = 3
#: 'MFGR#2221'..'MFGR#2228': brands 20..27 of category code 6.
BRAND_2221 = 6 * 40 + 20
BRAND_2228 = 6 * 40 + 27
#: 'MFGR#2239'.
BRAND_2239 = 6 * 40 + 38

#: Group-code strides.
_YEARS = 7
_NATIONS = 25
_CITIES = 250
_BRANDS = 1000
_CATEGORIES = 25


def _year_code(years: np.ndarray) -> np.ndarray:
    return years - 1992


def _datekey_range(db, date_mask: np.ndarray) -> Range:
    """Bound ``lo_orderdate`` by the selected dimension rows' datekeys.

    Semijoin reduction to a range: the dense YYYYMMDD datekeys of the
    qualifying ``date`` rows bound every fact row that can survive the
    date join, letting pushdown skip tiles on date-clustered data.  An
    empty selection yields an unsatisfiable range (prunes everything).
    """
    keys = db.date["d_datekey"][np.asarray(date_mask, dtype=bool)]
    if keys.size == 0:
        return Range("lo_orderdate", 1, 0)
    return Range("lo_orderdate", int(keys.min()), int(keys.max()))


# -- query flight 1: filtered scans ----------------------------------------


def _flight1(engine: CrystalEngine, name: str, date_mask: np.ndarray,
             disc_lo: int, disc_hi: int, qty_lo: int, qty_hi: int) -> dict[int, int]:
    date_lu = engine.build_lookup("date", "d_datekey", mask=date_mask)
    disc = Range("lo_discount", disc_lo, disc_hi)
    qty = Range("lo_quantity", qty_lo, qty_hi)
    p = engine.pipeline(name)
    p.filter_pushdown(And((_datekey_range(engine.db, date_mask), disc, qty)))
    orderdate = p.load("lo_orderdate")
    p.filter(p.probe(date_lu, orderdate) != MISS)
    discount = p.load("lo_discount")
    p.filter_predicate(disc, discount)
    quantity = p.load("lo_quantity")
    p.filter_predicate(qty, quantity)
    extendedprice = p.load("lo_extendedprice")
    result = p.total_sum_product(extendedprice, discount)
    p.finish()
    return result


def q1_1(engine: CrystalEngine) -> dict[int, int]:
    """select sum(lo_extendedprice*lo_discount) as revenue
    where d_year = 1993 and lo_discount between 1 and 3 and lo_quantity < 25"""
    return _flight1(engine, "q1.1", engine.db.date["d_year"] == 1993, 1, 3, 0, 24)


def q1_2(engine: CrystalEngine) -> dict[int, int]:
    """... where d_yearmonthnum = 199401 and lo_discount between 4 and 6
    and lo_quantity between 26 and 35"""
    return _flight1(
        engine, "q1.2", engine.db.date["d_yearmonthnum"] == 199401, 4, 6, 26, 35
    )


def q1_3(engine: CrystalEngine) -> dict[int, int]:
    """... where d_weeknuminyear = 6 and d_year = 1994
    and lo_discount between 5 and 7 and lo_quantity between 36 and 40"""
    d = engine.db.date
    mask = (d["d_weeknuminyear"] == 6) & (d["d_year"] == 1994)
    return _flight1(engine, "q1.3", mask, 5, 7, 36, 40)


#: Fact columns every revenue scan touches, in load order.
_SCAN_COLUMNS = ("lo_orderdate", "lo_discount", "lo_quantity", "lo_extendedprice")


def make_scan(name: str, predicate: "And | Range") -> SSBQuery:
    """A declarative revenue scan: ``sum(extendedprice * discount)``
    under a predicate over the scan columns.

    The predicate is canonicalized up front and declared on the returned
    :class:`SSBQuery` (``plan_key=("scan", "revenue")``), so every scan
    built here shares one plan family: the serving layer coalesces
    semantically identical requests, and the semantic result cache
    transfers per-tile-span partials between scans whose filters
    provably agree on a tile (the year→month drill-down pattern).  All
    four columns load unconditionally — the plan's operator trace is
    identical across the family no matter which columns the predicate
    happens to constrain.
    """
    conjuncts = canonical_predicates(predicate)
    filterable = set(_SCAN_COLUMNS[:-1])
    extra = sorted({p.column for p in conjuncts} - filterable)
    if extra:
        raise ValueError(
            f"scan predicates may constrain only {sorted(filterable)}, got {extra}"
        )
    pred = And(conjuncts)
    by_col = {p.column: p for p in conjuncts}

    def fn(engine: CrystalEngine) -> dict[int, int]:
        p = engine.pipeline(name)
        p.filter_pushdown(pred)
        loaded = {}
        for col in _SCAN_COLUMNS[:-1]:
            loaded[col] = p.load(col)
            cp = by_col.get(col)
            if cp is not None:
                p.filter_predicate(cp, loaded[col])
        extendedprice = p.load("lo_extendedprice")
        result = p.total_sum_product(extendedprice, loaded["lo_discount"])
        p.finish()
        return result

    return SSBQuery(
        name, _SCAN_COLUMNS, fn, plan_key=("scan", "revenue"), predicate=pred
    )


def make_flight1(name: str, date_lo: int, date_hi: int, disc_lo: int,
                 disc_hi: int, qty_lo: int, qty_hi: int) -> SSBQuery:
    """A flight-1 query with its date selection as a datekey range.

    Every ``lo_orderdate`` is a valid ``d_datekey`` (dbgen samples the
    date dimension), so an equality filter on any date attribute that
    selects *contiguous calendar days* — a year, a month, a week — is
    exactly the datekey range ``[first day, last day]``.  Expressing it
    as a :class:`Range` instead of a mask-filtered dimension join keeps
    the whole drill-down family on one plan (no per-query lookup to
    fingerprint), which is what lets the semantic cache reuse partials
    between e.g. the year=1993 scan and its month drill-downs.
    """
    return make_scan(
        name,
        And((
            Range("lo_orderdate", date_lo, date_hi),
            Range("lo_discount", disc_lo, disc_hi),
            Range("lo_quantity", qty_lo, qty_hi),
        )),
    )


# -- query flight 2: part x supplier x date --------------------------------


def _flight2(engine: CrystalEngine, name: str, part_mask: np.ndarray,
             supp_region: int) -> dict[int, int]:
    db = engine.db
    part_lu = engine.build_lookup(
        "part", "p_partkey", payload=db.part["p_brand1"], mask=part_mask
    )
    supp_lu = engine.build_lookup(
        "supplier", "s_suppkey", mask=db.supplier["s_region"] == supp_region
    )
    date_lu = engine.build_lookup(
        "date", "d_datekey", payload=_year_code(db.date["d_year"])
    )
    p = engine.pipeline(name)
    suppkey = p.load("lo_suppkey")
    p.filter(p.probe(supp_lu, suppkey) != MISS)
    partkey = p.load("lo_partkey")
    brand = p.probe(part_lu, partkey)
    p.filter(brand != MISS)
    orderdate = p.load("lo_orderdate")
    year = p.probe(date_lu, orderdate)
    revenue = p.load("lo_revenue")
    codes = np.where(year >= 0, year, 0) * _BRANDS + np.where(brand >= 0, brand, 0)
    result = p.group_sum(codes, revenue, _YEARS * _BRANDS)
    p.finish()
    return result


def q2_1(engine: CrystalEngine) -> dict[int, int]:
    """sum(lo_revenue) group by d_year, p_brand1
    where p_category = 'MFGR#12' and s_region = 'AMERICA'"""
    part_mask = engine.db.part["p_category"] == CATEGORY_MFGR12
    return _flight2(engine, "q2.1", part_mask, AMERICA)


def q2_2(engine: CrystalEngine) -> dict[int, int]:
    """... where p_brand1 between 'MFGR#2221' and 'MFGR#2228' and
    s_region = 'ASIA'"""
    brand = engine.db.part["p_brand1"]
    return _flight2(
        engine, "q2.2", (brand >= BRAND_2221) & (brand <= BRAND_2228), ASIA
    )


def q2_3(engine: CrystalEngine) -> dict[int, int]:
    """... where p_brand1 = 'MFGR#2239' and s_region = 'EUROPE'"""
    return _flight2(engine, "q2.3", engine.db.part["p_brand1"] == BRAND_2239, EUROPE)


# -- query flight 3: customer x supplier x date -----------------------------


def _flight3(engine: CrystalEngine, name: str,
             cust_payload: np.ndarray, cust_mask: np.ndarray,
             supp_payload: np.ndarray, supp_mask: np.ndarray,
             date_mask: np.ndarray, stride: int) -> dict[int, int]:
    db = engine.db
    cust_lu = engine.build_lookup(
        "customer", "c_custkey", payload=cust_payload, mask=cust_mask
    )
    supp_lu = engine.build_lookup(
        "supplier", "s_suppkey", payload=supp_payload, mask=supp_mask
    )
    date_lu = engine.build_lookup(
        "date", "d_datekey", payload=_year_code(db.date["d_year"]), mask=date_mask
    )
    p = engine.pipeline(name)
    p.filter_pushdown(_datekey_range(db, date_mask))
    custkey = p.load("lo_custkey")
    cgroup = p.probe(cust_lu, custkey)
    p.filter(cgroup != MISS)
    suppkey = p.load("lo_suppkey")
    sgroup = p.probe(supp_lu, suppkey)
    p.filter(sgroup != MISS)
    orderdate = p.load("lo_orderdate")
    year = p.probe(date_lu, orderdate)
    p.filter(year != MISS)
    revenue = p.load("lo_revenue")
    codes = (
        np.where(cgroup >= 0, cgroup, 0) * stride + np.where(sgroup >= 0, sgroup, 0)
    ) * _YEARS + np.where(year >= 0, year, 0)
    result = p.group_sum(codes, revenue, stride * stride * _YEARS)
    p.finish()
    return result


def q3_1(engine: CrystalEngine) -> dict[int, int]:
    """sum(lo_revenue) group by c_nation, s_nation, d_year
    where c_region = 'ASIA' and s_region = 'ASIA' and d_year in 1992..1997"""
    db = engine.db
    return _flight3(
        engine, "q3.1",
        db.customer["c_nation"], db.customer["c_region"] == ASIA,
        db.supplier["s_nation"], db.supplier["s_region"] == ASIA,
        (db.date["d_year"] >= 1992) & (db.date["d_year"] <= 1997),
        _NATIONS,
    )


def q3_2(engine: CrystalEngine) -> dict[int, int]:
    """group by c_city, s_city, d_year where both nations are
    'UNITED STATES' and d_year in 1992..1997"""
    db = engine.db
    return _flight3(
        engine, "q3.2",
        db.customer["c_city"], db.customer["c_nation"] == NATION_US,
        db.supplier["s_city"], db.supplier["s_nation"] == NATION_US,
        (db.date["d_year"] >= 1992) & (db.date["d_year"] <= 1997),
        _CITIES,
    )


def q3_3(engine: CrystalEngine) -> dict[int, int]:
    """... where both cities are in ('UNITED KI1', 'UNITED KI5')
    and d_year in 1992..1997"""
    db = engine.db
    city_ok_c = np.isin(db.customer["c_city"], (CITY_UK1, CITY_UK5))
    city_ok_s = np.isin(db.supplier["s_city"], (CITY_UK1, CITY_UK5))
    return _flight3(
        engine, "q3.3",
        db.customer["c_city"], city_ok_c,
        db.supplier["s_city"], city_ok_s,
        (db.date["d_year"] >= 1992) & (db.date["d_year"] <= 1997),
        _CITIES,
    )


def q3_4(engine: CrystalEngine) -> dict[int, int]:
    """... where both cities are in ('UNITED KI1', 'UNITED KI5')
    and d_yearmonth = 'Dec1997'"""
    db = engine.db
    city_ok_c = np.isin(db.customer["c_city"], (CITY_UK1, CITY_UK5))
    city_ok_s = np.isin(db.supplier["s_city"], (CITY_UK1, CITY_UK5))
    return _flight3(
        engine, "q3.4",
        db.customer["c_city"], city_ok_c,
        db.supplier["s_city"], city_ok_s,
        db.date["d_yearmonthnum"] == 199712,
        _CITIES,
    )


# -- query flight 4: all four dimensions, profit ----------------------------


def _load_profit(p, date_lu, cust_lu, supp_lu, part_lu):
    """The shared probe prologue of flight 4: returns the four payloads."""
    custkey = p.load("lo_custkey")
    cpay = p.probe(cust_lu, custkey)
    p.filter(cpay != MISS)
    suppkey = p.load("lo_suppkey")
    spay = p.probe(supp_lu, suppkey)
    p.filter(spay != MISS)
    partkey = p.load("lo_partkey")
    ppay = p.probe(part_lu, partkey)
    p.filter(ppay != MISS)
    orderdate = p.load("lo_orderdate")
    year = p.probe(date_lu, orderdate)
    p.filter(year != MISS)
    revenue = p.load("lo_revenue")
    supplycost = p.load("lo_supplycost")
    return cpay, spay, ppay, year, revenue - supplycost


def q4_1(engine: CrystalEngine) -> dict[int, int]:
    """sum(lo_revenue - lo_supplycost) group by d_year, c_nation
    where c_region = s_region = 'AMERICA' and p_mfgr in ('MFGR#1','MFGR#2')"""
    db = engine.db
    cust_lu = engine.build_lookup(
        "customer", "c_custkey", payload=db.customer["c_nation"],
        mask=db.customer["c_region"] == AMERICA,
    )
    supp_lu = engine.build_lookup(
        "supplier", "s_suppkey", mask=db.supplier["s_region"] == AMERICA
    )
    part_lu = engine.build_lookup(
        "part", "p_partkey", mask=np.isin(db.part["p_mfgr"], (0, 1))
    )
    date_lu = engine.build_lookup(
        "date", "d_datekey", payload=_year_code(db.date["d_year"])
    )
    p = engine.pipeline("q4.1")
    cnation, _, _, year, profit = _load_profit(p, date_lu, cust_lu, supp_lu, part_lu)
    codes = np.where(year >= 0, year, 0) * _NATIONS + np.where(cnation >= 0, cnation, 0)
    result = p.group_sum(codes, profit, _YEARS * _NATIONS)
    p.finish()
    return result


def q4_2(engine: CrystalEngine) -> dict[int, int]:
    """group by d_year, s_nation, p_category where both regions are
    'AMERICA', d_year in (1997, 1998), p_mfgr in ('MFGR#1','MFGR#2')"""
    db = engine.db
    cust_lu = engine.build_lookup(
        "customer", "c_custkey", mask=db.customer["c_region"] == AMERICA
    )
    supp_lu = engine.build_lookup(
        "supplier", "s_suppkey", payload=db.supplier["s_nation"],
        mask=db.supplier["s_region"] == AMERICA,
    )
    part_lu = engine.build_lookup(
        "part", "p_partkey", payload=db.part["p_category"],
        mask=np.isin(db.part["p_mfgr"], (0, 1)),
    )
    date_mask = np.isin(db.date["d_year"], (1997, 1998))
    date_lu = engine.build_lookup(
        "date", "d_datekey", payload=_year_code(db.date["d_year"]),
        mask=date_mask,
    )
    p = engine.pipeline("q4.2")
    p.filter_pushdown(_datekey_range(db, date_mask))
    _, snation, category, year, profit = _load_profit(
        p, date_lu, cust_lu, supp_lu, part_lu
    )
    codes = (
        np.where(year >= 0, year, 0) * _NATIONS + np.where(snation >= 0, snation, 0)
    ) * _CATEGORIES + np.where(category >= 0, category, 0)
    result = p.group_sum(codes, profit, _YEARS * _NATIONS * _CATEGORIES)
    p.finish()
    return result


def q4_3(engine: CrystalEngine) -> dict[int, int]:
    """group by d_year, s_city, p_brand1 where c_region = 'AMERICA',
    s_nation = 'UNITED STATES', d_year in (1997, 1998),
    p_category = 'MFGR#14'"""
    db = engine.db
    cust_lu = engine.build_lookup(
        "customer", "c_custkey", mask=db.customer["c_region"] == AMERICA
    )
    supp_lu = engine.build_lookup(
        "supplier", "s_suppkey", payload=db.supplier["s_city"],
        mask=db.supplier["s_nation"] == NATION_US,
    )
    part_lu = engine.build_lookup(
        "part", "p_partkey", payload=db.part["p_brand1"],
        mask=db.part["p_category"] == CATEGORY_MFGR14,
    )
    date_mask = np.isin(db.date["d_year"], (1997, 1998))
    date_lu = engine.build_lookup(
        "date", "d_datekey", payload=_year_code(db.date["d_year"]),
        mask=date_mask,
    )
    p = engine.pipeline("q4.3")
    p.filter_pushdown(_datekey_range(db, date_mask))
    _, scity, brand, year, profit = _load_profit(p, date_lu, cust_lu, supp_lu, part_lu)
    codes = (
        np.where(year >= 0, year, 0) * _CITIES + np.where(scity >= 0, scity, 0)
    ) * _BRANDS + np.where(brand >= 0, brand, 0)
    result = p.group_sum(codes, profit, _YEARS * _CITIES * _BRANDS)
    p.finish()
    return result


#: All 13 queries with the fact columns each touches.
QUERIES: dict[str, SSBQuery] = {
    q.name: q
    for q in (
        # Flight 1 ships as declarative scans (date joins reduced to
        # exact datekey ranges — see make_flight1): same answers, one
        # shared plan family for coalescing and partial reuse.
        # q1.1: d_year = 1993; q1.2: d_yearmonthnum = 199401;
        # q1.3: week 6 of 1994 = Feb 5-11 (day-of-year 36..42).
        make_flight1("q1.1", 19930101, 19931231, 1, 3, 0, 24),
        make_flight1("q1.2", 19940101, 19940131, 4, 6, 26, 35),
        make_flight1("q1.3", 19940205, 19940211, 5, 7, 36, 40),
        SSBQuery("q2.1", ("lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue"), q2_1),
        SSBQuery("q2.2", ("lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue"), q2_2),
        SSBQuery("q2.3", ("lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue"), q2_3),
        SSBQuery("q3.1", ("lo_custkey", "lo_suppkey", "lo_orderdate", "lo_revenue"), q3_1),
        SSBQuery("q3.2", ("lo_custkey", "lo_suppkey", "lo_orderdate", "lo_revenue"), q3_2),
        SSBQuery("q3.3", ("lo_custkey", "lo_suppkey", "lo_orderdate", "lo_revenue"), q3_3),
        SSBQuery("q3.4", ("lo_custkey", "lo_suppkey", "lo_orderdate", "lo_revenue"), q3_4),
        SSBQuery("q4.1", ("lo_custkey", "lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue", "lo_supplycost"), q4_1),
        SSBQuery("q4.2", ("lo_custkey", "lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue", "lo_supplycost"), q4_2),
        SSBQuery("q4.3", ("lo_custkey", "lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue", "lo_supplycost"), q4_3),
    )
}
