"""Crystal-style tile-based query engine with inline decompression.

The engine executes each SSB query the way Crystal does (Section 7):
dimension tables are turned into dense join lookups by small build
kernels, then **one fused fact kernel** sweeps ``lineorder`` in tiles of
512 rows (D=4 blocks of 128).  Under GPU-* compression the fact kernel's
column loads are ``LoadBitPack``/``LoadDBitPack``/``LoadRBitPack`` device
functions — the tile is decoded in shared memory inline with execution,
so compressed columns cost their compressed bytes plus decode compute,
never an extra global-memory round trip.

Three execution styles cover the paper's six systems:

* ``fused`` + inline decode — GPU-* (and ``None`` without decode);
* ``fused`` after a decompress-to-global prologue — nvCOMP, Planner and
  GPU-BP, which cannot pipeline decompression into the query (Section 9.4);
* ``staged`` — the OmniSci model: one kernel per operator with row-wise
  column access and a materialized selection bitmap between operators.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.nvcomp import decompress_nvcomp
from repro.core.planner import decompress_planned
from repro.core.tile_decompress import decompress
from repro.formats import kernels
from repro.formats.base import (
    EncodedColumn,
    TileCodec,
    corruption_guard,
    crc32_values,
    exact_tile_bounds,
    ragged_arange,
    verify_mode,
)
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.gpusim.memory import linear_bytes
from repro.engine.lookup import MISS, Lookup, make_lookup
from repro.engine.predicates import (
    And,
    ColumnPredicate,
    canonical_key,
    column_predicates,
)
from repro.ssb.dbgen import SSBDatabase
from repro.ssb.loader import ColumnStore, StoredColumn

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving -> engine)
    from repro.core.updates import UpdatableColumn
    from repro.serving.pool import ColumnPool

#: Rows one thread block processes (D=4 blocks of 128).
TILE = 512
#: Thread-block size used by every query kernel.
BLOCK_THREADS = 128
#: Values each thread keeps live per loaded column (the paper's D).
D_PER_THREAD = TILE // BLOCK_THREADS

#: Fraction of peak bandwidth the OmniSci-style engine achieves: its
#: row-at-a-time JIT kernels neither tile nor coalesce column access the
#: way Crystal does (both this paper and Shanbhag et al. 2020 report the
#: resulting order-of-magnitude query gap).
OMNISCI_EFFICIENCY = 0.24
#: Extra per-row interpretation ops per OmniSci operator.
OMNISCI_OP_OVERHEAD = 24

#: Systems whose columns must be decompressed to global memory before the
#: query kernel can read them.
DECOMPRESS_FIRST_SYSTEMS = ("nvcomp", "planner", "gpu-bp")


@dataclass
class QueryResult:
    """Outcome of one SSB query on one system."""

    name: str
    system: str
    simulated_ms: float
    kernel_count: int
    #: Aggregate output: {group_code: value} or a single scalar under "".
    groups: dict[int, int]
    #: Fixed launch overhead included in ``simulated_ms``.
    launch_overhead_ms: float = 0.0

    @property
    def total(self) -> int:
        """Sum of all aggregate values (handy for cross-system checks)."""
        return int(sum(self.groups.values()))

    def scaled_ms(self, scale: float) -> float:
        """Project to a ``scale``x larger fact table (launch overhead is
        size-independent, everything else is linear in the row count)."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return (self.simulated_ms - self.launch_overhead_ms) * scale + self.launch_overhead_ms


class CrystalEngine:
    """Executes SSB queries over one system's column store."""

    def __init__(
        self,
        db: SSBDatabase,
        store: ColumnStore,
        device: GPUDevice | None = None,
        pool: "ColumnPool | None" = None,
        pushdown: bool = True,
        streaming: bool = False,
        stream_workers: int = 4,
        morsel_tiles: int | None = None,
        kernel_backend: str | None = None,
    ):
        self.db = db
        self.store = store
        self.device = device if device is not None else GPUDevice()
        #: When set, decoded images and tile metadata live as evictable
        #: residents of the serving layer's ColumnPool instead of the
        #: unbounded per-engine dicts — device capacity is then enforced.
        self.pool = pool
        #: Whether :meth:`FactPipeline.filter_pushdown` may skip tiles
        #: from codec bounds; off, queries run the unpruned plan.
        self.pushdown = pushdown
        #: Route :meth:`run` through the morsel-parallel streaming
        #: executor (tile-chunk-at-a-time, the paper's fused shape)
        #: instead of column-at-a-time materialization.  Answers are
        #: bit-identical either way; only peak memory and wall clock
        #: differ.  Ignored for staged and decompress-first systems,
        #: which have no tile-fused plan to stream.
        self.streaming = streaming
        #: Worker threads the streaming executor runs morsels on.
        self.stream_workers = stream_workers
        #: Engine tiles per morsel (``None`` = executor default).
        self.morsel_tiles = morsel_tiles
        # Bit-packing kernel backend (process-global: the backend layer
        # holds precompiled per-bitwidth plans, not per-engine state).
        # ``None`` keeps the process default (REPRO_KERNEL_BACKEND env or
        # the precompiled shift-table plans).
        if kernel_backend is not None:
            kernels.set_backend(kernel_backend)
        #: Resolved backend name actually serving this engine's decodes
        #: (may differ from the request when e.g. numba is absent).
        self.kernel_backend = kernels.backend_name()
        #: Optional serving MetricsRegistry receiving per-morsel timings
        #: and the peak decoded-bytes gauge (set by the QueryServer).
        self.metrics = None
        #: Optional semantic result cache (see ``serving.semcache``).
        #: When set, streaming queries probe it for reusable per-tile
        #: partial aggregates before running morsels, and
        #: :meth:`invalidate_column` bumps its per-column epochs so a
        #: flush can never merge stale partials.
        self.semcache = None
        #: Optional fault-injection hook, called with the column name
        #: before every source decode; used by the robustness tests to
        #: simulate transient decode failures (see serving.faults).
        self.fault_hook = None
        #: When True, every cached decoded image served from the pool or
        #: the engine cache is re-verified against the encoded column's
        #: whole-column CRC; on mismatch the stale image is dropped and
        #: the column re-decoded from its compressed source.
        self.verify_cached = False
        #: Stats dict of the most recent streaming run (see
        #: ``TileStreamExecutor.last_stats``); empty before any.
        self.last_stream_stats: dict = {}
        # Reused across queries so worker threads and per-worker decode
        # arenas persist: steady-state streaming allocates nothing.
        self._stream_executor = None
        self.num_rows = db.num_lineorder_rows
        self.num_tiles = -(-self.num_rows // TILE)
        self._tile_bytes_cache: dict[str, np.ndarray] = {}
        self._decoded_cache: dict[str, np.ndarray] = {}
        self._bounds_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        # Morsel workers read these caches concurrently; the lock makes
        # the fill-on-miss paths safe (the dicts only ever grow).
        self._cache_lock = threading.Lock()
        self._staged = store.system == "omnisci"
        self._last_timeline: list[dict] = []

    # -- column storage helpers --------------------------------------------

    def column_inline(self, name: str) -> bool:
        """Whether this column decodes inline in the fact kernel."""
        return self.inline_column(self.store[name])

    def inline_column(self, col: StoredColumn) -> bool:
        """Object form of :meth:`column_inline`.

        Readers racing an atomic tier swap must branch on the one
        :class:`StoredColumn` snapshot they already fetched — re-fetching
        by name could observe the *other* side of the swap and pair an
        inline-ness verdict with the wrong payload.
        """
        return self.store.system == "gpu-star" and col.codec_name != ""

    def pinned_decoded(self, name: str) -> np.ndarray | None:
        """A hot column's pinned decoded image, if one is pool-resident.

        The tiering manager pins decoded images of the hottest columns;
        pricing paths treat such a column like uncompressed storage (the
        fact kernel reads 4-byte rows, no inline decode), and value paths
        serve slices of the image.  Only tier invalidation removes a
        pinned resident, never eviction — so the pricing and value views
        cannot diverge.
        """
        if self.pool is None:
            return None
        resident = self.pool.lookup(f"decoded/{name}")
        if resident is not None and resident.pin_count > 0:
            return resident.payload
        return None

    def column_values(self, name: str) -> np.ndarray:
        """The decoded values a fact-kernel column load produces.

        Inline-compressed columns really are decoded from their encoded
        payload — through the batched ``decode_range`` over the whole
        tile grid, mirroring the one-thread-block-per-tile kernel — so
        every query exercises the codec's decode path end to end.  The
        result is cached: within one engine the column's decoded image is
        reused across queries, like a device-resident decode buffer.
        """
        col = self.store[name]
        if not self.inline_column(col):
            return col.values
        if self.pool is not None:
            return self._pool_decoded(name, col)
        cached = self._decoded_cache.get(name)
        if cached is not None:
            if self._cached_image_ok(col, cached):
                return cached
            with self._cache_lock:
                self._decoded_cache.pop(name, None)
        values = self._decode_column(col)
        # setdefault under the lock: two racing workers may both decode,
        # but every caller then sees the same image.
        with self._cache_lock:
            return self._decoded_cache.setdefault(name, values)

    def _decode_column(self, col) -> np.ndarray:
        if self.fault_hook is not None:
            self.fault_hook(col.name)
        codec = get_codec(col.codec_name)
        assert isinstance(codec, TileCodec)
        enc = col.payload
        with corruption_guard(col.name):
            return codec.decode_range(enc, 0, codec.num_tiles(enc))

    def _cached_image_ok(self, col, values: np.ndarray) -> bool:
        """Whether a cached decoded image still matches its source CRC.

        Only consulted when :attr:`verify_cached` is on and the encoded
        payload carries a ``column_crc``; a mismatch (silent in-memory
        corruption of the decoded image) triggers re-decode from source.
        """
        if not self.verify_cached:
            return True
        enc = getattr(col, "payload", None)
        crc = enc.meta.get("column_crc") if isinstance(enc, EncodedColumn) else None
        if crc is None:
            return True
        if crc32_values(values) == int(crc):
            return True
        if self.metrics is not None:
            self.metrics.inc("decoded_image_refreshes")
        return False

    def _pool_decoded(self, name: str, col) -> np.ndarray:
        """Serve the decoded image as an evictable pool resident."""
        from repro.serving.pool import PoolAdmissionError, estimate_decode_cost_ms

        key = f"decoded/{name}"
        resident = self.pool.get(key)
        if resident is not None:
            if self._cached_image_ok(col, resident.payload):
                return resident.payload
            self.pool.invalidate(key)
        values = self._decode_column(col)
        try:
            self.pool.admit(
                key,
                values.nbytes,
                kind="decoded",
                payload=values,
                reconstruct_cost_ms=estimate_decode_cost_ms(col.payload, self.device),
            )
        except PoolAdmissionError:
            pass  # image exceeds the whole budget: serve it uncached
        return values

    def column_values_pruned(self, name: str, tile_active: np.ndarray) -> np.ndarray:
        """Late-materialized column load: decode only the active tiles.

        Rows of pruned tiles are left zero-filled; the caller must make
        sure its selection mask excludes them (pushdown only prunes a
        tile when its bounds prove no row can match, so those rows are
        dead by construction).  Partial images are never cached — the
        cache holds only full decoded columns.
        """
        col = self.store[name]
        if not self.inline_column(col):
            return col.values
        tile_active = np.asarray(tile_active, dtype=bool)
        if tile_active.all():
            return self.column_values(name)
        # A cached full image is strictly better than a partial decode.
        if self.pool is not None:
            if self.pool.lookup(f"decoded/{name}") is not None:
                resident = self.pool.get(f"decoded/{name}")
                if resident is not None:
                    return resident.payload
        else:
            cached = self._decoded_cache.get(name)
            if cached is not None:
                return cached
        codec = get_codec(col.codec_name)
        assert isinstance(codec, TileCodec)
        enc = col.payload
        idx = self._active_codec_tiles(codec, enc, tile_active)
        out = np.zeros(enc.count, dtype=enc.dtype)
        if idx.size:
            elems = codec.tile_elements(enc)
            with corruption_guard(name):
                vals = codec.decode_tiles(enc, idx)
            lens = np.minimum((idx + 1) * elems, enc.count) - idx * elems
            pos = np.repeat(idx * elems, lens) + ragged_arange(lens)
            out[pos] = vals
        return out

    def fusion_allowed(self, enc) -> bool:
        """Whether fused decode+filter may serve this encoded column.

        Fused kernels skip unpacking blocks their header bounds already
        disqualify, so they cannot honour per-tile CRC verification on
        partially-skipped decodes.  Columns carrying a ``tile_crcs``
        table therefore stay on the plain decode path unless
        verification is globally off.
        """
        return verify_mode() == "off" or "tile_crcs" not in enc.meta

    def count_fused_kernel(self, rows: int) -> None:
        """Record one fused decode+filter kernel in the metrics registry."""
        if self.metrics is not None:
            self.metrics.inc("fused_decode_filter_kernels")
            self.metrics.inc("fused_decode_filter_rows", rows)

    def column_values_filtered(
        self, name: str, tile_active: np.ndarray, predicate
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Fused late-materialized load: decode + filter in one pass.

        Like :meth:`column_values_pruned` but evaluates ``predicate``
        *during* unpack via the codec's ``decode_filter_tiles_into``,
        returning ``(values, rowmask)`` where ``rowmask`` marks the
        qualifying rows over the whole span.  Values are only meaningful
        where the mask is True.  Returns ``(values, None)`` — caller
        must evaluate the predicate itself — whenever fusion cannot
        apply: uncompressed columns, cached full decoded images (reusing
        them beats re-decoding), or checksummed columns under active
        verification (see :meth:`fusion_allowed`).
        """
        col = self.store[name]
        if not self.inline_column(col):
            return col.values, None
        enc = col.payload
        if not self.fusion_allowed(enc):
            return self.column_values_pruned(name, tile_active), None
        # A cached full image is strictly better than any re-decode.
        if self.pool is not None:
            if self.pool.lookup(f"decoded/{name}") is not None:
                resident = self.pool.get(f"decoded/{name}")
                if resident is not None:
                    return resident.payload, None
        else:
            cached = self._decoded_cache.get(name)
            if cached is not None:
                return cached, None
        tile_active = np.asarray(tile_active, dtype=bool)
        codec = get_codec(col.codec_name)
        assert isinstance(codec, TileCodec)
        idx = self._active_codec_tiles(codec, enc, tile_active)
        out = np.zeros(enc.count, dtype=np.int64)
        rowmask = np.zeros(enc.count, dtype=np.bool_)
        if idx.size:
            elems = codec.tile_elements(enc)
            cap = idx.size * elems
            vals = np.empty(cap, dtype=np.int64)
            vmask = np.empty(cap, dtype=np.bool_)
            with corruption_guard(name):
                written = codec.decode_filter_tiles_into(
                    enc, idx, predicate, vals, vmask
                )
            lens = np.minimum((idx + 1) * elems, enc.count) - idx * elems
            pos = np.repeat(idx * elems, lens) + ragged_arange(lens)
            out[pos] = vals[:written]
            rowmask[pos] = vmask[:written]
            self.count_fused_kernel(written)
        return out, rowmask

    def _active_codec_tiles(
        self, codec: TileCodec, enc, tile_active: np.ndarray
    ) -> np.ndarray:
        """Map an engine-tile activity mask to surviving codec tiles."""
        n_codec = codec.num_tiles(enc)
        elems = codec.tile_elements(enc)
        if elems == TILE:
            mask = tile_active[:n_codec]
        elif TILE % elems == 0:
            factor = TILE // elems
            mask = np.repeat(tile_active, factor)[:n_codec]
        elif elems % TILE == 0:
            # One codec tile spans several engine tiles: decode it if any
            # of them survived.
            factor = elems // TILE
            padded = np.zeros(n_codec * factor, dtype=bool)
            padded[: tile_active.size] = tile_active
            mask = padded.reshape(n_codec, factor).any(axis=1)
        else:
            raise ValueError(
                f"codec tile of {elems} rows does not divide the engine "
                f"tile of {TILE}"
            )
        return np.flatnonzero(mask)

    def column_tile_bounds(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Conservative per-engine-tile value bounds for a fact column.

        Inline GPU-* columns derive them from codec block metadata
        (references + bitwidths) without decoding; uncompressed columns
        get exact min/max zone maps.  Bounds are cached — in the serving
        pool when one is attached, so they survive eviction of the much
        larger decoded images.
        """
        if self.pool is not None:
            key = f"bounds/{name}"
            resident = self.pool.get(key)
            if resident is not None:
                return resident.payload
            bounds = self._compute_tile_bounds(name)
            from repro.serving.pool import PoolAdmissionError

            try:
                self.pool.admit(
                    key,
                    bounds[0].nbytes + bounds[1].nbytes,
                    kind="meta",
                    payload=bounds,
                )
            except PoolAdmissionError:
                pass
            return bounds
        cached = self._bounds_cache.get(name)
        if cached is not None:
            return cached
        bounds = self._compute_tile_bounds(name)
        with self._cache_lock:
            return self._bounds_cache.setdefault(name, bounds)

    def _compute_tile_bounds(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        col = self.store[name]
        if self.inline_column(col):
            codec = get_codec(col.codec_name)
            enc = col.payload
            mins, maxs = codec.tile_bounds(enc)
            return self._regroup_bounds(mins, maxs, codec.bounds_elements(enc))
        mins, maxs = exact_tile_bounds(col.values, TILE)
        return self._regroup_bounds(mins, maxs, TILE)

    def _regroup_bounds(
        self, mins: np.ndarray, maxs: np.ndarray, bounds_elems: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Regroup codec-granularity bounds to engine tiles of :data:`TILE`.

        Padding uses identity sentinels (``INT64_MAX`` for mins,
        ``INT64_MIN`` for maxs): tiles past the data match nothing, so
        any predicate prunes them for free.
        """
        lo_pad = np.iinfo(np.int64).max
        hi_pad = np.iinfo(np.int64).min
        if bounds_elems == TILE:
            pass
        elif TILE % bounds_elems == 0:
            factor = TILE // bounds_elems
            padded_lo = np.full(self.num_tiles * factor, lo_pad, dtype=np.int64)
            padded_hi = np.full(self.num_tiles * factor, hi_pad, dtype=np.int64)
            padded_lo[: mins.size] = mins
            padded_hi[: maxs.size] = maxs
            mins = padded_lo.reshape(self.num_tiles, factor).min(axis=1)
            maxs = padded_hi.reshape(self.num_tiles, factor).max(axis=1)
        elif bounds_elems % TILE == 0:
            factor = bounds_elems // TILE
            mins = np.repeat(mins, factor)
            maxs = np.repeat(maxs, factor)
        else:
            raise ValueError(
                f"bounds granularity of {bounds_elems} rows does not divide "
                f"the engine tile of {TILE}"
            )
        if mins.size != self.num_tiles:
            out_lo = np.full(self.num_tiles, lo_pad, dtype=np.int64)
            out_hi = np.full(self.num_tiles, hi_pad, dtype=np.int64)
            n = min(mins.size, self.num_tiles)
            out_lo[:n] = mins[:n]
            out_hi[:n] = maxs[:n]
            mins, maxs = out_lo, out_hi
        return mins, maxs

    def surviving_tiles(self, predicate) -> np.ndarray:
        """Engine tiles a declared predicate cannot prove empty.

        The routing form of pushdown: the same zone maps
        :meth:`FactPipeline.filter_pushdown` consults, evaluated against
        a query's declared predicate IR without running any plan.  A
        shard router intersects this with each shard's tile range to
        skip shards the query provably cannot touch.  ``None`` (or
        pushdown disabled) keeps every tile — always sound.
        """
        active = np.ones(self.num_tiles, dtype=bool)
        if predicate is None or not self.pushdown:
            return active
        for pred in column_predicates(predicate):
            if pred.column not in self.store.columns:
                continue
            mins, maxs = self.column_tile_bounds(pred.column)
            active &= pred.tile_may_match(mins, maxs)
        return active

    def evict_decoded(self) -> None:
        """Drop every decoded image while keeping derived metadata.

        The serving pool's eviction pattern: decoded images are the big
        evictable payloads, while zone-map bounds and per-tile traffic
        metadata are tiny and survive — so the next query re-decodes
        (only the tiles it needs, under pushdown) but never re-derives
        metadata.
        """
        with self._cache_lock:
            self._decoded_cache.clear()
        if self.pool is not None:
            for name in self.store.columns:
                self.pool.invalidate(f"decoded/{name}")

    def invalidate_column(self, name: str) -> None:
        """Drop every cached derivative of a column (it was re-encoded)."""
        with self._cache_lock:
            self._decoded_cache.pop(name, None)
            self._tile_bytes_cache.pop(name, None)
            self._bounds_cache.pop(name, None)
        if self.pool is not None:
            for prefix in ("decoded/", "tilemeta/", "compressed/", "bounds/"):
                self.pool.invalidate(prefix + name)
        if self.semcache is not None:
            self.semcache.invalidate_column(name)

    def bind_updatable(self, name: str, column: "UpdatableColumn") -> None:
        """Serve ``name`` from an :class:`~repro.core.updates.UpdatableColumn`.

        Every :meth:`~repro.core.updates.UpdatableColumn.flush` re-encodes
        the column, so the store's image is swapped for the fresh encoding
        and all cached/pool-resident derivatives are invalidated — without
        this, the engine keeps serving the pre-update bytes forever.

        The swap publishes a *new* :class:`StoredColumn` object atomically
        (one dict store under the store's swap lock) instead of mutating
        fields in place: a concurrent reader holds either the whole old
        image or the whole new one, never a half-updated mix, and the
        epoch bump makes any in-flight background re-encode of the old
        bytes abort its compare-and-swap.  A flushed column always lands
        back in the warm tier — its fresh planner choice is the baseline
        the tiering manager re-scores from.
        """

        def _on_flush(ucol: "UpdatableColumn") -> None:
            old = self.store[name]
            self.store.swap_column(
                name,
                StoredColumn(
                    name=name,
                    system=old.system,
                    values=ucol.values.copy(),
                    payload=ucol.encoded,
                    nbytes=ucol.encoded.nbytes,
                    codec_name=ucol.codec_name,
                    tier="warm",
                ),
            )
            self.invalidate_column(name)

        column.add_invalidation_hook(_on_flush)
        _on_flush(column)

    def tile_read_bytes(self, name: str) -> np.ndarray:
        """Aligned global-memory bytes each engine tile reads for a column."""
        if self.pool is not None:
            key = f"tilemeta/{name}"
            resident = self.pool.get(key)
            if resident is not None:
                return resident.payload
            per_engine = self._compute_tile_read_bytes(name)
            from repro.serving.pool import PoolAdmissionError

            try:
                self.pool.admit(
                    key, per_engine.nbytes, kind="meta", payload=per_engine
                )
            except PoolAdmissionError:
                pass
            return per_engine
        cached = self._tile_bytes_cache.get(name)
        if cached is not None:
            return cached
        per_engine = self._compute_tile_read_bytes(name)
        with self._cache_lock:
            return self._tile_bytes_cache.setdefault(name, per_engine)

    def _compute_tile_read_bytes(self, name: str) -> np.ndarray:
        col = self.store[name]
        # A hot column with a pinned decoded image reads plain 4-byte
        # rows — the tier invalidation that installs or removes the pin
        # also drops this cached metadata, so the two views stay coherent.
        if self.inline_column(col) and self.pinned_decoded(name) is None:
            codec = get_codec(col.codec_name)
            assert isinstance(codec, TileCodec)
            enc = col.payload
            starts, lengths = codec.tile_segments(enc)
            tx = self.device.spec.transaction_bytes
            starts = starts.astype(np.int64)
            lengths = lengths.astype(np.int64)
            nz = lengths > 0
            seg_bytes = np.zeros(starts.size, dtype=np.int64)
            seg_bytes[nz] = (
                (starts[nz] + lengths[nz] - 1) // tx - starts[nz] // tx + 1
            ) * tx
            codec_tiles = codec.num_tiles(enc)
            per_codec_tile = seg_bytes.reshape(-1, codec_tiles).sum(axis=0)
            per_engine = self._regroup_tiles(per_codec_tile, codec.tile_elements(enc))
        else:
            per_engine = np.full(
                self.num_tiles, linear_bytes(TILE * 4, self.device.spec.transaction_bytes),
                dtype=np.int64,
            )
            tail = self.num_rows - (self.num_tiles - 1) * TILE
            per_engine[-1] = linear_bytes(tail * 4, self.device.spec.transaction_bytes)
        return per_engine

    def _regroup_tiles(self, per_codec_tile: np.ndarray, codec_tile_elems: int) -> np.ndarray:
        """Aggregate codec-tile traffic to engine tiles of :data:`TILE` rows."""
        if codec_tile_elems == TILE:
            out = per_codec_tile
        elif TILE % codec_tile_elems == 0:
            factor = TILE // codec_tile_elems
            padded = np.zeros(self.num_tiles * factor, dtype=np.int64)
            padded[: per_codec_tile.size] = per_codec_tile
            out = padded.reshape(self.num_tiles, factor).sum(axis=1)
        elif codec_tile_elems % TILE == 0:
            # Codec tiles span several engine tiles (e.g. GPU-SIMDBP128's
            # 4096-value blocks): amortize each codec tile's traffic.
            factor = codec_tile_elems // TILE
            out = np.repeat(per_codec_tile, factor) // factor
        else:
            raise ValueError(
                f"codec tile of {codec_tile_elems} rows does not divide the "
                f"engine tile of {TILE}"
            )
        if out.size != self.num_tiles:
            padded = np.zeros(self.num_tiles, dtype=np.int64)
            padded[: out.size] = out[: self.num_tiles]
            out = padded
        return out

    # -- dimension build kernels --------------------------------------------

    def build_lookup(
        self,
        table_name: str,
        key_col: str,
        payload: np.ndarray | None = None,
        mask: np.ndarray | None = None,
        read_cols: int = 2,
    ) -> Lookup:
        """Build a dense join lookup from a dimension table (one kernel)."""
        table = self.db.table(table_name)
        keys = table[key_col]
        lookup = make_lookup(f"{table_name}.{key_col}", keys, payload, mask)
        with self.device.launch(
            f"build-{table_name}",
            grid_blocks=max(1, -(-keys.size // BLOCK_THREADS)),
            block_threads=BLOCK_THREADS,
            registers_per_thread=20,
        ) as k:
            k.read_linear(keys.size * 4 * read_cols)
            k.write_scatter(keys.size, 4, lookup.nbytes)
            k.compute(keys.size * 4)
        return lookup

    # -- fact pipeline --------------------------------------------------------

    def pipeline(self, name: str) -> "FactPipeline":
        """Open a fact-table pipeline for one query."""
        return FactPipeline(self, name, staged=self._staged)

    def decompress_first(self, columns: tuple[str, ...]) -> None:
        """Decompress the needed fact columns to global memory (the
        prologue nvCOMP / Planner / GPU-BP queries pay, Section 9.4).

        Cold-tier columns of any system pay the same shape of prologue:
        their entropy-cascade payload cannot be decoded inline, so every
        query touching one first unspills it (a PCIe staging transfer
        when the bytes live only in the on-disk container) and runs the
        cascade's kernels — the decode-cost side of the ratio-vs-speed
        trade the tiering manager balances.
        """
        system = self.store.system
        for name in columns:
            col = self.store[name]
            if system == "nvcomp":
                decompress_nvcomp(col.payload, self.device)
            elif system == "planner":
                decompress_planned(col.payload, self.device)
            elif system == "gpu-bp":
                decompress(col.payload, self.device, write_back=True)
            elif col.tier == "cold":
                payload = col.payload
                if payload is None and col.spill_path is not None:
                    payload = self.store.ensure_payload(name)
                    self.device.transfer_to_device(col.nbytes)
                if payload is not None:
                    decompress_nvcomp(payload, self.device)

    def explain(self, query: "SSBQuery") -> list[dict]:
        """Run a query and return its per-kernel timeline (EXPLAIN ANALYZE).

        Each row is one kernel launch with its resource signature,
        occupancy, traffic, and simulated time — making visible exactly
        why e.g. a decompress-first system pays more kernels than the
        fused inline-decode plan.
        """
        self.run(query)
        return self._last_timeline

    def uses_streaming(self) -> bool:
        """Whether :meth:`run` routes through the streaming executor.

        Staged (OmniSci) plans price per-operator kernels and
        decompress-first systems already materialized to global memory,
        so neither has tile-fused work to stream.
        """
        return (
            self.streaming
            and not self._staged
            and self.store.system not in DECOMPRESS_FIRST_SYSTEMS
        )

    def _stream(self, query: "SSBQuery") -> dict[int, int]:
        """Run one query through the (cached) streaming executor."""
        from repro.engine.streaming import TileStreamExecutor

        executor = self._stream_executor
        if executor is not None and (
            executor.workers != self.stream_workers
            or (self.morsel_tiles is not None
                and executor.morsel_tiles != self.morsel_tiles)
            or executor.metrics is not self.metrics
        ):
            executor.close()
            executor = None
        if executor is None:
            executor = TileStreamExecutor(
                self,
                workers=self.stream_workers,
                morsel_tiles=self.morsel_tiles,
                metrics=self.metrics,
            )
            self._stream_executor = executor
        if self.semcache is not None:
            groups = self.semcache.execute(self, executor, query)
        else:
            groups = executor.execute(query)
        self.last_stream_stats = executor.last_stats
        self._account_stream_arenas()
        return groups

    def trim_stream_arenas(self, max_bytes: int = 0) -> int:
        """Release streaming decode-arena scratch down to ``max_bytes``.

        Worker arenas grow to the largest column chunk ever decoded and
        otherwise hold that memory forever; serving layers call this
        between query bursts (or the pool does, on eviction of the
        accounting resident) to give it back.  Returns bytes released.
        """
        executor = self._stream_executor
        if executor is None:
            return 0
        released = executor.trim_arenas(max_bytes)
        if released:
            self._account_stream_arenas()
        return released

    def _account_stream_arenas(self) -> None:
        """Mirror worker-arena scratch bytes into the serving pool budget.

        The arenas are working memory, not cache, but they occupy the
        same device budget as pool residents — so they are accounted as
        a payload-less resident whose ``release`` callback trims them.
        Under memory pressure the pool evicts the entry, the callback
        frees the scratch, and the budget is truthful again.
        """
        if self.pool is None or self._stream_executor is None:
            return
        from repro.serving.pool import PoolAdmissionError

        key = "scratch/stream-arenas"
        nbytes = self._stream_executor.peak_decoded_bytes
        if nbytes <= 0:
            self.pool.invalidate(key)
            return
        try:
            self.pool.admit(
                key,
                nbytes,
                kind="scratch",
                payload=None,
                release=self._release_stream_arenas,
            )
        except PoolAdmissionError:
            # Scratch larger than the whole budget: trim immediately
            # rather than carry unaccounted memory.
            self._stream_executor.trim_arenas(0)

    def _release_stream_arenas(self) -> None:
        """Pool eviction hook: free arena scratch, no pool re-entry."""
        executor = self._stream_executor
        if executor is not None:
            executor.trim_arenas(0)

    def run(self, query: "SSBQuery") -> QueryResult:
        """Execute one SSB query and report its simulated time."""
        kernels_before = self.device.kernel_count
        ms_before = self.device.elapsed_ms
        self.decompress_first(query.columns)
        if self.uses_streaming():
            groups = self._stream(query)
        else:
            groups = query.fn(self)
        kernels = self.device.kernel_count - kernels_before
        self._last_timeline = self.device.timeline()[kernels_before:]
        return QueryResult(
            name=query.name,
            system=self.store.system,
            simulated_ms=self.device.elapsed_ms - ms_before,
            kernel_count=kernels,
            groups=groups,
            launch_overhead_ms=kernels * self.device.spec.kernel_launch_us / 1000.0,
        )


@dataclass
class SSBQuery:
    """One SSB query: the fact columns it touches and its plan.

    Queries may additionally declare their semantic identity for the
    serving layer's result cache and request coalescing:

    * ``plan_key`` groups queries whose plans are identical *except* for
      the declared ``predicate`` (e.g. the flight-1 drill-downs).  Two
      queries sharing a plan_key must run the very same operator
      sequence over the same columns and differ only in which rows their
      predicate conjuncts keep — partial aggregates then transfer
      between them tile-by-tile.  ``None`` keeps the query in its own
      group (keyed by name), which is always sound.
    * ``predicate`` is the query's full filter in the predicate IR, used
      for canonical semantic keys; queries whose filters are not
      expressible in the IR leave it ``None``.
    """

    name: str
    columns: tuple[str, ...]
    fn: Callable[[CrystalEngine], dict[int, int]]
    plan_key: tuple | None = None
    predicate: "ColumnPredicate | And | None" = None

    def semantic_key(self) -> tuple:
        """Hashable identity of what this query computes.

        Two requests with equal semantic keys return identical answers
        (same plan family, same canonicalized filter), so the serving
        layer coalesces them into one execution even when their
        predicate objects were built differently.

        An ad-hoc query that declares *neither* a plan_key nor a
        predicate has no inspectable semantics — its plan lives in an
        opaque ``fn`` — so its key falls back to object identity: a name
        alone must never coalesce two distinct plans.  Registry queries
        are module-level singletons, so repeated submissions of the same
        object still batch together.
        """
        if self.plan_key is None and self.predicate is None:
            return (("query", self.name), ("object", id(self)))
        base = self.plan_key if self.plan_key is not None else ("query", self.name)
        return (base, canonical_key(self.predicate))


class FactPipeline:
    """One query's sweep over the fact table.

    In ``fused`` mode (Crystal) every call accumulates traffic/compute
    into a single kernel launch priced by :meth:`finish`.  In ``staged``
    mode (OmniSci) every operator prices its own kernel immediately, with
    a materialized selection bitmap read and written between operators.
    """

    def __init__(
        self,
        engine: CrystalEngine,
        name: str,
        staged: bool = False,
        rows: int | None = None,
        tiles: int | None = None,
    ):
        self.engine = engine
        self.name = name
        self.staged = staged
        # Default span is the whole fact table; the streaming executor's
        # morsel pipelines cover one contiguous chunk of it instead.
        self.n = engine.num_rows if rows is None else rows
        num_tiles = engine.num_tiles if tiles is None else tiles
        self.mask = np.ones(self.n, dtype=bool)
        self.tile_active = np.ones(num_tiles, dtype=bool)
        self._finished = False
        # Scratch for per-tile mask reduction: allocated once per pipeline
        # instead of per filter() call.  Rows past ``n`` are padding and
        # stay False forever (only [:n] is ever written).
        self._pad_scratch = np.zeros(num_tiles * TILE, dtype=bool)
        # Fused-kernel accumulators.
        self._read_bytes = 0
        self._write_bytes = 0
        self._compute = 0
        self._shared = 0
        self._gathers: list[tuple[int, int, int]] = []
        self._extra_regs = 0
        self._decode_regs = 0
        self._smem = 0
        self._cols_loaded = 0
        # Single-column pushdown conjuncts by column name: candidates for
        # fused decode+filter when that column is loaded.  A load that
        # fused one moves it to _fused_preds so the later exact
        # filter_predicate call skips the (now redundant) re-evaluation.
        self._pushdown_preds: dict[str, ColumnPredicate] = {}
        self._fused_preds: dict[str, ColumnPredicate] = {}

    # -- operators -----------------------------------------------------------

    def load(self, name: str) -> np.ndarray:
        """Load a fact column (tile loads skip fully-filtered tiles)."""
        self._check_open()
        engine = self.engine
        col = engine.store[name]
        tile_bytes = self._tile_read_bytes(name)
        read = int(tile_bytes[self.tile_active].sum())
        active_rows = int(self.tile_active.sum()) * TILE
        if self.tile_active.size and self.tile_active[-1]:
            # The last tile holds only the tail rows, not a full TILE.
            active_rows -= self.tile_active.size * TILE - self.n
        self._cols_loaded += 1

        if self.staged:
            # OmniSci: its own kernel, full column, row-wise access.
            self._staged_kernel(
                f"load-{name}",
                read_bytes=int(tile_bytes.sum()),
                write_bytes=self.n * 4,
                ops=self.n * OMNISCI_OP_OVERHEAD,
            )
            return col.values

        self._read_bytes += read
        # One snapshot decides both pricing and the value path; a hot
        # column with a pinned decoded image loads like raw storage.
        inline = engine.inline_column(col) and engine.pinned_decoded(name) is None
        if inline:
            codec = get_codec(col.codec_name)
            assert isinstance(codec, TileCodec)
            res = codec.kernel_resources(col.payload)
            # Each thread holds one decoded value per block row it owns:
            # D=4 for the 128-row-block formats, but 32 for the 4096-value
            # vertical layout — the register pressure behind Section 4.3's
            # 14x q1.1 slowdown.
            self._extra_regs += max(
                D_PER_THREAD, codec.tile_elements(col.payload) // BLOCK_THREADS
            )
            self._compute += int(
                res.compute_ops_per_element * active_rows
                + res.tile_prologue_ops * int(self.tile_active.sum())
            )
            self._shared += int(res.shared_bytes_per_element * active_rows)
            # Columns decode one after another, so the compiler reuses the
            # decoder's scratch registers and staging buffer across loads:
            # only the widest decoder's state is live at once.  That state
            # is tiny for the FOR family but huge for the vertical-layout
            # ablation (Section 4.3's 14x q1.1 slowdown).
            self._decode_regs = max(
                self._decode_regs,
                max(2, res.registers_per_thread - 12 - 2 * D_PER_THREAD),
            )
            # Staging buffers are not reused: each compressed column's
            # tile stays resident in shared memory for the whole tile pass
            # (predicates may touch several decoded columns at once).
            self._smem += res.shared_mem_per_block
        else:
            self._extra_regs += D_PER_THREAD
            self._compute += active_rows  # BlockLoad index arithmetic

        # Fused decode+filter: a pushdown conjunct on this column is
        # evaluated during unpack, so non-qualifying rows of surviving
        # tiles never materialize.  The fused mask is ANDed immediately
        # (its rows are provably dead under the query's WHERE — pushdown
        # conjuncts are necessary conditions); pricing of the filter step
        # stays with the matching filter_predicate call, which sees the
        # identical post-AND selection either way.
        pred = self._pushdown_preds.get(name)
        if pred is not None and name not in self._fused_preds and inline:
            values, rowmask = self._column_slice_filtered(name, pred)
            if rowmask is not None:
                self.mask &= rowmask
                self._fused_preds[name] = pred
                return values
            return values
        return self._column_slice(name)

    def _tile_read_bytes(self, name: str) -> np.ndarray:
        """Per-tile read traffic over this pipeline's span (overridable)."""
        return self.engine.tile_read_bytes(name)

    def _column_slice(self, name: str) -> np.ndarray:
        """The decoded values :meth:`load` returns over this span."""
        return self.engine.column_values_pruned(name, self.tile_active)

    def _column_slice_filtered(
        self, name: str, predicate: ColumnPredicate
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Fused decode+filter load over this span (overridable).

        Returns ``(values, rowmask)``; a ``None`` rowmask means fusion
        could not apply (cached image, checksummed column under active
        verification, ...) and the caller must evaluate the predicate
        itself on the returned values.
        """
        return self.engine.column_values_filtered(name, self.tile_active, predicate)

    def filter_pushdown(self, predicate: "ColumnPredicate | And | None") -> int:
        """Prune tiles from codec bounds before any column is loaded.

        For each single-column conjunct the engine consults the column's
        per-tile bounds (derived from codec block metadata, no decode)
        and drops every tile the predicate provably cannot match.
        Subsequent :meth:`load` calls then read and decode only the
        surviving tiles — the metadata-driven tile skipping the paper's
        tile decomposition enables.

        The exact row filters must still run afterwards (bounds are
        conservative); pruning only removes work, never rows that could
        match.  No-op for the staged engine (row-at-a-time access has no
        tile granularity) or when the engine was built with
        ``pushdown=False``.

        Returns:
            Number of tiles newly pruned.
        """
        self._check_open()
        preds = column_predicates(predicate)
        if self.staged or not self.engine.pushdown or not preds:
            return 0
        engine = self.engine
        before = int(self.tile_active.sum())
        for pred in preds:
            self._pushdown_preds[pred.column] = pred
            mins, maxs = engine.column_tile_bounds(pred.column)
            self.tile_active &= pred.tile_may_match(mins, maxs)
            # Zone-map metadata scan: two bound words plus one interval
            # compare per tile per column — negligible next to the
            # payload reads it saves.
            self._read_bytes += engine.num_tiles * 16
            self._compute += engine.num_tiles * 2
        pruned = before - int(self.tile_active.sum())
        if pruned:
            # Late materialization leaves pruned tiles zero-filled, so
            # their rows must be dead in the selection mask.  Sound
            # because a pruned tile provably contains no matching row.
            self.mask &= np.repeat(self.tile_active, TILE)[: self.n]
        return pruned

    def filter(self, rowmask: np.ndarray) -> None:
        """AND a row predicate into the pipeline's selection."""
        self._check_open()
        rowmask = np.asarray(rowmask, dtype=bool)
        if rowmask.shape != (self.n,):
            raise ValueError("filter mask must cover every fact row")
        self.mask &= rowmask
        self._after_mask_update()

    def filter_predicate(self, predicate: ColumnPredicate, values: np.ndarray) -> None:
        """AND a predicate's exact row filter into the selection.

        Unlike :meth:`filter` this evaluates the comparison only on
        currently-live rows: after pushdown most rows belong to pruned
        (undecoded, zero-filled) tiles, and late materialization means
        never inspecting their values at all.
        """
        self._check_open()
        values = np.asarray(values)
        if values.shape != (self.n,):
            raise ValueError("filter values must cover every fact row")
        if self._fused_preds.get(predicate.column) == predicate:
            # This exact conjunct was already evaluated inside the fused
            # decode of its column and ANDed into the mask at load time;
            # only the filter step's accounting remains.
            self._fused_preds.pop(predicate.column)
            self._after_mask_update()
            return
        live = self.live_count
        if live * 2 < self.n:
            self.mask[self.mask] = predicate.row_mask(values[self.mask])
        else:
            # Mostly-live selection: the dense compare is cheaper than a
            # gather + scatter round trip.
            self.mask &= predicate.row_mask(values)
        self._after_mask_update()

    def _after_mask_update(self) -> None:
        """Refresh tile activity and price the filter step."""
        scratch = self._pad_scratch
        scratch[: self.n] = self.mask
        self.tile_active &= scratch.reshape(-1, TILE).any(axis=1)
        if self.staged:
            self._staged_kernel(
                f"filter-{self.name}",
                read_bytes=self.n,
                write_bytes=self.n,
                ops=self.n * 2,
            )
        else:
            self._compute += self.live_count * 2

    def probe(self, lookup: Lookup, keys: np.ndarray) -> np.ndarray:
        """Probe a join lookup for every currently-live row."""
        self._check_open()
        count = self.live_count
        if self.staged:
            self._staged_kernel(
                f"probe-{lookup.name}",
                read_bytes=2 * self.n,
                write_bytes=self.n * 4,
                ops=self.n * (OMNISCI_OP_OVERHEAD + 3),
                gathers=(count, 4, lookup.nbytes),
            )
        else:
            self._gathers.append((count, 4, lookup.nbytes))
            self._compute += count * 3
        payload = np.full(self.n, MISS, dtype=np.int64)
        if count:
            payload[self.mask] = lookup.probe(np.asarray(keys)[self.mask])
        return payload

    def group_sum(
        self, codes: np.ndarray, weights: np.ndarray, num_groups: int
    ) -> dict[int, int]:
        """Aggregate ``sum(weights) group by codes`` over live rows."""
        self._check_open()
        count = self.live_count
        if self.staged:
            self._staged_kernel(
                f"aggregate-{self.name}",
                read_bytes=self.n * 8 + self.n,
                write_bytes=num_groups * 8,
                ops=self.n * (OMNISCI_OP_OVERHEAD + 8),
                scatters=(count, 8, num_groups * 8),
            )
        else:
            self._compute += count * 8
            self._gathers.append((min(count, num_groups * 4), 8, num_groups * 8))
            self._write_bytes += num_groups * 8
        codes = np.asarray(codes, dtype=np.int64)
        if count == 0:
            return {}
        live_codes = codes[self.mask]
        if live_codes.size and (live_codes.min() < 0 or live_codes.max() >= num_groups):
            raise ValueError("group codes out of range")
        sums = np.bincount(
            live_codes,
            weights=np.asarray(weights)[self.mask].astype(np.float64),
            minlength=num_groups,
        )
        return {int(c): int(sums[c]) for c in np.flatnonzero(sums)}

    def total_sum(self, values: np.ndarray) -> dict[int, int]:
        """Ungrouped ``sum(values)`` over live rows (query flight 1)."""
        self._account_aggregate(num_groups=1)
        if self.live_count == 0:
            return {0: 0}
        return {0: int(np.asarray(values, dtype=np.int64)[self.mask].sum())}

    def total_sum_product(self, a: np.ndarray, b: np.ndarray) -> dict[int, int]:
        """Ungrouped ``sum(a*b)`` over live rows (the flight-1 aggregate).

        The fused kernel forms the product inside its aggregation loop,
        so the host side multiplies only the selected rows instead of
        materializing a full product column.
        """
        self._account_aggregate(num_groups=1)
        if self.live_count == 0:
            return {0: 0}
        lhs = np.asarray(a, dtype=np.int64)[self.mask]
        rhs = np.asarray(b, dtype=np.int64)[self.mask]
        return {0: int((lhs * rhs).sum())}

    def _account_aggregate(self, num_groups: int) -> None:
        """Traffic/compute bookkeeping shared by the sum aggregates."""
        self._check_open()
        count = self.live_count
        if self.staged:
            self._staged_kernel(
                f"aggregate-{self.name}",
                read_bytes=self.n * 8 + self.n,
                write_bytes=num_groups * 8,
                ops=self.n * (OMNISCI_OP_OVERHEAD + 8),
                scatters=(count, 8, num_groups * 8),
            )
        else:
            self._compute += count * 8
            self._gathers.append((min(count, num_groups * 4), 8, num_groups * 8))
            self._write_bytes += num_groups * 8

    def group_aggregate(
        self,
        codes: np.ndarray,
        values: np.ndarray | None,
        num_groups: int,
        how: str = "sum",
    ) -> dict[int, int]:
        """General grouped aggregate over live rows.

        Supported ``how``: ``sum``, ``count``, ``min``, ``max``, ``avg``
        (integer-floor average).  Traffic/compute accounting matches
        :meth:`group_sum` — on the GPU these are all the same
        atomic-update pattern over a small result array.
        """
        self._check_open()
        if how == "sum":
            if values is None:
                raise ValueError("sum needs a values column")
            return self.group_sum(codes, values, num_groups)
        if how == "count":
            return self.group_sum(codes, np.ones(self.n, dtype=np.int64), num_groups)
        if how == "avg":
            if values is None:
                raise ValueError("avg needs a values column")
            sums = self.group_sum(codes, values, num_groups)
            counts = self.group_sum(codes, np.ones(self.n, dtype=np.int64), num_groups)
            return {c: sums.get(c, 0) // counts[c] for c in counts}
        if how not in ("min", "max"):
            raise ValueError(f"unknown aggregate {how!r}")
        if values is None:
            raise ValueError(f"{how} needs a values column")

        count = self.live_count
        if self.staged:
            self._staged_kernel(
                f"aggregate-{how}-{self.name}",
                read_bytes=self.n * 8 + self.n,
                write_bytes=num_groups * 8,
                ops=self.n * (OMNISCI_OP_OVERHEAD + 8),
                scatters=(count, 8, num_groups * 8),
            )
        else:
            self._compute += count * 8
            self._gathers.append((min(count, num_groups * 4), 8, num_groups * 8))
            self._write_bytes += num_groups * 8
        if count == 0:
            return {}
        codes = np.asarray(codes, dtype=np.int64)[self.mask]
        if codes.size and (codes.min() < 0 or codes.max() >= num_groups):
            raise ValueError("group codes out of range")
        vals = np.asarray(values, dtype=np.int64)[self.mask]
        sentinel = np.iinfo(np.int64).max if how == "min" else np.iinfo(np.int64).min
        out = np.full(num_groups, sentinel, dtype=np.int64)
        op = np.minimum if how == "min" else np.maximum
        op.at(out, codes, vals)
        touched = np.zeros(num_groups, dtype=bool)
        touched[codes] = True
        return {int(c): int(out[c]) for c in np.flatnonzero(touched)}

    # -- pricing ---------------------------------------------------------------

    def finish(self) -> None:
        """Price the fused fact kernel (no-op for the staged engine)."""
        self._check_open()
        self._finished = True
        if self.staged:
            return
        regs = 14 + self._extra_regs + self._decode_regs
        with self.engine.device.launch(
            f"fact-{self.name}",
            grid_blocks=max(1, self.engine.num_tiles),
            block_threads=BLOCK_THREADS,
            registers_per_thread=regs,
            shared_mem_per_block=self._smem,
        ) as k:
            if self._read_bytes:
                k.traffic.read_bytes += self._read_bytes  # already aligned
            if self._write_bytes:
                k.write_linear(self._write_bytes)
            for count, eb, region in self._gathers:
                k.read_gather(count, eb, region)
            k.compute(self._compute + self.engine.num_tiles * 600)
            k.shared(self._shared + self.live_count * 4)

    @property
    def live_count(self) -> int:
        return int(np.count_nonzero(self.mask))

    # -- internals ---------------------------------------------------------------

    def _staged_kernel(
        self,
        name: str,
        read_bytes: int,
        write_bytes: int,
        ops: int,
        gathers: tuple[int, int, int] | None = None,
        scatters: tuple[int, int, int] | None = None,
    ) -> None:
        """One OmniSci operator kernel at OmniSci's achieved efficiency."""
        inflate = 1.0 / OMNISCI_EFFICIENCY
        with self.engine.device.launch(
            f"omnisci-{name}",
            grid_blocks=max(1, -(-self.n // 256)),
            block_threads=256,
            registers_per_thread=40,
        ) as k:
            k.read_linear(int(read_bytes * inflate))
            if write_bytes:
                k.write_linear(int(write_bytes * inflate))
            if gathers is not None:
                k.read_gather(*gathers)
            if scatters is not None:
                k.write_scatter(*scatters)
            k.compute(ops)

    def _check_open(self) -> None:
        if self._finished:
            raise RuntimeError("pipeline already finished")
