"""Declarative star-schema queries compiled onto the tile engine.

``repro.query`` is the semantic front end over the executor stack:

* :mod:`repro.query.model` — :class:`SemanticModel` (fact, joins,
  attributes, measures) and :class:`Query` (measures x filters x
  group-bys) declarations;
* :mod:`repro.query.compiler` — :class:`QueryCompiler`, which lowers a
  (model, query) pair to a :class:`CompiledQuery` runnable by
  :class:`~repro.engine.crystal.CrystalEngine` and everything built on
  it (streaming, semantic cache, shards, serving);
* :mod:`repro.query.ssb` / :mod:`repro.query.tpcds` — the SSB and
  TPC-DS-subset models with their benchmark query specs.
"""

from repro.query.compiler import CompiledQuery, QueryCompiler
from repro.query.model import (
    Attribute,
    DimensionJoin,
    Measure,
    Query,
    SemanticModel,
)

__all__ = [
    "Attribute",
    "CompiledQuery",
    "DimensionJoin",
    "Measure",
    "Query",
    "QueryCompiler",
    "SemanticModel",
]
