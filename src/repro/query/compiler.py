"""Compile declarative star-schema queries onto the tile engine.

The :class:`QueryCompiler` lowers a :class:`~repro.query.model.Query`
against a :class:`~repro.query.model.SemanticModel` into a
:class:`CompiledQuery` — an :class:`~repro.engine.crystal.SSBQuery`
whose plan function speaks only the streaming executor's engine-proxy
surface (``db`` / ``pushdown`` / ``build_lookup`` / ``pipeline``), so a
compiled plan runs unchanged on the materialized engine, the morsel
streamer, the semantic result cache and the shard router.

Lowering decisions, in order:

* **Dimension predicate resolution** — each filtered dimension's
  qualifying keys are reduced to FK-domain predicate IR.  A selection
  that covers *every* dimension key inside ``[min, max]`` is exactly the
  FK range (given referential integrity); a small scattered selection
  becomes an ``InSet``.  Either exact form *eliminates the join* when
  the dimension contributes no group-by payload — the ``make_flight1``
  datekey-range trick, generalized.  Inexact reductions keep the
  semijoin (masked lookup + ``!= MISS``) and contribute the range as a
  pushdown-only conjunct: a necessary condition is always sound to
  prune and fuse with.
* **Zone-map pushdown + late materialization** — every resolvable
  conjunct is declared to :meth:`FactPipeline.filter_pushdown`, which
  prunes tiles from codec block bounds before any decode; surviving
  tiles decode late (only what the plan still needs) and single-column
  conjuncts on inline-decodable columns fuse into the unpack itself.
  The compiler records both decisions in its plan trace.
* **Filter ordering by decode cost** — exact fact filters apply
  cheapest-decode-first, priced by the planner's shared
  :func:`~repro.core.planner.decode_cost_estimate` hook, so expensive
  columns see the smallest surviving selection.
* **Group-code packing** — group-by attributes mix positionally into
  one dense code space (``code = (.. * domain + code) ..``), matching
  the hand-written SSB plans' stride arithmetic bit for bit; attributes
  of one dimension pack into a single lookup payload (one probe per
  dimension, like the hand plans).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.planner import decode_cost_estimate
from repro.engine.crystal import MISS, CrystalEngine, SSBQuery
from repro.engine.predicates import (
    And,
    ColumnPredicate,
    Equals,
    InSet,
    Range,
    canonical_key,
    canonical_predicates,
)
from repro.gpusim import GPUDevice
from repro.query.model import Attribute, DimensionJoin, Measure, Query, SemanticModel

__all__ = ["MAX_INSET_KEYS", "CompiledQuery", "QueryCompiler"]

#: Largest scattered dimension-key selection still worth an exact
#: ``InSet`` reduction; beyond this the compiler keeps the semijoin.
MAX_INSET_KEYS = 64


def _rebind(pred: ColumnPredicate, column: str) -> ColumnPredicate:
    """The same predicate, re-targeted at a physical column name."""
    if pred.column == column:
        return pred
    if isinstance(pred, Range):
        return Range(column, pred.lo, pred.hi)
    if isinstance(pred, Equals):
        return Equals(column, pred.value)
    if isinstance(pred, InSet):
        return InSet(column, pred.values)
    raise TypeError(f"cannot rebind predicate type {type(pred).__name__}")


@dataclass(frozen=True)
class _JoinPlan:
    """One dimension's role in a compiled plan."""

    join: DimensionJoin
    dim_filters: tuple[ColumnPredicate, ...]  # over physical dim columns
    payload_attrs: tuple[Attribute, ...]  # group-by attrs packed in the payload
    reduction: ColumnPredicate | None  # FK-domain form of the dim filters
    exact: bool  # reduction selects exactly the qualifying fact rows
    dropped: bool  # join eliminated (exact reduction, no payload needed)

    @property
    def filtered(self) -> bool:
        return bool(self.dim_filters)


@dataclass
class CompiledQuery(SSBQuery):
    """An executable plan compiled from a declarative spec.

    The inherited ``plan_key``/``predicate`` carry the plan's canonical
    identity (measures, group-bys, resolved dimension filters, fact
    conjuncts), so :meth:`SSBQuery.semantic_key` — and with it serving
    batch keys and the semantic cache — works on content, never on the
    spec's display name.
    """

    spec: Query | None = None
    model_name: str = ""
    trace: dict = field(default_factory=dict)
    group_attrs: tuple[Attribute, ...] = ()
    measures: tuple[Measure, ...] = ()

    def decode_groups(self, groups: dict[int, int]) -> dict[tuple, int]:
        """Translate packed group codes back to attribute-value tuples.

        Keys are ``(attr values..., measure name)`` tuples (the measure
        name is dropped for single-measure queries).
        """
        n_measures = max(1, len(self.measures))
        out: dict[tuple, int] = {}
        for code, value in groups.items():
            code, mi = divmod(code, n_measures) if n_measures > 1 else (code, 0)
            labels: list[int] = []
            for attr in reversed(self.group_attrs):
                code, c = divmod(code, attr.domain)
                labels.append(int(c) + attr.base)
            key = tuple(reversed(labels))
            if n_measures > 1:
                key += (self.measures[mi].name,)
            out[key] = int(value)
        return out


class QueryCompiler:
    """Compiles :class:`Query` specs for one (model, database) pair.

    ``store``/``device`` are optional: with them the compiler prices
    per-column decode costs (filter ordering) and annotates its plan
    trace with surviving-tile counts and fused-filter eligibility;
    without them plans are identical except filters apply in the model's
    column order.
    """

    def __init__(self, model: SemanticModel, db, store=None, device=None):
        self.model = model
        self.db = db
        self.store = store
        self.device = device if device is not None else GPUDevice()
        # Trace-only engine: zone maps + inline-decode verdicts.
        self._engine = (
            CrystalEngine(db, store, GPUDevice(spec=self.device.spec))
            if store is not None
            else None
        )
        self._cost_cache: dict[str, float] = {}

    # -- cost model --------------------------------------------------------

    def _decode_cost(self, column: str) -> float:
        """Simulated ms to materialize one fact column (0.0 if unknown)."""
        if self.store is None or column not in self.store.columns:
            return 0.0
        if column not in self._cost_cache:
            self._cost_cache[column] = decode_cost_estimate(
                self.store[column].payload, self.device
            )
        return self._cost_cache[column]

    # -- dimension resolution ----------------------------------------------

    def _reduce_dimension(
        self, join: DimensionJoin, filters: tuple[ColumnPredicate, ...]
    ) -> tuple[ColumnPredicate | None, bool]:
        """Resolve a dimension's filters to FK-domain IR.

        Returns ``(predicate, exact)``; ``exact`` means the predicate
        keeps a fact row *iff* the row joins to a qualifying dimension
        row, so the join itself is redundant for filtering.
        """
        if not filters:
            return None, False
        dim = self.db.table(join.table)
        keys = np.asarray(dim[join.key], dtype=np.int64)
        mask = np.ones(keys.size, dtype=bool)
        for pred in filters:
            mask &= pred.row_mask(np.asarray(dim[pred.column]))
        qualifying = keys[mask]
        if qualifying.size == 0:
            return InSet(join.fact_key, ()), True
        lo, hi = int(qualifying.min()), int(qualifying.max())
        in_range = int(np.count_nonzero((keys >= lo) & (keys <= hi)))
        if in_range == qualifying.size and join.referential_integrity:
            # Every dimension key inside [lo, hi] qualifies: the FK
            # range selects exactly the joinable rows.
            return Range(join.fact_key, lo, hi), True
        if qualifying.size <= MAX_INSET_KEYS:
            return InSet(join.fact_key, tuple(int(k) for k in qualifying)), True
        return Range(join.fact_key, lo, hi), False

    # -- compilation -------------------------------------------------------

    def compile(self, query: Query) -> CompiledQuery:
        """Lower one spec to an executable :class:`CompiledQuery`."""
        model = self.model
        measures = self._resolve_measures(query)
        group_attrs = self._resolve_group_by(query)

        # Partition filters into fact conjuncts and per-dimension lists.
        fact_preds: list[ColumnPredicate] = []
        dim_preds: dict[str, list[ColumnPredicate]] = {}
        for pred in query.filters:
            attr = model.attribute(pred.column)
            if attr is not None and attr.table != model.fact:
                dim_preds.setdefault(attr.table, []).append(
                    _rebind(pred, attr.column)
                )
            elif attr is not None:
                fact_preds.append(_rebind(pred, attr.column))
            elif pred.column in model.fact_columns:
                fact_preds.append(pred)
            else:
                raise KeyError(
                    f"query {query.name!r} filters unknown attribute "
                    f"{pred.column!r} (model {model.name!r})"
                )

        # Plan each involved dimension in the model's join order.
        join_plans: list[_JoinPlan] = []
        for join in model.joins:
            attrs = tuple(a for a in group_attrs if a.table == join.table)
            filters = tuple(dim_preds.pop(join.table, ()))
            if not attrs and not filters:
                continue
            reduction, exact = self._reduce_dimension(join, filters)
            dropped = exact and not attrs
            join_plans.append(
                _JoinPlan(join, filters, attrs, reduction, exact, dropped)
            )
        if dim_preds:
            raise KeyError(
                f"query {query.name!r} filters tables without a declared "
                f"join: {sorted(dim_preds)}"
            )

        # Fact-domain conjuncts: exact ones also run as row filters,
        # kept-join reductions prune and fuse but never filter (their
        # exactness lives in the semijoin's MISS sentinel).
        exact_conjuncts = canonical_predicates(
            And(
                tuple(fact_preds)
                + tuple(jp.reduction for jp in join_plans if jp.dropped)
            )
        )
        pushdown_conjuncts = canonical_predicates(
            And(
                exact_conjuncts
                + tuple(
                    jp.reduction
                    for jp in join_plans
                    if not jp.dropped and jp.reduction is not None
                )
            )
        )
        pushdown = And(pushdown_conjuncts) if pushdown_conjuncts else None
        ordered_filters = self._order_filters(exact_conjuncts)

        kept_joins = tuple(jp for jp in join_plans if not jp.dropped)
        num_groups = 1
        for attr in group_attrs:
            num_groups *= attr.domain

        fn = self._build_fn(
            query.name, pushdown, ordered_filters, kept_joins,
            group_attrs, num_groups, measures,
        )
        columns = self._touched_columns(
            ordered_filters, kept_joins, group_attrs, measures
        )
        plan_key = (
            "compiled",
            model.name,
            tuple((m.name, m.how, m.op, m.column, m.other) for m in measures),
            tuple(a.name for a in group_attrs),
            tuple(
                (
                    jp.join.table,
                    canonical_key(And(jp.dim_filters)),
                    tuple(a.name for a in jp.payload_attrs),
                    jp.dropped,
                )
                for jp in join_plans
            ),
        )
        predicate = And(exact_conjuncts) if exact_conjuncts else None
        trace = self._build_trace(
            query, measures, group_attrs, num_groups, join_plans,
            pushdown_conjuncts, ordered_filters, pushdown,
        )
        return CompiledQuery(
            name=query.name,
            columns=columns,
            fn=fn,
            plan_key=plan_key,
            predicate=predicate,
            spec=query,
            model_name=model.name,
            trace=trace,
            group_attrs=group_attrs,
            measures=measures,
        )

    # -- resolution helpers ------------------------------------------------

    def _resolve_measures(self, query: Query) -> tuple[Measure, ...]:
        measures = []
        for name in query.measures:
            if name not in self.model.measures:
                raise KeyError(
                    f"query {query.name!r} references unknown measure {name!r}"
                )
            measures.append(self.model.measures[name])
        merge_ops = {m.merge_op for m in measures}
        if len(merge_ops) > 1 or (merge_ops - {"sum"} and len(measures) > 1):
            raise ValueError(
                f"query {query.name!r}: min/max measures must run alone "
                f"(partials merge per-op; got {sorted(m.how for m in measures)})"
            )
        return tuple(measures)

    def _resolve_group_by(self, query: Query) -> tuple[Attribute, ...]:
        attrs = []
        for name in query.group_by:
            attr = self.model.attribute(name)
            if attr is None:
                raise KeyError(
                    f"query {query.name!r} groups by unknown attribute {name!r}"
                )
            if not attr.groupable:
                raise ValueError(
                    f"query {query.name!r}: attribute {name!r} declares no "
                    f"code domain and cannot be grouped by"
                )
            attrs.append(attr)
        return tuple(attrs)

    def _order_filters(
        self, conjuncts: tuple[ColumnPredicate, ...]
    ) -> tuple[ColumnPredicate, ...]:
        """Exact filters apply cheapest-decode-first (stable on ties)."""
        declared = {c: i for i, c in enumerate(self.model.fact_columns)}
        return tuple(
            sorted(
                conjuncts,
                key=lambda p: (
                    self._decode_cost(p.column),
                    declared.get(p.column, len(declared)),
                    p.column,
                ),
            )
        )

    def _touched_columns(
        self,
        ordered_filters: tuple[ColumnPredicate, ...],
        kept_joins: tuple[_JoinPlan, ...],
        group_attrs: tuple[Attribute, ...],
        measures: tuple[Measure, ...],
    ) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for pred in ordered_filters:
            seen.setdefault(pred.column)
        for jp in kept_joins:
            seen.setdefault(jp.join.fact_key)
        for attr in group_attrs:
            if attr.table == self.model.fact:
                seen.setdefault(attr.column)
        for m in measures:
            for col in m.fact_columns():
                seen.setdefault(col)
        return tuple(seen)

    # -- plan function -----------------------------------------------------

    def _build_fn(
        self,
        name: str,
        pushdown: And | None,
        ordered_filters: tuple[ColumnPredicate, ...],
        kept_joins: tuple[_JoinPlan, ...],
        group_attrs: tuple[Attribute, ...],
        num_groups: int,
        measures: tuple[Measure, ...],
    ):
        """Close the compiled plan over engine-independent state.

        The returned function is deterministic, opens exactly one
        pipeline, and touches only the engine-proxy surface — the
        streaming executor's plan-pass/morsel-replay contract.
        """
        model_fact = self.model.fact

        def fn(engine) -> dict[int, int]:
            db = engine.db
            lookups = []
            for jp in kept_joins:
                dim = db.table(jp.join.table)
                mask = None
                if jp.dim_filters:
                    mask = np.ones(
                        np.asarray(dim[jp.join.key]).size, dtype=bool
                    )
                    for pred in jp.dim_filters:
                        mask &= pred.row_mask(np.asarray(dim[pred.column]))
                payload = None
                if jp.payload_attrs:
                    first = jp.payload_attrs[0]
                    payload = (
                        np.asarray(dim[first.column], dtype=np.int64) - first.base
                    )
                    for attr in jp.payload_attrs[1:]:
                        payload = payload * attr.domain + (
                            np.asarray(dim[attr.column], dtype=np.int64)
                            - attr.base
                        )
                lookups.append(
                    engine.build_lookup(
                        jp.join.table, jp.join.key, payload=payload, mask=mask
                    )
                )

            p = engine.pipeline(name)
            if pushdown is not None:
                p.filter_pushdown(pushdown)
            loaded: dict[str, np.ndarray] = {}

            def load(col: str) -> np.ndarray:
                if col not in loaded:
                    loaded[col] = p.load(col)
                return loaded[col]

            for pred in ordered_filters:
                p.filter_predicate(pred, load(pred.column))

            attr_codes: dict[str, np.ndarray] = {}
            for jp, lookup in zip(kept_joins, lookups):
                payload = p.probe(lookup, load(jp.join.fact_key))
                if jp.filtered:
                    p.filter(payload != MISS)
                if jp.payload_attrs:
                    clipped = np.where(payload >= 0, payload, 0)
                    if len(jp.payload_attrs) == 1:
                        attr_codes[jp.payload_attrs[0].name] = clipped
                    else:
                        for i, attr in enumerate(jp.payload_attrs):
                            div = 1
                            for inner in jp.payload_attrs[i + 1 :]:
                                div *= inner.domain
                            attr_codes[attr.name] = (clipped // div) % attr.domain
            for attr in group_attrs:
                if attr.table == model_fact:
                    attr_codes[attr.name] = load(attr.column) - attr.base

            def value_of(m: Measure) -> np.ndarray | None:
                if m.how == "count":
                    return None
                values = load(m.column)
                if m.op == "sub":
                    return values - load(m.other)
                if m.op == "mul":
                    return values * load(m.other)
                return values

            if not group_attrs and len(measures) == 1:
                m = measures[0]
                if m.how == "sum" and m.op == "mul":
                    result = p.total_sum_product(load(m.column), load(m.other))
                elif m.how == "sum":
                    result = p.total_sum(value_of(m))
                else:
                    result = p.group_aggregate(
                        np.zeros(p.n, dtype=np.int64), value_of(m), 1, m.how
                    )
                p.finish()
                return result

            if group_attrs:
                first = group_attrs[0]
                codes = attr_codes[first.name]
                for attr in group_attrs[1:]:
                    codes = codes * attr.domain + attr_codes[attr.name]
            else:
                codes = np.zeros(p.n, dtype=np.int64)
            n_measures = len(measures)
            result: dict[int, int] = {}
            for i, m in enumerate(measures):
                mcodes = codes * n_measures + i if n_measures > 1 else codes
                result.update(
                    p.group_aggregate(
                        mcodes, value_of(m), num_groups * n_measures, m.how
                    )
                )
            p.finish()
            return result

        return fn

    # -- plan trace --------------------------------------------------------

    def _build_trace(
        self,
        query: Query,
        measures: tuple[Measure, ...],
        group_attrs: tuple[Attribute, ...],
        num_groups: int,
        join_plans: list[_JoinPlan],
        pushdown_conjuncts: tuple[ColumnPredicate, ...],
        ordered_filters: tuple[ColumnPredicate, ...],
        pushdown: And | None,
    ) -> dict:
        """The compiled plan's decisions, snapshot-test stable."""
        trace: dict = {
            "model": self.model.name,
            "query": query.name,
            "measures": [m.name for m in measures],
            "group_by": [a.name for a in group_attrs],
            "num_groups": int(num_groups),
            "joins": [
                {
                    "table": jp.join.table,
                    "fact_key": jp.join.fact_key,
                    "filtered": jp.filtered,
                    "payload": [a.name for a in jp.payload_attrs],
                    "reduction": (
                        None
                        if jp.reduction is None
                        else list(jp.reduction.cache_key())
                    ),
                    "exact": jp.exact,
                    "dropped": jp.dropped,
                }
                for jp in join_plans
            ],
            "pushdown": [list(p.cache_key()) for p in pushdown_conjuncts],
            "filter_order": [p.column for p in ordered_filters],
        }
        if self._engine is not None:
            engine = self._engine
            trace["filter_cost_ms"] = {
                p.column: round(self._decode_cost(p.column), 4)
                for p in ordered_filters
            }
            trace["fused_filter_columns"] = sorted(
                p.column
                for p in pushdown_conjuncts
                if p.column in self.store.columns
                and engine.column_inline(p.column)
            )
            surviving = int(engine.surviving_tiles(pushdown).sum())
            trace["surviving_tiles"] = surviving
            trace["total_tiles"] = int(engine.num_tiles)
            trace["late_materialization"] = surviving < engine.num_tiles
        return trace
