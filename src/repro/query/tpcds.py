"""A TPC-DS-subset star as a second :class:`SemanticModel`.

The point of this model is generality: nothing in the compiler knows
SSB, so declaring ``store_sales`` with date/item/store dimensions (see
:func:`repro.ssb.dbgen.generate_tpcds_subset`) is all it takes to run
retail-sales TPC-DS-style queries through the same
``FactPipeline``/``TileStreamExecutor`` machinery.  The specs below are
integer-dictionary renderings of the shapes of TPC-DS q3 / q42 / q55
plus three coverage queries (profit measure, fact-column filter,
multi-measure).
"""

from __future__ import annotations

from repro.engine.predicates import Equals, Range
from repro.query.model import Attribute, DimensionJoin, Measure, Query, SemanticModel
from repro.ssb.dbgen import TPCDS_YEARS


def tpcds_model() -> SemanticModel:
    """The TPC-DS-subset semantic model (store_sales star)."""
    return SemanticModel(
        name="tpcds-subset",
        fact="store_sales",
        fact_columns=(
            "ss_sold_date_sk",
            "ss_item_sk",
            "ss_store_sk",
            "ss_quantity",
            "ss_list_price",
            "ss_sales_price",
            "ss_ext_sales_price",
            "ss_wholesale_cost",
            "ss_ext_wholesale_cost",
        ),
        joins=(
            DimensionJoin("date_dim", "d_date_sk", "ss_sold_date_sk"),
            DimensionJoin("item", "i_item_sk", "ss_item_sk"),
            DimensionJoin("store", "s_store_sk", "ss_store_sk"),
        ),
        attributes={
            a.name: a
            for a in (
                Attribute("d_year", "date_dim", "d_year",
                          base=TPCDS_YEARS.start, domain=len(TPCDS_YEARS)),
                Attribute("d_moy", "date_dim", "d_moy", base=1, domain=12),
                Attribute("d_qoy", "date_dim", "d_qoy", base=1, domain=4),
                Attribute("i_brand", "item", "i_brand", domain=100),
                Attribute("i_category", "item", "i_category", domain=10),
                Attribute("i_class", "item", "i_class", domain=50),
                Attribute("s_state", "store", "s_state", domain=20),
                Attribute("s_county", "store", "s_county", domain=100),
                Attribute("s_market_id", "store", "s_market_id", domain=10),
                Attribute("ss_quantity", "store_sales", "ss_quantity",
                          base=1, domain=100),
            )
        },
        measures={
            m.name: m
            for m in (
                Measure("ext_sales", "ss_ext_sales_price", how="sum"),
                Measure("gross_profit", "ss_ext_sales_price",
                        how="sum", op="sub", other="ss_ext_wholesale_cost"),
                Measure("sum_quantity", "ss_quantity", how="sum"),
                Measure("count_sales", how="count"),
                Measure("max_sales", "ss_ext_sales_price", how="max"),
            )
        },
    )


#: Six TPC-DS-subset specs (golden plan-snapshot coverage).
TPCDS_SPECS: dict[str, Query] = {
    q.name: q
    for q in (
        # q3 shape: brand revenue by year for one category.
        Query(
            "tq3", measures=("ext_sales",),
            filters=(Equals("i_category", 3),),
            group_by=("d_year", "i_brand"),
        ),
        # q42 shape: category revenue for one month of one year.
        Query(
            "tq42", measures=("ext_sales",),
            filters=(Equals("d_year", 2000), Equals("d_moy", 11)),
            group_by=("i_category",),
        ),
        # q55 shape: brand revenue for one month of one year.
        Query(
            "tq55", measures=("ext_sales",),
            filters=(Equals("d_year", 1999), Equals("d_moy", 11)),
            group_by=("i_brand",),
        ),
        # Gross profit by year and state for one category.
        Query(
            "tq_profit", measures=("gross_profit",),
            filters=(Equals("i_category", 5),),
            group_by=("d_year", "s_state"),
        ),
        # Fact-column filter plus quarter grouping.
        Query(
            "tq_state", measures=("ext_sales",),
            filters=(Equals("d_year", 2001), Range("ss_quantity", 1, 50)),
            group_by=("s_state", "d_qoy"),
        ),
        # Multi-measure: additive aggregates share one plan.
        Query(
            "tq_counts", measures=("count_sales", "sum_quantity"),
            filters=(Equals("s_market_id", 4),),
            group_by=("i_category",),
        ),
    )
}
