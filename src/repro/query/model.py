"""Semantic star-schema models and declarative query specs.

A :class:`SemanticModel` names what exists — one fact table, a join
graph of FK-keyed dimensions, the attributes that hang off them, and
the measures a query may aggregate.  A :class:`Query` names what is
wanted — measures x filters x group-bys — in terms of the model's
attribute names, never in terms of plans, lookups or predicates over
the fact table.  The :mod:`repro.query.compiler` lowers a (model,
query) pair onto the tile engine's :class:`~repro.engine.crystal.FactPipeline`.

Filters reuse the engine's predicate IR (:mod:`repro.engine.predicates`)
verbatim: a filter is a single-column predicate whose ``column`` is a
model attribute name (``Equals("d_year", 1993)``) or a raw fact column
(``Range("lo_discount", 1, 3)``).  The compiler rebinds attribute names
to physical columns and resolves dimension predicates to FK-domain
conjuncts, so the declarative surface and the executable plans share
one predicate algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.predicates import And, ColumnPredicate, canonical_key

__all__ = [
    "Attribute",
    "DimensionJoin",
    "Measure",
    "Query",
    "SemanticModel",
]

#: Aggregates whose per-morsel partials merge additively; any mix of
#: these may share one compiled plan (order-sensitive code packing keeps
#: them apart).  ``min``/``max`` merge differently and must run alone.
ADDITIVE_AGGREGATES = ("sum", "count")
AGGREGATES = ADDITIVE_AGGREGATES + ("min", "max")

#: Value expressions a measure may apply before aggregating.
MEASURE_OPS = (None, "mul", "sub")


@dataclass(frozen=True)
class Measure:
    """One declared aggregate over fact columns.

    ``column`` (optionally combined with ``other`` through ``op``) is
    the per-row value; ``how`` is the aggregate.  ``count`` needs no
    value columns at all.
    """

    name: str
    column: str | None = None
    how: str = "sum"
    op: str | None = None  # None | "mul" | "sub": column <op> other
    other: str | None = None

    def __post_init__(self) -> None:
        if self.how not in AGGREGATES:
            raise ValueError(
                f"measure {self.name!r}: unknown aggregate {self.how!r}; "
                f"expected one of {AGGREGATES} (avg does not stream — "
                f"declare sum and count measures and divide client-side)"
            )
        if self.op not in MEASURE_OPS:
            raise ValueError(f"measure {self.name!r}: unknown op {self.op!r}")
        if self.op is not None and self.other is None:
            raise ValueError(f"measure {self.name!r}: op {self.op!r} needs 'other'")
        if self.how != "count" and self.column is None:
            raise ValueError(f"measure {self.name!r}: {self.how} needs a column")

    @property
    def merge_op(self) -> str:
        """How partial aggregates of this measure combine across morsels."""
        return "sum" if self.how in ADDITIVE_AGGREGATES else self.how

    def fact_columns(self) -> tuple[str, ...]:
        """Fact columns this measure reads, in load order."""
        cols = () if self.column is None else (self.column,)
        if self.other is not None:
            cols += (self.other,)
        return cols


@dataclass(frozen=True)
class Attribute:
    """One queryable attribute: a physical column plus its code space.

    ``domain``/``base`` define the attribute's dense dictionary-code
    space for grouping: ``code = value - base`` with ``0 <= code <
    domain``.  Filter-only attributes may declare ``domain=0`` (they can
    never appear in a group-by).  ``table`` is a dimension table name or
    the model's fact table for degenerate dimensions.
    """

    name: str
    table: str
    column: str
    base: int = 0
    domain: int = 0

    @property
    def groupable(self) -> bool:
        return self.domain > 0


@dataclass(frozen=True)
class DimensionJoin:
    """One edge of the join graph: fact FK column -> dimension key.

    ``referential_integrity`` declares that every fact FK value appears
    among the dimension's keys; the compiler may then replace an exact
    contiguous key selection with a bare FK range (no join at all).
    """

    table: str
    key: str
    fact_key: str
    referential_integrity: bool = True


@dataclass
class SemanticModel:
    """A star schema the compiler can answer declarative queries over.

    ``joins`` order is load-bearing: it is the deterministic probe order
    of every compiled plan (filtered dimensions first in declaration
    order matches the hand-written SSB plans' customer -> supplier ->
    part -> date sequence).
    """

    name: str
    fact: str
    fact_columns: tuple[str, ...]
    joins: tuple[DimensionJoin, ...]
    attributes: dict[str, Attribute] = field(default_factory=dict)
    measures: dict[str, Measure] = field(default_factory=dict)

    def __post_init__(self) -> None:
        tables = {j.table for j in self.joins}
        if len(tables) != len(self.joins):
            raise ValueError(f"model {self.name!r}: duplicate dimension joins")
        for attr in self.attributes.values():
            if attr.table != self.fact and attr.table not in tables:
                raise ValueError(
                    f"model {self.name!r}: attribute {attr.name!r} references "
                    f"unjoined table {attr.table!r}"
                )
            if attr.table == self.fact and attr.column not in self.fact_columns:
                raise ValueError(
                    f"model {self.name!r}: fact attribute {attr.name!r} "
                    f"references unknown fact column {attr.column!r}"
                )
        for measure in self.measures.values():
            for col in measure.fact_columns():
                if col not in self.fact_columns:
                    raise ValueError(
                        f"model {self.name!r}: measure {measure.name!r} "
                        f"references unknown fact column {col!r}"
                    )

    def join_for(self, table: str) -> DimensionJoin:
        for join in self.joins:
            if join.table == table:
                return join
        raise KeyError(f"model {self.name!r} has no join to table {table!r}")

    def attribute(self, name: str) -> Attribute | None:
        return self.attributes.get(name)


@dataclass(frozen=True)
class Query:
    """A declarative query: measures x filters x group-bys.

    ``measures`` and ``group_by`` are model names (order significant —
    group-by order drives group-code packing); ``filters`` are
    single-column predicates over attribute names or fact columns.
    Frozen and hashable, so servers can cache compilations per spec.
    """

    name: str
    measures: tuple[str, ...]
    filters: tuple[ColumnPredicate, ...] = ()
    group_by: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.measures:
            raise ValueError(f"query {self.name!r} declares no measures")
        if len(set(self.group_by)) != len(self.group_by):
            raise ValueError(f"query {self.name!r} repeats a group-by attribute")
        for pred in self.filters:
            if isinstance(pred, And) or not isinstance(pred, ColumnPredicate):
                raise TypeError(
                    f"query {self.name!r}: filters must be single-column "
                    f"predicates, got {type(pred).__name__}"
                )

    def spec_key(self) -> tuple:
        """Hashable semantic identity of the spec (name excluded).

        Filters canonicalize through the predicate IR, so two spellings
        of the same conjunction (``Range(lo == hi)`` vs ``Equals``,
        conjunct order) produce one key.
        """
        return (
            self.measures,
            canonical_key(And(self.filters)),
            self.group_by,
        )
