"""The SSB star as a :class:`~repro.query.model.SemanticModel`.

Declares the lineorder fact, its four FK dimensions, every queryable
attribute with its dictionary-code space, and the benchmark's measures —
then restates all 13 SSB flights as declarative :class:`Query` specs.
The hand-written plans in :mod:`repro.engine.ssb_queries` stay untouched
as the differential-test oracle; :data:`SSB_SPECS` compiled through
:class:`~repro.query.compiler.QueryCompiler` must match them bit for
bit.

The join declaration order (customer, supplier, part, date) is the
hand-written plans' probe order, so compiled plans replay the same
lookup/probe sequence wherever a flight touches the same dimensions.
"""

from __future__ import annotations

from repro.engine import ssb_queries
from repro.engine.predicates import Equals, InSet, Range
from repro.query.model import Attribute, DimensionJoin, Measure, Query, SemanticModel
from repro.ssb import schema


def ssb_model() -> SemanticModel:
    """The SSB semantic model (metadata only — binds to any SSB db)."""
    return SemanticModel(
        name="ssb",
        fact="lineorder",
        fact_columns=tuple(schema.LINEORDER_COLUMNS),
        joins=(
            DimensionJoin("customer", "c_custkey", "lo_custkey"),
            DimensionJoin("supplier", "s_suppkey", "lo_suppkey"),
            DimensionJoin("part", "p_partkey", "lo_partkey"),
            DimensionJoin("date", "d_datekey", "lo_orderdate"),
        ),
        attributes={
            a.name: a
            for a in (
                # date: d_year is the only date attribute SSB groups by.
                Attribute("d_year", "date", "d_year", base=1992,
                          domain=len(schema.DATE_YEARS)),
                Attribute("d_monthnuminyear", "date", "d_monthnuminyear",
                          base=1, domain=12),
                Attribute("d_yearmonthnum", "date", "d_yearmonthnum"),
                Attribute("d_weeknuminyear", "date", "d_weeknuminyear"),
                # customer / supplier geography (dictionary codes).
                Attribute("c_city", "customer", "c_city",
                          domain=schema.NUM_CITIES),
                Attribute("c_nation", "customer", "c_nation",
                          domain=schema.NUM_NATIONS),
                Attribute("c_region", "customer", "c_region",
                          domain=len(schema.REGIONS)),
                Attribute("s_city", "supplier", "s_city",
                          domain=schema.NUM_CITIES),
                Attribute("s_nation", "supplier", "s_nation",
                          domain=schema.NUM_NATIONS),
                Attribute("s_region", "supplier", "s_region",
                          domain=len(schema.REGIONS)),
                # part hierarchy.
                Attribute("p_brand1", "part", "p_brand1",
                          domain=schema.NUM_BRANDS),
                Attribute("p_category", "part", "p_category",
                          domain=schema.NUM_CATEGORIES),
                Attribute("p_mfgr", "part", "p_mfgr",
                          domain=schema.NUM_MFGRS),
                # degenerate (fact-table) attributes, groupable for
                # ad-hoc queries; domains follow dbgen's value ranges.
                Attribute("lo_discount", "lineorder", "lo_discount",
                          domain=11),
                Attribute("lo_quantity", "lineorder", "lo_quantity",
                          base=1, domain=50),
                Attribute("lo_tax", "lineorder", "lo_tax", domain=9),
                Attribute("lo_linenumber", "lineorder", "lo_linenumber",
                          base=1, domain=schema.MAX_LINES_PER_ORDER),
            )
        },
        measures={
            m.name: m
            for m in (
                Measure("revenue_disc", "lo_extendedprice",
                        how="sum", op="mul", other="lo_discount"),
                Measure("revenue", "lo_revenue", how="sum"),
                Measure("profit", "lo_revenue",
                        how="sum", op="sub", other="lo_supplycost"),
                Measure("sum_quantity", "lo_quantity", how="sum"),
                Measure("sum_extendedprice", "lo_extendedprice", how="sum"),
                Measure("count_lines", how="count"),
                Measure("max_revenue", "lo_revenue", how="max"),
                Measure("min_discount", "lo_discount", how="min"),
            )
        },
    )


#: All 13 SSB flights as declarative specs, keyed by flight name.
#: Literals reuse the dictionary codes resolved in ssb_queries.
SSB_SPECS: dict[str, Query] = {
    q.name: q
    for q in (
        Query(
            "q1.1", measures=("revenue_disc",),
            filters=(
                Equals("d_year", 1993),
                Range("lo_discount", 1, 3),
                Range("lo_quantity", 0, 24),
            ),
        ),
        Query(
            "q1.2", measures=("revenue_disc",),
            filters=(
                Equals("d_yearmonthnum", 199401),
                Range("lo_discount", 4, 6),
                Range("lo_quantity", 26, 35),
            ),
        ),
        Query(
            "q1.3", measures=("revenue_disc",),
            filters=(
                Equals("d_weeknuminyear", 6),
                Equals("d_year", 1994),
                Range("lo_discount", 5, 7),
                Range("lo_quantity", 36, 40),
            ),
        ),
        Query(
            "q2.1", measures=("revenue",),
            filters=(
                Equals("p_category", ssb_queries.CATEGORY_MFGR12),
                Equals("s_region", ssb_queries.AMERICA),
            ),
            group_by=("d_year", "p_brand1"),
        ),
        Query(
            "q2.2", measures=("revenue",),
            filters=(
                Range("p_brand1", ssb_queries.BRAND_2221, ssb_queries.BRAND_2228),
                Equals("s_region", ssb_queries.ASIA),
            ),
            group_by=("d_year", "p_brand1"),
        ),
        Query(
            "q2.3", measures=("revenue",),
            filters=(
                Equals("p_brand1", ssb_queries.BRAND_2239),
                Equals("s_region", ssb_queries.EUROPE),
            ),
            group_by=("d_year", "p_brand1"),
        ),
        Query(
            "q3.1", measures=("revenue",),
            filters=(
                Equals("c_region", ssb_queries.ASIA),
                Equals("s_region", ssb_queries.ASIA),
                Range("d_year", 1992, 1997),
            ),
            group_by=("c_nation", "s_nation", "d_year"),
        ),
        Query(
            "q3.2", measures=("revenue",),
            filters=(
                Equals("c_nation", ssb_queries.NATION_US),
                Equals("s_nation", ssb_queries.NATION_US),
                Range("d_year", 1992, 1997),
            ),
            group_by=("c_city", "s_city", "d_year"),
        ),
        Query(
            "q3.3", measures=("revenue",),
            filters=(
                InSet("c_city", (ssb_queries.CITY_UK1, ssb_queries.CITY_UK5)),
                InSet("s_city", (ssb_queries.CITY_UK1, ssb_queries.CITY_UK5)),
                Range("d_year", 1992, 1997),
            ),
            group_by=("c_city", "s_city", "d_year"),
        ),
        Query(
            "q3.4", measures=("revenue",),
            filters=(
                InSet("c_city", (ssb_queries.CITY_UK1, ssb_queries.CITY_UK5)),
                InSet("s_city", (ssb_queries.CITY_UK1, ssb_queries.CITY_UK5)),
                Equals("d_yearmonthnum", 199712),
            ),
            group_by=("c_city", "s_city", "d_year"),
        ),
        Query(
            "q4.1", measures=("profit",),
            filters=(
                Equals("c_region", ssb_queries.AMERICA),
                Equals("s_region", ssb_queries.AMERICA),
                InSet("p_mfgr", (0, 1)),
            ),
            group_by=("d_year", "c_nation"),
        ),
        Query(
            "q4.2", measures=("profit",),
            filters=(
                Equals("c_region", ssb_queries.AMERICA),
                Equals("s_region", ssb_queries.AMERICA),
                InSet("p_mfgr", (0, 1)),
                InSet("d_year", (1997, 1998)),
            ),
            group_by=("d_year", "s_nation", "p_category"),
        ),
        Query(
            "q4.3", measures=("profit",),
            filters=(
                Equals("c_region", ssb_queries.AMERICA),
                Equals("s_nation", ssb_queries.NATION_US),
                Equals("p_category", ssb_queries.CATEGORY_MFGR14),
                InSet("d_year", (1997, 1998)),
            ),
            group_by=("d_year", "s_city", "p_brand1"),
        ),
    )
}
