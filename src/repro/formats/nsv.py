"""NSV: null suppression with variable-length byte-aligned packing.

Each value is stored with 1, 2, 3, or 4 bytes; a separate 2-bits-per-value
length array records the choice (Fang et al. [18]).  NSV adapts to skew
better than NSF but decodes poorly: finding value offsets needs a prefix
sum over the lengths and the payload reads are unaligned gathers, which is
why it is the slowest scheme in Figure 8(f).
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import CascadePass, ColumnCodec, EncodedColumn
from repro.formats.gpufor import bit_length


class Nsv(ColumnCodec):
    """Variable-width null suppression (byte-aligned)."""

    name = "nsv"

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        v = values.astype(np.int64)
        if v.size and (v.min() < 0 or v.max() >= 2**32):
            raise ValueError("NSV requires values in [0, 2**32)")
        widths = np.maximum(1, -(-bit_length(v) // 8)).astype(np.int64)

        offsets = np.zeros(v.size + 1, dtype=np.int64)
        np.cumsum(widths, out=offsets[1:])
        data = np.zeros(int(offsets[-1]), dtype=np.uint8)
        as_bytes = v.astype("<u4").view(np.uint8).reshape(-1, 4) if v.size else np.zeros((0, 4), np.uint8)
        for byte_idx in range(4):
            sel = np.flatnonzero(widths > byte_idx)
            data[offsets[sel] + byte_idx] = as_bytes[sel, byte_idx]

        # 2 bits per value encode width-1.
        length_codes = (widths - 1).astype(np.uint8)
        pad = (-v.size) % 4
        if pad:
            length_codes = np.concatenate([length_codes, np.zeros(pad, np.uint8)])
        quads = length_codes.reshape(-1, 4)
        length_bytes = (
            quads[:, 0] | (quads[:, 1] << 2) | (quads[:, 2] << 4) | (quads[:, 3] << 6)
        ).astype(np.uint8)

        return EncodedColumn(
            codec=self.name,
            count=values.size,
            arrays={"data": data, "lengths": length_bytes},
            dtype=values.dtype,
        )

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        n = enc.count
        if n == 0:
            return np.zeros(0, dtype=enc.dtype)
        length_bytes = enc.arrays["lengths"]
        quads = np.stack(
            [(length_bytes >> (2 * j)) & 0b11 for j in range(4)], axis=1
        ).reshape(-1)[:n]
        widths = quads.astype(np.int64) + 1
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(widths, out=offsets[1:])

        data = enc.arrays["data"]
        out_bytes = np.zeros((n, 4), dtype=np.uint8)
        for byte_idx in range(4):
            sel = np.flatnonzero(widths > byte_idx)
            out_bytes[sel, byte_idx] = data[offsets[sel] + byte_idx]
        return out_bytes.reshape(-1).view("<u4").astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        n = enc.count
        lengths_bytes = enc.arrays["lengths"].nbytes
        return [
            # Prefix sum over the 2-bit lengths to locate each value.
            CascadePass(
                name="scan-lengths",
                read_bytes=2 * lengths_bytes,
                write_bytes=n * 4,
                compute_ops=n * 4,
            ),
            # Unaligned per-value gathers from the byte stream.
            CascadePass(
                name="gather-decode",
                read_bytes=n * 4,
                write_bytes=n * 4,
                compute_ops=n * 3,
                gathers=(n, 4),
            ),
        ]
