"""Bit-level packing primitives (horizontal layout).

Bit-packing writes each integer in ``[0, 2**b)`` with exactly ``b`` bits,
concatenating the bit strings into 32-bit words with no padding between
values (Figure 4 of the paper).  The layout is *horizontal*: subsequent
values occupy subsequent bit positions, LSB-first within each word, exactly
like the CUDA implementation's ``(word >> start_bit) & mask`` extraction.

Everything here is vectorized NumPy; these functions are the shared
foundation of GPU-FOR, GPU-DFOR, GPU-RFOR, GPU-BP and GPU-SIMDBP128.
"""

from __future__ import annotations

import numpy as np

#: Word size of the packed stream, in bits.
WORD_BITS = 32
#: Maximum supported bitwidth for one packed value.
MAX_BITS = 32


def required_bits(values: np.ndarray) -> int:
    """Minimum bitwidth ``b`` so every value fits in ``[0, 2**b)``.

    An empty array needs 0 bits.  Raises on negative input — callers apply
    frame-of-reference first, which makes values non-negative.
    """
    values = np.asarray(values)
    if values.size == 0:
        return 0
    lo = int(values.min())
    if lo < 0:
        raise ValueError(f"bit-packing needs non-negative values, got min {lo}")
    hi = int(values.max())
    return hi.bit_length()


def words_needed(count: int, bits: int) -> int:
    """Number of 32-bit words that ``count`` values of ``bits`` bits occupy."""
    if count < 0 or not 0 <= bits <= MAX_BITS:
        raise ValueError(f"invalid count={count} or bits={bits}")
    return -(-count * bits // WORD_BITS)


def pack_bits(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack ``values`` (each ``< 2**bits``) into a dense uint32 stream.

    Value ``i`` occupies bit positions ``[i*bits, (i+1)*bits)`` of the
    stream; bit ``p`` of the stream is bit ``p % 32`` of word ``p // 32``.

    Args:
        values: non-negative integers, any integer dtype.
        bits: bitwidth per value, 0..32.  ``bits == 0`` packs to nothing.

    Returns:
        uint32 array of :func:`words_needed` words (trailing bits zero).
    """
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if not 0 <= bits <= MAX_BITS:
        raise ValueError(f"bits must be in [0, {MAX_BITS}], got {bits}")
    n = values.size
    if bits == 0:
        # A zero-width stream can only represent zeros; reject anything
        # else instead of silently packing it to nothing.
        if n and np.any(values):
            raise ValueError("values do not fit in 0 bits")
        return np.zeros(words_needed(n, bits), dtype=np.uint32)
    if n == 0:
        return np.zeros(words_needed(n, bits), dtype=np.uint32)
    # bits is in [1, 32] here, so the uint64 shift is always well-defined
    # (the old `bits < 64` guard skipped validation paths it never needed
    # to and sat one step from undefined behaviour at width 63).
    if np.any(values >> np.uint64(bits)):
        raise ValueError(f"values do not fit in {bits} bits")

    # Value i starts at stream bit i*bits, i.e. bit (i*bits % 32) of word
    # i*bits // 32, and with bits <= 32 it straddles at most that word and
    # the next.  As in :func:`unpack_bits`, the start offsets repeat with
    # period P = 32/gcd(bits, 32) and within one phase the word index
    # advances by the constant stride S = bits/gcd(bits, 32): each phase
    # is one strided OR of ``value << scalar_shift`` into a 64-bit
    # accumulator indexed by word.  In-phase values sit exactly S words
    # apart, so a phase never writes the same word twice.  The low half
    # of ``acc[w]`` is word ``w``; the high half is its spill into word
    # ``w + 1``.  (The previous implementation exploded every value into
    # 64 bit-bytes via np.unpackbits — 64x the traffic of the packed
    # stream — and dominated encode profiles.)
    nwords = words_needed(n, bits)
    acc = np.zeros(nwords, dtype=np.uint64)
    g = np.gcd(bits, WORD_BITS)
    period = WORD_BITS // g
    stride = bits // g
    for p in range(min(period, n)):
        n_p = -(-(n - p) // period)  # values in phase p
        w0 = (p * bits) >> 5
        acc[w0::stride][:n_p] |= values[p::period] << np.uint64((p * bits) & 31)
    out = acc.astype(np.uint32)  # truncation keeps the low word
    # The final word's spill is provably zero (every value fits inside
    # the nwords*32-bit stream), so shifting acc[:-1] covers all of it.
    out[1:] |= (acc[:-1] >> np.uint64(32)).astype(np.uint32)
    return out


def unpack_bits(words: np.ndarray, count: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: extract ``count`` values of ``bits`` bits.

    Args:
        words: uint32 stream holding at least ``count * bits`` bits.
        count: number of values to extract.
        bits: bitwidth per value, 0..32.

    Returns:
        uint32 array of ``count`` values.
    """
    if count < 0 or not 0 <= bits <= MAX_BITS:
        raise ValueError(f"invalid count={count} or bits={bits}")
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    if bits == 0:
        return np.zeros(count, dtype=np.uint32)
    words = np.ascontiguousarray(words, dtype=np.uint32)
    needed = words_needed(count, bits)
    if words.size < needed:
        raise ValueError(f"stream has {words.size} words, need {needed}")

    # Value i occupies bits [i*bits, (i+1)*bits) of the stream, so with
    # bits <= 32 it straddles at most two adjacent words.  View the
    # stream as overlapping 64-bit windows (stride 4 bytes); window w
    # holds words w and w+1, so value i is `(windows[i*bits//32] >>
    # (i*bits % 32)) & mask` — the CUDA kernel's extraction.
    #
    # The bit offsets i*bits mod 32 repeat with period P = 32/gcd(bits,
    # 32), and within one phase the window index advances by the
    # constant stride S = bits/gcd(bits, 32).  Each phase is therefore a
    # plain strided slice with a *scalar* shift: P slice-shift-mask
    # passes replace per-value index arrays and a 16M-wide gather.
    w = np.empty(needed + 1, dtype=np.uint32)
    w[:needed] = words[:needed]
    w[needed] = 0  # high-word sentinel for the final value
    windows = np.ndarray(
        shape=(needed,), dtype=np.uint64, buffer=w.data, strides=(4,)
    )
    # Truncating to uint32 drops window bits >= 32; the mask (which fits
    # uint32 for every bits <= 32) then drops bits >= `bits`.
    mask = np.uint32((1 << bits) - 1)
    if count < 4096:
        # Small batch: one fancy-indexed gather beats paying the slice
        # setup once per phase.
        pos = np.arange(count, dtype=np.int64) * bits
        shift = (pos & 31).astype(np.uint64)
        return (windows[pos >> 5] >> shift).astype(np.uint32) & mask
    g = np.gcd(bits, WORD_BITS)
    period = WORD_BITS // g
    stride = bits // g
    out = np.empty(count, dtype=np.uint32)
    for p in range(min(period, count)):
        n_p = -(-(count - p) // period)  # values in phase p
        phase = windows[(p * bits) >> 5 :: stride][:n_p]
        out[p::period] = (phase >> np.uint64((p * bits) & 31)).astype(np.uint32)
    out &= mask
    return out


def pack_vertical(values: np.ndarray, bits: int, lanes: int) -> np.ndarray:
    """Pack in the *vertical* (striped) layout of SIMD-BP128 (Figure 1).

    Values are distributed round-robin across ``lanes`` lanes; each lane is
    then bit-packed horizontally and the lane streams are interleaved word
    by word, so lane ``l`` of word-group ``g`` sits at word ``g*lanes + l``.
    ``values.size`` must be a multiple of ``lanes * 32`` so every lane ends
    on a word boundary (the property SIMD-BP128's layout is built around).

    Args:
        values: non-negative integers.
        bits: bitwidth per value.
        lanes: number of vertical lanes (4 on SSE, 32 on a GPU warp).

    Returns:
        uint32 array of ``values.size * bits / 32`` words.
    """
    values = np.asarray(values, dtype=np.uint64)
    n = values.size
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    if n % (lanes * WORD_BITS):
        raise ValueError(
            f"vertical packing needs size a multiple of lanes*32 "
            f"({lanes * WORD_BITS}), got {n}"
        )
    if n == 0 or bits == 0:
        return np.zeros(words_needed(n, bits), dtype=np.uint32)
    per_lane = n // lanes
    # Lane l holds values l, l+lanes, l+2*lanes, ...
    lanes_matrix = values.reshape(per_lane, lanes).T
    packed_lanes = np.stack(
        [pack_bits(lane, bits) for lane in lanes_matrix]
    )  # (lanes, words_per_lane)
    return packed_lanes.T.reshape(-1).astype(np.uint32)


def unpack_vertical(words: np.ndarray, count: int, bits: int, lanes: int) -> np.ndarray:
    """Inverse of :func:`pack_vertical`."""
    if count % (lanes * WORD_BITS):
        raise ValueError(
            f"vertical unpacking needs count a multiple of lanes*32, got {count}"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    if bits == 0:
        return np.zeros(count, dtype=np.uint32)
    words = np.asarray(words, dtype=np.uint32)
    per_lane = count // lanes
    words_per_lane = words_needed(per_lane, bits)
    lane_words = words[: words_per_lane * lanes].reshape(words_per_lane, lanes).T
    out = np.empty((per_lane, lanes), dtype=np.uint32)
    for l in range(lanes):
        out[:, l] = unpack_bits(lane_words[l], per_lane, bits)
    return out.reshape(-1)
