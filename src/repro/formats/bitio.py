"""Bit-level packing primitives (horizontal layout).

Bit-packing writes each integer in ``[0, 2**b)`` with exactly ``b`` bits,
concatenating the bit strings into 32-bit words with no padding between
values (Figure 4 of the paper).  The layout is *horizontal*: subsequent
values occupy subsequent bit positions, LSB-first within each word, exactly
like the CUDA implementation's ``(word >> start_bit) & mask`` extraction.

These functions are the shared foundation of GPU-FOR, GPU-DFOR,
GPU-RFOR, GPU-BP and GPU-SIMDBP128.  They validate arguments and then
dispatch to the active :mod:`repro.formats.kernels` backend (reference
NumPy, precompiled shift-table, or optional numba JIT) — all backends
are bit-identical by contract.
"""

from __future__ import annotations

import numpy as np

from repro.formats import kernels

#: Word size of the packed stream, in bits.
WORD_BITS = 32
#: Maximum supported bitwidth for one packed value.
MAX_BITS = 32


def required_bits(values: np.ndarray, max_bits: int | None = MAX_BITS) -> int:
    """Minimum bitwidth ``b`` so every value fits in ``[0, 2**b)``.

    An empty array needs 0 bits.  Raises on negative input — callers apply
    frame-of-reference first, which makes values non-negative.  Values too
    wide to pack raise here, naming the offending value, instead of
    surfacing later as an opaque ``pack_bits`` bitwidth error far from the
    cause; pass ``max_bits=None`` (or a larger cap) to get the raw width.
    """
    values = np.asarray(values)
    if values.size == 0:
        return 0
    lo = int(values.min())
    if lo < 0:
        raise ValueError(f"bit-packing needs non-negative values, got min {lo}")
    hi = int(values.max())
    width = hi.bit_length()
    if max_bits is not None and width > max_bits:
        raise ValueError(
            f"value {hi} needs {width} bits, above the packable maximum "
            f"of {max_bits}"
        )
    return width


def words_needed(count: int, bits: int) -> int:
    """Number of 32-bit words that ``count`` values of ``bits`` bits occupy."""
    if count < 0 or not 0 <= bits <= MAX_BITS:
        raise ValueError(f"invalid count={count} or bits={bits}")
    return -(-count * bits // WORD_BITS)


def pack_bits(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack ``values`` (each ``< 2**bits``) into a dense uint32 stream.

    Value ``i`` occupies bit positions ``[i*bits, (i+1)*bits)`` of the
    stream; bit ``p`` of the stream is bit ``p % 32`` of word ``p // 32``.

    Args:
        values: non-negative integers, any integer dtype.
        bits: bitwidth per value, 0..32.  ``bits == 0`` packs to nothing.

    Returns:
        uint32 array of :func:`words_needed` words (trailing bits zero).
    """
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if not 0 <= bits <= MAX_BITS:
        raise ValueError(f"bits must be in [0, {MAX_BITS}], got {bits}")
    n = values.size
    if bits == 0:
        # A zero-width stream can only represent zeros; reject anything
        # else instead of silently packing it to nothing.
        if n and np.any(values):
            raise ValueError("values do not fit in 0 bits")
        return np.zeros(words_needed(n, bits), dtype=np.uint32)
    if n == 0:
        return np.zeros(words_needed(n, bits), dtype=np.uint32)
    # bits is in [1, 32] here, so the uint64 shift is always well-defined
    # (the old `bits < 64` guard skipped validation paths it never needed
    # to and sat one step from undefined behaviour at width 63).
    if np.any(values >> np.uint64(bits)):
        raise ValueError(f"values do not fit in {bits} bits")
    # The packing algorithm lives in the kernel backend (the reference
    # phase-loop implementation is kernels/numpy_ref.py); arguments are
    # fully validated above, so backends skip re-checking.
    return kernels.get_backend().pack(values, bits)


def unpack_bits(words: np.ndarray, count: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: extract ``count`` values of ``bits`` bits.

    Args:
        words: uint32 stream holding at least ``count * bits`` bits.
        count: number of values to extract.
        bits: bitwidth per value, 0..32.

    Returns:
        uint32 array of ``count`` values.
    """
    if count < 0 or not 0 <= bits <= MAX_BITS:
        raise ValueError(f"invalid count={count} or bits={bits}")
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    if bits == 0:
        return np.zeros(count, dtype=np.uint32)
    words = np.ascontiguousarray(words, dtype=np.uint32)
    needed = words_needed(count, bits)
    if words.size < needed:
        raise ValueError(f"stream has {words.size} words, need {needed}")
    # The extraction algorithm lives in the kernel backend; the stream is
    # contiguous uint32 and large enough by the checks above.
    return kernels.get_backend().unpack(words, count, bits)


def unpack_bits_strided(
    data: np.ndarray,
    first_word: int,
    n_blocks: int,
    payload_words: int,
    stride_words: int,
    count_per_block: int,
    bits: int,
) -> np.ndarray:
    """Unpack ``n_blocks`` equal word-aligned payloads at a fixed stride.

    The regular-geometry decode path of the block codecs: payload ``i``
    starts at word ``first_word + i*stride_words`` of ``data`` and holds
    ``count_per_block`` values of ``bits`` bits in exactly
    ``payload_words`` words (``count_per_block * bits`` must be a
    multiple of 32, true for every block geometry here).  Replaces the
    per-block fancy-indexed word gather with one contiguous unpack.
    """
    data = _validate_strided(
        data, first_word, n_blocks, payload_words, stride_words, count_per_block, bits
    )
    return kernels.get_backend().unpack_strided(
        data, first_word, n_blocks, payload_words, stride_words, count_per_block, bits
    )


def unpack_bits_strided_into(
    data: np.ndarray,
    first_word: int,
    n_blocks: int,
    payload_words: int,
    stride_words: int,
    count_per_block: int,
    bits: int,
    out: np.ndarray,
) -> None:
    """:func:`unpack_bits_strided` writing straight into ``out``.

    ``out`` is a 1-D integer buffer of at least ``n_blocks *
    count_per_block`` elements (the block codecs pass their int64 decode
    scratch); skipping the intermediate uint32 array halves the memory
    traffic at byte-aligned widths.
    """
    data = _validate_strided(
        data, first_word, n_blocks, payload_words, stride_words, count_per_block, bits
    )
    total = n_blocks * count_per_block
    if out.ndim != 1 or out.size < total or out.dtype.kind not in "iu":
        raise ValueError(
            f"out must be a 1-D integer buffer of >= {total} elements, "
            f"got shape {out.shape} dtype {out.dtype}"
        )
    kernels.get_backend().unpack_strided_into(
        data,
        first_word,
        n_blocks,
        payload_words,
        stride_words,
        count_per_block,
        bits,
        out,
    )


def _validate_strided(
    data: np.ndarray,
    first_word: int,
    n_blocks: int,
    payload_words: int,
    stride_words: int,
    count_per_block: int,
    bits: int,
) -> np.ndarray:
    if not 1 <= bits <= MAX_BITS:
        raise ValueError(f"bits must be in [1, {MAX_BITS}], got {bits}")
    if payload_words != words_needed(count_per_block, bits) or (
        count_per_block * bits
    ) % WORD_BITS:
        raise ValueError(
            f"payload of {payload_words} words does not hold exactly "
            f"{count_per_block} word-aligned values of {bits} bits"
        )
    if n_blocks < 0 or stride_words < payload_words:
        raise ValueError(f"invalid n_blocks={n_blocks} or stride={stride_words}")
    if n_blocks and (
        first_word < 0
        or first_word + (n_blocks - 1) * stride_words + payload_words > data.size
    ):
        raise ValueError("strided payloads overrun the data array")
    return np.asarray(data, dtype=np.uint32)


def pack_vertical(values: np.ndarray, bits: int, lanes: int) -> np.ndarray:
    """Pack in the *vertical* (striped) layout of SIMD-BP128 (Figure 1).

    Values are distributed round-robin across ``lanes`` lanes; each lane is
    then bit-packed horizontally and the lane streams are interleaved word
    by word, so lane ``l`` of word-group ``g`` sits at word ``g*lanes + l``.
    ``values.size`` must be a multiple of ``lanes * 32`` so every lane ends
    on a word boundary (the property SIMD-BP128's layout is built around).

    Args:
        values: non-negative integers.
        bits: bitwidth per value.
        lanes: number of vertical lanes (4 on SSE, 32 on a GPU warp).

    Returns:
        uint32 array of ``values.size * bits / 32`` words.
    """
    values = np.asarray(values, dtype=np.uint64)
    n = values.size
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    if n % (lanes * WORD_BITS):
        raise ValueError(
            f"vertical packing needs size a multiple of lanes*32 "
            f"({lanes * WORD_BITS}), got {n}"
        )
    if n == 0 or bits == 0:
        return np.zeros(words_needed(n, bits), dtype=np.uint32)
    per_lane = n // lanes
    # Lane l holds values l, l+lanes, l+2*lanes, ...
    lanes_matrix = values.reshape(per_lane, lanes).T
    packed_lanes = np.stack(
        [pack_bits(lane, bits) for lane in lanes_matrix]
    )  # (lanes, words_per_lane)
    return packed_lanes.T.reshape(-1).astype(np.uint32)


def unpack_vertical(words: np.ndarray, count: int, bits: int, lanes: int) -> np.ndarray:
    """Inverse of :func:`pack_vertical`."""
    if count % (lanes * WORD_BITS):
        raise ValueError(
            f"vertical unpacking needs count a multiple of lanes*32, got {count}"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    if bits == 0:
        return np.zeros(count, dtype=np.uint32)
    words = np.asarray(words, dtype=np.uint32)
    per_lane = count // lanes
    words_per_lane = words_needed(per_lane, bits)
    lane_words = words[: words_per_lane * lanes].reshape(words_per_lane, lanes).T
    out = np.empty((per_lane, lanes), dtype=np.uint32)
    for l in range(lanes):
        out[:, l] = unpack_bits(lane_words[l], per_lane, bits)
    return out.reshape(-1)
