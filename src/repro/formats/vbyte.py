"""GPU-VByte: variable-byte coding with per-block offsets (Mallia et al.).

Classic VByte stores each integer in 1-5 bytes of 7 payload bits plus a
continuation bit.  It is inherently sequential — a value's position
depends on all previous lengths — so the GPU adaptation (the second
scheme of Mallia et al. [33], alongside GPU-BP) adds a block-start offset
array per 128 values, letting thread blocks decode blocks independently.

The paper compares against GPU-BP rather than GPU-VByte because GPU-BP
dominates it on both ratio and speed; this implementation exists so that
claim can be checked (see ``repro.experiments.related_work``).
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import CascadePass, ColumnCodec, EncodedColumn
from repro.formats.gpufor import bit_length

#: Values per block (matches GPU-BP's decode granularity).
VBYTE_BLOCK = 128
#: Continuation flag: high bit of each byte.
_CONT = 0x80


class GpuVByte(ColumnCodec):
    """Byte-aligned varint coding with parallel-decode block offsets."""

    name = "gpu-vbyte"

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        v = values.astype(np.int64)
        if v.size and (v.min() < 0 or v.max() >= 2**32):
            raise ValueError("GPU-VByte requires values in [0, 2**32)")

        widths = np.maximum(1, -(-bit_length(v) // 7)).astype(np.int64)
        offsets = np.zeros(v.size + 1, dtype=np.int64)
        np.cumsum(widths, out=offsets[1:])
        data = np.zeros(int(offsets[-1]), dtype=np.uint8)
        for byte_idx in range(5):
            sel = np.flatnonzero(widths > byte_idx)
            if sel.size == 0:
                break
            payload = (v[sel] >> (7 * byte_idx)) & 0x7F
            cont = np.where(widths[sel] > byte_idx + 1, _CONT, 0)
            data[offsets[sel] + byte_idx] = (payload | cont).astype(np.uint8)

        block_byte_starts = offsets[::VBYTE_BLOCK].astype(np.int64)
        if block_byte_starts.size == 0 or block_byte_starts[-1] != offsets[-1]:
            block_byte_starts = np.append(block_byte_starts, offsets[-1])
        return EncodedColumn(
            codec=self.name,
            count=values.size,
            arrays={
                "data": data,
                "block_starts": block_byte_starts.astype(np.uint32),
            },
            dtype=values.dtype,
        )

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        n = enc.count
        if n == 0:
            return np.zeros(0, dtype=enc.dtype)
        data = enc.arrays["data"].astype(np.int64)
        is_last = (data & _CONT) == 0
        # Each value ends at a byte with a clear continuation bit.
        ends = np.flatnonzero(is_last)
        if ends.size != n:
            raise ValueError("corrupt VByte stream: value count mismatch")
        starts = np.empty(n, dtype=np.int64)
        starts[0] = 0
        starts[1:] = ends[:-1] + 1
        widths = ends - starts + 1

        out = np.zeros(n, dtype=np.int64)
        for byte_idx in range(5):
            sel = np.flatnonzero(widths > byte_idx)
            if sel.size == 0:
                break
            out[sel] |= (data[starts[sel] + byte_idx] & 0x7F) << (7 * byte_idx)
        return out.astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        n = enc.count
        return [
            # Locating value boundaries needs a scan over the byte flags.
            CascadePass(
                name="scan-boundaries",
                read_bytes=2 * enc.arrays["data"].nbytes,
                write_bytes=n * 4,
                compute_ops=n * 5,
            ),
            CascadePass(
                name="gather-decode",
                read_bytes=n * 4,
                write_bytes=n * 4,
                compute_ops=n * 4,
                gathers=(n, 4, enc.arrays["data"].nbytes),
            ),
        ]
