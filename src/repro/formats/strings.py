"""Dictionary-encoded string columns.

The paper's schemes "target integer, decimal, and dictionary-encoded
strings" (Section 1): analytics engines dictionary-encode string columns
into integers before loading, then every integer scheme applies.  This
module provides that front end: a sorted string dictionary whose codes
preserve the lexicographic order (so range predicates on strings become
integer range predicates on codes), with the codes compressed by any
registered integer codec — GPU-* by default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import EncodedColumn
from repro.formats.registry import get_codec


@dataclass
class EncodedStringColumn:
    """A string column: sorted dictionary + compressed integer codes."""

    dictionary: np.ndarray  # numpy unicode array, sorted
    codes: EncodedColumn
    codec_name: str

    @property
    def count(self) -> int:
        return self.codes.count

    @property
    def nbytes(self) -> int:
        """Compressed footprint: packed codes + dictionary bytes."""
        return self.codes.nbytes + self.dictionary.nbytes

    @property
    def cardinality(self) -> int:
        return int(self.dictionary.size)

    def code_of(self, value: str) -> int:
        """Dictionary code of ``value``; raises KeyError when absent.

        Predicates on the string column compile to predicates on codes:
        equality via this lookup, ranges via :meth:`code_range`.
        """
        idx = int(np.searchsorted(self.dictionary, value))
        if idx >= self.dictionary.size or self.dictionary[idx] != value:
            raise KeyError(f"string {value!r} not in dictionary")
        return idx

    def code_range(self, lo: str, hi: str) -> tuple[int, int]:
        """Half-open code range equivalent to ``lo <= s <= hi``."""
        start = int(np.searchsorted(self.dictionary, lo, side="left"))
        stop = int(np.searchsorted(self.dictionary, hi, side="right"))
        return start, stop


def encode_strings(
    values: np.ndarray | list[str], codec_name: str | None = None
) -> EncodedStringColumn:
    """Dictionary-encode a string column and compress the codes.

    Args:
        values: array/list of strings.
        codec_name: integer codec for the codes; ``None`` lets GPU-*
            choose (the paper's configuration).

    Returns:
        An :class:`EncodedStringColumn`.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError("encode_strings expects a 1-D string array")
    if arr.size and not np.issubdtype(arr.dtype, np.str_):
        raise ValueError("encode_strings expects unicode strings")
    dictionary, codes = np.unique(arr, return_inverse=True)
    codes = codes.astype(np.int64)
    if codec_name is None:
        # Imported lazily: repro.core depends on repro.formats, so the
        # hybrid chooser cannot be a module-level import here.
        from repro.core.hybrid import choose_gpu_star

        choice = choose_gpu_star(codes)
        enc, name = choice.encoded, choice.codec_name
    else:
        enc, name = get_codec(codec_name).encode(codes), codec_name
    return EncodedStringColumn(dictionary=dictionary, codes=enc, codec_name=name)


def decode_strings(column: EncodedStringColumn) -> np.ndarray:
    """Materialize the original string column (bit-exact)."""
    codes = get_codec(column.codec_name).decode(column.codes)
    return column.dictionary[codes.astype(np.int64)]
