"""NSF: null suppression with fixed-length byte-aligned packing.

The whole column is stored with 1, 2, or 4 bytes per value, chosen by the
widest value present (Fang et al. [18]; the paper's Section 9.2 baseline).
Its decompression-time staircase in Figure 7a comes directly from that
1/2/4-byte choice.  Negative values force the 4-byte width.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import CascadePass, ColumnCodec, EncodedColumn

_WIDTH_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32}


def nsf_width(values: np.ndarray) -> int:
    """Bytes per value NSF picks: 1, 2, or 4."""
    if values.size == 0:
        return 1
    lo = int(values.min())
    hi = int(values.max())
    if lo < 0 or hi >= 2**32:
        if not (-(2**31) <= lo and hi < 2**31):
            raise ValueError("values do not fit in 32 bits")
        return 4
    if hi < 2**8:
        return 1
    if hi < 2**16:
        return 2
    return 4


class Nsf(ColumnCodec):
    """Fixed-width null suppression (byte-aligned)."""

    name = "nsf"

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        width = nsf_width(values)
        if width == 4 and values.size and int(values.min()) < 0:
            data = values.astype(np.int32).view(np.uint32)
        else:
            data = values.astype(_WIDTH_DTYPES[width])
        return EncodedColumn(
            codec=self.name,
            count=values.size,
            arrays={"data": data},
            meta={"width": width, "signed": bool(values.size and int(values.min()) < 0)},
            dtype=values.dtype,
        )

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        data = enc.arrays["data"]
        if enc.meta.get("signed"):
            return data.view(np.int32).astype(enc.dtype)
        return data.astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        return [
            CascadePass(
                name="widen",
                read_bytes=enc.nbytes,
                write_bytes=enc.count * 4,
                compute_ops=enc.count,
            )
        ]
