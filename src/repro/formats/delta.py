"""Plain delta coding (a planner/nvCOMP cascade layer).

Stores the first value and the successive differences as int32 — no
bit-packing, so it only helps when cascaded with a null-suppression
layer.  Decoding is a device-wide prefix sum, one of the extra kernel
passes the cascading decompression model pays for (Figure 2 left).
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import CascadePass, ColumnCodec, EncodedColumn


class Delta(ColumnCodec):
    """Whole-column differential coding."""

    name = "delta"

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        v = values.astype(np.int64)
        deltas = np.zeros(v.size, dtype=np.int64)
        if v.size:
            deltas[0] = v[0]
            deltas[1:] = v[1:] - v[:-1]
        if deltas.size and not (
            -(2**31) <= int(deltas.min()) and int(deltas.max()) < 2**31
        ):
            raise ValueError("deltas do not fit in int32")
        return EncodedColumn(
            codec=self.name,
            count=values.size,
            arrays={"deltas": deltas.astype(np.int32)},
            dtype=values.dtype,
        )

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        return np.cumsum(enc.arrays["deltas"].astype(np.int64)).astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        nbytes = enc.count * 4
        return [
            CascadePass(
                name="prefix-sum",
                read_bytes=2 * nbytes,
                write_bytes=nbytes,
                compute_ops=enc.count * 4,
            )
        ]
