"""Plain run-length encoding (the RLE baseline of Figure 8).

Runs are stored globally — unlike GPU-RFOR there is no per-block
restart — as two uncompressed int32 arrays (values, lengths).  Decoding
is the four-step expansion of Fang et al. [18]: scan the lengths, scatter
run boundaries, max-scan the flags, gather values — four kernel passes,
which is why GPU-RFOR beats it by ~2.5x in Figure 8(b).
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import CascadePass, ColumnCodec, EncodedColumn


def encode_runs(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Global RLE: ``(run_values, run_lengths)`` as int64 arrays."""
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    is_start = np.empty(values.size, dtype=bool)
    is_start[0] = True
    np.not_equal(values[1:], values[:-1], out=is_start[1:])
    starts = np.flatnonzero(is_start)
    return values[starts], np.diff(np.append(starts, values.size))


class Rle(ColumnCodec):
    """Uncompressed (value, run-length) pairs."""

    name = "rle"

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        run_values, run_lengths = encode_runs(values)
        if run_values.size and not (
            -(2**31) <= int(run_values.min()) and int(run_values.max()) < 2**31
        ):
            raise ValueError("run values do not fit in int32")
        if run_lengths.size and int(run_lengths.max()) >= 2**32:
            raise ValueError("run lengths do not fit in 32 bits")
        return EncodedColumn(
            codec=self.name,
            count=values.size,
            arrays={
                "values": run_values.astype(np.int32),
                "lengths": run_lengths.astype(np.uint32),
            },
            meta={"avg_run_length": float(values.size / max(1, run_values.size))},
            dtype=values.dtype,
        )

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        return np.repeat(
            enc.arrays["values"].astype(np.int64),
            enc.arrays["lengths"].astype(np.int64),
        ).astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        n_runs = enc.arrays["values"].size
        runs_bytes = n_runs * 4
        decoded_bytes = enc.count * 4
        return [
            CascadePass(
                name="scan-lengths",
                read_bytes=2 * runs_bytes,
                write_bytes=runs_bytes,
                compute_ops=n_runs * 4,
            ),
            CascadePass(
                name="scatter-flags",
                read_bytes=runs_bytes,
                write_bytes=decoded_bytes,
                compute_ops=n_runs * 2,
                scatters=(n_runs, 4, decoded_bytes),
            ),
            CascadePass(
                name="scan-flags",
                read_bytes=2 * decoded_bytes,
                write_bytes=decoded_bytes,
                compute_ops=enc.count * 4,
            ),
            CascadePass(
                name="gather-values",
                read_bytes=decoded_bytes + runs_bytes,
                write_bytes=decoded_bytes,
                compute_ops=enc.count * 2,
                gathers=(n_runs, 4, runs_bytes),
            ),
        ]
