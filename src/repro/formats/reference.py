"""Executable transcriptions of the paper's pseudocode.

:func:`algorithm1_decode_element` is Algorithm 1 ("Fast Bit Unpacking on
GPU") line by line: the per-thread scalar decode the paper's base
implementation runs on each of the 128 threads of a block.  It is kept
deliberately literal — same variable names, same loop, same shifts — and
serves as the oracle the vectorized decoder is differential-tested
against (``tests/test_reference.py``).

Running this per element in Python is of course slow; it exists for
fidelity, not throughput.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import EncodedColumn
from repro.formats.gpufor import BLOCK


def algorithm1_decode_element(
    block_starts: np.ndarray,
    data: np.ndarray,
    block_id: int,
    thread_id: int,
) -> int:
    """Decode one element exactly as Algorithm 1 does.

    Args:
        block_starts: the per-block word offsets (``int[] block_starts``).
        data: the packed words (``int[] data``).
        block_id: which 128-value block this thread block decodes.
        thread_id: this thread's index within the block, 0..127.

    Returns:
        The decoded element (``item``).
    """
    if not 0 <= thread_id < BLOCK:
        raise ValueError(f"thread_id must be in [0, {BLOCK}), got {thread_id}")

    # 1: int block_start = block_starts[block_id];
    block_start = int(block_starts[block_id])
    # 2: uint* data_block = &data[block_start];
    def data_block(i: int) -> int:
        return int(data[block_start + i])

    # 3: int reference = data_block[0];
    reference = int(np.int32(np.uint32(data_block(0))))
    # 4: uint miniblock_id = thread_id / 32;
    miniblock_id = thread_id // 32
    # 5: uint index_into_miniblock = thread_id & (32 - 1);
    index_into_miniblock = thread_id & (32 - 1)
    # 6: uint bitwidth_word = data_block[1];
    bitwidth_word = data_block(1)
    # 7-10: miniblock offset = prefix sum of bitwidths before ours.
    miniblock_offset = 0
    for _ in range(miniblock_id):
        miniblock_offset += bitwidth_word & 255
        bitwidth_word >>= 8
    # 11: uint bitwidth = bitwidth_word & 255;
    bitwidth = bitwidth_word & 255
    # 12: uint start_bitindex = bitwidth * index_into_miniblock;
    start_bitindex = bitwidth * index_into_miniblock
    # 13: uint header_offset = 2;
    header_offset = 2
    # 14: start_intindex = header + miniblock_offset + start_bitindex/32;
    start_intindex = header_offset + miniblock_offset + start_bitindex // 32
    # 15: uint64 element_block = data_block[i] | (data_block[i+1] << 32);
    lo = data_block(start_intindex)
    hi = (
        data_block(start_intindex + 1)
        if block_start + start_intindex + 1 < data.size
        else 0
    )
    element_block = lo | (hi << 32)
    # 16: start_bitindex = start_bitindex & (32 - 1);
    start_bitindex = start_bitindex & (32 - 1)
    # 17: element = (element_block & (((1 << bw) - 1) << sbi)) >> sbi;
    element = (element_block & (((1 << bitwidth) - 1) << start_bitindex)) >> start_bitindex
    # 18: item = reference + element;
    return reference + element


def algorithm1_decode_block(enc: EncodedColumn, block_id: int) -> np.ndarray:
    """Run Algorithm 1 for all 128 threads of one block."""
    if enc.codec != "gpu-for":
        raise ValueError("Algorithm 1 decodes the GPU-FOR format")
    return np.array(
        [
            algorithm1_decode_element(
                enc.arrays["block_starts"], enc.arrays["data"], block_id, t
            )
            for t in range(BLOCK)
        ],
        dtype=np.int64,
    )


def algorithm1_decode(enc: EncodedColumn) -> np.ndarray:
    """Decode a whole GPU-FOR column one element at a time (slow oracle)."""
    n_blocks = enc.arrays["block_starts"].size - 1
    out = np.concatenate(
        [algorithm1_decode_block(enc, b) for b in range(n_blocks)]
    ) if n_blocks else np.zeros(0, dtype=np.int64)
    return out[: enc.count]
