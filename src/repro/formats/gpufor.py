"""GPU-FOR: frame-of-reference + bit-packing (paper Section 4).

Data format (Figures 3 and 4):

* the column is split into **blocks of 128 integers**;
* each block stores a 32-bit **reference** (the block minimum) followed by
  one 32-bit **bitwidth word** holding four bitwidths (one byte each) for
  the block's four **miniblocks of 32 integers**;
* each miniblock is bit-packed horizontally with its own bitwidth, so a
  miniblock of width ``b`` occupies exactly ``b`` 32-bit words (the
  32-value miniblock size guarantees word alignment for any ``b``);
* a separate ``block_starts`` array holds each block's word offset into
  the data array so blocks decode in parallel;
* a 3-word header stores total count, block size, and miniblock count.

Overhead is 12 bytes per 128 values = 0.75 bits/int, matching Section 9.2.

The tile used by the tile-based decompression model is ``D`` consecutive
blocks (``d_blocks``, the paper's only hyperparameter, default 4).
"""

from __future__ import annotations

import numpy as np

from repro.formats import bitio
from repro.formats.base import (
    CascadePass,
    EncodedColumn,
    KernelResources,
    TileCodec,
    clamp_interval,
    compact_tile_chunks_inplace,
    predicate_interval,
    ragged_arange,
    require_mask_buffer,
    require_out_buffer,
    trim_tile_chunks,
)

#: Values per block.
BLOCK = 128
#: Values per miniblock.
MINIBLOCK = 32
#: Miniblocks per block.
MINIBLOCKS_PER_BLOCK = BLOCK // MINIBLOCK
#: Words of per-block metadata (reference + bitwidth word).
BLOCK_HEADER_WORDS = 2

#: Exclusive upper bounds for bit_length: value m needs
#: ``searchsorted(_BIT_BOUNDS, m, 'right')`` bits.  Covers the full
#: uint63 range so wide-value codecs (Simple-8b's 60-bit payloads) get
#: exact widths too.
_BIT_BOUNDS = (2 ** np.arange(63, dtype=np.uint64)).astype(np.uint64)
#: Largest value `bit_length` supports: 63 bits, i.e. values < 2**63.
_MAX_BIT_LENGTH_VALUE = np.uint64(2**63 - 1)


def bit_length(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative integers (exact).

    Supports the full 63-bit range ``[0, 2**63)``.  Values at or beyond
    ``2**63`` (including negative inputs, which would wrap under the
    uint64 view) raise :class:`ValueError` rather than silently
    reporting 63 bits and mis-packing downstream.
    """
    v = np.asarray(values, dtype=np.uint64)
    if v.size and int(v.max()) > int(_MAX_BIT_LENGTH_VALUE):
        raise ValueError(
            f"bit_length supports values in [0, 2**63), got max {int(v.max())}"
        )
    return np.searchsorted(_BIT_BOUNDS, v, side="right")


def _pad_to_blocks(values: np.ndarray, block: int = BLOCK) -> np.ndarray:
    """Pad to a whole number of blocks, repeating the last value.

    Repeating an existing value of the final block never widens that
    block's [min, max] range, so padding costs no extra bits.
    """
    n = values.size
    if n == 0:
        return values.reshape(0)
    pad = (-n) % block
    if pad == 0:
        return values
    return np.concatenate([values, np.full(pad, values[-1], dtype=values.dtype)])


def pack_blocks(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """FOR + miniblock bit-pack ``values`` (already padded to blocks).

    This is the shared encoder core: GPU-FOR uses it on raw values,
    GPU-DFOR on per-tile deltas, GPU-RFOR on run values/lengths.

    Returns:
        ``(data, block_starts, bits)`` — the packed uint32 data array, the
        per-block word offsets (with an end sentinel, ``n_blocks + 1``
        entries), and the per-miniblock bitwidths ``(n_blocks, 4)``.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size % BLOCK:
        raise ValueError(f"pack_blocks needs a multiple of {BLOCK} values")
    n_blocks = values.size // BLOCK
    if n_blocks == 0:
        return (
            np.zeros(0, dtype=np.uint32),
            np.zeros(1, dtype=np.uint32),
            np.zeros((0, MINIBLOCKS_PER_BLOCK), dtype=np.int64),
        )

    blocks = values.reshape(n_blocks, BLOCK)
    references = blocks.min(axis=1)
    if not -(2**31) <= int(references.min()) <= int(references.max()) < 2**31:
        # The format stores one 32-bit reference word per block (Figure 3);
        # a wider reference would silently wrap on the astype below.
        raise ValueError("block references do not fit in int32")
    diffs = blocks - references[:, None]
    if int(diffs.max()) >= 2**32:
        raise ValueError("per-block value range exceeds 32 bits; cannot bit-pack")

    minis = diffs.reshape(n_blocks, MINIBLOCKS_PER_BLOCK, MINIBLOCK)
    bits = bit_length(minis.max(axis=2))  # (n_blocks, 4)

    block_words = BLOCK_HEADER_WORDS + bits.sum(axis=1)
    block_starts = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(block_words, out=block_starts[1:])
    total_words = int(block_starts[-1])

    # Word offset of each miniblock inside the data array.
    mini_words = np.concatenate(
        [
            np.zeros((n_blocks, 1), dtype=np.int64),
            np.cumsum(bits[:, :-1], axis=1),
        ],
        axis=1,
    )
    mini_offsets = block_starts[:-1, None] + BLOCK_HEADER_WORDS + mini_words

    data = np.zeros(total_words, dtype=np.uint32)
    data[block_starts[:-1]] = references.astype(np.int32).view(np.uint32)
    bw_words = (
        bits[:, 0] | (bits[:, 1] << 8) | (bits[:, 2] << 16) | (bits[:, 3] << 24)
    )
    data[block_starts[:-1] + 1] = bw_words.astype(np.uint32)

    flat_minis = minis.reshape(-1, MINIBLOCK).astype(np.uint64)
    flat_bits = bits.reshape(-1)
    flat_offsets = mini_offsets.reshape(-1)
    for b in np.unique(flat_bits):
        if b == 0:
            continue
        sel = np.flatnonzero(flat_bits == b)
        packed = bitio.pack_bits(flat_minis[sel].reshape(-1), int(b))
        packed = packed.reshape(sel.size, int(b))
        dest = flat_offsets[sel][:, None] + np.arange(int(b))
        data[dest.reshape(-1)] = packed.reshape(-1)

    if int(block_starts[-1]) >= 2**32:
        raise ValueError("column too large: block start offsets exceed 32 bits")
    return data, block_starts.astype(np.uint32), bits


def block_metadata(
    data: np.ndarray, block_starts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-block ``(references, miniblock_bitwidths)`` without unpacking.

    Reads only the two header words of each block packed by
    :func:`pack_blocks` — the metadata a zone-map/pushdown pass needs:
    the FOR reference is the exact block minimum, and
    ``reference + 2**bits - 1`` bounds every value of a miniblock.

    Returns:
        ``(references, bits)`` — int64 arrays of shapes ``(n_blocks,)``
        and ``(n_blocks, 4)``.
    """
    bstarts = np.asarray(block_starts, dtype=np.int64)[:-1]
    references = data[bstarts].view(np.int32).astype(np.int64)
    bw_words = data[bstarts + 1]
    bits = np.stack(
        [(bw_words >> (8 * j)) & 0xFF for j in range(MINIBLOCKS_PER_BLOCK)],
        axis=1,
    ).astype(np.int64)
    return references, bits


def unpack_block_indices(
    data: np.ndarray,
    block_starts: np.ndarray,
    blocks: np.ndarray,
    add_reference: bool = True,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Decode an arbitrary batch of blocks packed by :func:`pack_blocks`.

    The batched decoder core: all selected blocks' miniblocks are
    unpacked in one ``np.unique(bits)`` sweep, so the cost of the NumPy
    dispatch is paid once per distinct bitwidth rather than once per
    block (or worse, once per tile).

    Args:
        blocks: block indices to decode, in output order (may repeat).
        add_reference: when False, return the raw packed diffs (used by
            the cascading baseline, which adds references in a later
            kernel pass).
        out: optional 1-D int64 scratch of at least ``blocks.size * 128``
            elements; decoded values land in its prefix (the
            allocation-free path behind ``decode_tiles_into``).

    Returns:
        int64 array of ``blocks.size * 128`` values (a view into ``out``
        when one is given).
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    n = blocks.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    bstarts = np.asarray(block_starts, dtype=np.int64)[blocks]
    references = data[bstarts].view(np.int32).astype(np.int64)
    bw_words = data[bstarts + 1]
    bits = np.stack(
        [(bw_words >> (8 * j)) & 0xFF for j in range(MINIBLOCKS_PER_BLOCK)],
        axis=1,
    ).astype(np.int64)

    mini_words = np.concatenate(
        [np.zeros((n, 1), dtype=np.int64), np.cumsum(bits[:, :-1], axis=1)], axis=1
    )
    mini_offsets = bstarts[:, None] + BLOCK_HEADER_WORDS + mini_words

    if out is None:
        minis = np.empty((n * MINIBLOCKS_PER_BLOCK, MINIBLOCK), dtype=np.int64)
    else:
        require_out_buffer(out, n * BLOCK)
        minis = out[: n * BLOCK].reshape(n * MINIBLOCKS_PER_BLOCK, MINIBLOCK)
    flat_bits = bits.reshape(-1)
    flat_offsets = mini_offsets.reshape(-1)
    decoded = minis.reshape(n, BLOCK)
    # Regular-geometry fast path: when every miniblock in the batch shares
    # one bitwidth and the selected blocks are physically consecutive,
    # the payloads are equal word-aligned chunks at a constant stride and
    # the whole batch unpacks as one contiguous stream — no per-miniblock
    # word gather (which otherwise dominates the decode profile).
    b0 = int(flat_bits[0])
    if b0 and bool((flat_bits == b0).all()):
        payload = MINIBLOCKS_PER_BLOCK * b0
        stride = payload + BLOCK_HEADER_WORDS
        if n == 1 or bool((np.diff(bstarts) == stride).all()):
            bitio.unpack_bits_strided_into(
                data, int(bstarts[0]) + BLOCK_HEADER_WORDS, n,
                payload, stride, BLOCK, b0, decoded.reshape(-1),
            )
            if add_reference:
                decoded += references[:, None]
            return decoded.reshape(-1)
    for b in np.unique(flat_bits):
        sel = np.flatnonzero(flat_bits == b)
        if b == 0:
            minis[sel] = 0
            continue
        src = flat_offsets[sel][:, None] + np.arange(int(b))
        words = data[src.reshape(-1)]
        vals = bitio.unpack_bits(words, sel.size * MINIBLOCK, int(b))
        minis[sel] = vals.reshape(sel.size, MINIBLOCK)

    if add_reference:
        decoded += references[:, None]
    return decoded.reshape(-1)


def unpack_blocks(
    data: np.ndarray,
    block_starts: np.ndarray,
    first_block: int,
    last_block: int,
    add_reference: bool = True,
) -> np.ndarray:
    """Decode blocks ``[first_block, last_block)`` packed by :func:`pack_blocks`.

    The contiguous-range convenience over :func:`unpack_block_indices`.

    Returns:
        int64 array of ``(last_block - first_block) * 128`` values.
    """
    if last_block - first_block <= 0:
        return np.zeros(0, dtype=np.int64)
    return unpack_block_indices(
        data, block_starts, np.arange(first_block, last_block), add_reference
    )


def unpack_block_indices_filtered(
    data: np.ndarray,
    block_starts: np.ndarray,
    blocks: np.ndarray,
    lo: int,
    hi: int,
    out: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Fused decode+filter core for :func:`pack_blocks` streams.

    Decodes ``blocks`` into ``out`` and writes the interval test
    ``lo <= value <= hi`` into ``mask``, evaluating it in the *shifted*
    domain (against ``lo - reference`` / ``hi - reference``) before the
    frame-of-reference is added back.  Blocks whose header bounds
    (``[reference, reference + 2**widest - 1]``) miss the interval are
    never unpacked — their values are zero-filled and their mask False.
    ``lo``/``hi`` must be pre-clamped (:func:`~repro.formats.base.clamp_interval`)
    so the shifted thresholds cannot overflow int64.

    Returns:
        Per-block bool array: False marks blocks skipped via headers
        (callers use ``active.all()`` to decide checksum coverage).
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    n = blocks.size
    if n == 0:
        return np.ones(0, dtype=bool)
    bstarts = np.asarray(block_starts, dtype=np.int64)[blocks]
    references = data[bstarts].view(np.int32).astype(np.int64)
    bw_words = data[bstarts + 1]
    bits = np.stack(
        [(bw_words >> (8 * j)) & 0xFF for j in range(MINIBLOCKS_PER_BLOCK)],
        axis=1,
    ).astype(np.int64)
    # Block short-circuit from the header bounds: the FOR reference is the
    # exact block minimum, and reference + 2**widest - 1 caps the maximum.
    block_hi = references + (np.int64(1) << bits.max(axis=1)) - np.int64(1)
    active = (block_hi >= lo) & (references <= hi)
    decoded = out[: n * BLOCK].reshape(n, BLOCK)

    if bool(active.all()):
        # Nothing skippable: reuse the unfiltered core (and its
        # regular-geometry fast path) to materialize the raw diffs.
        unpack_block_indices(data, block_starts, blocks, add_reference=False, out=out)
    else:
        minis = decoded.reshape(n * MINIBLOCKS_PER_BLOCK, MINIBLOCK)
        mini_words = np.concatenate(
            [np.zeros((n, 1), dtype=np.int64), np.cumsum(bits[:, :-1], axis=1)],
            axis=1,
        )
        mini_offsets = bstarts[:, None] + BLOCK_HEADER_WORDS + mini_words
        flat_bits = bits.reshape(-1)
        flat_offsets = mini_offsets.reshape(-1)
        flat_active = np.repeat(active, MINIBLOCKS_PER_BLOCK)
        minis[np.flatnonzero(~flat_active)] = 0
        for b in np.unique(flat_bits[flat_active]):
            sel = np.flatnonzero(flat_active & (flat_bits == b))
            if b == 0:
                minis[sel] = 0
                continue
            src = flat_offsets[sel][:, None] + np.arange(int(b))
            words = data[src.reshape(-1)]
            vals = bitio.unpack_bits(words, sel.size * MINIBLOCK, int(b))
            minis[sel] = vals.reshape(sel.size, MINIBLOCK)

    # Compare against the shifted thresholds while the values are still
    # reference-relative.  Skipped blocks hold zero diffs, and an inactive
    # block's shifted interval cannot contain 0 (it misses [0, 2**w - 1]
    # entirely), so their mask lands False without special-casing.
    m2 = mask[: n * BLOCK].reshape(n, BLOCK)
    np.greater_equal(decoded, (lo - references)[:, None], out=m2)
    m2 &= decoded <= (hi - references)[:, None]
    decoded += references[:, None]
    return active


class GpuFor(TileCodec):
    """The paper's GPU-FOR scheme (Section 4)."""

    name = "gpu-for"
    block_elements = BLOCK

    def __init__(self, d_blocks: int = 4):
        if d_blocks < 1:
            raise ValueError(f"d_blocks must be >= 1, got {d_blocks}")
        self._d_blocks = d_blocks

    # -- ColumnCodec --------------------------------------------------------

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        padded = _pad_to_blocks(values.astype(np.int64))
        data, block_starts, bits = pack_blocks(padded)
        header = np.array([values.size, BLOCK, MINIBLOCKS_PER_BLOCK], dtype=np.uint32)
        enc = EncodedColumn(
            codec=self.name,
            count=values.size,
            arrays={"header": header, "block_starts": block_starts, "data": data},
            meta={"d_blocks": self._d_blocks, "mean_bits": float(bits.mean()) if bits.size else 0.0},
            dtype=values.dtype,
        )
        self.attach_tile_checksums(enc, padded[: values.size])
        return enc

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        self.validate_for_decode(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        full = unpack_blocks(enc.arrays["data"], enc.arrays["block_starts"], 0, n_blocks)
        vals = full[: enc.count]
        self.verify_decoded_tiles(enc, np.arange(self.num_tiles(enc)), vals)
        return vals.astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        decoded_bytes = enc.count * 4
        starts, lengths = self.tile_segments(enc)
        return [
            CascadePass(
                name="unpack-bits",
                read_bytes=0,
                write_bytes=decoded_bytes,
                compute_ops=int(enc.count * 7),
                read_segments=(starts, lengths),
            ),
            CascadePass(
                name="add-reference",
                read_bytes=decoded_bytes,
                write_bytes=decoded_bytes,
                compute_ops=int(enc.count * 2),
                gathers=(self._num_blocks(enc), 4),
            ),
        ]

    # -- TileCodec ----------------------------------------------------------

    def decode_tile(self, enc: EncodedColumn, tile_idx: int) -> np.ndarray:
        self.check_tile_index(enc, tile_idx)
        self.validate_for_decode(enc)
        d = self.d_blocks(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        first = tile_idx * d
        last = min(first + d, n_blocks)
        vals = unpack_blocks(enc.arrays["data"], enc.arrays["block_starts"], first, last)
        # Trim padding on the final tile.
        end = min((first + d) * BLOCK, enc.count) - first * BLOCK
        vals = vals[:end]
        self.verify_decoded_tiles(enc, np.array([tile_idx]), vals)
        return vals.astype(enc.dtype)

    def decode_tiles(self, enc: EncodedColumn, tile_indices: np.ndarray) -> np.ndarray:
        tiles = self._validate_tile_indices(enc, tile_indices)
        if tiles.size == 0:
            return np.zeros(0, dtype=enc.dtype)
        self.validate_for_decode(enc)
        d = self.d_blocks(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        first = tiles * d
        nb = np.minimum(first + d, n_blocks) - first
        blocks = np.repeat(first, nb) + ragged_arange(nb)
        vals = unpack_block_indices(enc.arrays["data"], enc.arrays["block_starts"], blocks)
        keep = np.minimum((tiles + 1) * d * BLOCK, enc.count) - tiles * d * BLOCK
        vals = trim_tile_chunks(vals, nb * BLOCK, keep)
        self.verify_decoded_tiles(enc, tiles, vals)
        return vals.astype(enc.dtype, copy=False)

    def decode_tiles_into(
        self, enc: EncodedColumn, tile_indices: np.ndarray, out: np.ndarray
    ) -> int:
        tiles = self._validate_tile_indices(enc, tile_indices)
        d = self.d_blocks(enc)
        require_out_buffer(out, tiles.size * d * BLOCK)
        if tiles.size == 0:
            return 0
        self.validate_for_decode(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        first = tiles * d
        nb = np.minimum(first + d, n_blocks) - first
        blocks = np.repeat(first, nb) + ragged_arange(nb)
        unpack_block_indices(
            enc.arrays["data"], enc.arrays["block_starts"], blocks, out=out
        )
        keep = np.minimum((tiles + 1) * d * BLOCK, enc.count) - tiles * d * BLOCK
        written = compact_tile_chunks_inplace(out, nb * BLOCK, keep)
        self.verify_decoded_tiles(enc, tiles, out[:written])
        return written

    def decode_filter_tiles_into(
        self,
        enc: EncodedColumn,
        tile_indices: np.ndarray,
        predicate,
        out: np.ndarray,
        mask: np.ndarray,
    ) -> int:
        interval = predicate_interval(predicate)
        if interval is None:
            return super().decode_filter_tiles_into(
                enc, tile_indices, predicate, out, mask
            )
        tiles = self._validate_tile_indices(enc, tile_indices)
        d = self.d_blocks(enc)
        require_out_buffer(out, tiles.size * d * BLOCK)
        require_mask_buffer(mask, tiles.size * d * BLOCK)
        if tiles.size == 0:
            return 0
        self.validate_for_decode(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        first = tiles * d
        nb = np.minimum(first + d, n_blocks) - first
        blocks = np.repeat(first, nb) + ragged_arange(nb)
        lo, hi = clamp_interval(*interval)
        active = unpack_block_indices_filtered(
            enc.arrays["data"], enc.arrays["block_starts"], blocks, lo, hi, out, mask
        )
        keep = np.minimum((tiles + 1) * d * BLOCK, enc.count) - tiles * d * BLOCK
        written = compact_tile_chunks_inplace(out, nb * BLOCK, keep)
        compact_tile_chunks_inplace(mask, nb * BLOCK, keep)
        if bool(active.all()):
            # No blocks were skipped, so the values are fully
            # materialized and checksum coverage is preserved.
            self.verify_decoded_tiles(enc, tiles, out[:written])
        return written

    def tile_bounds(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        """Zero-decode bounds from the block headers.

        The FOR reference *is* each block's minimum, so the mins are
        exact; the maxs are ``reference + 2**widest_miniblock - 1``, the
        tightest bound the stored bitwidths give without unpacking.
        """
        n_blocks = enc.arrays["block_starts"].size - 1
        if n_blocks == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        references, bits = block_metadata(
            enc.arrays["data"], enc.arrays["block_starts"]
        )
        block_max = references + (np.int64(1) << bits.max(axis=1)) - 1
        edges = np.arange(0, n_blocks, self.d_blocks(enc), dtype=np.int64)
        return (
            np.minimum.reduceat(references, edges),
            np.maximum.reduceat(block_max, edges),
        )

    def tile_segments(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        d = self.d_blocks(enc)
        starts_arr = enc.arrays["block_starts"].astype(np.int64)
        n_blocks = starts_arr.size - 1
        tile_first = np.arange(0, n_blocks, d, dtype=np.int64)
        tile_last = np.minimum(tile_first + d, n_blocks)
        data_start = starts_arr[tile_first] * 4
        data_len = (starts_arr[tile_last] - starts_arr[tile_first]) * 4
        # Each tile also reads D+1 block_starts entries; model the
        # block_starts array as living after the data array so segments
        # do not alias.
        base = int(starts_arr[-1]) * 4
        bs_start = base + tile_first * 4
        bs_len = (tile_last - tile_first + 1) * 4
        return (
            np.concatenate([data_start, bs_start]),
            np.concatenate([data_len, bs_len]),
        )

    def kernel_resources(self, enc: EncodedColumn) -> KernelResources:
        d = self.d_blocks(enc)
        return KernelResources(
            registers_per_thread=12 + 2 * d,
            shared_mem_per_block=d * BLOCK * 4 + 256,
            compute_ops_per_element=7.0,
            tile_prologue_ops=5500.0,
            shared_bytes_per_element=8.0,
        )

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _num_blocks(enc: EncodedColumn) -> int:
        return enc.arrays["block_starts"].size - 1
