"""Compression formats: the paper's schemes and every baseline.

Bit-exact NumPy implementations of GPU-FOR, GPU-DFOR, GPU-RFOR (paper
Sections 4-6), the vertical-layout ablation GPU-SIMDBP128 (Section 4.3),
GPU-BP (Mallia et al.), and the classic lightweight baselines NSF, NSV,
RLE, Delta, and Dict used throughout the evaluation.
"""

from repro.formats.base import (
    CascadePass,
    ColumnCodec,
    EncodedColumn,
    KernelResources,
    TileCodec,
    checksums_enabled,
    corruption_guard,
    crc32_values,
    set_checksums,
    set_verify_mode,
    verify_mode,
)
from repro.formats.container import (
    checked_decode,
    encode_with_checksums,
    load_container,
    save_container,
)
from repro.formats.decimal import (
    EncodedDecimalColumn,
    decode_decimals,
    encode_decimals,
)
from repro.formats.delta import Delta
from repro.formats.dictionary import Dict
from repro.formats.gpubp import GpuBp
from repro.formats.gpudfor import GpuDFor
from repro.formats.gpufor import GpuFor
from repro.formats.gpurfor import GpuRFor
from repro.formats.nsf import Nsf
from repro.formats.nsv import Nsv
from repro.formats.io import load_encoded, save_encoded
from repro.formats.kernels import (
    BACKEND_NAMES,
    backend_name,
    capability_report,
    get_backend,
    set_backend,
)
from repro.formats.registry import codec_names, get_codec, is_tile_codec
from repro.formats.strings import (
    EncodedStringColumn,
    decode_strings,
    encode_strings,
)
from repro.formats.pfor import Pfor
from repro.formats.rle import Rle
from repro.formats.simple8b import Simple8b
from repro.formats.validate import (
    CorruptColumnError,
    CorruptTileError,
    validate_decode_safety,
    validate_encoded,
)
from repro.formats.vbyte import GpuVByte
from repro.formats.simdbp128 import GpuSimdBp128

__all__ = [
    "BACKEND_NAMES",
    "CascadePass",
    "ColumnCodec",
    "backend_name",
    "capability_report",
    "get_backend",
    "set_backend",
    "Delta",
    "Dict",
    "EncodedColumn",
    "EncodedDecimalColumn",
    "EncodedStringColumn",
    "decode_decimals",
    "decode_strings",
    "encode_decimals",
    "encode_strings",
    "load_encoded",
    "save_encoded",
    "checked_decode",
    "checksums_enabled",
    "corruption_guard",
    "crc32_values",
    "encode_with_checksums",
    "load_container",
    "save_container",
    "set_checksums",
    "set_verify_mode",
    "validate_decode_safety",
    "verify_mode",
    "CorruptColumnError",
    "CorruptTileError",
    "GpuBp",
    "GpuDFor",
    "GpuVByte",
    "Pfor",
    "Simple8b",
    "validate_encoded",
    "GpuFor",
    "GpuRFor",
    "GpuSimdBp128",
    "KernelResources",
    "Nsf",
    "Nsv",
    "Rle",
    "TileCodec",
    "codec_names",
    "get_codec",
    "is_tile_codec",
]
