"""Dictionary encoding.

Replaces each value with its index in a sorted dictionary of the distinct
values.  Effective for low-cardinality columns, and the standard front-end
for string columns in GPU analytics (the paper dictionary-encodes all SSB
strings before loading; OmniSci's only compression is exactly this).

Codes are stored byte-aligned (1/2/4 bytes, like NSF) because the planner
baseline that uses DICT does not support bit-packing.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import CascadePass, ColumnCodec, EncodedColumn
from repro.formats.nsf import _WIDTH_DTYPES


class Dict(ColumnCodec):
    """Sorted-dictionary encoding with byte-aligned codes."""

    name = "dict"

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        dictionary, codes = np.unique(values.astype(np.int64), return_inverse=True)
        if dictionary.size >= 2**32:
            raise ValueError("too many distinct values to dictionary-encode")
        if dictionary.size < 2**8:
            width = 1
        elif dictionary.size < 2**16:
            width = 2
        else:
            width = 4
        # The dictionary itself must hold the raw values losslessly:
        # int32 when they fit, int64 for wider columns (an int32-only
        # dictionary silently wraps values at the 2**31 boundary).
        if dictionary.size and not (
            -(2**31) <= int(dictionary[0]) and int(dictionary[-1]) < 2**31
        ):
            dict_dtype = np.int64
        else:
            dict_dtype = np.int32
        return EncodedColumn(
            codec=self.name,
            count=values.size,
            arrays={
                "dictionary": dictionary.astype(dict_dtype),
                "codes": codes.astype(_WIDTH_DTYPES[width]),
            },
            meta={"width": width, "cardinality": int(dictionary.size)},
            dtype=values.dtype,
        )

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        return enc.arrays["dictionary"][enc.arrays["codes"]].astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        return [
            CascadePass(
                name="dict-lookup",
                read_bytes=enc.arrays["codes"].nbytes,
                write_bytes=enc.count * 4,
                compute_ops=enc.count,
                # Dictionary lookups are gathers, but small dictionaries
                # stay L2/L1 resident; charge one pull of the dictionary.
                gathers=(enc.arrays["dictionary"].size, 4),
            )
        ]
