"""GPU-SIMDBP128: vertical-layout bit-packing (the Section 4.3 ablation).

Translating SIMD-BP128's vertical (striped) layout to the GPU maps each of
a warp's 32 threads to one lane; for every thread's lane to end on a
32-bit word boundary each lane must hold 32 values, so with a 128-thread
block the block size balloons to 32 * 128 = **4096 values** encoded with a
single bitwidth (one skewed value inflates the whole block — the
compression downside the paper notes).

Decoding needs 32 packed words plus 32 outputs live per thread, far past
the register budget: occupancy collapses and registers spill, which is
why GPU-SIMDBP128 decodes 2.7x slower than GPU-FOR and runs SSB q1.1 14x
slower.  The kernel resources below encode exactly that pressure.
"""

from __future__ import annotations

import numpy as np

from repro.formats import bitio
from repro.formats.base import (
    CascadePass,
    EncodedColumn,
    KernelResources,
    TileCodec,
    clamp_interval,
    compact_tile_chunks_inplace,
    predicate_interval,
    require_mask_buffer,
    require_out_buffer,
    trim_tile_chunks,
)
from repro.formats.gpufor import bit_length

#: Values per vertical block: 32 lanes x 128 values... laid out for a
#: 128-thread block where each thread owns a 32-value lane.
VBLOCK = 4096
#: Vertical lanes (warp width).
LANES = 32
#: Words of per-block metadata (reference + bitwidth).
_HEADER_WORDS = 2


class GpuSimdBp128(TileCodec):
    """Vertical-layout FOR + bit-packing with 4096-value blocks."""

    name = "gpu-simdbp128"
    block_elements = VBLOCK

    def __init__(self, d_blocks: int = 1):
        if d_blocks != 1:
            raise ValueError("GPU-SIMDBP128 processes one 4096-value block per tile")
        self._d_blocks = 1

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        v = values.astype(np.int64)
        n = v.size
        pad = (-n) % VBLOCK
        if pad and n:
            v = np.concatenate([v, np.full(pad, v[-1], dtype=np.int64)])
        n_blocks = v.size // VBLOCK

        blocks = v.reshape(n_blocks, VBLOCK) if n_blocks else v.reshape(0, VBLOCK)
        references = blocks.min(axis=1) if n_blocks else np.zeros(0, np.int64)
        if n_blocks and not (
            -(2**31) <= int(references.min()) <= int(references.max()) < 2**31
        ):
            # One 32-bit reference word per block; wider would wrap on astype.
            raise ValueError("block references do not fit in int32")
        diffs = blocks - references[:, None] if n_blocks else blocks
        if n_blocks and int(diffs.max()) >= 2**32:
            raise ValueError("per-block value range exceeds 32 bits; cannot bit-pack")
        bits = bit_length(diffs.max(axis=1)) if n_blocks else np.zeros(0, np.int64)
        bits = bits.astype(np.int64)

        block_words = _HEADER_WORDS + bits * VBLOCK // 32
        block_starts = np.zeros(n_blocks + 1, dtype=np.int64)
        np.cumsum(block_words, out=block_starts[1:])
        data = np.zeros(int(block_starts[-1]), dtype=np.uint32)
        data[block_starts[:-1]] = references.astype(np.int32).view(np.uint32)
        data[block_starts[:-1] + 1] = bits.astype(np.uint32)
        for i in range(n_blocks):
            b = int(bits[i])
            if b == 0:
                continue
            packed = bitio.pack_vertical(diffs[i].astype(np.uint64), b, LANES)
            start = int(block_starts[i]) + _HEADER_WORDS
            data[start : start + packed.size] = packed

        enc = EncodedColumn(
            codec=self.name,
            count=n,
            arrays={
                "header": np.array([n, VBLOCK], dtype=np.uint32),
                "block_starts": block_starts.astype(np.uint32),
                "data": data,
            },
            meta={"d_blocks": 1},
            dtype=values.dtype,
        )
        self.attach_tile_checksums(enc, v[:n])
        return enc

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        return self.decode_range(enc, 0, self.num_tiles(enc))

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        starts, lengths = self.tile_segments(enc)
        return [
            CascadePass(
                name="unpack-vertical",
                read_bytes=0,
                write_bytes=enc.count * 4,
                compute_ops=enc.count * 9,
                read_segments=(starts, lengths),
            ),
            CascadePass(
                name="add-reference",
                read_bytes=enc.count * 4,
                write_bytes=enc.count * 4,
                compute_ops=enc.count * 2,
                gathers=(enc.arrays["block_starts"].size - 1, 4),
            ),
        ]

    # -- TileCodec ----------------------------------------------------------

    def decode_tile(self, enc: EncodedColumn, tile_idx: int) -> np.ndarray:
        self.check_tile_index(enc, tile_idx)
        self.validate_for_decode(enc)
        starts = enc.arrays["block_starts"].astype(np.int64)
        data = enc.arrays["data"]
        start = int(starts[tile_idx])
        reference = int(np.int32(data[start]))
        b = int(data[start + 1])
        if b:
            words = data[start + _HEADER_WORDS : int(starts[tile_idx + 1])]
            vals = bitio.unpack_vertical(words, VBLOCK, b, LANES).astype(np.int64)
        else:
            vals = np.zeros(VBLOCK, dtype=np.int64)
        vals += reference
        end = min((tile_idx + 1) * VBLOCK, enc.count) - tile_idx * VBLOCK
        vals = vals[:end]
        self.verify_decoded_tiles(enc, np.array([tile_idx]), vals)
        return vals.astype(enc.dtype)

    def decode_tiles(self, enc: EncodedColumn, tile_indices: np.ndarray) -> np.ndarray:
        tiles = self._validate_tile_indices(enc, tile_indices)
        if tiles.size == 0:
            return np.zeros(0, dtype=enc.dtype)
        self.validate_for_decode(enc)
        data = enc.arrays["data"]
        bstarts = enc.arrays["block_starts"].astype(np.int64)[tiles]
        references = data[bstarts].view(np.int32).astype(np.int64)
        bits = data[bstarts + 1].astype(np.int64)
        per_lane = VBLOCK // LANES

        out = np.empty((tiles.size, VBLOCK), dtype=np.int64)
        for b in np.unique(bits):
            sel = np.flatnonzero(bits == b)
            if b == 0:
                out[sel] = 0
                continue
            words_per_block = int(b) * VBLOCK // 32
            words_per_lane = words_per_block // LANES
            src = (bstarts[sel] + _HEADER_WORDS)[:, None] + np.arange(words_per_block)
            words = data[src.reshape(-1)].reshape(sel.size, words_per_lane, LANES)
            # De-interleave the vertical layout: lane l of word-group g
            # sits at word g*LANES + l.  Each lane is word-aligned, so
            # the per-block lane streams concatenate into one valid
            # horizontal stream unpacked in a single pass.
            lane_stream = np.ascontiguousarray(words.transpose(0, 2, 1)).reshape(-1)
            vals = bitio.unpack_bits(lane_stream, sel.size * VBLOCK, int(b))
            # Value i of a block lives at (lane i % LANES, slot i // LANES).
            out[sel] = (
                vals.reshape(sel.size, LANES, per_lane)
                .transpose(0, 2, 1)
                .reshape(sel.size, VBLOCK)
                .astype(np.int64)
            )
        out += references[:, None]
        keep = np.minimum((tiles + 1) * VBLOCK, enc.count) - tiles * VBLOCK
        vals = trim_tile_chunks(
            out.reshape(-1), np.full(tiles.size, VBLOCK, dtype=np.int64), keep
        )
        self.verify_decoded_tiles(enc, tiles, vals)
        return vals.astype(enc.dtype, copy=False)

    def decode_tiles_into(
        self, enc: EncodedColumn, tile_indices: np.ndarray, out: np.ndarray
    ) -> int:
        tiles = self._validate_tile_indices(enc, tile_indices)
        require_out_buffer(out, tiles.size * VBLOCK)
        if tiles.size == 0:
            return 0
        self.validate_for_decode(enc)
        data = enc.arrays["data"]
        bstarts = enc.arrays["block_starts"].astype(np.int64)[tiles]
        references = data[bstarts].view(np.int32).astype(np.int64)
        bits = data[bstarts + 1].astype(np.int64)
        per_lane = VBLOCK // LANES

        decoded = out[: tiles.size * VBLOCK].reshape(tiles.size, VBLOCK)
        for b in np.unique(bits):
            sel = np.flatnonzero(bits == b)
            if b == 0:
                decoded[sel] = 0
                continue
            words_per_block = int(b) * VBLOCK // 32
            words_per_lane = words_per_block // LANES
            src = (bstarts[sel] + _HEADER_WORDS)[:, None] + np.arange(words_per_block)
            words = data[src.reshape(-1)].reshape(sel.size, words_per_lane, LANES)
            lane_stream = np.ascontiguousarray(words.transpose(0, 2, 1)).reshape(-1)
            vals = bitio.unpack_bits(lane_stream, sel.size * VBLOCK, int(b))
            decoded[sel] = (
                vals.reshape(sel.size, LANES, per_lane)
                .transpose(0, 2, 1)
                .reshape(sel.size, VBLOCK)
            )
        decoded += references[:, None]
        keep = np.minimum((tiles + 1) * VBLOCK, enc.count) - tiles * VBLOCK
        written = compact_tile_chunks_inplace(
            out, np.full(tiles.size, VBLOCK, dtype=np.int64), keep
        )
        self.verify_decoded_tiles(enc, tiles, out[:written])
        return written

    def decode_filter_tiles_into(
        self,
        enc: EncodedColumn,
        tile_indices: np.ndarray,
        predicate,
        out: np.ndarray,
        mask: np.ndarray,
    ) -> int:
        """Fused decode+filter: shifted-domain compare at 4096 granularity.

        Like GPU-FOR's fused core but per vertical block: the interval is
        tested against ``lo - reference`` / ``hi - reference`` before the
        reference add, and blocks whose ``[reference, reference +
        2**bits - 1]`` header bound misses the interval skip the whole
        de-interleave+unpack (zero-filled values, mask False).
        """
        interval = predicate_interval(predicate)
        if interval is None:
            return super().decode_filter_tiles_into(
                enc, tile_indices, predicate, out, mask
            )
        tiles = self._validate_tile_indices(enc, tile_indices)
        require_out_buffer(out, tiles.size * VBLOCK)
        require_mask_buffer(mask, tiles.size * VBLOCK)
        if tiles.size == 0:
            return 0
        self.validate_for_decode(enc)
        data = enc.arrays["data"]
        bstarts = enc.arrays["block_starts"].astype(np.int64)[tiles]
        references = data[bstarts].view(np.int32).astype(np.int64)
        bits = data[bstarts + 1].astype(np.int64)
        per_lane = VBLOCK // LANES
        lo, hi = clamp_interval(*interval)
        block_hi = references + (np.int64(1) << bits) - np.int64(1)
        active = (block_hi >= lo) & (references <= hi)

        decoded = out[: tiles.size * VBLOCK].reshape(tiles.size, VBLOCK)
        decoded[np.flatnonzero(~active)] = 0
        for b in np.unique(bits[active]):
            sel = np.flatnonzero(active & (bits == b))
            if b == 0:
                decoded[sel] = 0
                continue
            words_per_block = int(b) * VBLOCK // 32
            words_per_lane = words_per_block // LANES
            src = (bstarts[sel] + _HEADER_WORDS)[:, None] + np.arange(words_per_block)
            words = data[src.reshape(-1)].reshape(sel.size, words_per_lane, LANES)
            lane_stream = np.ascontiguousarray(words.transpose(0, 2, 1)).reshape(-1)
            vals = bitio.unpack_bits(lane_stream, sel.size * VBLOCK, int(b))
            decoded[sel] = (
                vals.reshape(sel.size, LANES, per_lane)
                .transpose(0, 2, 1)
                .reshape(sel.size, VBLOCK)
            )
        # Shifted-domain compare: skipped blocks hold zero diffs, and an
        # inactive block's shifted interval cannot contain 0, so their
        # mask lands False without special-casing.
        m2 = mask[: tiles.size * VBLOCK].reshape(tiles.size, VBLOCK)
        np.greater_equal(decoded, (lo - references)[:, None], out=m2)
        m2 &= decoded <= (hi - references)[:, None]
        decoded += references[:, None]
        chunk = np.full(tiles.size, VBLOCK, dtype=np.int64)
        keep = np.minimum((tiles + 1) * VBLOCK, enc.count) - tiles * VBLOCK
        written = compact_tile_chunks_inplace(out, chunk, keep)
        compact_tile_chunks_inplace(mask, chunk, keep)
        if bool(active.all()):
            self.verify_decoded_tiles(enc, tiles, out[:written])
        return written

    def tile_bounds(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        """Zero-decode bounds from each block's reference + bitwidth pair.

        The single per-block bitwidth makes this the loosest bound of the
        GPU-* family (one skewed value widens the whole 4096-value
        block), mirroring its compression downside.
        """
        starts = enc.arrays["block_starts"].astype(np.int64)
        n_blocks = starts.size - 1
        if n_blocks == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        data = enc.arrays["data"]
        references = data[starts[:-1]].view(np.int32).astype(np.int64)
        bits = data[starts[:-1] + 1].astype(np.int64)
        return references, references + (np.int64(1) << bits) - 1

    def tile_segments(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        starts_arr = enc.arrays["block_starts"].astype(np.int64)
        n_blocks = starts_arr.size - 1
        first = np.arange(n_blocks, dtype=np.int64)
        data_start = starts_arr[first] * 4
        data_len = (starts_arr[first + 1] - starts_arr[first]) * 4
        base = int(starts_arr[-1]) * 4
        bs_start = base + first * 4
        bs_len = np.full(n_blocks, 8, dtype=np.int64)
        return (
            np.concatenate([data_start, bs_start]),
            np.concatenate([data_len, bs_len]),
        )

    def kernel_resources(self, enc: EncodedColumn) -> KernelResources:
        # 32 packed words + decode state per thread: roughly 56
        # registers over the baseline decoder state; far beyond the
        # 64-register cap, so most of it spills (Section 4.3).
        return KernelResources(
            registers_per_thread=12 + 56,
            shared_mem_per_block=VBLOCK * 4 + 256,
            compute_ops_per_element=9.0,
            tile_prologue_ops=5500.0,
            shared_bytes_per_element=8.0,
        )
