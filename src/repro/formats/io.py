"""Serialization of encoded columns to/from ``.npz`` files.

A column store needs to persist its compressed columns; the format here
is a plain NumPy archive containing the encoded column's physical arrays
plus a small JSON metadata blob (codec name, count, dtype, scheme
parameters), so the on-disk bytes are exactly the simulated device bytes
plus O(1) metadata.
"""

from __future__ import annotations

import io
import json
import os

import numpy as np

from repro.formats.base import EncodedColumn

#: Archive key holding the JSON metadata.
_META_KEY = "__repro_meta__"
#: Prefix for array-valued meta entries (e.g. encode-time zone maps),
#: which cannot ride in the JSON blob and are stored as archive members.
_META_ARRAY_PREFIX = "__repro_meta_arr__/"
#: Format version written into every file.
FORMAT_VERSION = 1


def save_encoded(enc: EncodedColumn, path: str | os.PathLike | io.IOBase) -> None:
    """Write an encoded column to ``path`` (``.npz``)."""
    json_meta = {}
    array_meta = {}
    for key, value in enc.meta.items():
        if isinstance(value, np.ndarray):
            array_meta[_META_ARRAY_PREFIX + key] = value
        else:
            json_meta[key] = value
    meta = {
        "version": FORMAT_VERSION,
        "codec": enc.codec,
        "count": enc.count,
        "dtype": np.dtype(enc.dtype).str,
        "meta": json_meta,
    }
    payload = {name: arr for name, arr in enc.arrays.items()}
    for name in (_META_KEY, *array_meta):
        if name in payload:
            raise ValueError(f"array name {name!r} is reserved")
    payload.update(array_meta)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)


def load_encoded(path: str | os.PathLike | io.IOBase) -> EncodedColumn:
    """Read an encoded column written by :func:`save_encoded`."""
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError("not a repro encoded-column file (missing metadata)")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported format version {meta.get('version')!r}"
            )
        arrays = {}
        restored_meta = dict(meta["meta"])
        for name in archive.files:
            if name == _META_KEY:
                continue
            if name.startswith(_META_ARRAY_PREFIX):
                restored_meta[name[len(_META_ARRAY_PREFIX):]] = archive[name]
            else:
                arrays[name] = archive[name]
    return EncodedColumn(
        codec=meta["codec"],
        count=int(meta["count"]),
        arrays=arrays,
        meta=restored_meta,
        dtype=np.dtype(meta["dtype"]),
    )
