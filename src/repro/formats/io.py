"""Serialization of encoded columns to/from ``.npz`` files.

A column store needs to persist its compressed columns; the format here
is a plain NumPy archive containing the encoded column's physical arrays
plus a small JSON metadata blob (codec name, count, dtype, scheme
parameters), so the on-disk bytes are exactly the simulated device bytes
plus O(1) metadata.
"""

from __future__ import annotations

import io
import json
import os
import zlib

import numpy as np

from repro.formats.base import EncodedColumn

#: Archive key holding the JSON metadata.
_META_KEY = "__repro_meta__"
#: Prefix for array-valued meta entries (e.g. encode-time zone maps),
#: which cannot ride in the JSON blob and are stored as archive members.
_META_ARRAY_PREFIX = "__repro_meta_arr__/"
#: Format version written into every file.  Version 2 adds per-array
#: CRC32 digests to the metadata blob (verified at load) and stops
#: persisting runtime-only meta keys; version-1 files still load.
FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def save_encoded(enc: EncodedColumn, path: str | os.PathLike | io.IOBase) -> None:
    """Write an encoded column to ``path`` (``.npz``).

    Metadata keys starting with ``_`` are runtime-only state (the lazy
    verification bitmap, the validation mark) and are never serialized —
    a reloaded column always re-validates and re-verifies from scratch.
    """
    json_meta = {}
    array_meta = {}
    for key, value in enc.meta.items():
        if key.startswith("_"):
            continue
        if isinstance(value, np.ndarray):
            array_meta[_META_ARRAY_PREFIX + key] = value
        else:
            json_meta[key] = value
    array_crcs = {
        name: zlib.crc32(np.ascontiguousarray(arr))
        for name, arr in (*enc.arrays.items(), *array_meta.items())
    }
    meta = {
        "version": FORMAT_VERSION,
        "codec": enc.codec,
        "count": enc.count,
        "dtype": np.dtype(enc.dtype).str,
        "meta": json_meta,
        "array_crcs": array_crcs,
    }
    payload = {name: arr for name, arr in enc.arrays.items()}
    for name in (_META_KEY, *array_meta):
        if name in payload:
            raise ValueError(f"array name {name!r} is reserved")
    payload.update(array_meta)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)


def load_encoded(path: str | os.PathLike | io.IOBase) -> EncodedColumn:
    """Read an encoded column written by :func:`save_encoded`."""
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError("not a repro encoded-column file (missing metadata)")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        if meta.get("version") not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported format version {meta.get('version')!r}"
            )
        array_crcs = meta.get("array_crcs", {})
        column = str(meta.get("meta", {}).get("column", "<unnamed>"))
        arrays = {}
        restored_meta = dict(meta["meta"])
        for name in archive.files:
            if name == _META_KEY:
                continue
            arr = archive[name]
            if name in array_crcs and zlib.crc32(np.ascontiguousarray(arr)) != int(
                array_crcs[name]
            ):
                from repro.formats.validate import CorruptTileError

                short = name[len(_META_ARRAY_PREFIX):] if name.startswith(
                    _META_ARRAY_PREFIX
                ) else name
                raise CorruptTileError(
                    column, -1, f"stored array {short!r} checksum mismatch (CRC32)"
                )
            if name.startswith(_META_ARRAY_PREFIX):
                restored_meta[name[len(_META_ARRAY_PREFIX):]] = arr
            else:
                arrays[name] = arr
    return EncodedColumn(
        codec=meta["codec"],
        count=int(meta["count"]),
        arrays=arrays,
        meta=restored_meta,
        dtype=np.dtype(meta["dtype"]),
    )
