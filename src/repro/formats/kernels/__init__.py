"""Pluggable bit-packing kernel backends.

:mod:`repro.formats.bitio` validates arguments and then dispatches the
actual pack/unpack work to one of the backends registered here:

* ``numpy`` — the original phase-loop implementation, kept verbatim as
  the bit-identity oracle (:mod:`repro.formats.kernels.numpy_ref`).
* ``shift-table`` — the default: per-bitwidth phase plans for all 32
  bitwidths are precomputed once at import, and byte-aligned widths
  (1/2/4/8/16/32 on little-endian hosts) take dtype-view fast paths
  that skip the 64-bit window machinery entirely
  (:mod:`repro.formats.kernels.shift_table`).
* ``numba`` — an optional JIT backend compiled on first use; selecting
  it without numba installed falls back to ``shift-table`` with a
  warning (:mod:`repro.formats.kernels.numba_jit`).

Selection: the ``REPRO_KERNEL_BACKEND`` environment variable at import,
:func:`set_backend` at runtime, or ``CrystalEngine(kernel_backend=...)``
/ ``QueryServer(kernel_backend=...)`` at the engine level.  Every
backend is bit-identical to the oracle by contract; the test suite
enforces it across the full bitwidth matrix.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

#: Canonical backend names, in oracle-first order.
BACKEND_NAMES = ("numpy", "shift-table", "numba")

_DEFAULT_BACKEND = "shift-table"


class KernelBackend:
    """Interface of one pack/unpack implementation.

    Inputs are pre-validated by :mod:`repro.formats.bitio`: ``values``
    arrives as a contiguous uint64 array that fits ``bits``; ``words``
    arrives as a contiguous uint32 stream of at least
    ``words_needed(count, bits)`` words; ``bits`` is in ``[1, 32]`` and
    ``count``/``n`` are positive (the 0-bit and 0-count cases never
    reach a backend).
    """

    name = "abstract"

    def pack(self, values: np.ndarray, bits: int) -> np.ndarray:
        raise NotImplementedError

    def unpack(self, words: np.ndarray, count: int, bits: int) -> np.ndarray:
        raise NotImplementedError

    def unpack_into(
        self, words: np.ndarray, count: int, bits: int, out: np.ndarray
    ) -> None:
        """Unpack directly into ``out[:count]`` (any integer dtype).

        The allocation-free sibling of :meth:`unpack`: block codecs
        decode into wide (int64) scratch buffers, and writing them
        during extraction skips the intermediate uint32 array plus the
        widening copy that otherwise dominate at byte-aligned widths.
        """
        out[:count] = self.unpack(words, count, bits)

    def unpack_strided(
        self,
        data: np.ndarray,
        first_word: int,
        n_blocks: int,
        payload_words: int,
        stride_words: int,
        count_per_block: int,
        bits: int,
    ) -> np.ndarray:
        """Unpack ``n_blocks`` equal word-aligned payloads at a fixed stride.

        The regular-geometry path of the block codecs: when every
        selected block shares one bitwidth, payload ``i`` occupies words
        ``[first_word + i*stride_words, ... + payload_words)`` of
        ``data`` (the gap being the per-block header), and the whole
        selection unpacks as one contiguous stream — replacing the
        per-block fancy-indexed gather that dominates decode profiles.
        ``count_per_block * bits`` must be a multiple of 32 (true for
        every block geometry in the repo), so payloads concatenate
        without bit slack.
        """
        if n_blocks <= 0:
            return np.zeros(0, dtype=np.uint32)
        stream = _strided_stream(
            data, first_word, n_blocks, payload_words, stride_words
        )
        return self.unpack(stream, n_blocks * count_per_block, bits)

    def unpack_strided_into(
        self,
        data: np.ndarray,
        first_word: int,
        n_blocks: int,
        payload_words: int,
        stride_words: int,
        count_per_block: int,
        bits: int,
        out: np.ndarray,
    ) -> None:
        """:meth:`unpack_strided` writing straight into ``out``."""
        if n_blocks <= 0:
            return
        stream = _strided_stream(
            data, first_word, n_blocks, payload_words, stride_words
        )
        self.unpack_into(stream, n_blocks * count_per_block, bits, out)


def _strided_stream(
    data: np.ndarray,
    first_word: int,
    n_blocks: int,
    payload_words: int,
    stride_words: int,
) -> np.ndarray:
    """Concatenate equal-stride payloads into one contiguous word stream."""
    if stride_words == payload_words:
        return data[first_word : first_word + n_blocks * payload_words]
    window = data[first_word:]
    step = window.strides[0]
    view = np.lib.stride_tricks.as_strided(
        window,
        shape=(n_blocks, payload_words),
        strides=(step * stride_words, step),
    )
    return np.ascontiguousarray(view).reshape(-1)


def _make_numpy() -> KernelBackend:
    from repro.formats.kernels.numpy_ref import NumpyBackend

    return NumpyBackend()


def _make_shift_table() -> KernelBackend:
    from repro.formats.kernels.shift_table import ShiftTableBackend

    return ShiftTableBackend()


def _make_numba() -> KernelBackend:
    from repro.formats.kernels import numba_jit

    if not numba_jit.AVAILABLE:
        raise ModuleNotFoundError(numba_jit.UNAVAILABLE_REASON)
    return numba_jit.NumbaBackend()


_FACTORIES = {
    "numpy": _make_numpy,
    "shift-table": _make_shift_table,
    "numba": _make_numba,
}

#: Spelling aliases accepted from the environment / engine kwargs.
_ALIASES = {"shift_table": "shift-table", "shifttable": "shift-table", "ref": "numpy"}

_active: KernelBackend | None = None
_fallback_reason: str | None = None


def normalize_backend_name(name: str) -> str:
    """Resolve aliases; raises ``ValueError`` for unknown backends."""
    canon = _ALIASES.get(name.strip().lower(), name.strip().lower())
    if canon not in _FACTORIES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return canon


def set_backend(name: str) -> KernelBackend:
    """Activate a backend by name and return it.

    Selecting ``numba`` when numba is not importable falls back to
    ``shift-table`` with a warning instead of failing — backend choice
    is a tuning knob, not a correctness requirement.
    """
    global _active, _fallback_reason
    canon = normalize_backend_name(name)
    try:
        backend = _FACTORIES[canon]()
        _fallback_reason = None
    except ModuleNotFoundError as exc:
        _fallback_reason = f"{canon} unavailable ({exc}); using {_DEFAULT_BACKEND}"
        warnings.warn(_fallback_reason, RuntimeWarning, stacklevel=2)
        backend = _FACTORIES[_DEFAULT_BACKEND]()
    _active = backend
    return backend


def get_backend() -> KernelBackend:
    """The active backend (initialising from the environment on first use)."""
    global _active
    if _active is None:
        requested = os.environ.get("REPRO_KERNEL_BACKEND", _DEFAULT_BACKEND)
        try:
            normalize_backend_name(requested)
        except ValueError as exc:
            warnings.warn(f"REPRO_KERNEL_BACKEND: {exc}", RuntimeWarning)
            requested = _DEFAULT_BACKEND
        set_backend(requested)
    return _active


def backend_name() -> str:
    """Name of the active backend (resolving the environment default)."""
    return get_backend().name


def capability_report() -> dict:
    """What is available, what is active, and why any fallback happened."""
    backends: dict[str, dict] = {}
    for name in BACKEND_NAMES:
        if name == "numba":
            from repro.formats.kernels import numba_jit

            backends[name] = {
                "available": numba_jit.AVAILABLE,
                "reason": numba_jit.UNAVAILABLE_REASON,
            }
        else:
            backends[name] = {"available": True, "reason": None}
    return {
        "active": backend_name(),
        "fallback_reason": _fallback_reason,
        "backends": backends,
    }
