"""Shift-table backend: precompiled phase plans plus aligned fast paths.

Two ideas over the reference backend:

* **Precompiled plans.**  The phase decomposition of a bitwidth —
  period ``P = 32/gcd(b, 32)``, stride ``S = b/gcd(b, 32)``, and the
  per-phase ``(word_offset, shift)`` pairs — depends only on ``b``, so
  all 32 plans are built once at import instead of redoing the ``gcd``
  and offset arithmetic on every call.  Small batches reuse cached
  position/shift gather tables the same way.

* **Byte-aligned fast paths.**  Widths 8/16/32 are plain dtype
  reinterpretations of the stream (little-endian hosts), and widths
  1/2/4 split bytes with a handful of uint8 shifts — no 64-bit window
  construction, no per-phase strided slicing.  Measured 5–35× faster
  than the reference unpack at 4M values, bit-identical by the oracle
  matrix in ``tests/test_kernels.py``.
"""

from __future__ import annotations

import numpy as np

from repro.formats.kernels import KernelBackend

_WORD_BITS = 32
_LITTLE_ENDIAN = bool(np.little_endian)
#: Small-batch threshold below which one fancy gather beats phase slicing.
_GATHER_MAX = 4096


def _words_needed(count: int, bits: int) -> int:
    return -(-count * bits // _WORD_BITS)


class _Plan:
    """The phase decomposition of one bitwidth, fixed at import."""

    __slots__ = ("bits", "period", "stride", "word0", "shift", "mask")

    def __init__(self, bits: int):
        g = int(np.gcd(bits, _WORD_BITS))
        self.bits = bits
        self.period = _WORD_BITS // g
        self.stride = bits // g
        self.word0 = tuple((p * bits) >> 5 for p in range(self.period))
        self.shift = tuple(np.uint64((p * bits) & 31) for p in range(self.period))
        self.mask = np.uint32((1 << bits) - 1)


_PLANS = {bits: _Plan(bits) for bits in range(1, _WORD_BITS + 1)}

#: Lazy per-bitwidth gather tables for the small-batch path:
#: (window index, shift) for the first _GATHER_MAX values.
_GATHER_TABLES: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _gather_table(bits: int) -> tuple[np.ndarray, np.ndarray]:
    table = _GATHER_TABLES.get(bits)
    if table is None:
        pos = np.arange(_GATHER_MAX, dtype=np.int64) * bits
        table = (pos >> 5, (pos & 31).astype(np.uint64))
        _GATHER_TABLES[bits] = table
    return table


class ShiftTableBackend(KernelBackend):
    """Plan-driven pack/unpack with dtype-view fast paths."""

    name = "shift-table"

    # -- unpack ------------------------------------------------------------

    def unpack(self, words: np.ndarray, count: int, bits: int) -> np.ndarray:
        if _LITTLE_ENDIAN:
            if bits == 32:
                return words[:count].copy()
            if bits == 16:
                return words.view(np.uint16)[:count].astype(np.uint32)
            if bits == 8:
                return words.view(np.uint8)[:count].astype(np.uint32)
            if bits == 4:
                half = (count + 1) // 2
                stream = words.view(np.uint8)[:half]
                out = np.empty(2 * half, dtype=np.uint8)
                out[0::2] = stream & np.uint8(0xF)
                out[1::2] = stream >> np.uint8(4)
                return out[:count].astype(np.uint32)
            if bits in (1, 2):
                per = 8 // bits  # values per byte
                nbytes = -(-count // per)
                stream = words.view(np.uint8)[:nbytes]
                mask8 = np.uint8((1 << bits) - 1)
                out = np.empty(per * nbytes, dtype=np.uint8)
                for s in range(per):
                    out[s::per] = (stream >> np.uint8(s * bits)) & mask8
                return out[:count].astype(np.uint32)
        plan = _PLANS[bits]
        needed = _words_needed(count, bits)
        w = np.empty(needed + 1, dtype=np.uint32)
        w[:needed] = words[:needed]
        w[needed] = 0  # high-word sentinel for the final value
        windows = np.ndarray(
            shape=(needed,), dtype=np.uint64, buffer=w.data, strides=(4,)
        )
        if count < _GATHER_MAX:
            win_idx, shift = _gather_table(bits)
            return (
                windows[win_idx[:count]] >> shift[:count]
            ).astype(np.uint32) & plan.mask
        out = np.empty(count, dtype=np.uint32)
        for p in range(min(plan.period, count)):
            n_p = -(-(count - p) // plan.period)  # values in phase p
            phase = windows[plan.word0[p] :: plan.stride][:n_p]
            out[p :: plan.period] = (phase >> plan.shift[p]).astype(np.uint32)
        out &= plan.mask
        return out

    def unpack_into(
        self, words: np.ndarray, count: int, bits: int, out: np.ndarray
    ) -> None:
        dest = out[:count]
        if _LITTLE_ENDIAN and bits in (8, 16, 32):
            # One widening pass from the dtype view straight into the
            # caller's (typically int64) buffer — no uint32 intermediate.
            if bits == 32:
                dest[:] = words[:count]
            elif bits == 16:
                dest[:] = words.view(np.uint16)[:count]
            else:
                dest[:] = words.view(np.uint8)[:count]
            return
        if _LITTLE_ENDIAN and bits in (1, 2, 4):
            # Stage through uint8 (strided byte stores are cheap; wide
            # strided stores are not), then one contiguous widening pass
            # — the uint32 intermediate of plain ``unpack`` is skipped.
            per = 8 // bits  # values per byte
            nbytes = -(-count // per)
            stream = words.view(np.uint8)[:nbytes]
            mask8 = np.uint8((1 << bits) - 1)
            tmp = np.empty(per * nbytes, dtype=np.uint8)
            for s in range(per):
                tmp[s::per] = (stream >> np.uint8(s * bits)) & mask8
            dest[:] = tmp[:count]
            return
        plan = _PLANS[bits]
        needed = _words_needed(count, bits)
        w = np.empty(needed + 1, dtype=np.uint32)
        w[:needed] = words[:needed]
        w[needed] = 0  # high-word sentinel for the final value
        windows = np.ndarray(
            shape=(needed,), dtype=np.uint64, buffer=w.data, strides=(4,)
        )
        if count < _GATHER_MAX:
            win_idx, shift = _gather_table(bits)
            dest[:] = (
                windows[win_idx[:count]] >> shift[:count]
            ).astype(np.uint32) & plan.mask
            return
        mask64 = np.uint64(plan.mask)
        for p in range(min(plan.period, count)):
            n_p = -(-(count - p) // plan.period)  # values in phase p
            phase = windows[plan.word0[p] :: plan.stride][:n_p]
            dest[p :: plan.period] = (phase >> plan.shift[p]) & mask64

    # -- pack --------------------------------------------------------------

    def pack(self, values: np.ndarray, bits: int) -> np.ndarray:
        n = values.size
        nwords = _words_needed(n, bits)
        if _LITTLE_ENDIAN:
            if bits == 32:
                return values.astype(np.uint32)
            if bits == 16:
                out = np.zeros(nwords, dtype=np.uint32)
                out.view(np.uint16)[:n] = values.astype(np.uint16)
                return out
            if bits == 8:
                out = np.zeros(nwords, dtype=np.uint32)
                out.view(np.uint8)[:n] = values.astype(np.uint8)
                return out
            if bits in (1, 2, 4):
                per = 8 // bits
                nbytes = -(-n // per)
                padded = np.zeros(per * nbytes, dtype=np.uint8)
                padded[:n] = values.astype(np.uint8)
                acc = padded[0::per].copy()
                for s in range(1, per):
                    acc |= padded[s::per] << np.uint8(s * bits)
                out = np.zeros(nwords, dtype=np.uint32)
                out.view(np.uint8)[:nbytes] = acc
                return out
        plan = _PLANS[bits]
        acc = np.zeros(nwords, dtype=np.uint64)
        for p in range(min(plan.period, n)):
            n_p = -(-(n - p) // plan.period)  # values in phase p
            acc[plan.word0[p] :: plan.stride][:n_p] |= (
                values[p :: plan.period] << plan.shift[p]
            )
        out = acc.astype(np.uint32)  # truncation keeps the low word
        out[1:] |= (acc[:-1] >> np.uint64(32)).astype(np.uint32)
        return out
